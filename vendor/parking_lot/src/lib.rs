//! Minimal in-tree stand-in for the `parking_lot` crate.
//!
//! The build environment has no registry access, so this workspace vendors
//! the tiny slice of the `parking_lot` API it actually uses, implemented
//! on top of `std::sync`. Semantics match `parking_lot` where it matters
//! for this codebase: locks do not poison (a panicked holder does not
//! wedge other threads into `Err` handling), `lock()` returns the guard
//! directly, and `into_inner()` consumes the lock without a `Result`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::PoisonError;

/// A mutual-exclusion lock with `parking_lot`'s non-poisoning interface.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`]; unlocks on drop.
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wrap a value in a mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available. Unlike
    /// `std::sync::Mutex`, a panic in a previous holder is ignored rather
    /// than surfaced as a poison error.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock with `parking_lot`'s non-poisoning interface.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared-read guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Wrap a value in a reader-writer lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn lock_ignores_poison() {
        let m = Arc::new(Mutex::new(0u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the lock");
        })
        .join();
        // parking_lot semantics: the lock is still usable.
        *m.lock() += 7;
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2, 3]);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(r1.len() + r2.len(), 6);
        }
        l.write().push(4);
        assert_eq!(l.into_inner(), vec![1, 2, 3, 4]);
    }
}
