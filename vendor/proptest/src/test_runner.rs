//! Test execution: deterministic RNG, configuration, and the case runner.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

use crate::strategy::Strategy;

/// Deterministic generator state handed to strategies.
///
/// splitmix64: full-period, passes BigCrush for this use, and — critically
/// for a test harness — identical sequences on every platform and run.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Create a generator from a seed.
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next 32 random bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in `[0, bound)`. Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "TestRng::below(0)");
        self.next_u64() % bound
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Why a single test case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The property is false for this input (`prop_assert!` failure).
    Fail(String),
    /// The input does not satisfy a precondition (`prop_assume!`); the
    /// case is discarded without counting against the property.
    Reject(String),
}

impl TestCaseError {
    /// Build a failure.
    pub fn fail(reason: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(reason.into())
    }

    /// Build a rejection.
    pub fn reject(reason: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "test case failed: {r}"),
            TestCaseError::Reject(r) => write!(f, "input rejected: {r}"),
        }
    }
}

/// Result of a single test case body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration, set per-`proptest!` block via
/// `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to run.
    pub cases: u32,
    /// Cap on strategy rejections before the run is declared stuck.
    pub max_global_rejects: u32,
    /// Seed for the deterministic generator.
    pub rng_seed: u64,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
            rng_seed: 0x70726F70_74657374, // "proptest"
        }
    }
}

impl ProptestConfig {
    /// Default configuration with a specific case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

/// Drive `test` over `config.cases` generated inputs. Panics (failing the
/// enclosing `#[test]`) on the first failing case, printing the input.
///
/// No shrinking: the failing input is reported as generated. Inputs are
/// deterministic for a given seed, so a reported failure reproduces by
/// re-running the test.
pub fn run_cases<S: Strategy>(
    config: &ProptestConfig,
    strategy: S,
    test: impl Fn(S::Value) -> TestCaseResult,
) {
    let mut rng = TestRng::new(config.rng_seed);
    let mut accepted = 0u32;
    let mut rejected = 0u32;
    while accepted < config.cases {
        let value = match strategy.new_value(&mut rng) {
            Ok(v) => v,
            Err(rejection) => {
                rejected += 1;
                assert!(
                    rejected <= config.max_global_rejects,
                    "proptest: too many inputs rejected during generation ({rejection})",
                );
                continue;
            }
        };
        let described = format!("{value:?}");
        match catch_unwind(AssertUnwindSafe(|| test(value))) {
            Ok(Ok(())) => accepted += 1,
            Ok(Err(TestCaseError::Reject(reason))) => {
                rejected += 1;
                assert!(
                    rejected <= config.max_global_rejects,
                    "proptest: too many inputs rejected by prop_assume ({reason})",
                );
            }
            Ok(Err(TestCaseError::Fail(reason))) => {
                panic!(
                    "proptest: property failed after {accepted} passing case(s): {reason}\n\
                     \x20   input: {described}"
                );
            }
            Err(payload) => {
                eprintln!("proptest: panic while testing input: {described}");
                resume_unwind(payload);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::new(9);
        let mut b = TestRng::new(9);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn run_cases_runs_exactly_cases_accepted() {
        use std::cell::Cell;
        let count = Cell::new(0u32);
        let config = ProptestConfig::with_cases(10);
        run_cases(&config, 0u64..100, |_| {
            count.set(count.get() + 1);
            Ok(())
        });
        assert_eq!(count.get(), 10);
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn run_cases_panics_on_failure() {
        let config = ProptestConfig::with_cases(10);
        run_cases(&config, 0u64..100, |v| {
            if v < 1_000 {
                Err(TestCaseError::fail("always fails"))
            } else {
                Ok(())
            }
        });
    }

    #[test]
    fn rejections_do_not_count_as_cases() {
        use std::cell::Cell;
        let accepted = Cell::new(0u32);
        let seen = Cell::new(0u32);
        let config = ProptestConfig::with_cases(5);
        run_cases(&config, 0u64..10, |v| {
            seen.set(seen.get() + 1);
            if v % 2 == 0 {
                return Err(TestCaseError::reject("odd only"));
            }
            accepted.set(accepted.get() + 1);
            Ok(())
        });
        assert_eq!(accepted.get(), 5);
        assert!(seen.get() >= 5);
    }
}
