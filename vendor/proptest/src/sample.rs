//! Strategies that sample from explicit value lists (`proptest::sample`).

use std::fmt::Debug;

use crate::strategy::{Rejection, Strategy};
use crate::test_runner::TestRng;

/// Strategy yielding uniformly chosen elements of a fixed list.
#[derive(Debug, Clone)]
pub struct Select<T> {
    items: Vec<T>,
}

/// Choose uniformly among the given values.
pub fn select<T: Clone + Debug>(items: Vec<T>) -> Select<T> {
    assert!(!items.is_empty(), "sample::select on empty list");
    Select { items }
}

impl<T: Clone + Debug> Strategy for Select<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> Result<T, Rejection> {
        let i = rng.below(self.items.len() as u64) as usize;
        Ok(self.items[i].clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn select_covers_all_items() {
        let strat = select(vec!['a', 'b', 'c']);
        let mut rng = TestRng::new(3);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..100 {
            seen.insert(strat.new_value(&mut rng).unwrap());
        }
        assert_eq!(seen.len(), 3);
    }
}
