//! The [`Strategy`] trait, adapters, and strategies for primitive types.

use std::fmt::Debug;
use std::ops::{Range, RangeFrom, RangeInclusive};
use std::rc::Rc;

use crate::test_runner::TestRng;

/// A value could not be generated (e.g. a filter predicate failed); the
/// runner retries with fresh randomness, up to its global reject cap.
#[derive(Debug, Clone)]
pub struct Rejection(pub &'static str);

impl std::fmt::Display for Rejection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.0)
    }
}

/// A recipe for generating values of a type.
///
/// Unlike real proptest there is no shrinking: strategies produce final
/// values directly, and a failing input is reported as generated.
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Generate one value, or reject (runner retries).
    fn new_value(&self, rng: &mut TestRng) -> Result<Self::Value, Rejection>;

    /// Transform generated values with `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }

    /// Generate a value, then use it to pick a second strategy to draw
    /// the final value from (dependent generation).
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { source: self, f }
    }

    /// Keep only values satisfying `pred`; others are rejected with
    /// `reason` and regenerated.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        reason: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            source: self,
            reason,
            pred,
        }
    }

    /// Map and filter in one step: `None` rejects with `reason`.
    fn prop_filter_map<O: Debug, F: Fn(Self::Value) -> Option<O>>(
        self,
        reason: &'static str,
        f: F,
    ) -> FilterMap<Self, F>
    where
        Self: Sized,
    {
        FilterMap {
            source: self,
            reason,
            f,
        }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> Result<Self::Value, Rejection> {
        (**self).new_value(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> Result<T, Rejection> {
        Ok(self.0.clone())
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> Result<O, Rejection> {
        self.source.new_value(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn new_value(&self, rng: &mut TestRng) -> Result<S2::Value, Rejection> {
        let inner = (self.f)(self.source.new_value(rng)?);
        inner.new_value(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    source: S,
    reason: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> Result<S::Value, Rejection> {
        let v = self.source.new_value(rng)?;
        if (self.pred)(&v) {
            Ok(v)
        } else {
            Err(Rejection(self.reason))
        }
    }
}

/// See [`Strategy::prop_filter_map`].
#[derive(Debug, Clone)]
pub struct FilterMap<S, F> {
    source: S,
    reason: &'static str,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> Result<O, Rejection> {
        match (self.f)(self.source.new_value(rng)?) {
            Some(v) => Ok(v),
            None => Err(Rejection(self.reason)),
        }
    }
}

/// A type-erased, reference-counted strategy.
pub struct BoxedStrategy<V>(Rc<dyn Strategy<Value = V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<V: Debug> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn new_value(&self, rng: &mut TestRng) -> Result<V, Rejection> {
        self.0.new_value(rng)
    }
}

impl<V> std::fmt::Debug for BoxedStrategy<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

/// Picks uniformly among alternative strategies (`prop_oneof!`).
#[derive(Debug, Clone)]
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V: Debug> Union<V> {
    /// Build from a non-empty list of alternatives.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Union<V> {
        assert!(!arms.is_empty(), "prop_oneof! requires at least one arm");
        Union { arms }
    }
}

impl<V: Debug> Strategy for Union<V> {
    type Value = V;
    fn new_value(&self, rng: &mut TestRng) -> Result<V, Rejection> {
        let arm = rng.below(self.arms.len() as u64) as usize;
        self.arms[arm].new_value(rng)
    }
}

fn sample_int_span(rng: &mut TestRng, span: u128) -> u128 {
    debug_assert!(span > 0);
    let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
    wide % span
}

macro_rules! int_range_strategies {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> Result<$t, Rejection> {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                Ok((self.start as i128 + sample_int_span(rng, span) as i128) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> Result<$t, Rejection> {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                Ok((lo as i128 + sample_int_span(rng, span) as i128) as $t)
            }
        }
        impl Strategy for RangeFrom<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> Result<$t, Rejection> {
                (self.start..=<$t>::MAX).new_value(rng)
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> Result<f64, Rejection> {
        assert!(self.start < self.end, "empty range strategy");
        Ok(self.start + rng.unit_f64() * (self.end - self.start))
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn new_value(&self, rng: &mut TestRng) -> Result<f32, Rejection> {
        assert!(self.start < self.end, "empty range strategy");
        Ok(self.start + rng.unit_f64() as f32 * (self.end - self.start))
    }
}

macro_rules! tuple_strategies {
    ($(($($S:ident . $idx:tt),+))+) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Result<Self::Value, Rejection> {
                Ok(($(self.$idx.new_value(rng)?,)+))
            }
        }
    )+};
}

tuple_strategies! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::new(42)
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = rng();
        for _ in 0..500 {
            let v = (10u32..20).new_value(&mut r).unwrap();
            assert!((10..20).contains(&v));
            let w = (250u8..=255).new_value(&mut r).unwrap();
            assert!(w >= 250);
            let x = (1u8..).new_value(&mut r).unwrap();
            assert!(x >= 1);
            let f = (1.0f64..2.0).new_value(&mut r).unwrap();
            assert!((1.0..2.0).contains(&f));
        }
    }

    #[test]
    fn map_and_filter_compose() {
        let strat = (0u32..100).prop_map(|v| v * 2).prop_filter("nonzero", |&v| v != 0);
        let mut r = rng();
        for _ in 0..100 {
            match strat.new_value(&mut r) {
                Ok(v) => {
                    assert_eq!(v % 2, 0);
                    assert_ne!(v, 0);
                }
                Err(rej) => assert_eq!(rej.0, "nonzero"),
            }
        }
    }

    #[test]
    fn flat_map_dependent_generation() {
        let strat = (1usize..10).prop_flat_map(|n| (Just(n), 0usize..n));
        let mut r = rng();
        for _ in 0..200 {
            let (n, v) = strat.new_value(&mut r).unwrap();
            assert!(v < n);
        }
    }

    #[test]
    fn union_uses_all_arms() {
        let u = Union::new(vec![Just(1u8).boxed(), Just(2u8).boxed()]);
        let mut r = rng();
        let draws: Vec<u8> = (0..100).map(|_| u.new_value(&mut r).unwrap()).collect();
        assert!(draws.contains(&1) && draws.contains(&2));
    }

    #[test]
    fn filter_map_rejects_none() {
        let strat = (0u32..4).prop_filter_map("must be even", |v| {
            if v % 2 == 0 {
                Some(v / 2)
            } else {
                None
            }
        });
        let mut r = rng();
        let mut saw_reject = false;
        for _ in 0..100 {
            match strat.new_value(&mut r) {
                Ok(v) => assert!(v < 2),
                Err(_) => saw_reject = true,
            }
        }
        assert!(saw_reject);
    }
}
