//! Minimal in-tree stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this workspace vendors
//! a compact property-testing harness exposing the `proptest` API surface
//! its tests use: the [`proptest!`] macro (both `pat in strategy` and
//! `ident: Type` parameters, with optional `#![proptest_config(...)]`),
//! `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!`/`prop_assume!`,
//! [`prop_oneof!`], [`strategy::Strategy`] with the `prop_map` /
//! `prop_flat_map` / `prop_filter` / `prop_filter_map` adapters,
//! [`arbitrary::any`], [`collection::vec`] / [`collection::btree_set`],
//! and [`sample::select`].
//!
//! Differences from real proptest, deliberately accepted:
//! - **No shrinking** — a failing input is reported exactly as generated.
//! - **Fixed deterministic seeding** — every run generates the same cases,
//!   so failures always reproduce; `.proptest-regressions` files are
//!   ignored.
//! - Rejection handling is coarse: a global cap (default 65 536) rather
//!   than local/global split.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// Everything a property test usually needs.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Define property tests.
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn addition_commutes(a: u32, b in 0u32..1000) {
///         prop_assert_eq!(a.wrapping_add(b), b.wrapping_add(a));
///     }
/// }
/// ```
// The `#[test]` in the example is the macro's whole point, not a doctest
// mistake.
#[allow(clippy::test_attr_in_doctest)]
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($config:expr) ) => {};
    ( ($config:expr) $(#[$meta:meta])* fn $name:ident( $($params:tt)* ) $body:block $($rest:tt)* ) => {
        $(#[$meta])*
        fn $name() {
            $crate::__proptest_body! { ($config) () () ($($params)*) $body }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    // All parameters consumed: run the cases.
    ( ($config:expr) ($($pat:pat_param),+) ($($strat:expr),+) () $body:block ) => {{
        let __proptest_config = $config;
        $crate::test_runner::run_cases(
            &__proptest_config,
            ($($strat,)+),
            |($($pat,)+)| {
                $body
                ::core::result::Result::Ok(())
            },
        );
    }};
    // `pat in strategy, ...`
    ( ($config:expr) ($($pat:pat_param),*) ($($strat:expr),*) ($p:pat_param in $s:expr, $($rest:tt)*) $body:block ) => {
        $crate::__proptest_body! { ($config) ($($pat,)* $p) ($($strat,)* $s) ($($rest)*) $body }
    };
    // `pat in strategy` (final parameter)
    ( ($config:expr) ($($pat:pat_param),*) ($($strat:expr),*) ($p:pat_param in $s:expr) $body:block ) => {
        $crate::__proptest_body! { ($config) ($($pat,)* $p) ($($strat,)* $s) () $body }
    };
    // `ident: Type, ...` (uses the type's canonical `any` strategy)
    ( ($config:expr) ($($pat:pat_param),*) ($($strat:expr),*) ($i:ident : $t:ty, $($rest:tt)*) $body:block ) => {
        $crate::__proptest_body! {
            ($config) ($($pat,)* $i) ($($strat,)* $crate::arbitrary::any::<$t>()) ($($rest)*) $body
        }
    };
    // `ident: Type` (final parameter)
    ( ($config:expr) ($($pat:pat_param),*) ($($strat:expr),*) ($i:ident : $t:ty) $body:block ) => {
        $crate::__proptest_body! {
            ($config) ($($pat,)* $i) ($($strat,)* $crate::arbitrary::any::<$t>()) () $body
        }
    };
}

/// Assert a property holds; on failure the case fails with the condition
/// (or a formatted message) and the generated input is reported.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Assert two expressions are equal (`==`), with `{:?}` diagnostics.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`: {}",
            __l,
            __r,
            format!($($fmt)+)
        );
    }};
}

/// Assert two expressions are unequal (`!=`), with `{:?}` diagnostics.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l != __r,
            "assertion failed: `left != right`\n  both: `{:?}`",
            __l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l != __r,
            "assertion failed: `left != right`\n  both: `{:?}`: {}",
            __l,
            format!($($fmt)+)
        );
    }};
}

/// Discard the current case (it does not count toward the case budget)
/// when a precondition on generated inputs does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::reject(stringify!($cond)),
            );
        }
    };
}

/// Choose uniformly among several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod macro_tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn pat_in_strategy_form((a, b) in (0u32..100, 0u32..100)) {
            prop_assert!(a < 100 && b < 100);
        }

        #[test]
        fn ident_type_form(x: u8, y: u64) {
            let _ = y;
            prop_assert!(u64::from(x) <= 255);
        }

        #[test]
        fn mixed_forms(v in crate::collection::vec(any::<u8>(), 0..10), seed: u64) {
            let _ = seed;
            prop_assert!(v.len() < 10);
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u32..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn oneof_and_sample(choice in prop_oneof![Just(1u8), Just(7u8)],
                            pick in crate::sample::select(vec![10usize, 20, 30])) {
            prop_assert!(choice == 1 || choice == 7);
            prop_assert_ne!(pick, 0);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0u64..1000) {
            prop_assert!(x < 1000);
        }
    }
}
