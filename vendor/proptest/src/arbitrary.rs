//! The [`Arbitrary`] trait and [`any`] entry point.

use std::fmt::Debug;
use std::marker::PhantomData;

use crate::strategy::{Rejection, Strategy};
use crate::test_runner::TestRng;

/// Types with a canonical "anything goes" strategy.
pub trait Arbitrary: Debug + Sized {
    /// The strategy [`any`] returns for this type.
    type Strategy: Strategy<Value = Self>;

    /// The canonical strategy covering the whole domain of the type.
    fn arbitrary() -> Self::Strategy;
}

/// Strategy producing any value of `T` (see [`Arbitrary`]).
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

/// Full-domain strategy for primitives.
#[derive(Debug, Clone, Copy)]
pub struct AnyPrimitive<T>(PhantomData<T>);

macro_rules! arbitrary_ints {
    ($($t:ty => $conv:expr),* $(,)?) => {$(
        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> Result<$t, Rejection> {
                let f: fn(&mut TestRng) -> $t = $conv;
                Ok(f(rng))
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyPrimitive(PhantomData)
            }
        }
    )*};
}

arbitrary_ints!(
    u8 => |r| r.next_u32() as u8,
    u16 => |r| r.next_u32() as u16,
    u32 => |r| r.next_u32(),
    u64 => |r| r.next_u64(),
    usize => |r| r.next_u64() as usize,
    i8 => |r| r.next_u32() as i8,
    i16 => |r| r.next_u32() as i16,
    i32 => |r| r.next_u32() as i32,
    i64 => |r| r.next_u64() as i64,
    isize => |r| r.next_u64() as isize,
    bool => |r| r.next_u32() & 1 == 1,
);

impl Strategy for AnyPrimitive<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> Result<f64, Rejection> {
        // Finite floats across a wide dynamic range (sign × magnitude).
        let mag = rng.unit_f64();
        let exp = (rng.below(61) as i32) - 30;
        let sign = if rng.next_u32() & 1 == 1 { -1.0 } else { 1.0 };
        Ok(sign * mag * 2f64.powi(exp))
    }
}

impl Arbitrary for f64 {
    type Strategy = AnyPrimitive<f64>;
    fn arbitrary() -> Self::Strategy {
        AnyPrimitive(PhantomData)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_u8_covers_domain_edges() {
        let strat = any::<u8>();
        let mut rng = TestRng::new(7);
        let mut seen = [false; 256];
        for _ in 0..20_000 {
            seen[strat.new_value(&mut rng).unwrap() as usize] = true;
        }
        let covered = seen.iter().filter(|&&s| s).count();
        assert!(covered > 250, "only {covered}/256 u8 values seen");
    }

    #[test]
    fn any_f64_is_finite() {
        let strat = any::<f64>();
        let mut rng = TestRng::new(11);
        for _ in 0..1_000 {
            assert!(strat.new_value(&mut rng).unwrap().is_finite());
        }
    }
}
