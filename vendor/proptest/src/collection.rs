//! Strategies for collections (`proptest::collection`).

use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

use crate::strategy::{Rejection, Strategy};
use crate::test_runner::TestRng;

/// An inclusive size window for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        if self.min == self.max {
            self.min
        } else {
            self.min + rng.below((self.max - self.min + 1) as u64) as usize
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Strategy for `Vec<S::Value>` with sizes in a window.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Generate vectors whose elements come from `element` and whose length
/// falls in `size` (a `usize`, `Range<usize>`, or `RangeInclusive<usize>`).
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn new_value(&self, rng: &mut TestRng) -> Result<Vec<S::Value>, Rejection> {
        let len = self.size.pick(rng);
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.element.new_value(rng)?);
        }
        Ok(out)
    }
}

/// Strategy for `BTreeSet<S::Value>` with sizes in a window.
#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Generate ordered sets of distinct elements with sizes in `size`.
pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn new_value(&self, rng: &mut TestRng) -> Result<BTreeSet<S::Value>, Rejection> {
        let target = self.size.pick(rng);
        let mut out = BTreeSet::new();
        // Duplicates don't grow the set, so allow generous retries before
        // rejecting (the element domain may be barely larger than `target`).
        let max_attempts = target * 20 + 64;
        let mut attempts = 0;
        while out.len() < target && attempts < max_attempts {
            out.insert(self.element.new_value(rng)?);
            attempts += 1;
        }
        if out.len() >= self.size.min {
            Ok(out)
        } else {
            Err(Rejection("btree_set: element domain too small for requested size"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_length_in_window() {
        let strat = vec(0u8..=255, 3..7);
        let mut rng = TestRng::new(5);
        for _ in 0..200 {
            let v = strat.new_value(&mut rng).unwrap();
            assert!((3..7).contains(&v.len()));
        }
    }

    #[test]
    fn vec_exact_size_from_usize() {
        let strat = vec(0u8..=255, 16usize);
        let mut rng = TestRng::new(5);
        assert_eq!(strat.new_value(&mut rng).unwrap().len(), 16);
    }

    #[test]
    fn btree_set_distinct_and_sized() {
        let strat = btree_set(0usize..10, 1..=4);
        let mut rng = TestRng::new(5);
        for _ in 0..200 {
            let s = strat.new_value(&mut rng).unwrap();
            assert!((1..=4).contains(&s.len()));
        }
    }

    #[test]
    fn btree_set_rejects_impossible_size() {
        // Domain of 2 values can never reach 5 distinct elements.
        let strat = btree_set(0usize..2, 5..=5);
        let mut rng = TestRng::new(5);
        assert!(strat.new_value(&mut rng).is_err());
    }
}
