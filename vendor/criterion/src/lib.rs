//! Minimal in-tree benchmark harness exposing the `criterion` API surface
//! this workspace's benches use: `Criterion`, `benchmark_group`,
//! `bench_function`, `bench_with_input`, `Throughput`, `BenchmarkId`,
//! `black_box`, and the `criterion_group!`/`criterion_main!` macros.
//!
//! The build environment has no registry access, so this is a functional
//! stand-in rather than the real statistical harness: each benchmark is
//! warmed up briefly, then timed over enough iterations to fill a short
//! measurement window, and the mean per-iteration time (plus throughput
//! when configured) is printed. No plots, no statistics, no baselines —
//! but `cargo bench` runs end-to-end and reports comparable numbers.
//!
//! Two environment knobs drive the repository's benchmark snapshots
//! (`scripts/bench_snapshot.sh`, docs/PERFORMANCE.md):
//!
//! * `RPR_BENCH_MS` — measurement window per benchmark in milliseconds
//!   (default 300; the snapshot's `--quick` mode shrinks it);
//! * `RPR_BENCH_JSON` — when set to a path, every result is also
//!   appended there as one JSON object per line:
//!   `{"name":…,"mean_ns":…,"iters":…,"bytes":…,"bytes_per_sec":…,
//!   "elems":…,"elems_per_sec":…}` (throughput fields are `null` when
//!   the group configured none).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`]: an identity function opaque to
/// the optimizer.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput basis for a benchmark group, used to derive rate output.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Identifier from a name and a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Identifier from a parameter value alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { name: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { name: s }
    }
}

impl From<&String> for BenchmarkId {
    fn from(s: &String) -> Self {
        BenchmarkId { name: s.clone() }
    }
}

/// Per-benchmark timing driver handed to the closure.
pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
    measure_window: Duration,
}

impl Bencher {
    /// Call `f` repeatedly, timing it, until the measurement window fills.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: run a few iterations untimed and estimate cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < Duration::from_millis(30) && warm_iters < 1_000 {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().checked_div(warm_iters as u32).unwrap_or_default();

        // Measurement: batch iterations so clock overhead is amortized.
        let batch = if per_iter.is_zero() {
            1_000
        } else {
            (self.measure_window.as_nanos() / per_iter.as_nanos().max(1) / 10).clamp(1, 100_000)
                as u64
        };
        let start = Instant::now();
        while start.elapsed() < self.measure_window {
            for _ in 0..batch {
                black_box(f());
            }
            self.iters_done += batch;
        }
        self.elapsed = start.elapsed();
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// The measurement window: `RPR_BENCH_MS` milliseconds, default 300.
fn measure_window() -> Duration {
    use std::sync::OnceLock;
    static MS: OnceLock<u64> = OnceLock::new();
    Duration::from_millis(*MS.get_or_init(|| {
        std::env::var("RPR_BENCH_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&ms| ms > 0)
            .unwrap_or(300)
    }))
}

/// Append one result line to the `RPR_BENCH_JSON` file, if configured.
/// Benchmark names are plain `[a-z0-9_/ ]` identifiers, so no string
/// escaping is needed.
fn emit_json(full_name: &str, mean: Duration, iters: u64, throughput: Option<Throughput>) {
    let Some(path) = std::env::var_os("RPR_BENCH_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let secs = mean.as_secs_f64();
    let (bytes, bps, elems, eps) = match throughput {
        Some(Throughput::Bytes(n)) => (
            n.to_string(),
            format!("{:.0}", n as f64 / secs),
            "null".to_string(),
            "null".to_string(),
        ),
        Some(Throughput::Elements(n)) => (
            "null".to_string(),
            "null".to_string(),
            n.to_string(),
            format!("{:.2}", n as f64 / secs),
        ),
        None => ("null".to_string(), "null".to_string(), "null".to_string(), "null".to_string()),
    };
    let line = format!(
        "{{\"name\":\"{full_name}\",\"mean_ns\":{:.1},\"iters\":{iters},\
         \"bytes\":{bytes},\"bytes_per_sec\":{bps},\
         \"elems\":{elems},\"elems_per_sec\":{eps}}}",
        mean.as_nanos() as f64,
    );
    use std::io::Write;
    match std::fs::OpenOptions::new().create(true).append(true).open(&path) {
        Ok(mut f) => {
            if let Err(e) = writeln!(f, "{line}") {
                eprintln!("criterion: RPR_BENCH_JSON write failed: {e}");
            }
        }
        Err(e) => eprintln!("criterion: RPR_BENCH_JSON open failed: {e}"),
    }
}

fn run_one(full_name: &str, throughput: Option<Throughput>, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        iters_done: 0,
        elapsed: Duration::ZERO,
        measure_window: measure_window(),
    };
    f(&mut b);
    if b.iters_done == 0 {
        println!("{full_name:<40} (no iterations recorded)");
        return;
    }
    let mean = b.elapsed.div_f64(b.iters_done as f64);
    emit_json(full_name, mean, b.iters_done, throughput);
    let rate = throughput.map(|t| {
        let per_sec = match t {
            Throughput::Bytes(n) => n as f64 / mean.as_secs_f64(),
            Throughput::Elements(n) => {
                return format!(
                    "  {:.2} Melem/s",
                    n as f64 / mean.as_secs_f64() / 1e6
                )
            }
        };
        format!("  {:.2} GiB/s", per_sec / (1u64 << 30) as f64)
    });
    println!(
        "{full_name:<40} time: {:>12}{}",
        format_duration(mean),
        rate.unwrap_or_default()
    );
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Run a standalone benchmark function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        run_one(&name.into().name, None, &mut f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the throughput basis for subsequent benchmarks in the group.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; sampling is time-window based here.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the measurement window is fixed.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run a benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().name);
        run_one(&full, self.throughput, &mut f);
        self
    }

    /// Run a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().name);
        run_one(&full, self.throughput, &mut |b| f(b, input));
        self
    }

    /// Finish the group (printing is immediate, so this is a no-op).
    pub fn finish(self) {}
}

/// Collect benchmark functions into a single group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate a `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // cargo passes `--bench` (and possibly a filter) to the binary;
            // this harness runs everything unconditionally.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_iterations() {
        let mut b = Bencher {
            iters_done: 0,
            elapsed: Duration::ZERO,
            measure_window: Duration::from_millis(5),
        };
        let mut count = 0u64;
        b.iter(|| count += 1);
        assert!(b.iters_done > 0);
        assert!(count >= b.iters_done);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("enc", 42).name, "enc/42");
        assert_eq!(BenchmarkId::from_parameter("x").name, "x");
    }

    #[test]
    fn json_line_shape_is_schema_stable() {
        // The snapshot tooling greps these exact keys; emit through the
        // same formatter the file path uses.
        let dir = std::env::temp_dir().join(format!("criterion_json_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.jsonl");
        std::env::set_var("RPR_BENCH_JSON", &path);
        emit_json("g/case/1024", Duration::from_micros(10), 100, Some(Throughput::Bytes(1024)));
        emit_json("g/items", Duration::from_micros(10), 100, Some(Throughput::Elements(4)));
        emit_json("g/bare", Duration::from_micros(10), 100, None);
        std::env::remove_var("RPR_BENCH_JSON");
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        // Another test's benchmark may race a line in while the env var
        // is set; only judge the three lines this test emitted.
        let lines: Vec<&str> = text
            .lines()
            .filter(|l| l.contains("\"name\":\"g/case/1024\"") || l.contains("\"name\":\"g/items\"") || l.contains("\"name\":\"g/bare\""))
            .collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"name\":\"g/case/1024\""));
        assert!(lines[0].contains("\"bytes\":1024"));
        assert!(lines[0].contains("\"bytes_per_sec\":102400000"));
        assert!(lines[1].contains("\"elems_per_sec\":400000.00"));
        assert!(lines[1].contains("\"bytes\":null"));
        assert!(lines[2].contains("\"bytes_per_sec\":null"));
        for l in &lines {
            assert!(l.starts_with('{') && l.ends_with('}'));
        }
    }

    #[test]
    fn group_runs_to_completion() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Bytes(1024)).sample_size(10);
        g.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        g.finish();
    }
}
