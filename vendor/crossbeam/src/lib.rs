//! Minimal in-tree stand-in for the `crossbeam` crate.
//!
//! The build environment has no registry access, so this workspace vendors
//! the small slice of `crossbeam::channel` it uses, implemented on top of
//! `std::sync::mpsc`. The key interface difference from raw `mpsc` is
//! preserved: senders are cloneable and both endpoints use the
//! `crossbeam` type names (`Sender`, `Receiver`, `bounded`, `unbounded`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Multi-producer multi-consumer channels mirroring `crossbeam::channel`.
pub mod channel {
    use std::sync::{mpsc, Arc, Mutex, PoisonError};

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    /// Sending half of a channel; cloneable like `crossbeam`'s.
    #[derive(Debug, Clone)]
    pub struct Sender<T>(SenderInner<T>);

    #[derive(Debug, Clone)]
    enum SenderInner<T> {
        Bounded(mpsc::SyncSender<T>),
        Unbounded(mpsc::Sender<T>),
    }

    /// Receiving half of a channel; cloneable (multi-consumer) like
    /// `crossbeam`'s — clones share one underlying queue, each value is
    /// delivered to exactly one receiver.
    #[derive(Debug)]
    pub struct Receiver<T>(Arc<Mutex<mpsc::Receiver<T>>>);

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Sender<T> {
        /// Send a value, blocking while a bounded channel is full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match &self.0 {
                SenderInner::Bounded(tx) => tx.send(value).map_err(|e| SendError(e.0)),
                SenderInner::Unbounded(tx) => tx.send(value).map_err(|e| SendError(e.0)),
            }
        }
    }

    impl<T> Receiver<T> {
        fn inner(&self) -> std::sync::MutexGuard<'_, mpsc::Receiver<T>> {
            self.0.lock().unwrap_or_else(PoisonError::into_inner)
        }

        /// Receive a value, blocking until one is available or all senders
        /// have disconnected.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner().recv().map_err(|_| RecvError)
        }

        /// Receive without blocking, `None` when empty (disconnected or not).
        pub fn try_recv(&self) -> Option<T> {
            self.inner().try_recv().ok()
        }

        /// Collect values until all senders disconnect.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            std::iter::from_fn(move || self.recv().ok())
        }
    }

    /// Create a bounded channel with capacity `cap`.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (
            Sender(SenderInner::Bounded(tx)),
            Receiver(Arc::new(Mutex::new(rx))),
        )
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (
            Sender(SenderInner::Unbounded(tx)),
            Receiver(Arc::new(Mutex::new(rx))),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn bounded_round_trip() {
        let (tx, rx) = channel::bounded(1);
        tx.send(5).unwrap();
        assert_eq!(rx.recv(), Ok(5));
    }

    #[test]
    fn bounded_blocks_then_drains_across_threads() {
        let (tx, rx) = channel::bounded(1);
        let h = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<i32> = rx.iter().collect();
        h.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn recv_errors_after_all_senders_drop() {
        let (tx, rx) = channel::unbounded::<u8>();
        let tx2 = tx.clone();
        drop(tx);
        tx2.send(9).unwrap();
        drop(tx2);
        assert_eq!(rx.recv(), Ok(9));
        assert_eq!(rx.recv(), Err(channel::RecvError));
    }
}
