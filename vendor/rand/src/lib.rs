//! Minimal in-tree stand-in for the `rand` 0.9 API surface this workspace
//! uses: [`RngCore`], [`SeedableRng`] (with `seed_from_u64`), the [`Rng`]
//! extension trait (`random`, `random_range`), and
//! [`seq::SliceRandom`] (`shuffle`, `choose`).
//!
//! The build environment has no registry access, so everything must be
//! in-tree. Statistical quality matches the splitmix64/Lemire-free modulo
//! construction: good enough for test-data generation and randomized
//! placement, not for cryptography.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The core of a random number generator: raw word output.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// An RNG that can be constructed deterministically from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed material (e.g. `[u8; 32]`).
    type Seed: Default + AsMut<[u8]>;

    /// Construct from raw seed material.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanding it through splitmix64 so that
    /// nearby integers give unrelated streams.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let len = chunk.len();
            chunk.copy_from_slice(&bytes[..len]);
        }
        Self::from_seed(seed)
    }
}

/// Types that can be sampled uniformly from an RNG via [`Rng::random`].
pub trait Random: Sized {
    /// Draw a uniformly distributed value.
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_random_int {
    ($($t:ty => $via:ident),* $(,)?) => {$(
        impl Random for $t {
            fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}

impl_random_int!(
    u8 => next_u32, u16 => next_u32, u32 => next_u32, u64 => next_u64,
    usize => next_u64,
    i8 => next_u32, i16 => next_u32, i32 => next_u32, i64 => next_u64,
    isize => next_u64,
);

impl Random for u128 {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Random for bool {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Random for f64 {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that [`Rng::random_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw a uniformly distributed value from the range.
    ///
    /// Panics if the range is empty, matching `rand`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (u128::random_from(rng) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (u128::random_from(rng) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::random_from(rng) * (self.end - self.start)
    }
}

/// Ergonomic extension methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draw a uniformly distributed value of type `T`.
    fn random<T: Random>(&mut self) -> T {
        T::random_from(self)
    }

    /// Draw a uniformly distributed value from `range`.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence-related random operations (`rand::seq`).
pub mod seq {
    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Shuffle in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct Lcg(u64);
    impl RngCore for Lcg {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Lcg(7);
        for _ in 0..1000 {
            let v: usize = rng.random_range(3..17);
            assert!((3..17).contains(&v));
            let w: u8 = rng.random_range(250..=255);
            assert!(w >= 250);
            let f: f64 = rng.random_range(1.0..2.0);
            assert!((1.0..2.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Lcg(42);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = Lcg(1);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn choose_none_on_empty() {
        let mut rng = Lcg(3);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
