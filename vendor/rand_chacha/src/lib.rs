//! Minimal in-tree stand-in for `rand_chacha`: a genuine ChaCha8 stream
//! cipher core driving the vendored [`rand`] traits.
//!
//! Only [`ChaCha8Rng`] is provided — the one generator this workspace
//! uses. Output is a real ChaCha8 keystream (RFC 7539 block function with
//! 8 rounds), so streams from nearby seeds are statistically independent,
//! which matters for the seeded experiment fixtures.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::{RngCore, SeedableRng};

const WORDS: usize = 16;

/// A deterministic RNG backed by the ChaCha stream cipher with 8 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key + constants + counter + nonce state for the next block.
    state: [u32; WORDS],
    /// Keystream words of the current block not yet handed out.
    buf: [u32; WORDS],
    /// Next unread index into `buf` (WORDS = exhausted).
    idx: usize,
}

#[inline]
fn quarter_round(s: &mut [u32; WORDS], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // 4 double-rounds = 8 rounds.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, s)) in self
            .buf
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(*s);
        }
        // 64-bit block counter in words 12–13.
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
        self.idx = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; WORDS];
        // "expand 32-byte k"
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            state[4 + i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        // Counter (12–13) and nonce (14–15) start at zero.
        ChaCha8Rng {
            state,
            buf: [0; WORDS],
            idx: WORDS,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.idx >= WORDS {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = ChaCha8Rng::seed_from_u64(123);
        let mut b = ChaCha8Rng::seed_from_u64(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn nearby_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 4, "{same} of 64 words collided");
    }

    #[test]
    fn counter_advances_across_blocks() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let first_block: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second_block: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first_block, second_block);
    }

    #[test]
    fn zero_key_matches_chacha8_reference() {
        // First keystream word of ChaCha8 with zero key, zero nonce,
        // counter 0 (reference: Bernstein's chacha8 test vectors).
        let mut rng = ChaCha8Rng::from_seed([0u8; 32]);
        let first = rng.next_u32().to_le_bytes();
        assert_eq!(first, [0x3e, 0x00, 0xef, 0x2f]);
    }
}
