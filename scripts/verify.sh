#!/usr/bin/env sh
# Tier-1 verification recipe (see ROADMAP.md): build, tests, lints, docs.
#
# Usage: scripts/verify.sh [--offline]
#   --offline   forward --offline to every cargo invocation (default when
#               CARGO_NET_OFFLINE=true); required in registry-less builds.
#
# Steps:
#   1. cargo build --release --workspace
#   2. cargo test -q --workspace
#   3. cargo clippy --workspace --all-targets -- -D warnings
#   4. cargo doc --no-deps --workspace   (rustdoc warnings are errors)
#
# Note: `cargo doc` prints a filename-collision warning for the `rpr` CLI
# binary vs the `rpr` facade lib (cargo#6313); it is cargo's, not
# rustdoc's, and does not fail the run.

set -eu

OFFLINE=""
for arg in "$@"; do
    case "$arg" in
        --offline) OFFLINE="--offline" ;;
        *) echo "unknown argument: $arg" >&2; exit 2 ;;
    esac
done
if [ "${CARGO_NET_OFFLINE:-}" = "true" ]; then
    OFFLINE="--offline"
fi

run() {
    echo "==> $*"
    "$@"
}

run cargo build $OFFLINE --release --workspace
run cargo test $OFFLINE -q --workspace
run cargo clippy $OFFLINE --workspace --all-targets -- -D warnings
echo "==> RUSTDOCFLAGS='-D warnings' cargo doc $OFFLINE --no-deps --workspace"
RUSTDOCFLAGS="-D warnings" cargo doc $OFFLINE --no-deps --workspace

echo "==> verify OK"
