#!/usr/bin/env sh
# Tier-1 verification recipe (see ROADMAP.md): build, tests, lints, docs.
#
# Usage: scripts/verify.sh [--offline]
#   --offline   forward --offline to every cargo invocation (default when
#               CARGO_NET_OFFLINE=true); required in registry-less builds.
#
# Steps:
#   1. cargo build --release --workspace
#   2. cargo build --release --examples
#   3. cargo test -q --workspace
#   4. cargo clippy --workspace --all-targets -- -D warnings
#   5. cargo doc --no-deps --workspace   (rustdoc warnings are errors)
#   6. chaos determinism: `rpr inject` twice per fixed seed must emit
#      byte-identical JSONL traces (docs/ROBUSTNESS.md), with and
#      without cut-through streaming (--chunk-size)
#   7. streaming collapse: at (6,3) the chunked `rpr plan` makespan must
#      be strictly lower than the store-and-forward one
#   8. chaos soak: the supervised 3-fault storm (`rpr chaos`, crash →
#      replacement crash → timeout) must complete at (6,3) and emit a
#      byte-identical trace across runs, block and chunk mode
#   9. Byzantine soak: a seeded `StormFault::Lie` storm under
#      `--proof mandatory` must complete with the liar accused (not
#      timed out), produce byte-identical traces and proof ledgers
#      across two same-seed runs, and `rpr audit` must verify the
#      captured ledger against the trace offline and localize the
#      dishonest hop (docs/ROBUSTNESS.md, "The proof plane")
#  10. fleet soak: the fleet scheduler (`rpr fleet`, 10k stripes) must
#      drain a 10k-stripe backlog per seed and emit byte-identical JSON
#      summaries across two same-seed runs with zero arbiter
#      double-releases (docs/FLEET.md)
#  11. foreground soak: the load co-simulation (`rpr load`, 240 requests
#      against 4 staggered stripe repairs) must emit byte-identical JSON
#      summaries across two same-seed runs per mode, and the QoS-throttled
#      p99 latency must land strictly below the unthrottled p99
#      (docs/FOREGROUND.md)
#  12. churn soak: a journaled 10k-stripe drain under live churn
#      (`rpr fleet --churn-rate --journal`) is killed -9 mid-drain
#      (RPR_JOURNAL_STALL_US stretches the write window), resumed from
#      the torn journal, and the resumed run's `"summary":{...}` must be
#      byte-identical to an uninterrupted same-seed run's, with zero
#      stripes lost at a churn rate the drain outpaces (docs/FLEET.md,
#      "Drains under churn" / "The journal")
#  13. bench gate: a quick bench snapshot (scripts/bench_snapshot.sh
#      --quick) must not regress the GF kernel throughput by more than
#      15% against the newest committed BENCH_*.json, and the dispatched
#      SIMD multiply must stay >= 4x the scalar tier (scripts/
#      bench_gate.sh). Set RPR_BENCH_GATE=off to skip, e.g. on loaded
#      machines. See docs/PERFORMANCE.md.
#
# Note: `cargo doc` prints a filename-collision warning for the `rpr` CLI
# binary vs the `rpr` facade lib (cargo#6313); it is cargo's, not
# rustdoc's, and does not fail the run.

set -eu

OFFLINE=""
for arg in "$@"; do
    case "$arg" in
        --offline) OFFLINE="--offline" ;;
        *) echo "unknown argument: $arg" >&2; exit 2 ;;
    esac
done
if [ "${CARGO_NET_OFFLINE:-}" = "true" ]; then
    OFFLINE="--offline"
fi

run() {
    echo "==> $*"
    "$@"
}

run cargo build $OFFLINE --release --workspace
run cargo build $OFFLINE --release --examples
run cargo test $OFFLINE -q --workspace
run cargo clippy $OFFLINE --workspace --all-targets -- -D warnings
echo "==> RUSTDOCFLAGS='-D warnings' cargo doc $OFFLINE --no-deps --workspace"
RUSTDOCFLAGS="-D warnings" cargo doc $OFFLINE --no-deps --workspace

# Step 6: the degraded (fault-injected) repair trace must be
# bit-deterministic under a fixed seed — run the crash scenario twice per
# seed and byte-compare the JSONL traces, both store-and-forward and with
# cut-through streaming enabled.
CHAOS_DIR="target/chaos"
mkdir -p "$CHAOS_DIR"
RPR="target/release/rpr"
for seed in 17 4242; do
    for mode in block chunk; do
        if [ "$mode" = chunk ]; then CHUNK="--chunk-size 8"; else CHUNK=""; fi
        for rep in a b; do
            echo "==> $RPR inject --code 6,3 --fail d1 --fault crash --seed $seed $CHUNK (run $rep)"
            "$RPR" inject --code 6,3 --fail d1 --fault crash --seed "$seed" $CHUNK \
                --out "$CHAOS_DIR/crash_s${seed}_${mode}_${rep}.jsonl" 2>/dev/null
        done
        if ! cmp -s "$CHAOS_DIR/crash_s${seed}_${mode}_a.jsonl" \
                    "$CHAOS_DIR/crash_s${seed}_${mode}_b.jsonl"; then
            echo "chaos determinism FAILED: seed $seed ($mode) traces differ" >&2
            exit 1
        fi
        echo "==> chaos trace for seed $seed ($mode) is byte-identical across runs"
    done
done

# Step 7: cut-through streaming must strictly beat store-and-forward at
# (6,3) — the headline claim of the chunked pipeline (ECPipe §3 applied
# to RPR §3.2).
extract_time() {
    sed -n 's/^repair time \([0-9.]*\) s .*/\1/p' "$1"
}
echo "==> $RPR plan --code 6,3 --fail d1 (store-and-forward vs --chunk-size 8)"
"$RPR" plan --code 6,3 --fail d1 > "$CHAOS_DIR/plan_block.txt"
"$RPR" plan --code 6,3 --fail d1 --chunk-size 8 > "$CHAOS_DIR/plan_chunk.txt"
T_BLOCK="$(extract_time "$CHAOS_DIR/plan_block.txt")"
T_CHUNK="$(extract_time "$CHAOS_DIR/plan_chunk.txt")"
if [ -z "$T_BLOCK" ] || [ -z "$T_CHUNK" ]; then
    echo "streaming collapse check FAILED: could not parse repair times" >&2
    exit 1
fi
if ! awk "BEGIN { exit !($T_CHUNK < $T_BLOCK) }"; then
    echo "streaming collapse FAILED: chunked $T_CHUNK s not below block-level $T_BLOCK s" >&2
    exit 1
fi
echo "==> streamed makespan $T_CHUNK s < store-and-forward $T_BLOCK s"

# Step 8: the repair supervisor must drive the acceptance storm — a helper
# crash, a crash of its replacement, then a timeout — to completion on the
# simulator, deterministically: two runs per seed must produce the same
# one-line JSON summary and a byte-identical trace, with and without
# cut-through streaming.
for seed in 17 4242; do
    for mode in block chunk; do
        if [ "$mode" = chunk ]; then CHUNK="--chunk-size 8"; else CHUNK=""; fi
        for rep in a b; do
            echo "==> $RPR chaos --code 6,3 --fail d1 --seed $seed $CHUNK (run $rep)"
            "$RPR" chaos --code 6,3 --fail d1 --seed "$seed" $CHUNK --json \
                --out "$CHAOS_DIR/storm_s${seed}_${mode}_${rep}.jsonl" \
                > "$CHAOS_DIR/storm_s${seed}_${mode}_${rep}.json" 2>/dev/null
        done
        for rep in a b; do
            if ! grep -q '"replans":2' "$CHAOS_DIR/storm_s${seed}_${mode}_${rep}.json"; then
                echo "chaos soak FAILED: seed $seed ($mode) storm did not replan twice" >&2
                exit 1
            fi
        done
        if ! cmp -s "$CHAOS_DIR/storm_s${seed}_${mode}_a.jsonl" \
                    "$CHAOS_DIR/storm_s${seed}_${mode}_b.jsonl"; then
            echo "chaos soak FAILED: seed $seed ($mode) storm traces differ" >&2
            exit 1
        fi
        if ! cmp -s "$CHAOS_DIR/storm_s${seed}_${mode}_a.json" \
                    "$CHAOS_DIR/storm_s${seed}_${mode}_b.json"; then
            echo "chaos soak FAILED: seed $seed ($mode) storm summaries differ" >&2
            exit 1
        fi
        echo "==> supervised storm for seed $seed ($mode) completed deterministically"
    done
done

# Step 9: the proof plane must convict a Byzantine helper. A seeded lie
# storm — wrong bytes under a valid FNV checksum — must complete in
# Mandatory mode with the liar accused and quarantined on proof evidence
# (never a transport retry), the trace and ledger must be byte-identical
# across two same-seed runs, and the offline auditor must independently
# verify the ledger against the trace and localize the dishonest hop.
for seed in 21 77; do
    for rep in a b; do
        echo "==> $RPR chaos --code 6,3 --fail d1 --storm lie --proof mandatory --seed $seed (run $rep)"
        "$RPR" chaos --code 6,3 --fail d1 --storm lie --proof mandatory \
            --seed "$seed" --json \
            --out "$CHAOS_DIR/lie_s${seed}_${rep}.jsonl" \
            --ledger-out "$CHAOS_DIR/lie_s${seed}_${rep}.ledger.jsonl" \
            > "$CHAOS_DIR/lie_s${seed}_${rep}.json" 2>/dev/null
    done
    for rep in a b; do
        if ! grep -q '"accusations":1' "$CHAOS_DIR/lie_s${seed}_${rep}.json"; then
            echo "byzantine soak FAILED: seed $seed did not convict the liar" >&2
            exit 1
        fi
        if ! grep -q '"retries":0' "$CHAOS_DIR/lie_s${seed}_${rep}.json"; then
            echo "byzantine soak FAILED: seed $seed lie leaked into transport retry" >&2
            exit 1
        fi
        if ! grep -q '"type":"helper_accused"' "$CHAOS_DIR/lie_s${seed}_${rep}.jsonl"; then
            echo "byzantine soak FAILED: seed $seed trace has no accusation event" >&2
            exit 1
        fi
    done
    if ! cmp -s "$CHAOS_DIR/lie_s${seed}_a.jsonl" "$CHAOS_DIR/lie_s${seed}_b.jsonl"; then
        echo "byzantine soak FAILED: seed $seed traces differ" >&2
        exit 1
    fi
    if ! cmp -s "$CHAOS_DIR/lie_s${seed}_a.ledger.jsonl" \
                "$CHAOS_DIR/lie_s${seed}_b.ledger.jsonl"; then
        echo "byzantine soak FAILED: seed $seed proof ledgers differ" >&2
        exit 1
    fi
    echo "==> $RPR audit --trace lie_s${seed}_a.jsonl --ledger lie_s${seed}_a.ledger.jsonl"
    if ! "$RPR" audit --trace "$CHAOS_DIR/lie_s${seed}_a.jsonl" \
            --ledger "$CHAOS_DIR/lie_s${seed}_a.ledger.jsonl" --json \
            > "$CHAOS_DIR/lie_s${seed}_audit.json" 2>/dev/null; then
        echo "byzantine soak FAILED: seed $seed offline audit rejected the run" >&2
        exit 1
    fi
    if ! grep -q '"verdict":"dishonesty-localized"' "$CHAOS_DIR/lie_s${seed}_audit.json"; then
        echo "byzantine soak FAILED: seed $seed audit did not localize the liar" >&2
        exit 1
    fi
    echo "==> byzantine storm for seed $seed: convicted, deterministic, audited offline"
done

# Step 10: the fleet scheduler must drain a bounded 10k-stripe backlog to
# completion and do so bit-deterministically — two same-seed runs of
# `rpr fleet` must print byte-identical JSON summaries.
for seed in 17 4242; do
    for rep in a b; do
        echo "==> $RPR fleet --code 6,3 --stripes 10000 --seed $seed --json (run $rep)"
        "$RPR" fleet --code 6,3 --stripes 10000 --seed "$seed" --json \
            > "$CHAOS_DIR/fleet_s${seed}_${rep}.json" 2>/dev/null
    done
    for rep in a b; do
        if ! grep -q '"repaired":10000' "$CHAOS_DIR/fleet_s${seed}_${rep}.json"; then
            echo "fleet soak FAILED: seed $seed did not repair all 10000 stripes" >&2
            exit 1
        fi
        if ! grep -q '"mismatched_releases":0' "$CHAOS_DIR/fleet_s${seed}_${rep}.json"; then
            echo "fleet soak FAILED: seed $seed arbiter saw mismatched releases" >&2
            exit 1
        fi
    done
    if ! cmp -s "$CHAOS_DIR/fleet_s${seed}_a.json" \
                "$CHAOS_DIR/fleet_s${seed}_b.json"; then
        echo "fleet soak FAILED: seed $seed summaries differ" >&2
        exit 1
    fi
    echo "==> fleet drain for seed $seed completed deterministically"
done

# Step 11: foreground traffic under repair must be deterministic and the
# QoS class must actually protect the client tail — per seed, each mode's
# two same-seed summaries must be byte-identical, and the QoS p99 must be
# strictly below the unthrottled p99 at the (6,3) paper config.
extract_p99() {
    sed -n 's/.*"latency_p99":\([0-9.e+-]*\).*/\1/p' "$1"
}
for seed in 17 4242; do
    for mode in unthrottled qos; do
        for rep in a b; do
            echo "==> $RPR load --code 6,3 --mode $mode --seed $seed --json (run $rep)"
            "$RPR" load --code 6,3 --mode "$mode" --seed "$seed" --json \
                > "$CHAOS_DIR/load_s${seed}_${mode}_${rep}.json" 2>/dev/null
        done
        if ! cmp -s "$CHAOS_DIR/load_s${seed}_${mode}_a.json" \
                    "$CHAOS_DIR/load_s${seed}_${mode}_b.json"; then
            echo "foreground soak FAILED: seed $seed ($mode) summaries differ" >&2
            exit 1
        fi
    done
    P99_UNTH="$(extract_p99 "$CHAOS_DIR/load_s${seed}_unthrottled_a.json")"
    P99_QOS="$(extract_p99 "$CHAOS_DIR/load_s${seed}_qos_a.json")"
    if [ -z "$P99_UNTH" ] || [ -z "$P99_QOS" ]; then
        echo "foreground soak FAILED: could not parse p99 latencies" >&2
        exit 1
    fi
    if ! awk "BEGIN { exit !($P99_QOS < $P99_UNTH) }"; then
        echo "foreground soak FAILED: seed $seed QoS p99 $P99_QOS not below unthrottled $P99_UNTH" >&2
        exit 1
    fi
    echo "==> foreground soak for seed $seed: QoS p99 $P99_QOS < unthrottled $P99_UNTH"
done

# Step 12: a drain must survive a crash of the repair process itself.
# Journal a churned 10k-stripe drain with stretched journal writes, kill
# it -9 mid-drain, resume from the torn journal, and demand the resumed
# summary be byte-identical to an uninterrupted same-seed run's — with
# zero permanent losses at a churn rate the drain outpaces.
CHURN_FLAGS="--code 6,3 --stripes 10000 --seed 17 --churn-rate 0.002"
echo "==> $RPR fleet $CHURN_FLAGS --journal (killed -9 mid-drain)"
rm -f "$CHAOS_DIR/churn_journal.jsonl"
RPR_JOURNAL_STALL_US=200 "$RPR" fleet $CHURN_FLAGS \
    --journal "$CHAOS_DIR/churn_journal.jsonl" --json \
    > "$CHAOS_DIR/churn_killed.json" 2>/dev/null &
CHURN_PID=$!
sleep 3
kill -9 "$CHURN_PID" 2>/dev/null || {
    echo "churn soak FAILED: drain finished before the kill (stall too short)" >&2
    exit 1
}
wait "$CHURN_PID" 2>/dev/null || true
if [ ! -s "$CHAOS_DIR/churn_journal.jsonl" ]; then
    echo "churn soak FAILED: killed drain left no journal" >&2
    exit 1
fi
echo "==> $RPR fleet $CHURN_FLAGS (uninterrupted reference run)"
"$RPR" fleet $CHURN_FLAGS --json > "$CHAOS_DIR/churn_clean.json" 2>/dev/null
echo "==> $RPR fleet $CHURN_FLAGS --resume churn_journal.jsonl"
"$RPR" fleet $CHURN_FLAGS --resume "$CHAOS_DIR/churn_journal.jsonl" --json \
    > "$CHAOS_DIR/churn_resumed.json" 2>/dev/null
grep -o '"summary":{[^}]*}' "$CHAOS_DIR/churn_clean.json" > "$CHAOS_DIR/churn_clean.summary"
grep -o '"summary":{[^}]*}' "$CHAOS_DIR/churn_resumed.json" > "$CHAOS_DIR/churn_resumed.summary"
if [ ! -s "$CHAOS_DIR/churn_clean.summary" ] || [ ! -s "$CHAOS_DIR/churn_resumed.summary" ]; then
    echo "churn soak FAILED: could not extract summaries" >&2
    exit 1
fi
if ! cmp -s "$CHAOS_DIR/churn_clean.summary" "$CHAOS_DIR/churn_resumed.summary"; then
    echo "churn soak FAILED: resumed summary differs from the uninterrupted run" >&2
    exit 1
fi
if ! grep -q '"repaired":10000' "$CHAOS_DIR/churn_clean.summary"; then
    echo "churn soak FAILED: drain did not repair all 10000 stripes" >&2
    exit 1
fi
if ! grep -q '"lost":0' "$CHAOS_DIR/churn_clean.summary"; then
    echo "churn soak FAILED: outpaceable churn rate still lost stripes" >&2
    exit 1
fi
echo "==> churn soak: killed -9 mid-drain, resumed bit-identically, 0 lost"

# Step 13: performance must not silently rot. Take a quick snapshot and
# gate it against the newest committed baseline; a transient miss (quick
# windows on a shared box are noisy) gets two retries before it counts.
if [ "${RPR_BENCH_GATE:-on}" = "off" ]; then
    echo "==> bench gate skipped (RPR_BENCH_GATE=off)"
else
    BASELINE="$(ls BENCH_*.json 2>/dev/null | sort | tail -n 1)"
    if [ -z "$BASELINE" ]; then
        echo "==> bench gate skipped (no committed BENCH_*.json baseline)"
    else
        GATE_OK=0
        for attempt in 1 2 3; do
            echo "==> scripts/bench_snapshot.sh --quick (gate attempt $attempt)"
            scripts/bench_snapshot.sh --quick $OFFLINE \
                --out target/bench/BENCH_current.json >/dev/null
            if scripts/bench_gate.sh "$BASELINE" target/bench/BENCH_current.json; then
                GATE_OK=1
                break
            fi
        done
        if [ "$GATE_OK" != 1 ]; then
            echo "bench gate FAILED on all attempts (baseline $BASELINE)" >&2
            exit 1
        fi
    fi
fi

echo "==> verify OK"
