#!/usr/bin/env sh
# Tier-1 verification recipe (see ROADMAP.md): build, tests, lints, docs.
#
# Usage: scripts/verify.sh [--offline]
#   --offline   forward --offline to every cargo invocation (default when
#               CARGO_NET_OFFLINE=true); required in registry-less builds.
#
# Steps:
#   1. cargo build --release --workspace
#   2. cargo test -q --workspace
#   3. cargo clippy --workspace --all-targets -- -D warnings
#   4. cargo doc --no-deps --workspace   (rustdoc warnings are errors)
#   5. chaos determinism: `rpr inject` twice per fixed seed must emit
#      byte-identical JSONL traces (docs/ROBUSTNESS.md)
#
# Note: `cargo doc` prints a filename-collision warning for the `rpr` CLI
# binary vs the `rpr` facade lib (cargo#6313); it is cargo's, not
# rustdoc's, and does not fail the run.

set -eu

OFFLINE=""
for arg in "$@"; do
    case "$arg" in
        --offline) OFFLINE="--offline" ;;
        *) echo "unknown argument: $arg" >&2; exit 2 ;;
    esac
done
if [ "${CARGO_NET_OFFLINE:-}" = "true" ]; then
    OFFLINE="--offline"
fi

run() {
    echo "==> $*"
    "$@"
}

run cargo build $OFFLINE --release --workspace
run cargo test $OFFLINE -q --workspace
run cargo clippy $OFFLINE --workspace --all-targets -- -D warnings
echo "==> RUSTDOCFLAGS='-D warnings' cargo doc $OFFLINE --no-deps --workspace"
RUSTDOCFLAGS="-D warnings" cargo doc $OFFLINE --no-deps --workspace

# Step 5: the degraded (fault-injected) repair trace must be
# bit-deterministic under a fixed seed — run the crash scenario twice per
# seed and byte-compare the JSONL traces.
CHAOS_DIR="target/chaos"
mkdir -p "$CHAOS_DIR"
RPR="target/release/rpr"
for seed in 17 4242; do
    for rep in a b; do
        echo "==> $RPR inject --code 6,3 --fail d1 --fault crash --seed $seed (run $rep)"
        "$RPR" inject --code 6,3 --fail d1 --fault crash --seed "$seed" \
            --out "$CHAOS_DIR/crash_s${seed}_${rep}.jsonl" 2>/dev/null
    done
    if ! cmp -s "$CHAOS_DIR/crash_s${seed}_a.jsonl" "$CHAOS_DIR/crash_s${seed}_b.jsonl"; then
        echo "chaos determinism FAILED: seed $seed traces differ" >&2
        exit 1
    fi
    echo "==> chaos trace for seed $seed is byte-identical across runs"
done

echo "==> verify OK"
