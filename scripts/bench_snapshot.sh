#!/usr/bin/env sh
# Record a performance snapshot: run the Criterion suites with JSONL
# emission enabled and wrap the results into one schema-stable
# `BENCH_<date>.json` document (schema id `rpr-bench-snapshot/1`).
#
# Usage: scripts/bench_snapshot.sh [--quick] [--out FILE] [--offline]
#   --quick      60 ms measurement windows (RPR_BENCH_MS=60) instead of the
#                default 300 ms — noisier but fast enough for verify.sh.
#   --out FILE   write the snapshot there (default: BENCH_<utc-date>.json
#                in the repo root — the name the verify gate looks for).
#   --offline    forward --offline to cargo (implied by CARGO_NET_OFFLINE).
#
# The snapshot layout (documented in docs/PERFORMANCE.md):
#
#   {
#     "schema": "rpr-bench-snapshot/1",
#     "created": "YYYY-MM-DD",            // UTC date of the run
#     "quick": false,                     // true when --quick was used
#     "measure_ms": 300,                  // Criterion window per benchmark
#     "host": { "arch", "os", "cpus", "kernel_tier" },
#     "results": [ { "name", "mean_ns", "iters", "bytes",
#                    "bytes_per_sec", "elems", "elems_per_sec" }, ... ]
#   }
#
# Each `results` entry is one Criterion benchmark, verbatim from the
# RPR_BENCH_JSON line the vendored harness emits; throughput fields are
# null for benchmarks with no declared throughput. `host.kernel_tier` is
# the dispatched GF(2^8) tier (`rpr kernels --json`), so snapshots taken
# on different machines — or with RPR_FORCE_SCALAR set — are never
# compared against each other by the verify gate.

set -eu

cd "$(dirname "$0")/.."

QUICK=0
OUT=""
OFFLINE=""
while [ $# -gt 0 ]; do
    case "$1" in
        --quick) QUICK=1 ;;
        --out) shift; OUT="$1" ;;
        --offline) OFFLINE="--offline" ;;
        *) echo "unknown argument: $1" >&2; exit 2 ;;
    esac
    shift
done
if [ "${CARGO_NET_OFFLINE:-}" = "true" ]; then
    OFFLINE="--offline"
fi

command -v jq >/dev/null 2>&1 || { echo "bench_snapshot.sh needs jq" >&2; exit 2; }

DATE="$(date -u +%F)"
[ -n "$OUT" ] || OUT="BENCH_${DATE}.json"
if [ "$QUICK" = 1 ]; then MS=60; else MS=300; fi

# Absolute: cargo runs bench binaries from the package directory, not here.
RAW="$(pwd)/target/bench/raw.jsonl"
mkdir -p target/bench
rm -f "$RAW"

# The CLI provides the host's kernel-tier fingerprint.
echo "==> cargo build $OFFLINE --release -p rpr-cli -p rpr-bench --benches"
cargo build $OFFLINE --release -p rpr-cli -p rpr-bench --benches
TIER="$(target/release/rpr kernels --json | jq -r .active)"

# Suites: the kernel microbenchmarks the gate reads, plus the codec,
# planner, streaming-executor, fleet-scheduler (admission throughput and
# the churned drain), and foreground-load suites that track end-to-end
# cost.
# (`figures` reproduces the paper's plots and is left to manual runs.)
for suite in gf_kernels codec planner streaming fleet load; do
    echo "==> cargo bench -p rpr-bench --bench $suite (window ${MS} ms)"
    RPR_BENCH_MS="$MS" RPR_BENCH_JSON="$RAW" \
        cargo bench $OFFLINE -p rpr-bench --bench "$suite" >/dev/null
done

jq -s \
    --arg created "$DATE" \
    --arg quick "$QUICK" \
    --arg ms "$MS" \
    --arg arch "$(uname -m)" \
    --arg os "$(uname -s | tr '[:upper:]' '[:lower:]')" \
    --arg cpus "$(nproc)" \
    --arg tier "$TIER" \
    '{
        schema: "rpr-bench-snapshot/1",
        created: $created,
        quick: ($quick == "1"),
        measure_ms: ($ms | tonumber),
        host: {
            arch: $arch,
            os: $os,
            cpus: ($cpus | tonumber),
            kernel_tier: $tier
        },
        results: .
    }' "$RAW" > "$OUT"

N="$(jq '.results | length' "$OUT")"
echo "==> wrote $OUT ($N results, tier $TIER, ${MS} ms windows)"
