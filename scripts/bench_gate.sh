#!/usr/bin/env sh
# Compare a fresh bench snapshot against the committed baseline and fail
# on a performance regression. Used by verify.sh (step 9); see
# docs/PERFORMANCE.md for the policy rationale.
#
# Usage: scripts/bench_gate.sh BASELINE.json CURRENT.json
#
# Exit codes: 0 pass (or deliberately skipped), 1 regression, 2 usage.
#
# Checks:
#   1. Host fingerprint: when arch or kernel_tier differ between the two
#      snapshots (another machine, or RPR_FORCE_SCALAR set), the
#      throughput comparison is meaningless — skip with a note.
#   2. SIMD floor: the dispatched `gf/mul_acc_slice/262144` rate must be
#      at least 4x the pinned scalar tier's rate whenever the host
#      dispatches a SIMD tier — the kernel-dispatch acceptance bar.
#   3. Regression: every `gf/mul_acc_tier/*` entry must reach at least
#      85% of the baseline's bytes/sec. Only the pinned-tier kernel
#      entries are gated: they are the stablest numbers a snapshot holds
#      (run-to-run jitter well under the 15% tolerance), whereas the
#      dispatched and end-to-end suites can swing more than the
#      tolerance on a shared box in quick mode. Those are still
#      *recorded* in every snapshot for trajectory, just not gated.

set -eu

[ $# -eq 2 ] || { echo "usage: bench_gate.sh BASELINE CURRENT" >&2; exit 2; }
BASE="$1"
CUR="$2"

if ! jq -n -e --slurpfile b "$BASE" --slurpfile c "$CUR" \
    '$b[0].host.arch == $c[0].host.arch
     and $b[0].host.kernel_tier == $c[0].host.kernel_tier' >/dev/null; then
    echo "==> bench gate skipped: host fingerprint differs" \
         "($(jq -r '.host.arch + "/" + .host.kernel_tier' "$BASE") baseline" \
         "vs $(jq -r '.host.arch + "/" + .host.kernel_tier' "$CUR") current)"
    exit 0
fi

# Within-run SIMD floor: dispatched >= 4x pinned scalar at 256 KiB.
if [ "$(jq -r '.host.kernel_tier' "$CUR")" != scalar ]; then
    if ! jq -e '
        (.results[] | select(.name == "gf/mul_acc_tier/scalar/262144")
            | .bytes_per_sec) as $s
        | (.results[] | select(.name == "gf/mul_acc_slice/262144")
            | .bytes_per_sec) as $d
        | $d >= 4 * $s' "$CUR" >/dev/null; then
        echo "bench gate FAILED: dispatched mul_acc_slice is not >= 4x the" \
             "scalar tier at 256 KiB (see gf/mul_acc_* in $CUR)" >&2
        exit 1
    fi
fi

# Regression sweep over the pinned-tier kernel entries.
REGRESSED="$(jq -n -r --slurpfile b "$BASE" --slurpfile c "$CUR" '
    ($c[0].results | map(select(.bytes_per_sec != null)
        | {key: .name, value: .bytes_per_sec}) | from_entries) as $cur
    | $b[0].results[]
    | select(.name | startswith("gf/mul_acc_tier/"))
    | select(.bytes_per_sec != null)
    | select($cur[.name] != null)
    | select($cur[.name] < 0.85 * .bytes_per_sec)
    | "\(.name): \($cur[.name] / 1e9 * 100 | round / 100) GB/s"
      + " < 85% of baseline \(.bytes_per_sec / 1e9 * 100 | round / 100) GB/s"')"
if [ -n "$REGRESSED" ]; then
    echo "bench gate FAILED: kernel throughput regressed vs $BASE:" >&2
    echo "$REGRESSED" >&2
    exit 1
fi

echo "==> bench gate passed vs $BASE"
