//! Repair-supervisor acceptance suite (sim side).
//!
//! The headline guarantees (see `docs/ROBUSTNESS.md`):
//! * a seeded 3-fault storm — helper crash, crash of its replacement,
//!   then a transient timeout — completes at (6,3) via multi-crash
//!   replanning with pooled partial reuse;
//! * the identical seed replays bit-deterministically (traces diff
//!   byte-for-byte clean);
//! * a hedged repair with one seeded straggler beats the unhedged
//!   makespan of the same seed (regression pin);
//! * the replan invariants hold across seeded chaos storms: reused
//!   partials never exceed the pool banked by prior generations, and
//!   replacement plans still satisfy the decode equation.

use rpr::codec::{BlockId, CodeParams, StripeCodec};
use rpr::core::{
    plan_with_pool, supervise_injected, CostModel, RepairContext, RepairPlanner, RprPlanner,
    SuperviseConfig, Tier,
};
use rpr::faults::{ChaosProcess, CrashSite, FaultStorm, HealthTracker, RetryPolicy, StormFault};
use rpr::obs::{export, TraceRecorder};
use rpr::topology::{cluster_for, BandwidthProfile, Placement};
use std::collections::HashMap;

struct World {
    codec: StripeCodec,
    topo: rpr::topology::Topology,
    placement: Placement,
    profile: BandwidthProfile,
    block: u64,
}

impl World {
    fn new(n: usize, k: usize, block: u64) -> World {
        let params = CodeParams::new(n, k);
        let topo = cluster_for(params, 1, 1);
        let placement = Placement::rpr_preplaced(params, &topo);
        let profile = BandwidthProfile::uniform(topo.rack_count(), 80.0e6, 8.0e6);
        World {
            codec: StripeCodec::new(params),
            topo,
            placement,
            profile,
            block,
        }
    }

    fn ctx(&self, failed: Vec<BlockId>) -> RepairContext<'_> {
        RepairContext::new(
            &self.codec,
            &self.topo,
            &self.placement,
            failed,
            self.block,
            &self.profile,
            CostModel::free(),
        )
    }
}

fn fast_policy() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 4,
        backoff: 0.01,
        multiplier: 2.0,
        ..RetryPolicy::default()
    }
}

fn three_fault_storm(seed: u64) -> FaultStorm {
    FaultStorm::new(seed)
        .with_generation(vec![StormFault::Crash(CrashSite::SeedPick)])
        .with_generation(vec![StormFault::Crash(CrashSite::NewHelper)])
        .with_generation(vec![StormFault::Timeout])
}

fn run_storm(
    world: &World,
    storm: &FaultStorm,
    cfg: &SuperviseConfig,
) -> (rpr::core::SuperviseOutcome, String) {
    let ctx = world.ctx(vec![BlockId(1)]);
    let rec = TraceRecorder::with_capacity(16384);
    let mut tracker = HealthTracker::with_defaults();
    let outcome = supervise_injected(&ctx, storm, cfg, &mut tracker, &rec)
        .expect("supervised repair completes");
    let trace = export::to_json_lines(&rec.take_events());
    (outcome, trace)
}

#[test]
fn three_fault_storm_completes_at_6_3() {
    let world = World::new(6, 3, 1 << 20);
    let storm = three_fault_storm(77);
    let cfg = SuperviseConfig {
        policy: fast_policy(),
        ..SuperviseConfig::default()
    };
    let (outcome, _) = run_storm(&world, &storm, &cfg);

    assert_eq!(outcome.replans, 2, "two crashes, two replans");
    assert_eq!(outcome.generations.len(), 3);
    assert!(outcome.generations[0].crashed.is_some());
    assert!(outcome.generations[1].crashed.is_some());
    assert!(outcome.generations[2].crashed.is_none());
    assert!(outcome.retries >= 1, "the timeout fired");
    assert!(
        outcome.repair_time > outcome.clean_time,
        "faults cost time: {} vs {}",
        outcome.repair_time,
        outcome.clean_time
    );
    assert_eq!(outcome.final_tier, Tier::Full);
    // The second crash hit the replacement helper: the fault resolved
    // to a node that was not a cross sender of generation 0's plan.
    assert!(outcome
        .fault_sites
        .iter()
        .any(|s| s.starts_with("replacement-crash")));
}

#[test]
fn identical_seed_replays_bit_deterministically() {
    let world = World::new(6, 3, 1 << 20);
    let cfg = SuperviseConfig {
        policy: fast_policy(),
        hedge: Some(2.0),
        deadline: Some(500.0),
        ..SuperviseConfig::default()
    };
    for chunked in [false, true] {
        let storm = three_fault_storm(4242);
        let run = |storm: &FaultStorm| {
            let mut ctx = world.ctx(vec![BlockId(1)]);
            if chunked {
                ctx = ctx.with_chunk_size(1 << 18);
            }
            let rec = TraceRecorder::with_capacity(16384);
            let mut tracker = HealthTracker::with_defaults();
            let outcome =
                supervise_injected(&ctx, storm, &cfg, &mut tracker, &rec).expect("completes");
            (outcome.repair_time, export::to_json_lines(&rec.take_events()))
        };
        let (t1, trace1) = run(&storm);
        let (t2, trace2) = run(&storm);
        assert_eq!(t1.to_bits(), t2.to_bits(), "chunked={chunked}");
        assert_eq!(trace1, trace2, "trace replay must be byte-identical");
    }
}

#[test]
fn hedged_repair_beats_unhedged_with_seeded_straggler() {
    let world = World::new(6, 3, 8 << 20);
    // One seeded straggler: a helper's links run at 10% for the whole
    // repair. No crashes — hedging only arms in crash-free generations.
    let storm = FaultStorm::new(3).with_generation(vec![StormFault::Slow { factor: 0.1 }]);
    let base = SuperviseConfig {
        policy: fast_policy(),
        ..SuperviseConfig::default()
    };
    let hedged_cfg = SuperviseConfig {
        hedge: Some(2.0),
        ..base.clone()
    };
    let (unhedged, _) = run_storm(&world, &storm, &base);
    let (hedged, _) = run_storm(&world, &storm, &hedged_cfg);

    assert_eq!(unhedged.hedges, 0);
    assert!(hedged.hedges >= 1, "straggler must trigger a hedge");
    assert!(hedged.hedge_wins >= 1, "the alternate helper must win");
    assert!(
        hedged.repair_time < unhedged.repair_time,
        "hedged {} must beat unhedged {}",
        hedged.repair_time,
        unhedged.repair_time
    );
    // Regression pin: both makespans are deterministic for this seed.
    let (hedged2, _) = run_storm(&world, &storm, &hedged_cfg);
    assert_eq!(hedged.repair_time.to_bits(), hedged2.repair_time.to_bits());
}

#[test]
fn adaptive_hedge_floors_at_fixed_and_widens_on_slow_fleets() {
    let world = World::new(6, 3, 8 << 20);
    // A mild straggler: ~3.3x its wave's median — past a fixed 2x
    // threshold, but within what a broadly slow fleet would make normal.
    let storm = FaultStorm::new(3).with_generation(vec![StormFault::Slow { factor: 0.3 }]);
    let fixed_cfg = SuperviseConfig {
        policy: fast_policy(),
        hedge: Some(2.0),
        ..SuperviseConfig::default()
    };
    let adaptive_cfg = SuperviseConfig {
        adaptive_hedge: true,
        ..fixed_cfg.clone()
    };

    // Healthy fleet (no tracked history): the adaptive threshold floors
    // at the fixed multiple, so the run is bit-identical to fixed mode.
    let (fixed, fixed_trace) = run_storm(&world, &storm, &fixed_cfg);
    let (adaptive, adaptive_trace) = run_storm(&world, &storm, &adaptive_cfg);
    assert!(fixed.hedges >= 1, "the straggler must trip the fixed threshold");
    assert_eq!(fixed.hedges, adaptive.hedges);
    assert_eq!(
        fixed.repair_time.to_bits(),
        adaptive.repair_time.to_bits(),
        "healthy-fleet adaptive mode must be bit-identical to fixed"
    );
    assert_eq!(fixed_trace, adaptive_trace);

    // Broadly slow fleet: every tracked helper runs ~2x late, so the
    // observed p90 slowdown lifts the threshold to ~4x and the merely
    // 3.3x straggler is no longer hedged against.
    let slow_fleet = || {
        let mut tracker = HealthTracker::with_defaults();
        for node in 0..20 {
            for _ in 0..6 {
                tracker.record_success(node, 2.0, 1.0);
            }
        }
        tracker
    };
    let ctx = world.ctx(vec![BlockId(1)]);
    let rec = TraceRecorder::with_capacity(16384);
    let outcome = supervise_injected(&ctx, &storm, &adaptive_cfg, &mut slow_fleet(), &rec)
        .expect("completes");
    assert_eq!(
        outcome.hedges, 0,
        "a typical helper on a slow fleet must not be hedged against"
    );
}

#[test]
fn replan_invariants_hold_across_seeded_chaos_storms() {
    let world = World::new(6, 3, 1 << 20);
    let cfg = SuperviseConfig {
        policy: fast_policy(),
        ..SuperviseConfig::default()
    };
    let mut completed_runs = 0usize;
    for seed in 0..24u64 {
        let storm = ChaosProcess::new(seed).storm();
        let ctx = world.ctx(vec![BlockId(1)]);
        let rec = TraceRecorder::with_capacity(16384);
        let mut tracker = HealthTracker::with_defaults();
        let Ok(outcome) = supervise_injected(&ctx, &storm, &cfg, &mut tracker, &rec) else {
            // Some storms legitimately exceed the retry budget or k.
            continue;
        };
        completed_runs += 1;
        for (g, gen) in outcome.generations.iter().enumerate() {
            assert!(
                gen.reused_ops <= gen.pool_before,
                "seed {seed} gen {g}: reused {} partials but only {} were banked",
                gen.reused_ops,
                gen.pool_before
            );
            assert!(
                gen.completed_ops <= gen.executed_ops,
                "seed {seed} gen {g}: completed more ops than it executed"
            );
        }
        assert_eq!(outcome.generations[0].pool_before, 0);
        assert_eq!(
            outcome.replans,
            outcome.generations.len() - 1,
            "seed {seed}: every generation after the first is a replan"
        );
    }
    assert!(
        completed_runs >= 16,
        "most chaos storms must complete ({completed_runs}/24 did)"
    );
}

#[test]
fn pool_reuse_preserves_the_decode_equation() {
    let world = World::new(6, 3, 1 << 20);
    let ctx = world.ctx(vec![BlockId(1)]);
    let plan = RprPlanner::new().plan(&ctx);
    plan.validate(&world.codec, &world.topo, &world.placement)
        .expect("base plan valid");

    // Bank every op of the original plan, then replan around a crashed
    // helper with the pool available.
    let vecs = plan.symbolic_vectors();
    let crashed = world.placement.node_of(BlockId(3));
    let mut pool: HashMap<(usize, Vec<u8>), ()> = HashMap::new();
    for (i, op) in plan.ops.iter().enumerate() {
        let loc = op.output_location();
        if loc != crashed {
            pool.insert((loc.0, vecs[i].clone()), ());
        }
    }
    let mut ctx2 = world.ctx(vec![BlockId(1), BlockId(3)]);
    ctx2.recovery_node_override = Some(plan.recovery);
    ctx2.recovery_override = Some(world.topo.rack_of(plan.recovery));
    let rep = plan_with_pool(&ctx2, &pool, Tier::Full).expect("replan builds");

    // The replacement plan still solves the decode equation…
    rep.plan
        .validate(&world.codec, &world.topo, &world.placement)
        .expect("replacement plan valid");
    // …and every reused partial is byte-identical by construction: same
    // node, same symbolic coefficient vector as the new plan demands.
    let vecs2 = rep.plan.symbolic_vectors();
    let mut reused = 0usize;
    for (i, key) in rep.reused.iter().enumerate() {
        let Some((node, vec)) = key else { continue };
        reused += 1;
        assert_eq!(*node, rep.plan.ops[i].output_location().0);
        assert_eq!(*vec, vecs2[i]);
        assert!(
            pool.contains_key(&(*node, vec.clone())),
            "reused key must come from the pool"
        );
        assert!(!rep.lowered[i], "reused ops never re-execute");
    }
    assert!(reused > 0, "a fully-banked pool must be reused");
    assert!(reused <= pool.len());
}
