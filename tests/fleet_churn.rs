//! Properties of the fleet drain under live churn, checked end-to-end
//! through the `rpr` facade:
//!
//! * **conservation** — every enqueued stripe terminates exactly once,
//!   as repaired or as a permanent loss, across seeds and churn rates;
//! * **strict escalation ordering** — replaying the trace, no stripe is
//!   ever admitted while a strictly higher-level stripe sits queued
//!   (escalations reorder the queue, they never inverts it);
//! * **no starvation** — sustained churn cannot park a stripe forever:
//!   the repaired + lost id sets partition the full backlog;
//! * **zero-churn neutrality** — at `churn_rate = 0` the escalation
//!   policy flag is unobservable and the churn counters stay zero;
//! * **crash restart** — resuming from a journal truncated mid-write
//!   reproduces the uninterrupted run's summary and records bit for
//!   bit, while skipping the already-costed simulations.

use std::cell::RefCell;
use std::collections::HashMap;

use rpr::codec::CodeParams;
use rpr::obs::{Event, NoopRecorder, TraceRecorder};
use rpr::sched::{
    run_fleet_with, run_synthetic_fleet, FleetIo, FleetJournal, FleetSpec, JournalReplay,
};

/// A small contended fleet that a churn stream keeps hitting: few racks,
/// so drains are long enough for arrivals to land on live stripes.
fn churned_spec(seed: u64, churn_rate: f64) -> FleetSpec {
    FleetSpec {
        params: CodeParams::new(4, 2),
        racks: 3,
        nodes_per_rack: 4,
        stripes: 300,
        block_bytes: 16 << 20,
        seed,
        level_weights: vec![0.7, 0.3],
        churn_rate,
        ..FleetSpec::default()
    }
}

#[test]
fn repaired_plus_lost_equals_enqueued_across_seeds_and_rates() {
    for seed in [3u64, 17, 99] {
        for rate in [0.01, 0.05, 0.2] {
            for escalate in [true, false] {
                let mut spec = churned_spec(seed, rate);
                spec.escalate = escalate;
                let out = run_synthetic_fleet(&spec, &NoopRecorder);
                let s = &out.summary;
                assert_eq!(
                    s.repaired + s.lost,
                    s.stripes,
                    "seed {seed} rate {rate} escalate {escalate}: every stripe terminates"
                );
                assert_eq!(out.records.len(), s.repaired);
                assert_eq!(out.lost.len(), s.lost);
                assert!(
                    s.churn_failures >= s.escalations,
                    "every escalation is caused by a churn hit"
                );
            }
        }
    }
}

#[test]
fn escalation_never_inverts_level_priority() {
    // Replay the trace: maintain the queued set (stripe → current
    // level) through enqueues, queued escalations, losses, and
    // admissions. At every admission the admitted stripe must carry the
    // maximum level present in the queue — a churn hit re-prioritizes
    // its victim, it never lets a safer stripe jump a riskier one.
    let rec = TraceRecorder::with_capacity(1 << 20);
    let out = run_synthetic_fleet(&churned_spec(42, 0.1), &rec);
    assert!(
        out.summary.escalations > 0,
        "the spec must actually escalate to exercise ordering"
    );
    let mut queued: HashMap<u64, usize> = HashMap::new();
    let mut admissions = 0usize;
    let mut lost_in_flight = 0usize;
    for e in rec.take_events() {
        match e {
            Event::StripeEnqueued { stripe, level, .. } => {
                queued.insert(stripe, level);
            }
            Event::RiskEscalated {
                stripe,
                to,
                in_flight: false,
                ..
            } => {
                queued.insert(stripe, to);
            }
            Event::StripeLost { stripe, .. } => match queued.remove(&stripe) {
                Some(_) => {}
                None => lost_in_flight += 1,
            },
            Event::StripeAdmitted { stripe, level, t } => {
                queued.remove(&stripe);
                admissions += 1;
                if let Some((&rival, &l)) = queued.iter().max_by_key(|(_, &l)| l) {
                    assert!(
                        l <= level,
                        "t={t}: stripe {stripe} admitted at level {level} \
                         while stripe {rival} queued at level {l}"
                    );
                }
            }
            _ => {}
        }
    }
    // Admitted stripes either finish or are lost in flight (a fatal
    // churn hit past `k` kills even a running repair).
    assert_eq!(admissions, out.summary.repaired + lost_in_flight);
}

#[test]
fn sustained_churn_starves_no_stripe() {
    // Heavy sustained churn with escalation on: the repaired and lost
    // id sets must still partition 0..stripes — nothing is dropped,
    // nothing is repaired twice, nothing waits forever.
    let spec = churned_spec(7, 0.2);
    let out = run_synthetic_fleet(&spec, &NoopRecorder);
    let mut ids: Vec<u32> = out.records.iter().map(|r| r.stripe).collect();
    ids.extend(out.lost.iter().map(|l| l.stripe));
    ids.sort_unstable();
    assert_eq!(
        ids,
        (0..spec.stripes as u32).collect::<Vec<_>>(),
        "repaired ∪ lost must partition the backlog"
    );
}

#[test]
fn zero_churn_makes_the_escalation_flag_unobservable() {
    let run = |escalate: bool| {
        let mut spec = churned_spec(2024, 0.0);
        spec.escalate = escalate;
        run_synthetic_fleet(&spec, &NoopRecorder)
    };
    let (a, b) = (run(true), run(false));
    assert_eq!(a.summary.to_json(), b.summary.to_json());
    assert_eq!(a.records, b.records);
    assert_eq!(a.summary.churn_failures, 0);
    assert_eq!(a.summary.escalations, 0);
    assert_eq!(a.summary.lost, 0);
}

#[test]
fn resume_from_a_truncated_journal_is_bit_identical() {
    // A storm template forces one supervised sim per stripe, which is
    // exactly the work the journal's cost records let a resume skip.
    let mut spec = churned_spec(11, 0.05);
    spec.stripes = 120;
    spec.storm = vec![vec![]];

    let dir = std::env::temp_dir();
    let full = dir.join(format!("rpr-churn-journal-{}.jsonl", std::process::id()));
    let cut = dir.join(format!("rpr-churn-journal-cut-{}.jsonl", std::process::id()));

    let journal = RefCell::new(
        FleetJournal::create(&full, spec.seed, spec.stripes).expect("create journal"),
    );
    let clean = run_fleet_with(
        &spec,
        FleetIo {
            journal: Some(&journal),
            resume: None,
        },
        &NoopRecorder,
    );
    drop(journal);
    assert!(clean.summary.lost > 0, "churn must cost the fleet stripes");
    assert_eq!(clean.replayed, 0);

    // Simulate a crash mid-write: keep 60% of the journal bytes, ending
    // mid-line, and resume from the torn log.
    let bytes = std::fs::read(&full).expect("read journal");
    std::fs::write(&cut, &bytes[..bytes.len() * 6 / 10]).expect("write truncated copy");
    let replay = JournalReplay::load(&cut).expect("torn journal still parses");
    assert!(replay.truncated, "the cut must land mid-record");
    assert!(!replay.costs.is_empty(), "the cut keeps some cost records");
    assert!(
        replay.completed.len() < clean.records.len(),
        "a mid-drain crash must leave completions unlogged"
    );

    let resumed = run_fleet_with(
        &spec,
        FleetIo {
            journal: None,
            resume: Some(&replay),
        },
        &NoopRecorder,
    );
    assert!(
        resumed.replayed > 0,
        "resume must skip the already-costed sims"
    );
    assert_eq!(
        resumed.summary.to_json(),
        clean.summary.to_json(),
        "a resumed drain is bit-identical to the uninterrupted run"
    );
    assert_eq!(resumed.records, clean.records);
    assert_eq!(resumed.lost, clean.lost);

    let _ = std::fs::remove_file(&full);
    let _ = std::fs::remove_file(&cut);
}
