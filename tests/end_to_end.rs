//! End-to-end integration: for every paper code, placement policy, scheme,
//! and a sweep of failure scenarios — plan, validate, simulate, execute
//! with real bytes, and cross-check the two backends.

use rpr::codec::{BlockId, CodeParams, StripeCodec};
use rpr::core::{
    simulate, CarPlanner, CostModel, RepairContext, RepairPlanner, RprPlanner, TraditionalPlanner,
};
use rpr::exec::execute;
use rpr::topology::{cluster_for, BandwidthProfile, Placement, PlacementPolicy, Topology};

const PAPER_CODES: [(usize, usize); 6] = [(4, 2), (6, 2), (8, 2), (6, 3), (8, 4), (12, 4)];
const BLOCK: u64 = 32 * 1024; // small blocks: fast but real

struct World {
    codec: StripeCodec,
    topo: Topology,
    placement: Placement,
    profile: BandwidthProfile,
    stripe: Vec<Vec<u8>>,
}

fn world(n: usize, k: usize, policy: PlacementPolicy, seed: u64) -> World {
    let params = CodeParams::new(n, k);
    let codec = StripeCodec::new(params);
    let topo = cluster_for(params, 1, 1);
    let placement = Placement::by_policy(policy, params, &topo);
    // Fast links so executions finish in milliseconds.
    let profile = BandwidthProfile::uniform(topo.rack_count(), 400.0e6, 40.0e6);
    let mut s = seed | 1;
    let data: Vec<Vec<u8>> = (0..n)
        .map(|_| {
            (0..BLOCK)
                .map(|_| {
                    s = s
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    (s >> 33) as u8
                })
                .collect()
        })
        .collect();
    let refs: Vec<&[u8]> = data.iter().map(|b| b.as_slice()).collect();
    let stripe = codec.encode_stripe(&refs);
    World {
        codec,
        topo,
        placement,
        profile,
        stripe,
    }
}

fn check(w: &World, planner: &dyn RepairPlanner, failed: Vec<BlockId>) {
    let ctx = RepairContext::new(
        &w.codec,
        &w.topo,
        &w.placement,
        failed.clone(),
        BLOCK,
        &w.profile,
        CostModel::free(),
    );
    let plan = planner.plan(&ctx);
    plan.validate(&w.codec, &w.topo, &w.placement)
        .unwrap_or_else(|e| panic!("{} {failed:?}: {e}", planner.name()));

    let sim = simulate(&plan, &ctx);
    let report = execute(&plan, &ctx, &w.stripe);
    assert!(
        report.verified,
        "{} {failed:?}: byte mismatch on {:?}",
        planner.name(),
        report.mismatches
    );
    // Both backends account the identical plan, so traffic must agree
    // exactly.
    assert_eq!(
        sim.report.cross_rack_bytes,
        report.cross_bytes,
        "{} {failed:?}: backends disagree on cross traffic",
        planner.name()
    );
    assert_eq!(sim.report.inner_rack_bytes, report.inner_bytes);
    // Makespan sanity: simulated time is positive and finite.
    assert!(sim.repair_time.is_finite() && sim.repair_time > 0.0);
}

#[test]
fn every_code_scheme_and_single_failure_position_round_trips() {
    for (n, k) in PAPER_CODES {
        for policy in [PlacementPolicy::Compact, PlacementPolicy::RprPreplaced] {
            let w = world(n, k, policy, 42 + n as u64);
            for fail in 0..n + k {
                check(&w, &TraditionalPlanner::new(), vec![BlockId(fail)]);
                check(&w, &CarPlanner::new(), vec![BlockId(fail)]);
                check(&w, &RprPlanner::new(), vec![BlockId(fail)]);
            }
        }
    }
}

#[test]
fn multi_failure_scenarios_round_trip() {
    for (n, k, z) in [(6, 3, 2), (8, 4, 2), (8, 4, 3), (8, 4, 4), (12, 4, 2)] {
        let w = world(n, k, PlacementPolicy::RprPreplaced, 7);
        // A deterministic spread of failure sets: clustered, striped, tail.
        let sets: Vec<Vec<BlockId>> = vec![
            (0..z).map(BlockId).collect(),
            (0..z).map(|i| BlockId((i * (n / z)).min(n - 1))).collect(),
            (0..z).map(|i| BlockId(n - 1 - i)).collect(),
        ];
        for failed in sets {
            let mut f = failed.clone();
            f.sort_unstable();
            f.dedup();
            if f.len() != z {
                continue;
            }
            check(&w, &TraditionalPlanner::new(), f.clone());
            check(&w, &RprPlanner::new(), f);
        }
    }
}

#[test]
fn parity_failures_are_repairable_too() {
    // Losing parity blocks (including P0 itself) must work for all schemes.
    let w = world(6, 3, PlacementPolicy::RprPreplaced, 11);
    for fail in 6..9 {
        check(&w, &TraditionalPlanner::new(), vec![BlockId(fail)]);
        check(&w, &CarPlanner::new(), vec![BlockId(fail)]);
        check(&w, &RprPlanner::new(), vec![BlockId(fail)]);
    }
    // Mixed data+parity double failure.
    check(&w, &RprPlanner::new(), vec![BlockId(2), BlockId(6)]);
    check(&w, &TraditionalPlanner::new(), vec![BlockId(2), BlockId(6)]);
}

#[test]
fn flat_placement_works_as_well() {
    // One block per rack: RPR degenerates gracefully (no inner-rack
    // aggregation possible, pipeline still applies).
    let params = CodeParams::new(4, 2);
    let codec = StripeCodec::new(params);
    let topo = Topology::uniform(7, 2);
    let placement = Placement::flat(params, &topo);
    let profile = BandwidthProfile::uniform(topo.rack_count(), 400.0e6, 40.0e6);
    let data: Vec<Vec<u8>> = (0..4).map(|i| vec![i as u8 + 1; BLOCK as usize]).collect();
    let refs: Vec<&[u8]> = data.iter().map(|b| b.as_slice()).collect();
    let stripe = codec.encode_stripe(&refs);
    let w = World {
        codec,
        topo,
        placement,
        profile,
        stripe,
    };
    for fail in 0..6 {
        check(&w, &RprPlanner::new(), vec![BlockId(fail)]);
        check(&w, &TraditionalPlanner::new(), vec![BlockId(fail)]);
    }
}
