//! Dependency-free seeded property tests (SplitMix64 drives every random
//! choice, so failures reproduce exactly from the printed seed).
//!
//! Two families:
//! * pipeline-schedule invariants of [`cross_waves`] on random code
//!   geometries — a rack joins at most one cross transfer per wave, waves
//!   are dense, DAG order is respected, and the wave count meets the
//!   paper's `⌈log2(s+1)⌉` bound for single-failure RPR;
//! * executor byte-identity — on random geometries and stripe contents,
//!   the real-data executor reconstructs failed blocks byte-for-byte.

use rpr::codec::{BlockId, CodeParams, StripeCodec};
use rpr::core::{CostModel, Op, RepairContext, RepairPlanner, RprPlanner};
use rpr::exec::execute;
use rpr::faults::SplitMix64;
use rpr::topology::{cluster_for, BandwidthProfile, Placement};

const SEED: u64 = 0x5EED_CA5E;

/// A random paper-plausible geometry: `4 <= n <= 12`, `2 <= k <= 4`,
/// `z` failed data blocks with `1 <= z <= k`.
fn random_case(rng: &mut SplitMix64) -> (usize, usize, Vec<BlockId>) {
    let n = 4 + rng.pick(9); // 4..=12
    let k = 2 + rng.pick(3.min(n - 1)); // 2..=4, k <= n
    let z = 1 + rng.pick(k);
    let mut failed: Vec<BlockId> = Vec::new();
    while failed.len() < z {
        let b = BlockId(rng.pick(n));
        if !failed.contains(&b) {
            failed.push(b);
        }
    }
    (n, k, failed)
}

struct World {
    codec: StripeCodec,
    topo: rpr::topology::Topology,
    placement: Placement,
    profile: BandwidthProfile,
}

fn world(n: usize, k: usize) -> World {
    let params = CodeParams::new(n, k);
    let topo = cluster_for(params, 1, 1);
    let placement = Placement::rpr_preplaced(params, &topo);
    let profile = BandwidthProfile::uniform(topo.rack_count(), 80.0e6, 8.0e6);
    World {
        codec: StripeCodec::new(params),
        topo,
        placement,
        profile,
    }
}

fn ceil_log2(x: usize) -> usize {
    (usize::BITS - (x.max(1) - 1).leading_zeros()) as usize
}

#[test]
fn cross_waves_keep_racks_exclusive_on_random_cases() {
    let mut rng = SplitMix64::new(SEED);
    for case in 0..40 {
        let (n, k, failed) = random_case(&mut rng);
        let tag = format!("case {case}: ({n},{k}) failed {failed:?}");
        let w = world(n, k);
        let ctx = RepairContext::new(
            &w.codec,
            &w.topo,
            &w.placement,
            failed.clone(),
            1 << 20,
            &w.profile,
            CostModel::free(),
        );
        let plan = RprPlanner::new().plan(&ctx);
        plan.validate(&w.codec, &w.topo, &w.placement)
            .unwrap_or_else(|e| panic!("{tag}: invalid plan: {e}"));
        let (waves, count) = plan.cross_waves(&w.topo);

        // 1. Exactly the cross sends carry a wave tag.
        for (i, op) in plan.ops.iter().enumerate() {
            let is_cross =
                matches!(op, Op::Send { from, to, .. } if !w.topo.same_rack(*from, *to));
            assert_eq!(waves[i].is_some(), is_cross, "{tag}: op {i}");
        }

        // 2. Rack exclusivity: within one wave every rack joins at most
        //    one cross transfer (as sender or receiver) — the paper's
        //    one-block-per-rack-per-timestep pipeline discipline.
        for wave in 0..count {
            let mut busy = vec![false; w.topo.rack_count()];
            for (i, op) in plan.ops.iter().enumerate() {
                if waves[i] != Some(wave) {
                    continue;
                }
                let Op::Send { from, to, .. } = op else {
                    unreachable!()
                };
                for rack in [w.topo.rack_of(*from).0, w.topo.rack_of(*to).0] {
                    assert!(!busy[rack], "{tag}: rack {rack} reused in wave {wave}");
                    busy[rack] = true;
                }
            }
        }

        // 3. Waves are dense: every index in 0..count is used.
        let mut used = vec![false; count];
        for w in waves.iter().flatten() {
            used[*w] = true;
        }
        assert!(used.iter().all(|u| *u), "{tag}: sparse waves {waves:?}");

        // 4. DAG order: a cross send runs strictly after every upstream
        //    cross send.
        for i in 0..plan.ops.len() {
            let Some(wi) = waves[i] else { continue };
            for d in plan.deps_of(i) {
                if let Some(wd) = waves[d.0] {
                    assert!(wd < wi, "{tag}: op {i} (wave {wi}) depends on {} (wave {wd})", d.0);
                }
            }
        }

        // 5. The schedule can never beat the binary-merge lower bound,
        //    and single-failure plans meet it exactly (§3.2).
        let s = waves.iter().flatten().count();
        assert!(count >= ceil_log2(s + 1), "{tag}: {count} waves for {s} sends");
        if failed.len() == 1 {
            assert_eq!(count, ceil_log2(s + 1), "{tag}: single failure is optimal");
        }
    }
}

#[test]
fn executor_reconstructs_random_cases_byte_identically() {
    let mut rng = SplitMix64::new(SEED ^ 0xEC5E_C0DE);
    let block = 4096usize;
    for case in 0..8 {
        let (n, k, failed) = random_case(&mut rng);
        let tag = format!("case {case}: ({n},{k}) failed {failed:?}");
        let w = world(n, k);

        // Random stripe contents from the same seeded stream.
        let data: Vec<Vec<u8>> = (0..n)
            .map(|_| (0..block).map(|_| (rng.next_u64() >> 24) as u8).collect())
            .collect();
        let refs: Vec<&[u8]> = data.iter().map(|b| b.as_slice()).collect();
        let stripe = w.codec.encode_stripe(&refs);

        let ctx = RepairContext::new(
            &w.codec,
            &w.topo,
            &w.placement,
            failed,
            block as u64,
            &w.profile,
            CostModel::free(),
        );
        let plan = RprPlanner::new().plan(&ctx);
        plan.validate(&w.codec, &w.topo, &w.placement)
            .unwrap_or_else(|e| panic!("{tag}: invalid plan: {e}"));
        let report = execute(&plan, &ctx, &stripe);
        assert!(report.verified, "{tag}: mismatches {:?}", report.mismatches);
    }
}
