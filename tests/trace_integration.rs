//! End-to-end trace integration: a simulated RPR repair, recorded through
//! the facade crate, must produce a structured trace whose cross-rack
//! timestep events match the paper's pipeline bound `⌈log2(s+1)⌉` (§3.2),
//! and whose Chrome `trace_event` export is valid JSON.

use rpr::codec::{BlockId, CodeParams, StripeCodec};
use rpr::core::{simulate_traced, CostModel, RepairContext, RepairPlanner, RprPlanner};
use rpr::obs::{export, Event, TraceRecorder};
use rpr::topology::{cluster_for, BandwidthProfile, Placement, PlacementPolicy};

fn ceil_log2(x: usize) -> usize {
    (usize::BITS - (x.max(1) - 1).leading_zeros()) as usize
}

/// Record one single-failure RPR repair of RS(n,k) and return the events.
fn traced_repair(n: usize, k: usize) -> Vec<Event> {
    let params = CodeParams::new(n, k);
    let codec = StripeCodec::new(params);
    let topo = cluster_for(params, 1, 1);
    let placement = Placement::by_policy(PlacementPolicy::RprPreplaced, params, &topo);
    let profile = BandwidthProfile::simics_default(topo.rack_count());
    let ctx = RepairContext::new(
        &codec,
        &topo,
        &placement,
        vec![BlockId(1)],
        64 << 20,
        &profile,
        CostModel::simics().scaled_for_block(64 << 20),
    );
    let plan = RprPlanner::new().plan(&ctx);
    plan.validate(&codec, &topo, &placement).expect("valid plan");
    let rec = TraceRecorder::default();
    simulate_traced(&plan, &ctx, &rec);
    rec.take_events()
}

/// The trace's timestep events must count exactly `⌈log2(s+1)⌉` for `s`
/// cross-rack sends, and every cross transfer must carry a wave tag below
/// that bound.
fn assert_pipelined_trace(events: &[Event]) {
    let cross: Vec<_> = events
        .iter()
        .filter_map(|e| match e {
            Event::TransferDone { xfer, .. } if xfer.cross => Some(xfer),
            _ => None,
        })
        .collect();
    let expected = ceil_log2(cross.len() + 1);

    let started: Vec<usize> = events
        .iter()
        .filter_map(|e| match e {
            Event::TimestepStarted { step, .. } => Some(*step),
            _ => None,
        })
        .collect();
    let finished = events
        .iter()
        .filter(|e| matches!(e, Event::TimestepFinished { .. }))
        .count();
    assert_eq!(
        started,
        (0..expected).collect::<Vec<_>>(),
        "exactly ⌈log2(s+1)⌉ = {expected} timestep_started events, in order"
    );
    assert_eq!(finished, expected);

    for xfer in &cross {
        let step = xfer.timestep.expect("cross transfers carry a timestep");
        assert!(step < expected, "wave {step} out of range");
    }
    // Inner transfers never carry a wave tag.
    assert!(events.iter().all(|e| match e {
        Event::TransferDone { xfer, .. } if !xfer.cross => xfer.timestep.is_none(),
        _ => true,
    }));

    // Advertised plan shape matches what actually ran.
    let Some(Event::PlanBuilt {
        cross_transfers,
        cross_timesteps,
        ..
    }) = events.first()
    else {
        panic!("trace must open with plan_built");
    };
    assert_eq!(*cross_transfers, cross.len());
    assert_eq!(*cross_timesteps, expected);
    assert!(matches!(events.last(), Some(Event::RepairDone { .. })));
}

#[test]
fn rpr_4_2_trace_groups_cross_sends_into_log2_timesteps() {
    assert_pipelined_trace(&traced_repair(4, 2));
}

#[test]
fn rpr_6_3_trace_groups_cross_sends_into_log2_timesteps() {
    let events = traced_repair(6, 3);
    // (6,3) over q = 3 racks: two source racks merge into the recovery
    // rack in ⌈log2(3)⌉ = 2 pipelined timesteps (the acceptance example).
    let cross = events
        .iter()
        .filter(|e| matches!(e, Event::TransferDone { xfer, .. } if xfer.cross))
        .count();
    assert_eq!(cross, 2);
    assert_pipelined_trace(&events);
}

/// Multi-failure (z = 2) repair of RS(8,4): the §3.4 extension splits the
/// repair into one sub-equation per failed block, and the pipeline
/// schedule lines the sub-equations up back-to-back — every wave carries
/// exactly one cross send into the recovery rack, and each sub-equation's
/// sends occupy a contiguous, in-order wave range. This pins the wave
/// layout end to end: plan → cross_waves → recorded trace.
#[test]
fn rpr_8_4_z2_trace_pins_per_subequation_waves() {
    use rpr::core::Op;

    let params = CodeParams::new(8, 4);
    let codec = StripeCodec::new(params);
    let topo = cluster_for(params, 1, 1);
    let placement = Placement::by_policy(PlacementPolicy::RprPreplaced, params, &topo);
    let profile = BandwidthProfile::simics_default(topo.rack_count());
    let ctx = RepairContext::new(
        &codec,
        &topo,
        &placement,
        vec![BlockId(0), BlockId(1)],
        64 << 20,
        &profile,
        CostModel::simics().scaled_for_block(64 << 20),
    );
    let plan = RprPlanner::new().plan(&ctx);
    plan.validate(&codec, &topo, &placement).expect("valid plan");
    assert_eq!(plan.outputs.len(), 2, "one sub-equation per failed block");

    // Map every op to its sub-equation by walking dependencies backwards
    // from each output op.
    let mut part = vec![usize::MAX; plan.ops.len()];
    for (p, &(_, out)) in plan.outputs.iter().enumerate() {
        let mut stack = vec![out.0];
        while let Some(i) = stack.pop() {
            if part[i] == p {
                continue;
            }
            part[i] = p;
            stack.extend(plan.deps_of(i).iter().map(|d| d.0));
        }
    }

    let (waves, count) = plan.cross_waves(&topo);
    assert_eq!(count, 4, "2 sub-equations x 2 source racks = 4 waves");

    // Every wave carries exactly one cross send, and it lands in the
    // recovery rack (the shared downlink serializes the pipeline).
    let recovery_rack = topo.rack_of(ctx.recovery_node());
    let mut wave_part = vec![usize::MAX; count];
    for (i, op) in plan.ops.iter().enumerate() {
        if let (Op::Send { to, .. }, Some(w)) = (op, waves[i]) {
            assert_eq!(wave_part[w], usize::MAX, "one cross send per wave");
            assert_eq!(topo.rack_of(*to), recovery_rack);
            wave_part[w] = part[i];
        }
    }
    // Sub-equation 0 owns waves {0,1}, sub-equation 1 owns waves {2,3}:
    // contiguous and in output order.
    assert_eq!(wave_part, vec![0, 0, 1, 1], "per-sub-equation wave ranges");

    // The recorded trace reproduces exactly this layout.
    let rec = TraceRecorder::default();
    simulate_traced(&plan, &ctx, &rec);
    let events = rec.take_events();
    let mut traced: Vec<(String, usize)> = events
        .iter()
        .filter_map(|e| match e {
            Event::TransferDone { xfer, .. } if xfer.cross => {
                Some((xfer.label.clone(), xfer.timestep.expect("tagged")))
            }
            _ => None,
        })
        .collect();
    traced.sort_by_key(|&(_, w)| w);
    let expected: Vec<(String, usize)> = {
        let mut v: Vec<(String, usize)> = waves
            .iter()
            .enumerate()
            .filter_map(|(i, w)| w.map(|w| (format!("p0op{i}:send"), w)))
            .collect();
        v.sort_by_key(|&(_, w)| w);
        v
    };
    assert_eq!(traced, expected, "trace wave tags match the plan schedule");
    let started = events
        .iter()
        .filter(|e| matches!(e, Event::TimestepStarted { .. }))
        .count();
    assert_eq!(started, 4);
}

#[test]
fn chrome_export_is_valid_json_with_timestep_spans() {
    let events = traced_repair(6, 3);
    let json = export::to_chrome_trace(&events);
    // Structural validity: balanced braces/brackets outside strings. The
    // unit tests in rpr-obs cover escaping; here we check the end-to-end
    // document shape and the timestep spans' presence.
    let mut depth: i64 = 0;
    let mut in_str = false;
    let mut esc = false;
    for c in json.chars() {
        if esc {
            esc = false;
            continue;
        }
        match c {
            '\\' if in_str => esc = true,
            '"' => in_str = !in_str,
            '{' | '[' if !in_str => depth += 1,
            '}' | ']' if !in_str => depth -= 1,
            _ => {}
        }
        assert!(depth >= 0, "unbalanced JSON");
    }
    assert_eq!(depth, 0, "unbalanced JSON");
    assert!(!in_str, "unterminated string");
    assert!(json.starts_with("{\"traceEvents\":["));
    assert!(json.contains("\"name\":\"timestep 0\""));
    assert!(json.contains("\"name\":\"timestep 1\""));
    assert!(json.contains("\"cat\":\"transfer.cross\""));
}
