//! Cross-backend consistency: the real executor's wall-clock behaviour must
//! track the flow simulator's predictions (loosely — thread scheduling and
//! burst allowances introduce jitter), and per-op timings must respect the
//! plan's dependency structure.

use rpr::codec::{BlockId, CodeParams, StripeCodec};
use rpr::core::{
    simulate, CostModel, RepairContext, RepairPlanner, RprPlanner, TraditionalPlanner,
};
use rpr::exec::execute;
use rpr::topology::{cluster_for, BandwidthProfile, Placement, PlacementPolicy};

fn world() -> (
    StripeCodec,
    rpr::topology::Topology,
    Placement,
    BandwidthProfile,
) {
    let params = CodeParams::new(6, 2);
    let codec = StripeCodec::new(params);
    let topo = cluster_for(params, 1, 1);
    let placement = Placement::by_policy(PlacementPolicy::RprPreplaced, params, &topo);
    // 20 MB/s inner, 2 MB/s cross: transfers in the hundreds of ms, big
    // enough to dominate jitter.
    let profile = BandwidthProfile::uniform(topo.rack_count(), 20.0e6, 2.0e6);
    (codec, topo, placement, profile)
}

fn stripe(codec: &StripeCodec, len: usize) -> Vec<Vec<u8>> {
    let data: Vec<Vec<u8>> = (0..codec.params().n)
        .map(|i| (0..len).map(|j| (j as u8).wrapping_add(i as u8)).collect())
        .collect();
    let refs: Vec<&[u8]> = data.iter().map(|b| b.as_slice()).collect();
    codec.encode_stripe(&refs)
}

#[test]
fn executor_wall_time_tracks_simulator_prediction() {
    let (codec, topo, placement, profile) = world();
    let block: u64 = 512 * 1024;
    let s = stripe(&codec, block as usize);
    for planner in [
        &TraditionalPlanner::new() as &dyn RepairPlanner,
        &RprPlanner::new(),
    ] {
        let ctx = RepairContext::new(
            &codec,
            &topo,
            &placement,
            vec![BlockId(1)],
            block,
            &profile,
            CostModel::free(),
        );
        let plan = planner.plan(&ctx);
        let predicted = simulate(&plan, &ctx).repair_time;
        let report = execute(&plan, &ctx, &s);
        assert!(report.verified);
        let ratio = report.wall_seconds / predicted;
        assert!(
            (0.6..1.5).contains(&ratio),
            "{}: executed {:.3}s vs simulated {:.3}s (ratio {ratio:.2})",
            planner.name(),
            report.wall_seconds,
            predicted
        );
    }
}

#[test]
fn op_timings_respect_dependencies() {
    let (codec, topo, placement, profile) = world();
    let block: u64 = 128 * 1024;
    let s = stripe(&codec, block as usize);
    let ctx = RepairContext::new(
        &codec,
        &topo,
        &placement,
        vec![BlockId(2)],
        block,
        &profile,
        CostModel::free(),
    );
    let plan = RprPlanner::new().plan(&ctx);
    let report = execute(&plan, &ctx, &s);
    assert!(report.verified);
    assert_eq!(report.op_timings.len(), plan.ops.len());
    for i in 0..plan.ops.len() {
        let t = report.op_timings[i];
        assert!(t.end >= t.start, "op {i} ran backwards");
        for dep in plan.deps_of(i) {
            let d = report.op_timings[dep.0];
            // Small tolerance: the start stamp is taken after channel
            // receives, which may race the producer's end stamp by a
            // scheduler quantum.
            assert!(
                d.end <= t.start + 0.05,
                "op {i} started at {:.4} before dep {:?} ended at {:.4}",
                t.start,
                dep,
                d.end
            );
        }
    }
    // Wall time is the max op end.
    let max_end = report
        .op_timings
        .iter()
        .fold(0.0f64, |acc, t| acc.max(t.end));
    assert!(report.wall_seconds >= max_end - 0.05);
}
