//! Fleet-scheduler properties and the cross-backend pin.
//!
//! The scheduler's contract, checked end-to-end through the `rpr`
//! facade:
//!
//! * **no priority inversion** — under contention, no level-`z−1` stripe
//!   is ever admitted before a queued level-`z` stripe;
//! * **no oversubscription** — the arbiter's peak reservation never
//!   exceeds any link's capacity, and every reservation is released;
//! * **conservation** — every enqueued stripe is repaired, exactly once;
//! * **determinism** — two same-seed runs produce byte-identical
//!   summaries and records;
//! * **cross-backend pin** — `Store::recover_fleet` with arbitration off
//!   reproduces per-stripe `supervise_injected` results stripe-for-stripe,
//!   bitwise.

use rpr::codec::CodeParams;
use rpr::core::{supervise_injected, CostModel, RepairContext, Tier};
use rpr::faults::{FaultStorm, HealthTracker, SplitMix64};
use rpr::netsim::Network;
use rpr::obs::NoopRecorder;
use rpr::sched::{
    run_synthetic_fleet, schedule_fleet, BandwidthArbiter, Demand, FleetJob, FleetSpec,
};
use rpr::store::{Failure, FleetRecoveryOptions, Store, StoreConfig};
use rpr::topology::{BandwidthProfile, NodeId, Topology};

/// A fleet on exactly `q` racks: every stripe shares the same physical
/// racks, so cross-rack links are heavily contended and admission has to
/// actually arbitrate.
fn contended_spec() -> FleetSpec {
    FleetSpec {
        params: CodeParams::new(4, 2),
        racks: 3,
        nodes_per_rack: 4,
        stripes: 240,
        block_bytes: 16 << 20,
        seed: 2024,
        level_weights: vec![0.6, 0.4],
        ..FleetSpec::default()
    }
}

#[test]
fn no_priority_inversion_under_contention() {
    let out = run_synthetic_fleet(&contended_spec(), &NoopRecorder);
    assert!(
        out.summary.waited > 0,
        "spec must actually contend to exercise priorities"
    );
    let admit = |level: usize| {
        out.records
            .iter()
            .filter(move |r| r.level == level)
            .map(|r| r.admitted)
    };
    let max_l2 = admit(2).fold(f64::NEG_INFINITY, f64::max);
    let min_l1 = admit(1).fold(f64::INFINITY, f64::min);
    assert!(
        admit(2).count() > 0 && admit(1).count() > 0,
        "both levels must occur"
    );
    assert!(
        max_l2 <= min_l1 + 1e-9,
        "a 2-failure stripe admitted at {max_l2} after a 1-failure stripe at {min_l1}"
    );
}

#[test]
fn arbiter_never_oversubscribes_any_link() {
    let out = run_synthetic_fleet(&contended_spec(), &NoopRecorder);
    assert!(
        out.max_utilization <= 1.0 + 1e-6,
        "peak link utilization {} exceeds capacity",
        out.max_utilization
    );
    assert!(
        out.max_utilization > 0.5,
        "the contended spec should load its links, got {}",
        out.max_utilization
    );
}

#[test]
fn every_enqueued_stripe_is_repaired_exactly_once() {
    let out = run_synthetic_fleet(&contended_spec(), &NoopRecorder);
    assert_eq!(out.summary.stripes, 240);
    assert_eq!(out.summary.repaired, 240, "repaired == enqueued");
    assert_eq!(out.records.len(), 240);
    let mut seen: Vec<u32> = out.records.iter().map(|r| r.stripe).collect();
    seen.sort_unstable();
    seen.dedup();
    assert_eq!(seen.len(), 240, "no stripe repaired twice");
}

#[test]
fn same_seed_runs_are_byte_identical() {
    let a = run_synthetic_fleet(&contended_spec(), &NoopRecorder);
    let b = run_synthetic_fleet(&contended_spec(), &NoopRecorder);
    assert_eq!(a.summary.to_json(), b.summary.to_json());
    assert_eq!(a.records, b.records);
    assert_eq!(
        (a.classes, a.replans, a.retries, a.degraded, a.unrepairable),
        (b.classes, b.replans, b.retries, b.degraded, b.unrepairable)
    );
}

#[test]
fn randomized_backlog_conserves_reservations() {
    // A seeded random backlog of jobs with random link demands: after the
    // drain, the arbiter must be empty and never have over-committed.
    let net = Network::new(Topology::uniform(4, 3), BandwidthProfile::simics_default(4));
    let mut arb = BandwidthArbiter::new(&net);
    let cross = net.cross_class_rate(NodeId(0));
    let mut rng = 0x0123_4567_89AB_CDEFu64;
    let mut next = || {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng
    };
    let jobs: Vec<FleetJob> = (0..200)
        .map(|i| FleetJob {
            stripe: i,
            level: (next() % 3 + 1) as usize,
            duration: (next() % 50 + 1) as f64 / 10.0,
            arrival: 0.0,
            cross_bytes: next() % 1000,
            inner_bytes: next() % 1000,
        })
        .collect();
    let demands: Vec<Demand> = (0..200)
        .map(|_| {
            let node = (next() % 12) as usize;
            let rate = (next() % 100 + 1) as f64 / 100.0 * cross;
            Demand {
                entries: vec![(BandwidthArbiter::uplink(node), rate)],
            }
        })
        .collect();
    let out = schedule_fleet(
        &jobs,
        &mut |i| demands[i].clone(),
        &mut arb,
        &NoopRecorder,
    );
    assert_eq!(out.records.len(), jobs.len(), "total repaired == enqueued");
    assert!(
        arb.total_reserved().abs() < 1e-6,
        "all reservations released, residue {}",
        arb.total_reserved()
    );
    assert!(arb.max_utilization() <= 1.0 + 1e-6);
    assert_eq!(arb.in_flight(), 0);
}

/// A 64-stripe RS(6,3) store: the cross-backend pin fixture.
fn pin_store() -> Store {
    Store::build(StoreConfig {
        params: CodeParams::new(6, 3),
        racks: 4,
        nodes_per_rack: 5,
        stripes: 64,
        block_bytes: 8 << 20,
        preplace_p0: true,
        seed: 77,
    })
}

#[test]
fn fleet_backend_pins_to_per_stripe_supervised_repair() {
    let s = pin_store();
    let profile = BandwidthProfile::simics_default(s.topology().rack_count());
    let cost = CostModel::free();
    let node = NodeId(2);
    let opts = FleetRecoveryOptions {
        arbitrate: false,
        ..FleetRecoveryOptions::default()
    };
    let fleet = s.recover_fleet(Failure::Node(node), &profile, cost, &opts, rpr::obs::noop());
    let affected = s.affected_stripes(Failure::Node(node));
    assert_eq!(fleet.records.len(), affected.len());
    assert!(fleet.records.len() >= 8, "need a real fleet to pin against");
    assert_eq!(fleet.unrepairable, 0);

    for (rec, (stripe, failed)) in fleet.records.iter().zip(&affected) {
        // Reference: a direct supervised repair of the same stripe with a
        // fresh tracker and the same per-stripe seed derivation.
        let ctx = RepairContext::new(
            s.codec(),
            s.topology(),
            s.placement(*stripe),
            failed.clone(),
            s.config().block_bytes,
            &profile,
            cost,
        );
        let mut mix = SplitMix64::new(opts.seed ^ (*stripe as u64));
        let storm = FaultStorm::new(mix.next_u64());
        let mut tracker = HealthTracker::with_defaults();
        let direct = supervise_injected(&ctx, &storm, &opts.cfg, &mut tracker, rpr::obs::noop())
            .expect("clean supervised repair cannot fail");
        assert_eq!(rec.stripe as usize, *stripe);
        assert_eq!(rec.admitted, 0.0, "no arbitration: everything starts at 0");
        assert_eq!(rec.waited, 0.0);
        assert_eq!(
            rec.finish, direct.repair_time,
            "stripe {stripe}: scheduler must reproduce supervise_injected bitwise"
        );
        assert_eq!(direct.final_tier, Tier::Full);
    }

    // Turning arbitration on may delay admissions but must not change any
    // stripe's repair duration.
    let arb = s.recover_fleet(
        Failure::Node(node),
        &profile,
        cost,
        &FleetRecoveryOptions::default(),
        rpr::obs::noop(),
    );
    for (a, b) in arb.records.iter().zip(&fleet.records) {
        assert_eq!(a.stripe, b.stripe);
        assert!(
            ((a.finish - a.admitted) - b.finish).abs() < 1e-9,
            "stripe {}: duration is contention-independent",
            a.stripe
        );
    }
}
