//! Execute a sliced chain-repair plan on real bytes.
//!
//! A chain plan's `block_bytes` is the *slice* size and its `outputs` hold
//! one op per slice. Physically each slice carries a distinct segment of
//! the block; because the repair equation is linear and identical per
//! slice, executing the plan against any one segment exercises every hop
//! and verifies the arithmetic — here we run it against each segment of a
//! real stripe in turn.

use rpr::codec::{BlockId, CodeParams, StripeCodec};
use rpr::core::{ChainPlanner, CostModel, RepairContext, RepairPlanner};
use rpr::exec::execute;
use rpr::topology::{cluster_for, BandwidthProfile, Placement, PlacementPolicy};

#[test]
fn chain_plan_reconstructs_real_bytes_segment_by_segment() {
    let params = CodeParams::new(6, 2);
    let codec = StripeCodec::new(params);
    let topo = cluster_for(params, 1, 1);
    let placement = Placement::by_policy(PlacementPolicy::RprPreplaced, params, &topo);
    let profile = BandwidthProfile::uniform(topo.rack_count(), 400.0e6, 40.0e6);

    let slices = 4usize;
    let block: u64 = 64 * 1024;
    let slice_bytes = block / slices as u64;

    // Real data, encoded once at full block size.
    let data: Vec<Vec<u8>> = (0..params.n)
        .map(|i| {
            (0..block)
                .map(|j| (j.wrapping_mul(31).wrapping_add(i as u64)) as u8)
                .collect()
        })
        .collect();
    let refs: Vec<&[u8]> = data.iter().map(|b| b.as_slice()).collect();
    let stripe = codec.encode_stripe(&refs);

    let ctx = RepairContext::new(
        &codec,
        &topo,
        &placement,
        vec![BlockId(1)],
        block,
        &profile,
        CostModel::free(),
    );
    let plan = ChainPlanner::with_slices(slices).plan(&ctx);
    plan.validate(&codec, &topo, &placement).expect("valid");

    // Execute the plan against each segment of the stripe; every segment
    // must reconstruct byte-exactly (linearity: encoding a segment equals
    // the segment of the encoding).
    for seg in 0..slices {
        let lo = seg * slice_bytes as usize;
        let hi = lo + slice_bytes as usize;
        let seg_stripe: Vec<Vec<u8>> = stripe.iter().map(|b| b[lo..hi].to_vec()).collect();
        let report = execute(&plan, &ctx, &seg_stripe);
        assert!(
            report.verified,
            "segment {seg}: mismatches {:?}",
            report.mismatches
        );
        // Cross traffic per execution: 3 rack boundaries x slices x slice
        // bytes = 3 blocks' worth of this segment size... per full run.
        assert_eq!(
            report.cross_bytes,
            3 * slices as u64 * slice_bytes,
            "segment {seg}"
        );
    }
}
