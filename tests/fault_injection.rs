//! Deterministic chaos suite: injected faults across both backends.
//!
//! The headline guarantees (see `docs/ROBUSTNESS.md`):
//! * a helper crash at *any* pipeline timestep of a single-failure RPR
//!   repair completes via replanning and reconstructs the lost block
//!   byte-identically on the real-data executor;
//! * transient faults (timeouts, corrupted intermediates) are retried and
//!   the repair still verifies;
//! * under a fixed seed the simulated degraded trace is bit-deterministic
//!   (the property `scripts/verify.sh` diffs end-to-end via `rpr inject`).

use rpr::codec::{BlockId, CodeParams, StripeCodec};
use rpr::core::{
    crash_candidates, simulate_injected, CostModel, Op, Payload, RepairContext, RepairPlanner,
    RprPlanner,
};
use rpr::exec::execute_resilient;
use rpr::faults::{FaultKind, FaultPlan, RetryPolicy, SplitMix64};
use rpr::obs::{export, Event, TraceRecorder};
use rpr::topology::{cluster_for, BandwidthProfile, Placement};

/// The paper's single-failure configurations (kept in sync with
/// `rpr-experiments`).
const PAPER_CODES: [(usize, usize); 6] = [(4, 2), (6, 2), (8, 2), (6, 3), (8, 4), (12, 4)];

struct World {
    codec: StripeCodec,
    topo: rpr::topology::Topology,
    placement: Placement,
    profile: BandwidthProfile,
    block: u64,
}

impl World {
    fn new(n: usize, k: usize, block: u64) -> World {
        let params = CodeParams::new(n, k);
        let topo = cluster_for(params, 1, 1);
        let placement = Placement::rpr_preplaced(params, &topo);
        let profile = BandwidthProfile::uniform(topo.rack_count(), 80.0e6, 8.0e6);
        World {
            codec: StripeCodec::new(params),
            topo,
            placement,
            profile,
            block,
        }
    }

    fn ctx(&self, failed: Vec<BlockId>) -> RepairContext<'_> {
        RepairContext::new(
            &self.codec,
            &self.topo,
            &self.placement,
            failed,
            self.block,
            &self.profile,
            CostModel::free(),
        )
    }

    fn stripe(&self, seed: u64) -> Vec<Vec<u8>> {
        let mut rng = SplitMix64::new(seed);
        let data: Vec<Vec<u8>> = (0..self.codec.params().n)
            .map(|_| {
                (0..self.block as usize)
                    .map(|_| (rng.next_u64() >> 24) as u8)
                    .collect()
            })
            .collect();
        let refs: Vec<&[u8]> = data.iter().map(|b| b.as_slice()).collect();
        self.codec.encode_stripe(&refs)
    }
}

fn fast_policy() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 4,
        backoff: 0.01,
        multiplier: 2.0,
        ..RetryPolicy::default()
    }
}

/// Simulated chaos sweep: for every paper configuration, crash every
/// possible helper at every timestep it participates in; the repair must
/// always complete by replanning, never faster than the clean run.
#[test]
fn sim_crash_at_every_site_replans_and_completes() {
    for (n, k) in PAPER_CODES {
        let w = World::new(n, k, 8 << 20);
        let ctx = w.ctx(vec![BlockId(1)]);
        let plan = RprPlanner::new().plan(&ctx);
        plan.validate(&w.codec, &w.topo, &w.placement).expect("valid");
        let sites = crash_candidates(&plan, &ctx);
        assert!(!sites.is_empty(), "({n},{k}): no crash sites");
        for (site, &(node, timestep)) in sites.iter().enumerate() {
            let fp = FaultPlan::new(1000 + site as u64)
                .with(FaultKind::HelperCrash { node, timestep });
            let rec = TraceRecorder::default();
            let out = simulate_injected(&plan, &ctx, &fp, &fast_policy(), &rec)
                .unwrap_or_else(|e| panic!("({n},{k}) crash node {node}@{timestep}: {e}"));
            assert_eq!(out.replans, 1, "({n},{k}) node {node}@{timestep}");
            assert!(
                out.repair_time >= out.clean_time,
                "({n},{k}) node {node}@{timestep}: degraded {} < clean {}",
                out.repair_time,
                out.clean_time
            );
            let names: Vec<&str> = rec.take_events().iter().map(|e| e.name()).collect();
            for expect in ["helper_crashed", "replanned", "repair_done"] {
                assert!(
                    names.contains(&expect),
                    "({n},{k}) node {node}@{timestep}: missing {expect} in {names:?}"
                );
            }
        }
    }
}

/// The acceptance scenario: on RS(6,3) with one failed block, kill one
/// seeded-random helper at *every* pipeline timestep in turn; the
/// real-data executor must recover through replanning and reconstruct the
/// block byte-identically every time.
#[test]
fn exec_crash_at_every_timestep_recovers_byte_identically() {
    let w = World::new(6, 3, 16 * 1024);
    let ctx = w.ctx(vec![BlockId(1)]);
    let plan = RprPlanner::new().plan(&ctx);
    plan.validate(&w.codec, &w.topo, &w.placement).expect("valid");
    let stripe = w.stripe(99);
    let sites = crash_candidates(&plan, &ctx);
    let timesteps: Vec<usize> = {
        let mut ws: Vec<usize> = sites.iter().map(|&(_, w)| w).collect();
        ws.dedup();
        ws
    };
    assert!(timesteps.len() >= 2, "(6,3) pipelines over 2 timesteps");
    let mut rng = SplitMix64::new(42);
    for step in timesteps {
        // One seeded-random helper among those active at this timestep.
        let at_step: Vec<usize> = sites
            .iter()
            .filter(|&&(_, w)| w == step)
            .map(|&(n, _)| n)
            .collect();
        let node = at_step[rng.pick(at_step.len())];
        let fp = FaultPlan::new(7 + step as u64)
            .with(FaultKind::HelperCrash { node, timestep: step });
        let rec = TraceRecorder::default();
        let out = execute_resilient(&plan, &ctx, &stripe, &rec, &fp, &fast_policy())
            .unwrap_or_else(|e| panic!("crash node {node}@{step}: {e}"));
        assert!(
            out.report.verified,
            "crash node {node}@{step}: mismatches {:?}",
            out.report.mismatches
        );
        assert_eq!(out.replans, 1, "crash node {node}@{step}");
        let events = rec.take_events();
        assert!(
            events
                .iter()
                .any(|e| matches!(e, Event::Replanned { .. })),
            "crash node {node}@{step}: no replanned event"
        );
        assert!(
            events
                .iter()
                .any(|e| matches!(e, Event::HelperCrashed { .. })),
            "crash node {node}@{step}: no helper_crashed event"
        );
    }
}

/// Transient faults on the executor: a seeded-random timeout and a
/// corrupted intermediate must both be retried (`retry_scheduled`) and
/// still end in a byte-verified reconstruction.
#[test]
fn exec_transient_faults_retry_and_verify() {
    let w = World::new(6, 2, 16 * 1024);
    let ctx = w.ctx(vec![BlockId(1)]);
    let plan = RprPlanner::new().plan(&ctx);
    plan.validate(&w.codec, &w.topo, &w.placement).expect("valid");
    let stripe = w.stripe(5);

    let mut rng = SplitMix64::new(123);
    let sends: Vec<usize> = plan
        .ops
        .iter()
        .enumerate()
        .filter(|(_, op)| matches!(op, Op::Send { .. }))
        .map(|(i, _)| i)
        .collect();
    let interms: Vec<usize> = plan
        .ops
        .iter()
        .enumerate()
        .filter(|(_, op)| {
            matches!(
                op,
                Op::Send {
                    what: Payload::Intermediate(_),
                    ..
                }
            )
        })
        .map(|(i, _)| i)
        .collect();
    let cases = [
        FaultKind::TransferTimeout {
            op: sends[rng.pick(sends.len())],
        },
        FaultKind::CorruptIntermediate {
            op: interms[rng.pick(interms.len())],
        },
    ];
    for kind in cases {
        let fp = FaultPlan::new(9).with(kind.clone());
        let rec = TraceRecorder::default();
        let out = execute_resilient(&plan, &ctx, &stripe, &rec, &fp, &fast_policy())
            .unwrap_or_else(|e| panic!("{kind:?}: {e}"));
        assert!(out.report.verified, "{kind:?}: not verified");
        assert_eq!(out.retries, 1, "{kind:?}");
        assert_eq!(out.replans, 0, "{kind:?}");
        let names: Vec<&str> = rec.take_events().iter().map(|e| e.name()).collect();
        assert!(names.contains(&"transfer_failed"), "{kind:?}: {names:?}");
        assert!(names.contains(&"retry_scheduled"), "{kind:?}: {names:?}");
    }
}

/// Fixed seed in, identical bytes out: the simulated degraded trace —
/// including a full crash/replan cycle — serializes to byte-identical
/// JSONL across runs.
#[test]
fn sim_injected_trace_is_bit_deterministic() {
    let run = |seed: u64| -> String {
        let w = World::new(8, 4, 64 << 20);
        let ctx = w.ctx(vec![BlockId(2)]);
        let plan = RprPlanner::new().plan(&ctx);
        let (node, timestep) = crash_candidates(&plan, &ctx)[1];
        let send = plan
            .ops
            .iter()
            .position(|op| matches!(op, Op::Send { .. }))
            .expect("plans start with sends");
        let fp = FaultPlan::new(seed)
            .with(FaultKind::TransferTimeout { op: send })
            .with(FaultKind::HelperCrash { node, timestep });
        let rec = TraceRecorder::default();
        simulate_injected(&plan, &ctx, &fp, &RetryPolicy::default(), &rec)
            .expect("injected repair completes");
        export::to_json_lines(&rec.take_events())
    };
    assert_eq!(run(17), run(17), "same seed must replay identically");
    assert_ne!(run(17), run(4242), "the seed must actually steer the run");
}
