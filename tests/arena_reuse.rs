//! The streaming executor's chunk-buffer arena must recycle delivery
//! buffers on the hot path — and recycling must never change a single
//! byte of the repair.

use rpr::codec::{BlockId, CodeParams, StripeCodec};
use rpr::core::{CostModel, RepairContext, RepairPlanner, RprPlanner};
use rpr::exec::execute;
use rpr::topology::{cluster_for, BandwidthProfile, Placement, PlacementPolicy};

struct Fx {
    codec: StripeCodec,
    topo: rpr::topology::Topology,
    placement: Placement,
    profile: BandwidthProfile,
    block: u64,
}

impl Fx {
    fn new(n: usize, k: usize, block: u64) -> Fx {
        let params = CodeParams::new(n, k);
        let codec = StripeCodec::new(params);
        let topo = cluster_for(params, 1, 1);
        let placement = Placement::by_policy(PlacementPolicy::RprPreplaced, params, &topo);
        let profile = BandwidthProfile::uniform(topo.rack_count(), 1.0e9, 400.0e6);
        Fx {
            codec,
            topo,
            placement,
            profile,
            block,
        }
    }

    fn ctx(&self, chunk: Option<u64>) -> RepairContext<'_> {
        let ctx = RepairContext::new(
            &self.codec,
            &self.topo,
            &self.placement,
            vec![BlockId(1)],
            self.block,
            &self.profile,
            CostModel::free(),
        );
        match chunk {
            Some(c) => ctx.with_chunk_size(c),
            None => ctx,
        }
    }

    fn stripe(&self, seed: u64) -> Vec<Vec<u8>> {
        let mut s = seed | 1;
        let data: Vec<Vec<u8>> = (0..self.codec.params().n)
            .map(|_| {
                (0..self.block)
                    .map(|_| {
                        s = s
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        (s >> 33) as u8
                    })
                    .collect()
            })
            .collect();
        let refs: Vec<&[u8]> = data.iter().map(|b| b.as_slice()).collect();
        self.codec.encode_stripe(&refs)
    }
}

#[test]
fn chunked_repair_recycles_buffers_and_stays_byte_identical() {
    // 24 chunks of 8 KiB plus a ragged 11-byte tail; the (6,3) RPR plan
    // has enough edges that the pool's steady state must kick in.
    let fx = Fx::new(6, 3, 192 * 1024 + 11);
    let stripe = fx.stripe(0xA11E);

    let streamed = execute(&RprPlanner::new().plan(&fx.ctx(None)), &fx.ctx(Some(8 * 1024)), &stripe);
    assert!(
        streamed.verified,
        "chunked repair must be byte-identical to the lost block: {:?}",
        streamed.mismatches
    );
    assert!(
        streamed.arena.recycled > 0,
        "streaming must reuse pooled chunk buffers, got {:?}",
        streamed.arena
    );
    assert!(
        streamed.arena.recycled > streamed.arena.fresh,
        "after warm-up the pool should serve most checkouts: {:?}",
        streamed.arena
    );

    // The same plan in block mode: identical reconstruction, no pool
    // traffic at all (whole-block values are shared, never pooled).
    let block = execute(&RprPlanner::new().plan(&fx.ctx(None)), &fx.ctx(None), &stripe);
    assert!(block.verified, "block-mode baseline must verify");
    assert_eq!(block.arena.fresh, 0, "block mode allocates no pooled buffers");
    assert_eq!(block.arena.recycled, 0);
}

#[test]
fn arena_reuse_is_invisible_across_chunk_sizes() {
    // Different chunk sizes exercise different reuse patterns; all must
    // reconstruct the identical block (verified == byte equality with
    // the original).
    let fx = Fx::new(6, 2, 64 * 1024);
    let stripe = fx.stripe(0xBEE5);
    let plan = RprPlanner::new().plan(&fx.ctx(None));
    for chunk in [3_000u64, 16 * 1024, 40 * 1024] {
        let report = execute(&plan, &fx.ctx(Some(chunk)), &stripe);
        assert!(
            report.verified,
            "chunk={chunk}: mismatches {:?}",
            report.mismatches
        );
    }
}
