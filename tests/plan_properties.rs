//! Property-based integration tests: randomized codes, placements, and
//! failure sets — every generated plan must validate symbolically and
//! reconstruct real bytes exactly.

use proptest::prelude::*;
use rpr::codec::{BlockId, CodeParams, StripeCodec};
use rpr::core::{
    simulate, CostModel, RepairContext, RepairPlanner, RprPlanner, TraditionalPlanner,
};
use rpr::exec::execute;
use rpr::topology::{cluster_for, BandwidthProfile, Placement, PlacementPolicy};

const BLOCK: u64 = 4096;

#[derive(Debug, Clone)]
struct Scenario {
    n: usize,
    k: usize,
    policy: PlacementPolicy,
    failed: Vec<usize>,
    seed: u64,
}

fn scenario() -> impl Strategy<Value = Scenario> {
    // n in 2..=12, k in 1..=4, k <= n, up to k failures anywhere in the
    // stripe.
    (2usize..=12, 1usize..=4)
        .prop_filter("k <= n", |&(n, k)| k <= n)
        .prop_flat_map(|(n, k)| {
            let total = n + k;
            (
                Just((n, k)),
                prop_oneof![
                    Just(PlacementPolicy::Compact),
                    Just(PlacementPolicy::RprPreplaced)
                ],
                proptest::collection::btree_set(0..total, 1..=k),
                any::<u64>(),
            )
        })
        .prop_map(|((n, k), policy, failed, seed)| Scenario {
            n,
            k,
            policy,
            failed: failed.into_iter().collect(),
            seed,
        })
}

fn run(s: &Scenario, use_rpr: bool) {
    let params = CodeParams::new(s.n, s.k);
    let codec = StripeCodec::new(params);
    let topo = cluster_for(params, 1, 1);
    let placement = Placement::by_policy(s.policy, params, &topo);
    let profile = BandwidthProfile::uniform(topo.rack_count(), 4.0e9, 0.4e9);

    let mut rng_state = s.seed | 1;
    let data: Vec<Vec<u8>> = (0..s.n)
        .map(|_| {
            (0..BLOCK)
                .map(|_| {
                    rng_state = rng_state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    (rng_state >> 33) as u8
                })
                .collect()
        })
        .collect();
    let refs: Vec<&[u8]> = data.iter().map(|b| b.as_slice()).collect();
    let stripe = codec.encode_stripe(&refs);

    let failed: Vec<BlockId> = s.failed.iter().map(|&i| BlockId(i)).collect();
    let ctx = RepairContext::new(
        &codec,
        &topo,
        &placement,
        failed,
        BLOCK,
        &profile,
        CostModel::free(),
    );
    let plan = if use_rpr {
        RprPlanner::new().plan(&ctx)
    } else {
        TraditionalPlanner::new().plan(&ctx)
    };
    plan.validate(&codec, &topo, &placement)
        .unwrap_or_else(|e| panic!("{s:?}: {e}"));

    // The simulator must accept the plan (no deadlocks, no starvation).
    let sim = simulate(&plan, &ctx);
    assert!(sim.repair_time.is_finite());

    // Real execution must reconstruct the exact bytes.
    let report = execute(&plan, &ctx, &stripe);
    assert!(report.verified, "{s:?}: mismatch {:?}", report.mismatches);

    // Cross-rack traffic never exceeds traditional repair's n blocks for
    // single failures (§4.3.2 guarantees "does not increase" in general).
    if s.failed.len() == 1 && use_rpr {
        assert!(plan.stats(&topo).cross_transfers <= s.n);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn rpr_plans_always_validate_and_reconstruct(s in scenario()) {
        run(&s, true);
    }

    #[test]
    fn traditional_plans_always_validate_and_reconstruct(s in scenario()) {
        run(&s, false);
    }
}
