//! Degraded-read byte verification spans rpr-core and rpr-exec, so it
//! lives at the workspace level.

use rpr::codec::{BlockId, CodeParams, StripeCodec};
use rpr::core::{CostModel, RepairContext, RepairPlanner, RprPlanner};
use rpr::topology::{cluster_for, BandwidthProfile, Placement, PlacementPolicy};

#[test]
fn degraded_read_verifies_real_bytes() {
    let params = CodeParams::new(6, 3);
    let codec = StripeCodec::new(params);
    let topo = cluster_for(params, 1, 1);
    let placement = Placement::by_policy(PlacementPolicy::RprPreplaced, params, &topo);
    let profile = BandwidthProfile::uniform(topo.rack_count(), 400.0e6, 40.0e6);
    let lost = BlockId(4);
    let client = placement.node_of(BlockId(0));
    let block = 64 * 1024u64;
    let data: Vec<Vec<u8>> = (0..6)
        .map(|i| vec![0xA0 | i as u8; block as usize])
        .collect();
    let refs: Vec<&[u8]> = data.iter().map(|b| b.as_slice()).collect();
    let stripe = codec.encode_stripe(&refs);

    let ctx = RepairContext::new(
        &codec,
        &topo,
        &placement,
        vec![lost],
        block,
        &profile,
        CostModel::free(),
    )
    .with_recovery_node(client);
    let plan = RprPlanner::new().plan(&ctx);
    plan.validate(&codec, &topo, &placement).expect("valid");
    let report = rpr::exec::execute(&plan, &ctx, &stripe);
    assert!(report.verified, "{:?}", report.mismatches);
}

/// The bytes a pipeline-served degraded read streams to the client
/// must be byte-identical to a full (block-mode) reconstruction — for
/// every geometry and for ragged chunk sizes that do not divide the
/// block evenly.
#[test]
fn pipeline_degraded_read_bytes_match_full_reconstruction() {
    for &(n, k) in &[(4usize, 2usize), (6, 3), (8, 4)] {
        let params = CodeParams::new(n, k);
        let codec = StripeCodec::new(params);
        let topo = cluster_for(params, 1, 1);
        let placement = Placement::by_policy(PlacementPolicy::RprPreplaced, params, &topo);
        let profile = BandwidthProfile::uniform(topo.rack_count(), 400.0e6, 40.0e6);
        let lost = BlockId(1);
        let client = placement.node_of(BlockId(0));
        let block = 96 * 1024u64 + 17; // odd size so every chunk choice is ragged somewhere
        let data: Vec<Vec<u8>> = (0..n)
            .map(|i| {
                (0..block as usize)
                    .map(|j| (i as u8).wrapping_mul(31).wrapping_add(j as u8))
                    .collect()
            })
            .collect();
        let refs: Vec<&[u8]> = data.iter().map(|b| b.as_slice()).collect();
        let stripe = codec.encode_stripe(&refs);

        let ctx = |chunk: Option<u64>| {
            let c = RepairContext::new(
                &codec,
                &topo,
                &placement,
                vec![lost],
                block,
                &profile,
                CostModel::free(),
            )
            .with_recovery_node(client);
            match chunk {
                Some(bytes) => c.with_chunk_size(bytes),
                None => c,
            }
        };

        // Block-mode ground truth.
        let whole = ctx(None);
        let plan = RprPlanner::new().plan(&whole);
        plan.validate(&codec, &topo, &placement).expect("valid");
        let full = rpr::exec::execute(&plan, &whole, &stripe);
        assert!(full.verified, "({n},{k}) block mode: {:?}", full.mismatches);
        assert_eq!(full.recovered.len(), 1);
        assert_eq!(full.recovered[0].0, lost);
        assert_eq!(*full.recovered[0].1, data[1], "({n},{k}) block mode bytes");

        // Ragged and even chunk sizes: 17 KiB-ish primes, exact eighth,
        // and a chunk larger than the block.
        for &chunk in &[7 * 1024 + 13, 12 * 1024, block / 8, block + 5] {
            let streamed = ctx(Some(chunk));
            let plan = RprPlanner::new().plan(&streamed);
            plan.validate(&codec, &topo, &placement).expect("valid");
            let report = rpr::exec::execute(&plan, &streamed, &stripe);
            assert!(
                report.verified,
                "({n},{k}) chunk {chunk}: {:?}",
                report.mismatches
            );
            assert_eq!(report.recovered.len(), 1);
            assert_eq!(report.recovered[0].0, lost);
            assert_eq!(
                *report.recovered[0].1, *full.recovered[0].1,
                "({n},{k}) chunk {chunk}: streamed bytes differ from block mode"
            );
            // Cut-through must surface a first-byte time no later than
            // the full repair.
            let fb = report.first_byte_seconds.expect("degraded read timing");
            assert!(fb <= report.wall_seconds + 1e-12);
        }
    }
}

/// Same-seed co-simulated load+repair runs must summarize
/// bit-identically, including the JSON rendering the soak scripts
/// byte-compare.
#[test]
fn load_summaries_are_deterministic_via_facade() {
    use rpr::load::{run_load, LoadSpec};
    let spec = LoadSpec::paper_config(4242, LoadSpec::paper_qos());
    let a = run_load(&spec);
    let b = run_load(&spec);
    assert_eq!(a, b);
    assert_eq!(a.to_json(), b.to_json());
    assert!(a.degraded > 0, "paper config must exercise degraded reads");
}
