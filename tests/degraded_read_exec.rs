//! Degraded-read byte verification spans rpr-core and rpr-exec, so it
//! lives at the workspace level.

use rpr::codec::{BlockId, CodeParams, StripeCodec};
use rpr::core::{CostModel, RepairContext, RepairPlanner, RprPlanner};
use rpr::topology::{cluster_for, BandwidthProfile, Placement, PlacementPolicy};

#[test]
fn degraded_read_verifies_real_bytes() {
    let params = CodeParams::new(6, 3);
    let codec = StripeCodec::new(params);
    let topo = cluster_for(params, 1, 1);
    let placement = Placement::by_policy(PlacementPolicy::RprPreplaced, params, &topo);
    let profile = BandwidthProfile::uniform(topo.rack_count(), 400.0e6, 40.0e6);
    let lost = BlockId(4);
    let client = placement.node_of(BlockId(0));
    let block = 64 * 1024u64;
    let data: Vec<Vec<u8>> = (0..6)
        .map(|i| vec![0xA0 | i as u8; block as usize])
        .collect();
    let refs: Vec<&[u8]> = data.iter().map(|b| b.as_slice()).collect();
    let stripe = codec.encode_stripe(&refs);

    let ctx = RepairContext::new(
        &codec,
        &topo,
        &placement,
        vec![lost],
        block,
        &profile,
        CostModel::free(),
    )
    .with_recovery_node(client);
    let plan = RprPlanner::new().plan(&ctx);
    plan.validate(&codec, &topo, &placement).expect("valid");
    let report = rpr::exec::execute(&plan, &ctx, &stripe);
    assert!(report.verified, "{:?}", report.mismatches);
}
