//! Foreground co-simulation benchmarks: one full `run_load` of the
//! (6,3) paper config — request generation, repair lowering, the shared
//! flow simulation, and quantile extraction — per mode, so the cost of
//! simulating client traffic under repair is tracked end to end.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rpr_load::{run_load, LoadSpec, RepairMode};
use std::hint::black_box;

fn bench_load_cosim(c: &mut Criterion) {
    let mut g = c.benchmark_group("load");
    for (name, mode) in [
        ("off", RepairMode::Off),
        ("unthrottled", RepairMode::Unthrottled),
        ("qos", LoadSpec::paper_qos()),
    ] {
        let spec = LoadSpec::paper_config(17, mode);
        g.throughput(Throughput::Elements(spec.requests as u64));
        g.bench_function(format!("cosim_{name}"), |b| {
            b.iter(|| black_box(run_load(black_box(&spec))))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_load_cosim);
criterion_main!(benches);
