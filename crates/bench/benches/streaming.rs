//! Cut-through streaming benchmarks: the chunked planner + simulator path
//! (plan shape changes under streaming, so planning is re-run per chunk
//! size) and the chunked real-byte executor against its store-and-forward
//! baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rpr_bench::BenchWorld;
use rpr_codec::BlockId;
use rpr_core::{simulate, RepairPlanner, RprPlanner};
use std::hint::black_box;

const SIM_BLOCK: u64 = 256 << 20;
/// Execution benches use small blocks and fast links so one iteration is
/// tens of milliseconds rather than seconds.
const EXEC_BLOCK: u64 = 64 * 1024;

/// Plan + simulate (6,3) under a range of chunk sizes; `0` is the
/// store-and-forward baseline. Measures the full chunk-aware lowering —
/// job count grows with the chunk count.
fn bench_sim_streaming(c: &mut Criterion) {
    let w = BenchWorld::simics(6, 3, SIM_BLOCK);
    let mut g = c.benchmark_group("streaming/sim_plan_and_simulate");
    for chunk_mib in [0u64, 32, 8, 2] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("chunk_{chunk_mib}mib")),
            &chunk_mib,
            |b, &chunk_mib| {
                b.iter(|| {
                    let ctx = match chunk_mib {
                        0 => w.ctx(vec![BlockId(1)]),
                        m => w.ctx(vec![BlockId(1)]).with_chunk_size(m << 20),
                    };
                    let plan = RprPlanner::new().plan(&ctx);
                    black_box(simulate(&plan, &ctx).repair_time)
                })
            },
        );
    }
    g.finish();
}

/// Real-byte execution at (6,3) with and without cut-through chunks.
fn bench_exec_streaming(c: &mut Criterion) {
    let w = BenchWorld::simics(6, 3, EXEC_BLOCK);
    let stripe = w.stripe(7);
    let mut g = c.benchmark_group("streaming/exec");
    g.sample_size(10);
    g.throughput(Throughput::Bytes(EXEC_BLOCK));
    for chunk in [0u64, 16 * 1024, 4 * 1024] {
        let ctx = match chunk {
            0 => w.ctx(vec![BlockId(1)]),
            c => w.ctx(vec![BlockId(1)]).with_chunk_size(c),
        };
        let plan = RprPlanner::new().plan(&ctx);
        let label = match chunk {
            0 => "store_and_forward".to_string(),
            c => format!("chunk_{}kib", c >> 10),
        };
        g.bench_with_input(BenchmarkId::from_parameter(label), &chunk, |b, _| {
            b.iter(|| black_box(rpr_exec::execute(&plan, &ctx, &stripe)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_sim_streaming, bench_exec_streaming);
criterion_main!(benches);
