//! Reed-Solomon codec throughput: encode, full decode, repair-equation
//! derivation, and the XOR vs matrix decode gap the paper measures.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rpr_codec::{BlockId, CodeParams, PartialDecoder, StripeCodec};
use std::hint::black_box;

const BLOCK: usize = 1024 * 1024;

fn stripe(codec: &StripeCodec) -> Vec<Vec<u8>> {
    let n = codec.params().n;
    let data: Vec<Vec<u8>> = (0..n)
        .map(|i| {
            (0..BLOCK)
                .map(|j| (j as u8).wrapping_add(i as u8))
                .collect()
        })
        .collect();
    let refs: Vec<&[u8]> = data.iter().map(|b| b.as_slice()).collect();
    codec.encode_stripe(&refs)
}

fn bench_encode(c: &mut Criterion) {
    let mut g = c.benchmark_group("codec/encode");
    for (n, k) in [(4usize, 2usize), (8, 4), (12, 4)] {
        let codec = StripeCodec::new(CodeParams::new(n, k));
        let data: Vec<Vec<u8>> = (0..n).map(|i| vec![i as u8; BLOCK]).collect();
        let refs: Vec<&[u8]> = data.iter().map(|b| b.as_slice()).collect();
        g.throughput(Throughput::Bytes((n * BLOCK) as u64));
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{n}_{k}")),
            &(n, k),
            |b, _| b.iter(|| codec.encode(black_box(&refs))),
        );
    }
    g.finish();
}

fn bench_full_decode(c: &mut Criterion) {
    let mut g = c.benchmark_group("codec/matrix_decode");
    for (n, k) in [(4usize, 2usize), (12, 4)] {
        let codec = StripeCodec::new(CodeParams::new(n, k));
        let s = stripe(&codec);
        // Lose d0, decode from the *last* n blocks (forces Galois math).
        let survivors: Vec<(BlockId, &[u8])> =
            (k..n + k).map(|i| (BlockId(i), s[i].as_slice())).collect();
        g.throughput(Throughput::Bytes(BLOCK as u64));
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{n}_{k}")),
            &(n, k),
            |b, _| b.iter(|| codec.decode(black_box(&survivors), &[BlockId(0)])),
        );
    }
    g.finish();
}

fn bench_xor_path_decode(c: &mut Criterion) {
    // The eq.-6 path: d0 = d1 ^ ... ^ d(n-1) ^ p0, pure XOR folds.
    let mut g = c.benchmark_group("codec/xor_path_decode");
    for (n, k) in [(4usize, 2usize), (12, 4)] {
        let codec = StripeCodec::new(CodeParams::new(n, k));
        let s = stripe(&codec);
        g.throughput(Throughput::Bytes(BLOCK as u64));
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{n}_{k}")),
            &(n, k),
            |b, _| {
                b.iter(|| {
                    let mut pd = PartialDecoder::new(BLOCK);
                    for blk in &s[1..n] {
                        pd.fold(1, black_box(blk));
                    }
                    pd.fold(1, black_box(&s[n])); // p0
                    pd.finish()
                })
            },
        );
    }
    g.finish();
}

fn bench_repair_equations(c: &mut Criterion) {
    let codec = StripeCodec::new(CodeParams::new(12, 4));
    let helpers: Vec<BlockId> = (4..16).map(BlockId).collect();
    let lost: Vec<BlockId> = (0..4).map(BlockId).collect();
    c.bench_function("codec/repair_equations_12_4_worst", |b| {
        b.iter(|| codec.repair_equations(black_box(&lost), black_box(&helpers)))
    });
}

criterion_group!(
    benches,
    bench_encode,
    bench_full_decode,
    bench_xor_path_decode,
    bench_repair_equations
);
criterion_main!(benches);
