//! Planner cost: how long does producing (and validating) a repair plan
//! take for each scheme? The RPR planner includes its helper-selection
//! search, so this measures the full Algorithm 1 + 2 scheduling cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rpr_bench::BenchWorld;
use rpr_codec::BlockId;
use rpr_core::{CarPlanner, RepairPlanner, RprPlanner, TraditionalPlanner};
use std::hint::black_box;

const BLOCK: u64 = 256 << 20;

fn bench_single_failure_planning(c: &mut Criterion) {
    let mut g = c.benchmark_group("planner/single_failure");
    for (n, k) in [(4usize, 2usize), (8, 2), (12, 4)] {
        let w = BenchWorld::simics(n, k, BLOCK);
        for (name, planner) in [
            (
                "traditional",
                &TraditionalPlanner::new() as &dyn RepairPlanner,
            ),
            ("car", &CarPlanner::new()),
            ("rpr_search", &RprPlanner::new()),
            ("rpr_heuristic", &RprPlanner::without_search()),
        ] {
            g.bench_with_input(
                BenchmarkId::new(name, format!("{n}_{k}")),
                &(n, k),
                |b, _| {
                    b.iter(|| {
                        let ctx = w.ctx(vec![BlockId(1)]);
                        black_box(planner.plan(&ctx))
                    })
                },
            );
        }
    }
    g.finish();
}

fn bench_multi_failure_planning(c: &mut Criterion) {
    let mut g = c.benchmark_group("planner/multi_failure");
    for (n, k, z) in [(8usize, 4usize, 2usize), (12, 4, 4)] {
        let w = BenchWorld::simics(n, k, BLOCK);
        let failed: Vec<BlockId> = (0..z).map(BlockId).collect();
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{n}_{k}_{z}")),
            &(n, k),
            |b, _| {
                b.iter(|| {
                    let ctx = w.ctx(failed.clone());
                    black_box(RprPlanner::new().plan(&ctx))
                })
            },
        );
    }
    g.finish();
}

fn bench_plan_validation(c: &mut Criterion) {
    let w = BenchWorld::simics(12, 4, BLOCK);
    let ctx = w.ctx(vec![BlockId(0), BlockId(5)]);
    let plan = RprPlanner::new().plan(&ctx);
    c.bench_function("planner/validate_12_4_double", |b| {
        b.iter(|| {
            plan.validate(&w.codec, &w.topo, &w.placement)
                .expect("valid")
        })
    });
}

fn bench_netsim_lowering(c: &mut Criterion) {
    let w = BenchWorld::simics(12, 4, BLOCK);
    let ctx = w.ctx(vec![BlockId(0)]);
    let plan = RprPlanner::new().plan(&ctx);
    c.bench_function("netsim/simulate_rpr_12_4", |b| {
        b.iter(|| black_box(rpr_core::simulate(&plan, &ctx)))
    });
}

criterion_group!(
    benches,
    bench_single_failure_planning,
    bench_multi_failure_planning,
    bench_plan_validation,
    bench_netsim_lowering
);
criterion_main!(benches);
