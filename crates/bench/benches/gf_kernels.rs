//! Throughput of the GF(2^8) slice kernels — the paper's `t_nd` vs `t_wd`
//! gap starts here: XOR folds vs table-lookup Galois folds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

const SIZES: [usize; 3] = [4 * 1024, 256 * 1024, 4 * 1024 * 1024];

fn data(len: usize, seed: u8) -> Vec<u8> {
    (0..len)
        .map(|i| (i as u8).wrapping_mul(31).wrapping_add(seed))
        .collect()
}

fn bench_xor_slice(c: &mut Criterion) {
    let mut g = c.benchmark_group("gf/xor_slice");
    for &len in &SIZES {
        let src = data(len, 1);
        let mut dst = data(len, 2);
        g.throughput(Throughput::Bytes(len as u64));
        g.bench_with_input(BenchmarkId::from_parameter(len), &len, |b, _| {
            b.iter(|| rpr_gf::xor_slice(black_box(&mut dst), black_box(&src)))
        });
    }
    g.finish();
}

fn bench_mul_acc_slice(c: &mut Criterion) {
    let mut g = c.benchmark_group("gf/mul_acc_slice");
    for &len in &SIZES {
        let src = data(len, 3);
        let mut dst = data(len, 4);
        g.throughput(Throughput::Bytes(len as u64));
        g.bench_with_input(BenchmarkId::from_parameter(len), &len, |b, _| {
            b.iter(|| rpr_gf::mul_acc_slice(black_box(0x53), black_box(&src), black_box(&mut dst)))
        });
    }
    g.finish();
}

fn bench_lin_comb(c: &mut Criterion) {
    let mut g = c.benchmark_group("gf/lin_comb_4way");
    for &len in &SIZES {
        let blocks: Vec<Vec<u8>> = (0..4u8).map(|i| data(len, i)).collect();
        let refs: Vec<&[u8]> = blocks.iter().map(|b| b.as_slice()).collect();
        let mut out = vec![0u8; len];
        g.throughput(Throughput::Bytes(4 * len as u64));
        g.bench_with_input(BenchmarkId::from_parameter(len), &len, |b, _| {
            b.iter(|| rpr_gf::lin_comb(black_box(&[3, 1, 7, 1]), black_box(&refs), &mut out))
        });
    }
    g.finish();
}

/// One `gf/mul_acc_tier/<tier>/<len>` entry per kernel tier this host can
/// run, pinned with `mul_acc_slice_on` rather than the dispatcher. The
/// snapshot gate reads these to assert the SIMD-over-scalar speedup, and the
/// spread between tiers is the perf trajectory PERFORMANCE.md narrates.
fn bench_mul_acc_per_tier(c: &mut Criterion) {
    let mut g = c.benchmark_group("gf/mul_acc_tier");
    for tier in rpr_gf::available_tiers() {
        for &len in &SIZES {
            let src = data(len, 5);
            let mut dst = data(len, 6);
            g.throughput(Throughput::Bytes(len as u64));
            g.bench_with_input(
                BenchmarkId::new(tier.name(), len),
                &len,
                |b, _| {
                    b.iter(|| {
                        rpr_gf::kernels::mul_acc_slice_on(
                            tier,
                            black_box(0x53),
                            black_box(&src),
                            black_box(&mut dst),
                        )
                    })
                },
            );
        }
    }
    g.finish();
}

fn bench_scalar_mul(c: &mut Criterion) {
    c.bench_function("gf/scalar_mul_table", |b| {
        b.iter(|| {
            let mut acc = 0u8;
            for x in 0..=255u8 {
                acc ^= rpr_gf::mul(black_box(x), black_box(0xA7));
            }
            acc
        })
    });
}

criterion_group!(
    benches,
    bench_xor_slice,
    bench_mul_acc_slice,
    bench_mul_acc_per_tier,
    bench_lin_comb,
    bench_scalar_mul
);
criterion_main!(benches);
