//! Fleet-scheduler benchmarks: raw admission throughput of
//! `schedule_fleet` over a pre-built 10k-stripe backlog — the index
//! pop/requeue path plus arbiter admit/release, with the per-stripe
//! simulation cost factored out.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rpr_netsim::Network;
use rpr_obs::NoopRecorder;
use rpr_sched::{schedule_fleet, BandwidthArbiter, Demand, FleetJob};
use rpr_topology::{BandwidthProfile, NodeId, Topology};
use std::hint::black_box;

const STRIPES: u32 = 10_000;

/// A seeded 10k-job backlog with random levels, durations, and one
/// cross-uplink demand each, on a 16-rack cell.
fn backlog() -> (Network, Vec<FleetJob>, Vec<Demand>) {
    let net = Network::new(
        Topology::uniform(16, 8),
        BandwidthProfile::simics_default(16),
    );
    let cross = net.cross_class_rate(NodeId(0));
    let nodes = 16 * 8;
    let mut s = 0x9E37_79B9_7F4A_7C15u64;
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    let jobs: Vec<FleetJob> = (0..STRIPES)
        .map(|i| FleetJob {
            stripe: i,
            level: (next() % 3 + 1) as usize,
            duration: (next() % 900 + 100) as f64 / 100.0,
            arrival: 0.0,
            cross_bytes: 256 << 20,
            inner_bytes: 512 << 20,
        })
        .collect();
    let demands: Vec<Demand> = (0..STRIPES)
        .map(|_| Demand {
            entries: vec![(
                BandwidthArbiter::uplink((next() % nodes) as usize),
                (next() % 100 + 1) as f64 / 100.0 * cross,
            )],
        })
        .collect();
    (net, jobs, demands)
}

/// Drain the whole backlog through the scheduler; one element = one
/// admitted-and-completed stripe.
fn bench_admission_throughput(c: &mut Criterion) {
    let (net, jobs, demands) = backlog();
    let mut g = c.benchmark_group("fleet");
    g.throughput(Throughput::Elements(STRIPES as u64));
    g.bench_function("admission_throughput", |b| {
        b.iter(|| {
            let mut arb = BandwidthArbiter::new(&net);
            black_box(schedule_fleet(
                &jobs,
                &mut |i| demands[i].clone(),
                &mut arb,
                &NoopRecorder,
            ))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_admission_throughput);
criterion_main!(benches);
