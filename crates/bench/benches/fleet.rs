//! Fleet-scheduler benchmarks: raw admission throughput of
//! `schedule_fleet` over a pre-built 10k-stripe backlog — the index
//! pop/requeue path plus arbiter admit/release, with the per-stripe
//! simulation cost factored out.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rpr_faults::ChurnProcess;
use rpr_netsim::Network;
use rpr_obs::NoopRecorder;
use rpr_sched::{
    drain_fleet, schedule_fleet, BandwidthArbiter, ChurnOptions, Demand, DrainOptions, FleetJob,
    JobCost,
};
use rpr_topology::{BandwidthProfile, NodeId, Topology};
use std::hint::black_box;

const STRIPES: u32 = 10_000;

/// A seeded 10k-job backlog with random levels, durations, and one
/// cross-uplink demand each, on a 16-rack cell.
fn backlog() -> (Network, Vec<FleetJob>, Vec<Demand>) {
    let net = Network::new(
        Topology::uniform(16, 8),
        BandwidthProfile::simics_default(16),
    );
    let cross = net.cross_class_rate(NodeId(0));
    let nodes = 16 * 8;
    let mut s = 0x9E37_79B9_7F4A_7C15u64;
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    let jobs: Vec<FleetJob> = (0..STRIPES)
        .map(|i| FleetJob {
            stripe: i,
            level: (next() % 3 + 1) as usize,
            duration: (next() % 900 + 100) as f64 / 100.0,
            arrival: 0.0,
            cross_bytes: 256 << 20,
            inner_bytes: 512 << 20,
        })
        .collect();
    let demands: Vec<Demand> = (0..STRIPES)
        .map(|_| Demand {
            entries: vec![(
                BandwidthArbiter::uplink((next() % nodes) as usize),
                (next() % 100 + 1) as f64 / 100.0 * cross,
            )],
        })
        .collect();
    (net, jobs, demands)
}

/// Drain the whole backlog through the scheduler; one element = one
/// admitted-and-completed stripe.
fn bench_admission_throughput(c: &mut Criterion) {
    let (net, jobs, demands) = backlog();
    let mut g = c.benchmark_group("fleet");
    g.throughput(Throughput::Elements(STRIPES as u64));
    g.bench_function("admission_throughput", |b| {
        b.iter(|| {
            let mut arb = BandwidthArbiter::new(&net);
            black_box(schedule_fleet(
                &jobs,
                &mut |i| demands[i].clone(),
                &mut arb,
                &NoopRecorder,
            ))
        })
    });
    g.finish();
}

/// Same backlog drained with a live churn stream: Poisson arrivals land
/// extra failures on queued stripes, escalations requeue them, and
/// stripes pushed past the loss level move to the loss ledger — the
/// escalation/loss bookkeeping benchmarked on top of raw admission.
fn bench_churn_drain(c: &mut Criterion) {
    let (net, jobs, demands) = backlog();
    let mut g = c.benchmark_group("fleet");
    g.throughput(Throughput::Elements(STRIPES as u64));
    g.bench_function("churn_drain", |b| {
        b.iter(|| {
            let mut arb = BandwidthArbiter::new(&net);
            let mut cost_of = |i: usize, _level: usize| JobCost {
                duration: jobs[i].duration,
                cross_bytes: jobs[i].cross_bytes,
                inner_bytes: jobs[i].inner_bytes,
                demand: demands[i].clone(),
            };
            black_box(drain_fleet(
                &jobs,
                &mut cost_of,
                &mut arb,
                DrainOptions {
                    churn: Some(ChurnOptions {
                        process: ChurnProcess::new(0xC0FFEE, 0.5),
                        max_level: 3,
                        escalate: true,
                    }),
                    journal: None,
                },
                &NoopRecorder,
            ))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_admission_throughput, bench_churn_drain);
criterion_main!(benches);
