//! One benchmark per paper table/figure: each measures the code path that
//! regenerates the corresponding artifact (scaled down so `cargo bench`
//! stays tractable; the full-scale regeneration lives in
//! `rpr-experiments`).

use criterion::{criterion_group, criterion_main, Criterion};
use rpr_bench::BenchWorld;
use rpr_codec::{BlockId, CodeParams};
use rpr_core::analysis::{rpr_repair_time, traditional_repair_time, AnalysisParams};
use rpr_core::{simulate, CarPlanner, RepairPlanner, RprPlanner, TraditionalPlanner};
use std::hint::black_box;

const SIM_BLOCK: u64 = 256 << 20;
/// Execution benches use small blocks and fast links so one iteration is
/// tens of milliseconds rather than seconds.
const EXEC_BLOCK: u64 = 64 * 1024;

fn exec_world(n: usize, k: usize) -> BenchWorld {
    let mut w = BenchWorld::simics(n, k, EXEC_BLOCK);
    w.profile = rpr_topology::BandwidthProfile::uniform(w.topo.rack_count(), 100.0e6, 10.0e6);
    w.cost = rpr_core::CostModel::free();
    w
}

fn fig6_theory(c: &mut Criterion) {
    c.bench_function("fig6/closed_forms_all_codes", |b| {
        b.iter(|| {
            let a = AnalysisParams::figure6();
            let mut acc = 0.0;
            for (n, k) in [(4, 2), (6, 2), (8, 2), (6, 3), (8, 4), (12, 4)] {
                let p = CodeParams::new(n, k);
                acc += traditional_repair_time(p, a) + rpr_repair_time(p, a);
            }
            black_box(acc)
        })
    });
}

fn fig7_fig8_single_failure_sim(c: &mut Criterion) {
    let w = BenchWorld::simics(12, 4, SIM_BLOCK);
    let mut g = c.benchmark_group("fig7_fig8/single_failure_12_4");
    for (name, planner) in [
        ("tra", &TraditionalPlanner::new() as &dyn RepairPlanner),
        ("car", &CarPlanner::new()),
        ("rpr", &RprPlanner::new()),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let ctx = w.ctx(vec![BlockId(0)]);
                let plan = planner.plan(&ctx);
                black_box(simulate(&plan, &ctx).repair_time)
            })
        });
    }
    g.finish();
}

fn fig9_fig10_multi_failure_sim(c: &mut Criterion) {
    let w = BenchWorld::simics(8, 4, SIM_BLOCK);
    let mut g = c.benchmark_group("fig9_fig10/multi_failure_8_4_2");
    for (name, planner) in [
        ("tra", &TraditionalPlanner::new() as &dyn RepairPlanner),
        ("rpr", &RprPlanner::new()),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let ctx = w.ctx(vec![BlockId(0), BlockId(4)]);
                let plan = planner.plan(&ctx);
                black_box(simulate(&plan, &ctx).repair_time)
            })
        });
    }
    g.finish();
}

fn fig11_worst_case_sim(c: &mut Criterion) {
    let w = BenchWorld::simics(6, 2, SIM_BLOCK);
    c.bench_function("fig11/worst_case_6_2_rpr", |b| {
        b.iter(|| {
            let ctx = w.ctx(vec![BlockId(0), BlockId(1)]);
            let plan = RprPlanner::new().plan(&ctx);
            black_box(simulate(&plan, &ctx).repair_time)
        })
    });
}

fn table1_shaper_throughput(c: &mut Criterion) {
    c.bench_function("table1/shaped_path_probe", |b| {
        b.iter(|| {
            // One cross-region path at 1/64 scale, 30 ms probe.
            black_box(rpr_exec::measure_path_throughput(
                51.798 * rpr_topology::MBIT / 64.0,
                0.03,
            ))
        })
    });
}

fn fig12_exec_single(c: &mut Criterion) {
    let w = exec_world(6, 2);
    let stripe = w.stripe(7);
    let mut g = c.benchmark_group("fig12/exec_single_6_2");
    g.sample_size(10);
    for (name, planner) in [
        ("tra", &TraditionalPlanner::new() as &dyn RepairPlanner),
        ("car", &CarPlanner::new()),
        ("rpr", &RprPlanner::new()),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let ctx = w.ctx(vec![BlockId(1)]);
                let plan = planner.plan(&ctx);
                let r = rpr_exec::execute(&plan, &ctx, &stripe);
                assert!(r.verified);
                black_box(r.wall_seconds)
            })
        });
    }
    g.finish();
}

fn fig13_exec_multi(c: &mut Criterion) {
    let w = exec_world(8, 4);
    let stripe = w.stripe(9);
    let mut g = c.benchmark_group("fig13/exec_multi_8_4_2");
    g.sample_size(10);
    g.bench_function("rpr", |b| {
        b.iter(|| {
            let ctx = w.ctx(vec![BlockId(0), BlockId(4)]);
            let plan = RprPlanner::new().plan(&ctx);
            let r = rpr_exec::execute(&plan, &ctx, &stripe);
            assert!(r.verified);
            black_box(r.wall_seconds)
        })
    });
    g.finish();
}

fn fig14_exec_worst(c: &mut Criterion) {
    let w = exec_world(6, 2);
    let stripe = w.stripe(13);
    let mut g = c.benchmark_group("fig14/exec_worst_6_2");
    g.sample_size(10);
    g.bench_function("rpr", |b| {
        b.iter(|| {
            let ctx = w.ctx(vec![BlockId(0), BlockId(1)]);
            let plan = RprPlanner::new().plan(&ctx);
            let r = rpr_exec::execute(&plan, &ctx, &stripe);
            assert!(r.verified);
            black_box(r.wall_seconds)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    fig6_theory,
    fig7_fig8_single_failure_sim,
    fig9_fig10_multi_failure_sim,
    fig11_worst_case_sim,
    table1_shaper_throughput,
    fig12_exec_single,
    fig13_exec_multi,
    fig14_exec_worst
);
criterion_main!(benches);
