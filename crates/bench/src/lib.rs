//! Shared fixtures for the Criterion benchmark suite.

use rpr_codec::{BlockId, CodeParams, StripeCodec};
use rpr_core::{CostModel, RepairContext};
use rpr_topology::{cluster_for, BandwidthProfile, Placement, PlacementPolicy, Topology};

/// A self-owned benchmark fixture (codec + cluster + placement + profile).
pub struct BenchWorld {
    /// The stripe codec.
    pub codec: StripeCodec,
    /// The cluster topology.
    pub topo: Topology,
    /// Block placement.
    pub placement: Placement,
    /// Link rates.
    pub profile: BandwidthProfile,
    /// Bytes per block.
    pub block_bytes: u64,
    /// Decode-cost model.
    pub cost: CostModel,
}

impl BenchWorld {
    /// The paper's Simics-style cluster for an `(n, k)` code.
    pub fn simics(n: usize, k: usize, block_bytes: u64) -> BenchWorld {
        let params = CodeParams::new(n, k);
        let topo = cluster_for(params, 1, 1);
        let placement = Placement::by_policy(PlacementPolicy::RprPreplaced, params, &topo);
        let profile = BandwidthProfile::simics_default(topo.rack_count());
        BenchWorld {
            codec: StripeCodec::new(params),
            topo,
            placement,
            profile,
            block_bytes,
            cost: CostModel::simics().scaled_for_block(block_bytes),
        }
    }

    /// A context for a set of failed blocks.
    pub fn ctx(&self, failed: Vec<BlockId>) -> RepairContext<'_> {
        RepairContext::new(
            &self.codec,
            &self.topo,
            &self.placement,
            failed,
            self.block_bytes,
            &self.profile,
            self.cost,
        )
    }

    /// Deterministic stripe contents for execution benches.
    pub fn stripe(&self, seed: u64) -> Vec<Vec<u8>> {
        let n = self.codec.params().n;
        let mut s = seed | 1;
        let data: Vec<Vec<u8>> = (0..n)
            .map(|_| {
                (0..self.block_bytes)
                    .map(|_| {
                        s = s.wrapping_mul(6364136223846793005).wrapping_add(99991);
                        (s >> 33) as u8
                    })
                    .collect()
            })
            .collect();
        let refs: Vec<&[u8]> = data.iter().map(|b| b.as_slice()).collect();
        self.codec.encode_stripe(&refs)
    }
}
