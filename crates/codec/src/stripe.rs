//! The [`StripeCodec`]: encoding, full decoding, and repair-equation
//! derivation for one RS `(n, k)` configuration.

use crate::{generator_from_coding, BlockId, CodeParams, RepairEquation};
use rpr_gf as gf;
use rpr_linalg::{rs_coding_matrix, Matrix};

/// A Reed-Solomon encoder/decoder for one `(n, k)` configuration.
///
/// Holds the `k × n` coding matrix (first row all ones, see
/// [`rs_coding_matrix`]) and the stacked `(n+k) × n` generator `[I; C]`.
///
/// ```
/// use rpr_codec::{BlockId, CodeParams, StripeCodec};
///
/// let codec = StripeCodec::new(CodeParams::new(4, 2));
/// let data: Vec<Vec<u8>> = (0..4).map(|i| vec![i as u8; 64]).collect();
/// let refs: Vec<&[u8]> = data.iter().map(|b| b.as_slice()).collect();
/// let stripe = codec.encode_stripe(&refs);
///
/// // Lose d1 and p0, decode from the remaining four blocks.
/// let survivors: Vec<(BlockId, &[u8])> = [0, 2, 3, 5]
///     .map(|i| (BlockId(i), stripe[i].as_slice()))
///     .to_vec();
/// let recovered = codec.decode(&survivors, &[BlockId(1), BlockId(4)]);
/// assert_eq!(recovered[0], stripe[1]);
/// assert_eq!(recovered[1], stripe[4]);
/// ```
#[derive(Clone, Debug)]
pub struct StripeCodec {
    params: CodeParams,
    coding: Matrix,
    generator: Matrix,
}

impl StripeCodec {
    /// Create a codec with the default (column-normalized Cauchy) coding
    /// matrix: MDS with an all-ones first parity row.
    pub fn new(params: CodeParams) -> StripeCodec {
        let coding = rs_coding_matrix(params.n, params.k);
        let generator = generator_from_coding(params.n, &coding);
        StripeCodec {
            params,
            coding,
            generator,
        }
    }

    /// Create a codec from a caller-supplied `k × n` coding matrix
    /// (for ablations — e.g. the Jerasure-style Vandermonde systematic
    /// matrix).
    ///
    /// # Panics
    /// Panics if the matrix dimensions do not match `params`.
    pub fn with_coding_matrix(params: CodeParams, coding: Matrix) -> StripeCodec {
        assert_eq!(coding.rows(), params.k, "coding matrix must be k x n");
        assert_eq!(coding.cols(), params.n, "coding matrix must be k x n");
        let generator = generator_from_coding(params.n, &coding);
        StripeCodec {
            params,
            coding,
            generator,
        }
    }

    /// The code geometry.
    #[inline]
    pub fn params(&self) -> CodeParams {
        self.params
    }

    /// The `k × n` coding matrix.
    #[inline]
    pub fn coding_matrix(&self) -> &Matrix {
        &self.coding
    }

    /// The `(n+k) × n` generator matrix `[I; C]`.
    #[inline]
    pub fn generator(&self) -> &Matrix {
        &self.generator
    }

    /// True if the first parity row is all ones, enabling the eq.-6 XOR
    /// repair path for single data-block failures.
    pub fn p0_is_xor_row(&self) -> bool {
        (0..self.params.n).all(|j| self.coding[(0, j)] == 1)
    }

    /// Encode: produce the `k` parity blocks from the `n` data blocks.
    ///
    /// All `k` parity rows are computed in one cache-blocked multi-row
    /// pass ([`gf::lin_comb_multi`]): each data span is loaded once and
    /// folded into every parity row while resident, instead of streaming
    /// the whole stripe through cache once per parity.
    ///
    /// # Panics
    /// Panics if `data.len() != n` or block lengths differ.
    pub fn encode(&self, data: &[&[u8]]) -> Vec<Vec<u8>> {
        let p = &self.params;
        assert_eq!(data.len(), p.n, "encode: need exactly n data blocks");
        let len = data[0].len();
        assert!(
            data.iter().all(|b| b.len() == len),
            "encode: unequal block lengths"
        );
        let rows: Vec<&[u8]> = (0..p.k).map(|i| self.coding.row(i)).collect();
        let mut parities: Vec<Vec<u8>> = (0..p.k).map(|_| vec![0u8; len]).collect();
        let mut outs: Vec<&mut [u8]> = parities.iter_mut().map(|b| b.as_mut_slice()).collect();
        gf::lin_comb_multi(&rows, data, &mut outs);
        parities
    }

    /// Encode a full stripe: returns `n + k` blocks (data copied first).
    pub fn encode_stripe(&self, data: &[&[u8]]) -> Vec<Vec<u8>> {
        let mut stripe: Vec<Vec<u8>> = data.iter().map(|b| b.to_vec()).collect();
        stripe.extend(self.encode(data));
        stripe
    }

    /// Full ("traditional") decode: reconstruct the listed `lost` blocks
    /// from exactly `n` surviving blocks.
    ///
    /// This is the paper's traditional repair math (§2.1.1): build `M'` from
    /// the survivors' generator rows, invert it, recover the data, re-encode
    /// any lost parity.
    ///
    /// # Panics
    /// Panics if fewer than `n` survivors are supplied, block lengths are
    /// unequal, survivors overlap `lost`, or ids are out of range.
    pub fn decode(&self, survivors: &[(BlockId, &[u8])], lost: &[BlockId]) -> Vec<Vec<u8>> {
        let p = &self.params;
        assert!(
            survivors.len() >= p.n,
            "decode: need at least n survivors ({} < {})",
            survivors.len(),
            p.n
        );
        for (id, _) in survivors {
            assert!(id.0 < p.total(), "decode: survivor id out of range");
            assert!(!lost.contains(id), "decode: survivor listed as lost");
        }
        let chosen = &survivors[..p.n];
        let len = chosen[0].1.len();
        assert!(
            chosen.iter().all(|(_, b)| b.len() == len),
            "decode: unequal block lengths"
        );

        let rows: Vec<usize> = chosen.iter().map(|(id, _)| id.0).collect();
        let sub = self.generator.select_rows(&rows);
        let inv = sub
            .inverse()
            .expect("any n rows of an MDS generator are invertible");

        // data_j = Σ_i inv[j][i] * chosen_i — all n recovered rows in one
        // cache-blocked multi-row pass over the survivors.
        let blocks: Vec<&[u8]> = chosen.iter().map(|(_, b)| *b).collect();
        let inv_rows: Vec<&[u8]> = (0..p.n).map(|j| inv.row(j)).collect();
        let mut data: Vec<Vec<u8>> = (0..p.n).map(|_| vec![0u8; len]).collect();
        {
            let mut outs: Vec<&mut [u8]> = data.iter_mut().map(|b| b.as_mut_slice()).collect();
            gf::lin_comb_multi(&inv_rows, &blocks, &mut outs);
        }

        let data_refs: Vec<&[u8]> = data.iter().map(|b| b.as_slice()).collect();
        lost.iter()
            .map(|id| {
                assert!(id.0 < p.total(), "decode: lost id out of range");
                if id.is_data(p) {
                    data[id.0].clone()
                } else {
                    let i = id.0 - p.n;
                    let mut parity = vec![0u8; len];
                    gf::lin_comb(self.coding.row(i), &data_refs, &mut parity);
                    parity
                }
            })
            .collect()
    }

    /// Derive the repair equations (paper eq. 8): for each lost block, the
    /// coefficient on each of the `n` chosen helper blocks such that
    /// `lost = Σ coeff_h * helper_h`.
    ///
    /// Returns one [`RepairEquation`] per lost block, in input order. Zero
    /// coefficients are kept out of the term list (the corresponding helper
    /// is simply not needed for that equation).
    ///
    /// # Panics
    /// Panics unless exactly `n` distinct helpers are given, helpers and
    /// lost are disjoint, and all ids are in range.
    pub fn repair_equations(&self, lost: &[BlockId], helpers: &[BlockId]) -> Vec<RepairEquation> {
        let p = &self.params;
        assert_eq!(
            helpers.len(),
            p.n,
            "repair_equations: need exactly n helpers"
        );
        assert!(!lost.is_empty(), "repair_equations: nothing lost");
        assert!(
            lost.len() <= p.k,
            "repair_equations: more than k losses are unrecoverable"
        );
        let mut seen = vec![false; p.total()];
        for h in helpers {
            assert!(h.0 < p.total(), "repair_equations: helper out of range");
            assert!(!seen[h.0], "repair_equations: duplicate helper");
            seen[h.0] = true;
            assert!(!lost.contains(h), "repair_equations: helper listed as lost");
        }

        let rows: Vec<usize> = helpers.iter().map(|h| h.0).collect();
        let sub = self.generator.select_rows(&rows);
        let inv = sub
            .inverse()
            .expect("any n rows of an MDS generator are invertible");

        lost.iter()
            .map(|&target| {
                assert!(target.0 < p.total(), "repair_equations: lost id range");
                // coeff vector c = g_target · inv, where g_target is the
                // target's generator row (so that c · helpers = target).
                let g = self.generator.row(target.0);
                let coeffs: Vec<u8> = (0..p.n)
                    .map(|i| (0..p.n).fold(0u8, |acc, j| acc ^ gf::mul(g[j], inv[(j, i)])))
                    .collect();
                let terms: Vec<(BlockId, u8)> = helpers
                    .iter()
                    .zip(&coeffs)
                    .filter(|(_, &c)| c != 0)
                    .map(|(&h, &c)| (h, c))
                    .collect();
                RepairEquation::new(target, terms)
            })
            .collect()
    }

    /// Verify a repair equation symbolically: the weighted sum of the
    /// helpers' generator rows must equal the target's generator row. This
    /// is the data-consistency invariant every plan validator relies on.
    pub fn equation_is_valid(&self, eq: &RepairEquation) -> bool {
        let p = &self.params;
        if eq.target.0 >= p.total() {
            return false;
        }
        let n = p.n;
        let mut acc = vec![0u8; n];
        for &(h, c) in &eq.terms {
            if h.0 >= p.total() || c == 0 || h == eq.target {
                return false;
            }
            let row = self.generator.row(h.0);
            for j in 0..n {
                acc[j] ^= gf::mul(c, row[j]);
            }
        }
        acc == self.generator.row(eq.target.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rand_blocks(n: usize, len: usize, seed: u64) -> Vec<Vec<u8>> {
        let mut s = seed | 1;
        (0..n)
            .map(|_| {
                (0..len)
                    .map(|_| {
                        s = s
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        (s >> 33) as u8
                    })
                    .collect()
            })
            .collect()
    }

    fn codec(n: usize, k: usize) -> StripeCodec {
        StripeCodec::new(CodeParams::new(n, k))
    }

    #[test]
    fn encode_then_decode_every_single_loss() {
        let c = codec(4, 2);
        let data = rand_blocks(4, 64, 42);
        let refs: Vec<&[u8]> = data.iter().map(|b| b.as_slice()).collect();
        let stripe = c.encode_stripe(&refs);
        assert_eq!(stripe.len(), 6);
        for lost in 0..6 {
            let survivors: Vec<(BlockId, &[u8])> = (0..6)
                .filter(|&i| i != lost)
                .map(|i| (BlockId(i), stripe[i].as_slice()))
                .collect();
            let rec = c.decode(&survivors, &[BlockId(lost)]);
            assert_eq!(rec[0], stripe[lost], "lost block {lost}");
        }
    }

    #[test]
    fn decode_recovers_k_simultaneous_losses() {
        let c = codec(6, 3);
        let data = rand_blocks(6, 32, 7);
        let refs: Vec<&[u8]> = data.iter().map(|b| b.as_slice()).collect();
        let stripe = c.encode_stripe(&refs);
        // Lose d1, d4 and p2 at once (the maximum k = 3).
        let lost = [BlockId(1), BlockId(4), BlockId(8)];
        let survivors: Vec<(BlockId, &[u8])> = (0..9)
            .filter(|i| !lost.iter().any(|l| l.0 == *i))
            .map(|i| (BlockId(i), stripe[i].as_slice()))
            .collect();
        let rec = c.decode(&survivors, &lost);
        for (r, l) in rec.iter().zip(&lost) {
            assert_eq!(r, &stripe[l.0], "block {:?}", l);
        }
    }

    #[test]
    fn p0_equals_xor_of_data() {
        let c = codec(5, 3);
        assert!(c.p0_is_xor_row());
        let data = rand_blocks(5, 16, 3);
        let refs: Vec<&[u8]> = data.iter().map(|b| b.as_slice()).collect();
        let parities = c.encode(&refs);
        let mut xor = vec![0u8; 16];
        for d in &data {
            gf::xor_slice(&mut xor, d);
        }
        assert_eq!(parities[0], xor, "paper eq. 2: P0 = XOR of all data");
    }

    #[test]
    fn repair_equation_for_single_data_loss_with_p0_is_xor_only() {
        // Paper §3.3: losing one data block and repairing with the other
        // data blocks + P0 needs no decoding matrix — all coefficients 1.
        let c = codec(6, 2);
        let lost = BlockId(2);
        let mut helpers: Vec<BlockId> = (0..6).filter(|&i| i != 2).map(BlockId).collect();
        helpers.push(BlockId::p0(&c.params()));
        let eqs = c.repair_equations(&[lost], &helpers);
        assert_eq!(eqs.len(), 1);
        assert!(
            eqs[0].is_xor_only(),
            "eq 6 must be a pure XOR: {:?}",
            eqs[0]
        );
        assert!(c.equation_is_valid(&eqs[0]));
        assert_eq!(eqs[0].terms.len(), 6);
    }

    #[test]
    fn repair_equations_reconstruct_actual_bytes() {
        let c = codec(8, 4);
        let data = rand_blocks(8, 48, 99);
        let refs: Vec<&[u8]> = data.iter().map(|b| b.as_slice()).collect();
        let stripe = c.encode_stripe(&refs);

        let lost = [BlockId(0), BlockId(5), BlockId(9)];
        let helpers: Vec<BlockId> = (0..12)
            .map(BlockId)
            .filter(|b| !lost.contains(b))
            .take(8)
            .collect();
        let eqs = c.repair_equations(&lost, &helpers);
        for (eq, l) in eqs.iter().zip(&lost) {
            assert!(c.equation_is_valid(eq));
            // Apply the equation to the real bytes.
            let mut out = vec![0u8; 48];
            for &(h, coeff) in &eq.terms {
                gf::mul_acc_slice(coeff, &stripe[h.0], &mut out);
            }
            assert_eq!(out, stripe[l.0], "equation for {:?}", l);
        }
    }

    #[test]
    fn equation_validity_rejects_corruption() {
        let c = codec(4, 2);
        let helpers: Vec<BlockId> = vec![BlockId(1), BlockId(2), BlockId(3), BlockId(4)];
        let mut eqs = c.repair_equations(&[BlockId(0)], &helpers);
        assert!(c.equation_is_valid(&eqs[0]));
        // Corrupt one coefficient.
        eqs[0].terms[0].1 ^= 1;
        if eqs[0].terms[0].1 == 0 {
            eqs[0].terms[0].1 = 2;
        }
        assert!(!c.equation_is_valid(&eqs[0]));
    }

    #[test]
    fn vandermonde_codec_roundtrips_too() {
        let params = CodeParams::new(6, 3);
        let coding = rpr_linalg::vandermonde_systematic(6, 3);
        let c = StripeCodec::with_coding_matrix(params, coding);
        let data = rand_blocks(6, 24, 5);
        let refs: Vec<&[u8]> = data.iter().map(|b| b.as_slice()).collect();
        let stripe = c.encode_stripe(&refs);
        let survivors: Vec<(BlockId, &[u8])> =
            (3..9).map(|i| (BlockId(i), stripe[i].as_slice())).collect();
        let rec = c.decode(&survivors, &[BlockId(0), BlockId(1), BlockId(2)]);
        assert_eq!(rec[0], stripe[0]);
        assert_eq!(rec[1], stripe[1]);
        assert_eq!(rec[2], stripe[2]);
    }

    #[test]
    #[should_panic(expected = "need exactly n helpers")]
    fn repair_equations_require_n_helpers() {
        let c = codec(4, 2);
        c.repair_equations(&[BlockId(0)], &[BlockId(1), BlockId(2)]);
    }

    #[test]
    #[should_panic(expected = "duplicate helper")]
    fn repair_equations_reject_duplicates() {
        let c = codec(4, 2);
        c.repair_equations(
            &[BlockId(0)],
            &[BlockId(1), BlockId(1), BlockId(2), BlockId(3)],
        );
    }

    #[test]
    #[should_panic(expected = "more than k losses")]
    fn repair_equations_reject_unrecoverable() {
        let c = codec(4, 2);
        c.repair_equations(
            &[BlockId(0), BlockId(1), BlockId(2)],
            &[BlockId(3), BlockId(4), BlockId(5), BlockId(2)],
        );
    }
}
