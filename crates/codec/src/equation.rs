//! Repair equations and the incremental [`PartialDecoder`].

use crate::BlockId;
use rpr_gf as gf;

/// One repair equation (one row of paper eq. 8/9): the `target` block equals
/// the GF(2^8) linear combination of the `terms`.
///
/// Terms carry nonzero coefficients only. The planners split an equation's
/// terms by rack; each rack's share is partially decoded into an
/// *intermediate block* (`I` in the paper) and intermediates are pure-XOR
/// merged, because every term's coefficient is applied exactly once at the
/// leaf.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RepairEquation {
    /// The block being reconstructed.
    pub target: BlockId,
    /// `(helper, coefficient)` pairs; coefficients are nonzero.
    pub terms: Vec<(BlockId, u8)>,
}

impl RepairEquation {
    /// Create an equation, dropping zero-coefficient terms.
    ///
    /// # Panics
    /// Panics if the term list is empty after filtering or contains a
    /// duplicate helper.
    pub fn new(target: BlockId, terms: Vec<(BlockId, u8)>) -> RepairEquation {
        let terms: Vec<(BlockId, u8)> = terms.into_iter().filter(|&(_, c)| c != 0).collect();
        assert!(!terms.is_empty(), "RepairEquation: no nonzero terms");
        let mut ids: Vec<usize> = terms.iter().map(|(b, _)| b.0).collect();
        ids.sort_unstable();
        assert!(
            ids.windows(2).all(|w| w[0] != w[1]),
            "RepairEquation: duplicate helper"
        );
        RepairEquation { target, terms }
    }

    /// True if all coefficients are 1 — the eq.-6 matrix-free XOR path.
    pub fn is_xor_only(&self) -> bool {
        self.terms.iter().all(|&(_, c)| c == 1)
    }

    /// The helpers referenced by this equation.
    pub fn helpers(&self) -> impl Iterator<Item = BlockId> + '_ {
        self.terms.iter().map(|&(b, _)| b)
    }

    /// Coefficient on a given helper, if present.
    pub fn coefficient(&self, helper: BlockId) -> Option<u8> {
        self.terms
            .iter()
            .find(|&&(b, _)| b == helper)
            .map(|&(_, c)| c)
    }

    /// Restrict the equation to a subset of helpers (e.g. the blocks hosted
    /// by one rack). Returns `None` if no term survives.
    pub fn restrict_to(&self, helpers: &[BlockId]) -> Option<RepairEquation> {
        let terms: Vec<(BlockId, u8)> = self
            .terms
            .iter()
            .filter(|(b, _)| helpers.contains(b))
            .copied()
            .collect();
        if terms.is_empty() {
            None
        } else {
            Some(RepairEquation {
                target: self.target,
                terms,
            })
        }
    }
}

/// Incremental partial decoder: an accumulator over coefficient-scaled
/// blocks (paper §2.1.2).
///
/// The algebraic contract — verified by property tests — is that any
/// grouping of the same `(coefficient, block)` multiset into
/// `PartialDecoder`s merged in any order yields the same final buffer. This
/// is precisely what lets racks combine locally and the Cross scheduler
/// merge intermediates at arbitrary peer racks.
#[derive(Clone, Debug)]
pub struct PartialDecoder {
    acc: Vec<u8>,
    blocks_folded: usize,
    gf_mults: usize,
}

impl PartialDecoder {
    /// A fresh accumulator for blocks of `len` bytes.
    pub fn new(len: usize) -> PartialDecoder {
        PartialDecoder {
            acc: vec![0u8; len],
            blocks_folded: 0,
            gf_mults: 0,
        }
    }

    /// Fold in `coeff * block`.
    ///
    /// # Panics
    /// Panics on length mismatch or a zero coefficient (zero terms must be
    /// filtered out upstream — folding them would hide an equation bug).
    pub fn fold(&mut self, coeff: u8, block: &[u8]) {
        assert_eq!(block.len(), self.acc.len(), "PartialDecoder: length");
        assert!(coeff != 0, "PartialDecoder: zero coefficient");
        gf::mul_acc_slice(coeff, block, &mut self.acc);
        self.blocks_folded += 1;
        if coeff != 1 {
            self.gf_mults += 1;
        }
    }

    /// Merge another intermediate (pure XOR — coefficients were applied at
    /// the leaves).
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn merge(&mut self, other: &PartialDecoder) {
        assert_eq!(other.acc.len(), self.acc.len(), "PartialDecoder: length");
        gf::xor_slice(&mut self.acc, &other.acc);
        self.blocks_folded += other.blocks_folded;
        self.gf_mults += other.gf_mults;
    }

    /// Merge a raw intermediate buffer (as received from the network).
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn merge_bytes(&mut self, other: &[u8]) {
        assert_eq!(other.len(), self.acc.len(), "PartialDecoder: length");
        gf::xor_slice(&mut self.acc, other);
    }

    /// Number of leaf blocks folded so far.
    pub fn blocks_folded(&self) -> usize {
        self.blocks_folded
    }

    /// Number of folds that required a Galois multiplication (coefficient
    /// ≠ 1). Zero means the whole combination ran on the XOR fast path.
    pub fn gf_mults(&self) -> usize {
        self.gf_mults
    }

    /// Current intermediate value.
    pub fn as_bytes(&self) -> &[u8] {
        &self.acc
    }

    /// Consume the accumulator, returning the intermediate block.
    pub fn finish(self) -> Vec<u8> {
        self.acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_filters_zero_terms() {
        let eq = RepairEquation::new(
            BlockId(0),
            vec![(BlockId(1), 0), (BlockId(2), 5), (BlockId(3), 0)],
        );
        assert_eq!(eq.terms, vec![(BlockId(2), 5)]);
    }

    #[test]
    #[should_panic(expected = "no nonzero terms")]
    fn new_rejects_empty() {
        RepairEquation::new(BlockId(0), vec![(BlockId(1), 0)]);
    }

    #[test]
    #[should_panic(expected = "duplicate helper")]
    fn new_rejects_duplicate_helpers() {
        RepairEquation::new(BlockId(0), vec![(BlockId(1), 2), (BlockId(1), 3)]);
    }

    #[test]
    fn xor_only_and_coefficient_lookup() {
        let eq = RepairEquation::new(BlockId(9), vec![(BlockId(1), 1), (BlockId(2), 1)]);
        assert!(eq.is_xor_only());
        assert_eq!(eq.coefficient(BlockId(2)), Some(1));
        assert_eq!(eq.coefficient(BlockId(7)), None);
        let eq2 = RepairEquation::new(BlockId(9), vec![(BlockId(1), 1), (BlockId(2), 9)]);
        assert!(!eq2.is_xor_only());
        assert_eq!(
            eq2.helpers().collect::<Vec<_>>(),
            vec![BlockId(1), BlockId(2)]
        );
    }

    #[test]
    fn restrict_to_splits_by_rack() {
        let eq = RepairEquation::new(
            BlockId(0),
            vec![(BlockId(1), 3), (BlockId(2), 4), (BlockId(5), 7)],
        );
        let local = eq.restrict_to(&[BlockId(1), BlockId(5)]).unwrap();
        assert_eq!(local.terms, vec![(BlockId(1), 3), (BlockId(5), 7)]);
        assert!(eq.restrict_to(&[BlockId(9)]).is_none());
    }

    #[test]
    fn fold_then_merge_equals_direct_combination() {
        let b1 = vec![1u8; 8];
        let b2: Vec<u8> = (0..8).collect();
        let b3: Vec<u8> = (100..108).collect();

        let mut direct = PartialDecoder::new(8);
        direct.fold(3, &b1);
        direct.fold(1, &b2);
        direct.fold(7, &b3);

        let mut left = PartialDecoder::new(8);
        left.fold(3, &b1);
        let mut right = PartialDecoder::new(8);
        right.fold(7, &b3);
        right.fold(1, &b2);
        left.merge(&right);

        assert_eq!(direct.as_bytes(), left.as_bytes());
        assert_eq!(direct.blocks_folded(), 3);
        assert_eq!(left.blocks_folded(), 3);
        assert_eq!(direct.gf_mults(), 2, "coefficient 1 must not count");
    }

    #[test]
    fn merge_bytes_matches_merge() {
        let b: Vec<u8> = (0..16).collect();
        let mut a1 = PartialDecoder::new(16);
        a1.fold(5, &b);
        let mut a2 = a1.clone();

        let mut other = PartialDecoder::new(16);
        other.fold(9, &b);

        a1.merge(&other);
        a2.merge_bytes(other.as_bytes());
        assert_eq!(a1.as_bytes(), a2.as_bytes());
        assert_eq!(a1.finish(), a2.finish());
    }

    #[test]
    #[should_panic(expected = "zero coefficient")]
    fn fold_rejects_zero_coefficient() {
        PartialDecoder::new(4).fold(0, &[0u8; 4]);
    }
}
