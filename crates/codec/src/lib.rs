//! Systematic Reed-Solomon codec with *repair equations* and *partial
//! decoding*, the coding substrate of the RPR repair scheme.
//!
//! The paper's terminology is used throughout: an RS `(n, k)` code has `n`
//! **data** blocks and `k` **parity** blocks; the `n + k` blocks of one
//! codeword are a **stripe**; any `n` surviving blocks can reconstruct the
//! stripe.
//!
//! Three layers:
//!
//! * [`CodeParams`] / [`BlockId`] — stripe geometry;
//! * [`StripeCodec`] — encode, full decode, and the derivation of
//!   [`RepairEquation`]s: for a set of `z` lost blocks and `n` chosen helper
//!   blocks, the equation set expresses each lost block as a linear
//!   combination of helpers (paper eq. 8). A repair equation is what the
//!   planners distribute across racks;
//! * [`PartialDecoder`] — an incremental accumulator implementing partial
//!   decoding (paper §2.1.2 / eq. 4): coefficient-scaled blocks can be folded
//!   in any grouping or order, so racks can combine locally and merge
//!   intermediates later.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod equation;
mod stripe;

pub use equation::{PartialDecoder, RepairEquation};
pub use stripe::StripeCodec;

use rpr_linalg::Matrix;

/// The `(n, k)` geometry of an RS code: `n` data blocks, `k` parity blocks.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct CodeParams {
    /// Number of data blocks per stripe.
    pub n: usize,
    /// Number of parity blocks per stripe.
    pub k: usize,
}

impl CodeParams {
    /// Create and validate code parameters.
    ///
    /// # Panics
    /// Panics unless `1 <= k`, `1 <= n`, and `n + k <= 256`.
    pub fn new(n: usize, k: usize) -> CodeParams {
        assert!(n >= 1 && k >= 1, "CodeParams: need n, k >= 1");
        assert!(n + k <= 256, "CodeParams: n + k must fit GF(2^8)");
        CodeParams { n, k }
    }

    /// Total number of blocks in a stripe.
    #[inline]
    pub fn total(&self) -> usize {
        self.n + self.k
    }

    /// Number of racks used by the paper's compact placement: `⌈(n+k)/k⌉`
    /// racks with at most `k` blocks each (single-rack fault tolerance).
    #[inline]
    pub fn rack_count(&self) -> usize {
        self.total().div_ceil(self.k)
    }

    /// Iterator over all data block ids.
    pub fn data_blocks(&self) -> impl Iterator<Item = BlockId> {
        (0..self.n).map(BlockId)
    }

    /// Iterator over all parity block ids.
    pub fn parity_blocks(&self) -> impl Iterator<Item = BlockId> {
        (self.n..self.total()).map(BlockId)
    }

    /// Iterator over every block id in the stripe.
    pub fn all_blocks(&self) -> impl Iterator<Item = BlockId> {
        (0..self.total()).map(BlockId)
    }
}

/// Identifies one block position within a stripe: `0..n` are data blocks
/// (`d0..d(n-1)`), `n..n+k` are parity blocks (`p0..p(k-1)`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub usize);

impl BlockId {
    /// True if this id is a data block under `params`.
    #[inline]
    pub fn is_data(&self, params: &CodeParams) -> bool {
        self.0 < params.n
    }

    /// True if this id is a parity block under `params`.
    #[inline]
    pub fn is_parity(&self, params: &CodeParams) -> bool {
        self.0 >= params.n && self.0 < params.total()
    }

    /// The id of the first parity block, `p0` — the block whose coding row
    /// is all ones and which the pre-placement optimization co-locates with
    /// data blocks (§3.3).
    #[inline]
    pub fn p0(params: &CodeParams) -> BlockId {
        BlockId(params.n)
    }

    /// Paper-style name: `d3`, `p0`, …
    pub fn name(&self, params: &CodeParams) -> String {
        if self.is_data(params) {
            format!("d{}", self.0)
        } else {
            format!("p{}", self.0 - params.n)
        }
    }
}

impl core::fmt::Debug for BlockId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// Build the full `(n+k) × n` generator matrix `[I; C]` from a coding
/// matrix.
pub(crate) fn generator_from_coding(n: usize, coding: &Matrix) -> Matrix {
    Matrix::identity(n).vstack(coding)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_geometry() {
        let p = CodeParams::new(6, 2);
        assert_eq!(p.total(), 8);
        assert_eq!(p.rack_count(), 4);
        assert_eq!(p.data_blocks().count(), 6);
        assert_eq!(p.parity_blocks().count(), 2);
        assert_eq!(p.all_blocks().count(), 8);
        // Paper configs and their rack counts (§2.3: q = (n+k)/k).
        for ((n, k), q) in [
            ((4, 2), 3),
            ((6, 2), 4),
            ((8, 2), 5),
            ((6, 3), 3),
            ((8, 4), 3),
            ((12, 4), 4),
        ] {
            assert_eq!(CodeParams::new(n, k).rack_count(), q, "({n},{k})");
        }
    }

    #[test]
    fn block_id_classification() {
        let p = CodeParams::new(4, 2);
        assert!(BlockId(0).is_data(&p));
        assert!(BlockId(3).is_data(&p));
        assert!(!BlockId(4).is_data(&p));
        assert!(BlockId(4).is_parity(&p));
        assert!(BlockId(5).is_parity(&p));
        assert!(!BlockId(6).is_parity(&p), "out of stripe");
        assert_eq!(BlockId::p0(&p), BlockId(4));
        assert_eq!(BlockId(2).name(&p), "d2");
        assert_eq!(BlockId(5).name(&p), "p1");
        assert_eq!(format!("{:?}", BlockId(3)), "b3");
    }

    #[test]
    #[should_panic(expected = "need n, k >= 1")]
    fn params_reject_zero() {
        CodeParams::new(0, 2);
    }
}
