//! Property-based tests: round-trips, repair-equation soundness, and the
//! grouping-independence of partial decoding — the algebraic fact the whole
//! RPR pipeline rests on.

use proptest::prelude::*;
use rpr_codec::{BlockId, CodeParams, PartialDecoder, StripeCodec};

/// The six RS configurations evaluated in the paper.
const PAPER_CODES: [(usize, usize); 6] = [(4, 2), (6, 2), (8, 2), (6, 3), (8, 4), (12, 4)];

fn code_strategy() -> impl Strategy<Value = (usize, usize)> {
    proptest::sample::select(PAPER_CODES.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn any_n_survivors_decode_every_loss_pattern(
        (n, k) in code_strategy(),
        seed: u64,
        len in 8usize..64,
    ) {
        let codec = StripeCodec::new(CodeParams::new(n, k));
        let data: Vec<Vec<u8>> = (0..n).map(|i| {
            let mut s = seed.wrapping_add(i as u64) | 1;
            (0..len).map(|_| { s = s.wrapping_mul(0x5DEECE66D).wrapping_add(11); (s >> 24) as u8 }).collect()
        }).collect();
        let refs: Vec<&[u8]> = data.iter().map(|b| b.as_slice()).collect();
        let stripe = codec.encode_stripe(&refs);

        // Choose a random loss pattern of size 1..=k from the seed.
        let z = 1 + (seed as usize) % k;
        let mut ids: Vec<usize> = (0..n + k).collect();
        let mut s = seed;
        for i in (1..ids.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            ids.swap(i, (s >> 33) as usize % (i + 1));
        }
        let lost: Vec<BlockId> = ids[..z].iter().map(|&i| BlockId(i)).collect();
        let survivors: Vec<(BlockId, &[u8])> = (0..n + k)
            .filter(|i| !lost.iter().any(|l| l.0 == *i))
            .map(|i| (BlockId(i), stripe[i].as_slice()))
            .collect();
        let rec = codec.decode(&survivors, &lost);
        for (r, l) in rec.iter().zip(&lost) {
            prop_assert_eq!(r, &stripe[l.0]);
        }
    }

    #[test]
    fn repair_equations_are_symbolically_valid_and_byte_exact(
        (n, k) in code_strategy(),
        seed: u64,
    ) {
        let codec = StripeCodec::new(CodeParams::new(n, k));
        let len = 32;
        let data: Vec<Vec<u8>> = (0..n).map(|i| {
            let mut s = seed.wrapping_add(1 + i as u64);
            (0..len).map(|_| { s = s.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1); (s >> 40) as u8 }).collect()
        }).collect();
        let refs: Vec<&[u8]> = data.iter().map(|b| b.as_slice()).collect();
        let stripe = codec.encode_stripe(&refs);

        let z = 1 + (seed as usize) % k;
        let mut ids: Vec<usize> = (0..n + k).collect();
        let mut s = seed ^ 0xABCD;
        for i in (1..ids.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            ids.swap(i, (s >> 33) as usize % (i + 1));
        }
        let lost: Vec<BlockId> = ids[..z].iter().map(|&i| BlockId(i)).collect();
        let helpers: Vec<BlockId> = ids[z..z + n].iter().map(|&i| BlockId(i)).collect();

        for (eq, l) in codec.repair_equations(&lost, &helpers).iter().zip(&lost) {
            prop_assert!(codec.equation_is_valid(eq));
            let mut pd = PartialDecoder::new(len);
            for &(h, c) in &eq.terms {
                pd.fold(c, &stripe[h.0]);
            }
            prop_assert_eq!(pd.finish(), stripe[l.0].clone());
        }
    }

    #[test]
    fn partial_decoding_is_grouping_independent(
        terms in proptest::collection::vec((1u8.., proptest::collection::vec(any::<u8>(), 16..=16)), 2..8),
        split in any::<u64>(),
    ) {
        // Direct fold of everything.
        let mut direct = PartialDecoder::new(16);
        for (c, b) in &terms {
            direct.fold(*c, b);
        }

        // Random 2-way partition, folded separately and merged.
        let mut left = PartialDecoder::new(16);
        let mut right = PartialDecoder::new(16);
        let mut left_used = false;
        for (i, (c, b)) in terms.iter().enumerate() {
            if (split >> (i % 64)) & 1 == 0 {
                left.fold(*c, b);
                left_used = true;
            } else {
                right.fold(*c, b);
            }
        }
        let _ = left_used;
        left.merge(&right);
        prop_assert_eq!(direct.as_bytes(), left.as_bytes());
    }

    #[test]
    fn single_data_loss_with_p0_has_xor_equation_for_all_codes(
        (n, k) in code_strategy(),
        which in any::<usize>(),
    ) {
        let params = CodeParams::new(n, k);
        let codec = StripeCodec::new(params);
        let lost = BlockId(which % n);
        let mut helpers: Vec<BlockId> = (0..n).filter(|&i| i != lost.0).map(BlockId).collect();
        helpers.push(BlockId::p0(&params));
        let eqs = codec.repair_equations(&[lost], &helpers);
        prop_assert!(eqs[0].is_xor_only(),
            "pre-placement XOR path must exist for every data block of every paper code");
        prop_assert_eq!(eqs[0].terms.len(), n);
    }
}
