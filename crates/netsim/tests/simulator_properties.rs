//! Property-based tests of the flow simulator: conservation, monotonicity,
//! and lower bounds that must hold for any random job set.

use proptest::prelude::*;
use rpr_netsim::{JobId, Network, Simulator};
use rpr_topology::{BandwidthProfile, NodeId, Topology};

#[derive(Clone, Debug)]
enum JobSpec {
    Transfer { from: usize, to: usize, bytes: u64 },
    Compute { node: usize, millis: u32 },
}

fn job_strategy(nodes: usize) -> impl Strategy<Value = JobSpec> {
    prop_oneof![
        (0..nodes, 0..nodes, 1u64..200_000).prop_filter_map("no loopback", |(f, t, b)| {
            (f != t).then_some(JobSpec::Transfer {
                from: f,
                to: t,
                bytes: b,
            })
        }),
        (0..nodes, 1u32..500).prop_map(|(n, ms)| JobSpec::Compute {
            node: n,
            millis: ms
        }),
    ]
}

/// Build a simulator with random jobs; dependencies only point backwards
/// (acyclic by construction), each job depending on an arbitrary subset of
/// up to 2 earlier jobs derived from `dep_seed`.
fn build(
    racks: usize,
    per_rack: usize,
    specs: &[JobSpec],
    dep_seed: u64,
) -> (Simulator, Vec<JobId>) {
    let topo = Topology::uniform(racks, per_rack);
    let profile = BandwidthProfile::uniform(racks, 1_000_000.0, 100_000.0);
    let mut sim = Simulator::new(Network::new(topo, profile));
    let mut ids = Vec::new();
    let mut seed = dep_seed | 1;
    for (i, spec) in specs.iter().enumerate() {
        let mut deps = Vec::new();
        if i > 0 {
            for _ in 0..2 {
                seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
                if seed & 4 == 0 {
                    deps.push(ids[(seed >> 33) as usize % i]);
                }
            }
            deps.dedup();
        }
        let id = match *spec {
            JobSpec::Transfer { from, to, bytes } => {
                sim.transfer(format!("t{i}"), NodeId(from), NodeId(to), bytes, &deps)
            }
            JobSpec::Compute { node, millis } => {
                sim.compute(format!("c{i}"), NodeId(node), millis as f64 / 1000.0, &deps)
            }
        };
        ids.push(id);
    }
    (sim, ids)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn traffic_is_conserved_and_times_are_sane(
        specs in proptest::collection::vec(job_strategy(6), 1..25),
        dep_seed: u64,
    ) {
        let (sim, ids) = build(3, 2, &specs, dep_seed);
        let report = sim.run();

        // Every job has start <= finish <= makespan.
        for &id in &ids {
            let r = report.record(id);
            prop_assert!(r.start >= 0.0);
            prop_assert!(r.finish >= r.start - 1e-12);
            prop_assert!(r.finish <= report.makespan + 1e-9);
        }

        // Byte conservation: per-node uploads == per-node downloads ==
        // total transfer payloads.
        let total: u64 = specs
            .iter()
            .filter_map(|s| match s {
                JobSpec::Transfer { bytes, .. } => Some(*bytes),
                _ => None,
            })
            .sum();
        prop_assert_eq!(report.total_transfer_bytes(), total);
        prop_assert_eq!(report.node_upload_bytes.iter().sum::<u64>(), total);
        prop_assert_eq!(report.node_download_bytes.iter().sum::<u64>(), total);
    }

    #[test]
    fn makespan_respects_physical_lower_bounds(
        specs in proptest::collection::vec(job_strategy(6), 1..20),
        dep_seed: u64,
    ) {
        let (sim, ids) = build(3, 2, &specs, dep_seed);
        let report = sim.run();

        // No single job can beat its own best-case duration.
        for (&id, spec) in ids.iter().zip(&specs) {
            let r = report.record(id);
            let min = match *spec {
                JobSpec::Transfer { from, to, bytes } => {
                    let rate = if from / 2 == to / 2 { 1_000_000.0 } else { 100_000.0 };
                    bytes as f64 / rate
                }
                JobSpec::Compute { millis, .. } => millis as f64 / 1000.0,
            };
            prop_assert!(
                r.duration() >= min - 1e-9,
                "job {:?} ran faster than its link/CPU allows: {} < {}",
                id, r.duration(), min
            );
        }

        // Aggregate bound: each node's uplink cannot push bytes faster
        // than its NIC for the whole makespan.
        for (node, &up) in report.node_upload_bytes.iter().enumerate() {
            let _ = node;
            prop_assert!(up as f64 / 1_000_000.0 <= report.makespan + 1e-6);
        }
    }

    #[test]
    fn dependencies_are_honoured(
        specs in proptest::collection::vec(job_strategy(4), 2..20),
        dep_seed: u64,
    ) {
        let (sim, ids) = build(2, 2, &specs, dep_seed);
        // Recover the dependency lists the builder generated.
        let mut seed = dep_seed | 1;
        let mut deps_of: Vec<Vec<JobId>> = Vec::new();
        for i in 0..specs.len() {
            let mut deps = Vec::new();
            if i > 0 {
                for _ in 0..2 {
                    seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
                    if seed & 4 == 0 {
                        deps.push(ids[(seed >> 33) as usize % i]);
                    }
                }
                deps.dedup();
            }
            deps_of.push(deps);
        }
        let report = sim.run();
        for (i, deps) in deps_of.iter().enumerate() {
            for d in deps {
                prop_assert!(
                    report.record(*d).finish <= report.record(ids[i]).start + 1e-9,
                    "job {} started before its dependency {:?} finished", i, d
                );
            }
        }
    }

    #[test]
    fn compute_only_workloads_equal_sum_per_node(
        millis in proptest::collection::vec((0usize..4, 1u32..200), 1..12),
    ) {
        // All jobs independent on 4 separate nodes: makespan = max over
        // nodes of that node's total work (processor sharing conserves
        // total CPU time).
        let topo = Topology::uniform(2, 2);
        let profile = BandwidthProfile::uniform(2, 1e6, 1e5);
        let mut sim = Simulator::new(Network::new(topo, profile));
        let mut per_node = [0.0f64; 4];
        for (i, &(node, ms)) in millis.iter().enumerate() {
            let secs = ms as f64 / 1000.0;
            per_node[node] += secs;
            sim.compute(format!("c{i}"), NodeId(node), secs, &[]);
        }
        let report = sim.run();
        let want = per_node.iter().cloned().fold(0.0, f64::max);
        prop_assert!((report.makespan - want).abs() < 1e-6,
            "makespan {} vs per-node max {}", report.makespan, want);
    }
}
