//! A discrete-event, flow-level network simulator for rack-organized
//! clusters.
//!
//! This crate substitutes for the paper's evaluation substrate (Simics VMs
//! with wondershaper-shaped NICs, §5.1). It simulates:
//!
//! * **transfers** between nodes as fluid flows that share link resources
//!   under max-min fairness — each node has an uplink and a downlink at the
//!   inner-rack NIC rate, plus a *cross-traffic class* shaped to the
//!   cross-rack rate (exactly wondershaper's behaviour: traffic to peers
//!   outside the rack is throttled to 0.1 Gb/s while rack-local traffic
//!   runs at the full 1 Gb/s NIC rate);
//! * **computations** (decode work) as processor-sharing jobs on a node's
//!   CPU;
//! * an arbitrary **dependency DAG** between jobs, which is how repair
//!   plans express "this cross-rack transfer may start only after that
//!   inner-rack partial decoding finished".
//!
//! The simulator reports makespan, per-job timing, and traffic statistics
//! (cross-rack bytes, per-node upload/download) — the quantities plotted in
//! the paper's Figures 7–14.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod report;

pub use engine::Simulator;
pub use report::{FailSpec, FailureRecord, JobRecord, SimReport};

use rpr_topology::{BandwidthProfile, NodeId, Topology};

/// Identifies a job inside one [`Simulator`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub usize);

impl core::fmt::Debug for JobId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "j{}", self.0)
    }
}

/// What a job does.
#[derive(Clone, Debug, PartialEq)]
pub enum JobKind {
    /// Move `bytes` from one node to another.
    Transfer {
        /// Source node.
        from: NodeId,
        /// Destination node.
        to: NodeId,
        /// Payload size in bytes.
        bytes: u64,
    },
    /// Perform `seconds` of CPU work (at rate 1.0 with no contention) on a
    /// node.
    Compute {
        /// The node doing the work.
        node: NodeId,
        /// CPU-seconds of work.
        seconds: f64,
    },
}

/// The cluster a simulation runs on: a topology plus a bandwidth profile
/// covering its racks, and optionally a finite aggregation-switch
/// capacity.
#[derive(Clone, Debug)]
pub struct Network {
    topo: Topology,
    profile: BandwidthProfile,
    agg_capacity: f64,
}

impl Network {
    /// Bind a bandwidth profile to a topology. The aggregation switch is
    /// unconstrained (infinite backplane).
    ///
    /// # Panics
    /// Panics if the profile covers fewer racks than the topology has.
    pub fn new(topo: Topology, profile: BandwidthProfile) -> Network {
        assert!(
            profile.covers(&topo),
            "Network: bandwidth profile must cover every rack"
        );
        Network {
            topo,
            profile,
            agg_capacity: f64::INFINITY,
        }
    }

    /// Limit the aggregation switch (Figure 2): the total bytes/sec of
    /// **all** concurrent cross-rack traffic is capped at `bytes_per_sec`.
    /// An oversubscribed switch makes repair traffic *volume* (not just
    /// the per-link schedule) the bottleneck.
    ///
    /// # Panics
    /// Panics if the capacity is not positive.
    pub fn with_agg_capacity(mut self, bytes_per_sec: f64) -> Network {
        assert!(
            bytes_per_sec > 0.0,
            "Network: aggregation capacity must be positive"
        );
        self.agg_capacity = bytes_per_sec;
        self
    }

    /// The aggregation switch's total cross-rack capacity (infinite when
    /// unconstrained).
    #[inline]
    pub fn agg_capacity(&self) -> f64 {
        self.agg_capacity
    }

    /// The topology.
    #[inline]
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The bandwidth profile.
    #[inline]
    pub fn profile(&self) -> &BandwidthProfile {
        &self.profile
    }

    /// True if a transfer between these nodes crosses racks.
    #[inline]
    pub fn is_cross(&self, from: NodeId, to: NodeId) -> bool {
        !self.topo.same_rack(from, to)
    }

    /// Nominal rate of the `from → to` pair in bytes/sec.
    #[inline]
    pub fn pair_rate(&self, from: NodeId, to: NodeId) -> f64 {
        self.profile
            .rate(self.topo.rack_of(from), self.topo.rack_of(to))
    }

    /// The inner-rack NIC rate of a node (its rack's diagonal rate).
    #[inline]
    pub fn nic_rate(&self, node: NodeId) -> f64 {
        let r = self.topo.rack_of(node);
        self.profile.rate(r, r)
    }

    /// The shaped cross-traffic class rate of a node: the fastest
    /// cross-rack rate its rack has (for uniform profiles this is simply
    /// *the* cross-rack rate).
    pub fn cross_class_rate(&self, node: NodeId) -> f64 {
        let r = self.topo.rack_of(node);
        let q = self.topo.rack_count();
        (0..q)
            .filter(|&b| b != r.0)
            .map(|b| self.profile.rate(r, rpr_topology::RackId(b)))
            .fold(f64::NEG_INFINITY, f64::max)
            .max(0.0)
            .max(if q == 1 { self.nic_rate(node) } else { 0.0 })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpr_topology::{RackId, GBIT};

    #[test]
    fn network_rates() {
        let topo = Topology::uniform(3, 2);
        let net = Network::new(topo, BandwidthProfile::simics_default(3));
        let a = NodeId(0);
        let b = NodeId(1); // same rack
        let c = NodeId(2); // other rack
        assert!(!net.is_cross(a, b));
        assert!(net.is_cross(a, c));
        assert_eq!(net.pair_rate(a, b), GBIT);
        assert_eq!(net.pair_rate(a, c), 0.1 * GBIT);
        assert_eq!(net.nic_rate(a), GBIT);
        assert_eq!(net.cross_class_rate(a), 0.1 * GBIT);
        assert_eq!(net.topology().rack_of(c), RackId(1));
        assert_eq!(net.profile().rack_count(), 3);
    }

    #[test]
    fn single_rack_network_cross_class_is_nic() {
        let topo = Topology::uniform(1, 4);
        let net = Network::new(topo, BandwidthProfile::simics_default(1));
        assert_eq!(net.cross_class_rate(NodeId(0)), GBIT);
    }

    #[test]
    #[should_panic(expected = "must cover every rack")]
    fn undersized_profile_rejected() {
        let topo = Topology::uniform(4, 1);
        Network::new(topo, BandwidthProfile::simics_default(2));
    }
}
