//! Simulation results: makespan, per-job timing, and traffic statistics.

use crate::{JobId, JobKind};

/// One injected attempt failure: the attempt aborts after completing
/// `fraction` of the job's work, and the job retries after `delay`
/// simulated seconds. Injected with `Simulator::fail_attempts`.
#[derive(Clone, Debug, PartialEq)]
pub struct FailSpec {
    /// Fraction of the job's work done when the attempt fails, in `[0, 1]`
    /// (1.0 models a transfer that completes but fails verification).
    pub fraction: f64,
    /// Retry backoff in simulated seconds.
    pub delay: f64,
    /// Stable failure-reason string (see `rpr-faults::reason`), carried
    /// into `transfer_failed` trace events.
    pub reason: String,
}

/// What actually happened when an injected [`FailSpec`] fired.
#[derive(Clone, Debug, PartialEq)]
pub struct FailureRecord {
    /// Simulation time the failed attempt started.
    pub start: f64,
    /// Simulation time the failure fired.
    pub at: f64,
    /// Backoff before the retry, in simulated seconds.
    pub delay: f64,
    /// Fraction of the work completed (and wasted) by the failed attempt.
    pub fraction: f64,
    /// Failure reason copied from the spec.
    pub reason: String,
}

/// Timing record for one job.
#[derive(Clone, Debug)]
pub struct JobRecord {
    /// The job's id.
    pub id: JobId,
    /// What the job did.
    pub kind: JobKind,
    /// Free-form label supplied at construction (used by plan executors to
    /// tag operations, e.g. `"inner r1 d2+d3"`).
    pub label: String,
    /// Simulation time at which the *successful* attempt started.
    pub start: f64,
    /// Simulation time at which the job completed.
    pub finish: f64,
    /// Failed attempts before the successful one (empty without faults).
    pub failures: Vec<FailureRecord>,
}

impl JobRecord {
    /// Wall-clock duration of the successful attempt.
    pub fn duration(&self) -> f64 {
        self.finish - self.start
    }

    /// Total attempts made (failed retries plus the successful one).
    pub fn attempts(&self) -> usize {
        self.failures.len() + 1
    }
}

/// The outcome of a simulation run.
#[derive(Clone, Debug)]
pub struct SimReport {
    /// Completion time of the last job (the *total repair time* of the
    /// paper when the DAG is a repair plan).
    pub makespan: f64,
    /// Per-job records, indexed by [`JobId`].
    pub records: Vec<JobRecord>,
    /// Total bytes that crossed the aggregation switch (Figures 7/10).
    pub cross_rack_bytes: u64,
    /// Total bytes that stayed under a TOR switch.
    pub inner_rack_bytes: u64,
    /// Bytes uploaded per node (load-balance analysis).
    pub node_upload_bytes: Vec<u64>,
    /// Bytes downloaded per node.
    pub node_download_bytes: Vec<u64>,
    /// CPU-seconds of decode work executed per node.
    pub node_compute_seconds: Vec<f64>,
    /// Bytes moved by failed transfer attempts and re-sent on retry.
    /// Not included in the per-class or per-node totals above, which
    /// count each payload once (the clean-plan traffic).
    pub retransmitted_bytes: u64,
}

impl SimReport {
    /// Record for a given job.
    ///
    /// # Panics
    /// Panics if the id is out of range.
    pub fn record(&self, id: JobId) -> &JobRecord {
        &self.records[id.0]
    }

    /// Cross-rack traffic measured in whole blocks of `block_bytes` each
    /// (the unit of Figures 7 and 10).
    pub fn cross_rack_blocks(&self, block_bytes: u64) -> f64 {
        self.cross_rack_bytes as f64 / block_bytes as f64
    }

    /// Upload imbalance: max over nodes of uploaded bytes divided by the
    /// mean over nodes that uploaded anything. 1.0 is perfectly balanced.
    /// Returns 0.0 if nothing was uploaded.
    pub fn upload_imbalance(&self) -> f64 {
        let active: Vec<u64> = self
            .node_upload_bytes
            .iter()
            .copied()
            .filter(|&b| b > 0)
            .collect();
        if active.is_empty() {
            return 0.0;
        }
        let max = *active.iter().max().unwrap() as f64;
        let mean = active.iter().sum::<u64>() as f64 / active.len() as f64;
        max / mean
    }

    /// Sum of all transfer payloads (conservation check).
    pub fn total_transfer_bytes(&self) -> u64 {
        self.cross_rack_bytes + self.inner_rack_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpr_topology::NodeId;

    fn report() -> SimReport {
        SimReport {
            makespan: 10.0,
            records: vec![JobRecord {
                id: JobId(0),
                kind: JobKind::Compute {
                    node: NodeId(0),
                    seconds: 1.0,
                },
                label: "c".into(),
                start: 2.0,
                finish: 3.5,
                failures: Vec::new(),
            }],
            cross_rack_bytes: 1024,
            inner_rack_bytes: 512,
            node_upload_bytes: vec![100, 300, 0],
            node_download_bytes: vec![0, 0, 400],
            node_compute_seconds: vec![1.0, 0.0, 0.0],
            retransmitted_bytes: 0,
        }
    }

    #[test]
    fn record_accessors() {
        let r = report();
        assert_eq!(r.record(JobId(0)).label, "c");
        assert!((r.record(JobId(0)).duration() - 1.5).abs() < 1e-12);
        assert_eq!(r.record(JobId(0)).attempts(), 1);
    }

    #[test]
    fn traffic_in_blocks() {
        let r = report();
        assert!((r.cross_rack_blocks(256) - 4.0).abs() < 1e-12);
        assert_eq!(r.total_transfer_bytes(), 1536);
    }

    #[test]
    fn imbalance_uses_active_uploaders_only() {
        let r = report();
        // Active uploaders: 100 and 300; max 300, mean 200 -> 1.5.
        assert!((r.upload_imbalance() - 1.5).abs() < 1e-12);
        let idle = SimReport {
            node_upload_bytes: vec![0, 0],
            ..report()
        };
        assert_eq!(idle.upload_imbalance(), 0.0);
    }
}
