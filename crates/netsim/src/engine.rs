//! The discrete-event engine: dependency scheduling plus max-min fair rate
//! allocation (progressive filling) over link and CPU resources.

use crate::report::{FailSpec, FailureRecord, JobRecord, SimReport};
use crate::{JobId, JobKind, Network};

/// Relative tolerance for "work finished" comparisons.
const EPS: f64 = 1e-9;

#[derive(Clone, Debug)]
struct Job {
    kind: JobKind,
    label: String,
    deps: Vec<JobId>,
    /// Resource indices this job draws from while active.
    resources: Vec<usize>,
    /// Per-job rate ceiling (pair rate for transfers, 1.0 for computes).
    rate_cap: f64,
    /// Remaining work: bytes for transfers, CPU-seconds for computes.
    remaining: f64,
    /// Total work of one attempt (restored when an attempt fails).
    total: f64,
    /// Injected one-shot attempt failures, consumed in order.
    fails: Vec<FailSpec>,
    /// Index of the next unconsumed entry in `fails`.
    next_fail: usize,
    /// Earliest time a retry may start (0 until a failure fires).
    resume_at: f64,
    /// Failed attempts so far, for the report and trace replay.
    failures: Vec<FailureRecord>,
    state: JobState,
    start: f64,
    finish: f64,
}

impl Job {
    fn has_pending_fail(&self) -> bool {
        self.next_fail < self.fails.len()
    }

    /// True when this job is waiting only on the clock (deps done, retry
    /// backoff not yet elapsed).
    fn runnable(&self, jobs: &[Job]) -> bool {
        self.state == JobState::Pending && self.deps.iter().all(|d| jobs[d.0].state == JobState::Done)
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum JobState {
    Pending,
    Active,
    Done,
}

/// A dependency-DAG simulator over a [`Network`].
///
/// Build jobs with [`Simulator::transfer`] / [`Simulator::compute`], wire
/// dependencies, then [`Simulator::run`] to completion.
///
/// ```
/// use rpr_netsim::{Network, Simulator};
/// use rpr_topology::{BandwidthProfile, NodeId, Topology};
///
/// // Two racks of two nodes: 100 B/s inner, 10 B/s cross.
/// let net = Network::new(
///     Topology::uniform(2, 2),
///     BandwidthProfile::uniform(2, 100.0, 10.0),
/// );
/// let mut sim = Simulator::new(net);
/// let a = sim.transfer("inner", NodeId(0), NodeId(1), 500, &[]);
/// let b = sim.transfer("cross", NodeId(1), NodeId(2), 100, &[a]);
/// let _ = sim.compute("decode", NodeId(2), 1.0, &[b]);
/// let report = sim.run();
/// // 5 s inner, then 10 s cross, then 1 s compute.
/// assert!((report.makespan - 16.0).abs() < 1e-9);
/// ```
pub struct Simulator {
    net: Network,
    jobs: Vec<Job>,
    /// capacity per resource (bytes/sec for links, 1.0 for CPUs).
    capacity: Vec<f64>,
}

/// Resource layout per node: uplink, downlink, cross-class uplink,
/// cross-class downlink, CPU.
const RES_PER_NODE: usize = 5;

impl Simulator {
    /// Create an empty simulator over a network.
    pub fn new(net: Network) -> Simulator {
        let nodes = net.topology().node_count();
        // One extra resource slot models the aggregation switch when its
        // capacity is finite (infinite capacity would confuse the
        // progressive-filling exhaustion test, so it is only materialized
        // when constrained).
        let mut capacity = vec![0.0; nodes * RES_PER_NODE + 1];
        for i in 0..nodes {
            let node = rpr_topology::NodeId(i);
            capacity[i * RES_PER_NODE] = net.nic_rate(node);
            capacity[i * RES_PER_NODE + 1] = net.nic_rate(node);
            capacity[i * RES_PER_NODE + 2] = net.cross_class_rate(node);
            capacity[i * RES_PER_NODE + 3] = net.cross_class_rate(node);
            capacity[i * RES_PER_NODE + 4] = 1.0;
        }
        capacity[nodes * RES_PER_NODE] = if net.agg_capacity().is_finite() {
            net.agg_capacity()
        } else {
            1.0 // placeholder; never referenced by any job
        };
        Simulator {
            net,
            jobs: Vec::new(),
            capacity,
        }
    }

    /// The network being simulated.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Add a transfer job. Returns its id.
    ///
    /// # Panics
    /// Panics if nodes are out of range, source equals destination, or a
    /// dependency id is unknown.
    pub fn transfer(
        &mut self,
        label: impl Into<String>,
        from: rpr_topology::NodeId,
        to: rpr_topology::NodeId,
        bytes: u64,
        deps: &[JobId],
    ) -> JobId {
        let nodes = self.net.topology().node_count();
        assert!(from.0 < nodes && to.0 < nodes, "transfer: node range");
        assert_ne!(from, to, "transfer: loopback transfers are meaningless");
        let cross = self.net.is_cross(from, to);
        let mut resources = vec![
            from.0 * RES_PER_NODE,   // uplink
            to.0 * RES_PER_NODE + 1, // downlink
        ];
        if cross {
            resources.push(from.0 * RES_PER_NODE + 2); // cross-class up
            resources.push(to.0 * RES_PER_NODE + 3); // cross-class down
            if self.net.agg_capacity().is_finite() {
                resources.push(nodes * RES_PER_NODE); // aggregation switch
            }
        }
        let rate_cap = self.net.pair_rate(from, to);
        self.push(Job {
            kind: JobKind::Transfer { from, to, bytes },
            label: label.into(),
            deps: deps.to_vec(),
            resources,
            rate_cap,
            remaining: bytes as f64,
            total: bytes as f64,
            fails: Vec::new(),
            next_fail: 0,
            resume_at: 0.0,
            failures: Vec::new(),
            state: JobState::Pending,
            start: f64::NAN,
            finish: f64::NAN,
        })
    }

    /// Add a compute job (`seconds` of CPU work on `node`). Returns its id.
    ///
    /// # Panics
    /// Panics if the node is out of range, `seconds` is negative/NaN, or a
    /// dependency id is unknown.
    pub fn compute(
        &mut self,
        label: impl Into<String>,
        node: rpr_topology::NodeId,
        seconds: f64,
        deps: &[JobId],
    ) -> JobId {
        assert!(node.0 < self.net.topology().node_count(), "compute: node");
        assert!(seconds >= 0.0 && seconds.is_finite(), "compute: seconds");
        self.push(Job {
            kind: JobKind::Compute { node, seconds },
            label: label.into(),
            deps: deps.to_vec(),
            resources: vec![node.0 * RES_PER_NODE + 4],
            rate_cap: 1.0,
            remaining: seconds,
            total: seconds,
            fails: Vec::new(),
            next_fail: 0,
            resume_at: 0.0,
            failures: Vec::new(),
            state: JobState::Pending,
            start: f64::NAN,
            finish: f64::NAN,
        })
    }

    /// Inject one-shot attempt failures into a job, consumed in order: the
    /// job's first attempt aborts after `specs[0].fraction` of its work and
    /// restarts from scratch `specs[0].delay` seconds later, the second
    /// attempt consumes `specs[1]`, and so on until the specs run out and
    /// an attempt completes. Deterministic: same specs, same schedule.
    ///
    /// # Panics
    /// Panics if the job id is unknown or a spec has a fraction outside
    /// `[0, 1]` or a negative/non-finite delay.
    pub fn fail_attempts(&mut self, job: JobId, specs: Vec<FailSpec>) {
        assert!(job.0 < self.jobs.len(), "fail_attempts: unknown job");
        for s in &specs {
            assert!(
                (0.0..=1.0).contains(&s.fraction),
                "fail_attempts: fraction out of range"
            );
            assert!(
                s.delay >= 0.0 && s.delay.is_finite(),
                "fail_attempts: bad delay"
            );
        }
        self.jobs[job.0].fails.extend(specs);
    }

    /// Derate every link of `node` to `factor` of its profiled bandwidth
    /// (a slow NIC or congested ToR port). Affects uplink, downlink, and
    /// both cross-class shapers; CPU is untouched. Call before `run`.
    ///
    /// # Panics
    /// Panics if the node is out of range or `factor` is not in `(0, 1]`.
    pub fn derate_node(&mut self, node: rpr_topology::NodeId, factor: f64) {
        assert!(node.0 < self.net.topology().node_count(), "derate: node");
        assert!(
            factor > 0.0 && factor <= 1.0,
            "derate: factor must be in (0, 1]"
        );
        for r in 0..4 {
            self.capacity[node.0 * RES_PER_NODE + r] *= factor;
        }
    }

    /// Hold a job back until simulated time `t` even once its
    /// dependencies are done — an *arrival* time. Open-loop workload
    /// generators use this to inject requests on a fixed schedule, and
    /// co-simulations use it to stagger repair waves against foreground
    /// traffic. The engine already advances the idle clock to the next
    /// `resume_at`, so a released job on an otherwise quiet network
    /// starts exactly at `t`. Call before `run`.
    ///
    /// # Panics
    /// Panics if the job id is unknown or `t` is negative/non-finite.
    pub fn release_at(&mut self, job: JobId, t: f64) {
        assert!(job.0 < self.jobs.len(), "release_at: unknown job");
        assert!(t >= 0.0 && t.is_finite(), "release_at: bad time");
        let j = &mut self.jobs[job.0];
        j.resume_at = j.resume_at.max(t);
    }

    /// Cap a job's standalone rate at `factor` of its current cap — the
    /// QoS throttle: a repair flow admitted under a foreground-priority
    /// class keeps only its repair share of the path rate, leaving the
    /// rest to client traffic even when the link is otherwise idle.
    /// Max-min fairness still applies on top: the job may get *less*
    /// under contention, never more. Compute jobs cannot be throttled
    /// (their cap is the definition of one core-second). Call before
    /// `run`.
    ///
    /// # Panics
    /// Panics if the job id is unknown, the job is a compute job, or
    /// `factor` is not in `(0, 1]` — a zero cap would starve the job
    /// forever, which the engine (rightly) rejects.
    pub fn throttle(&mut self, job: JobId, factor: f64) {
        assert!(job.0 < self.jobs.len(), "throttle: unknown job");
        assert!(
            factor > 0.0 && factor <= 1.0,
            "throttle: factor must be in (0, 1]"
        );
        let j = &mut self.jobs[job.0];
        assert!(
            matches!(j.kind, JobKind::Transfer { .. }),
            "throttle: only transfer jobs can be throttled"
        );
        j.rate_cap *= factor;
    }

    fn push(&mut self, job: Job) -> JobId {
        for d in &job.deps {
            assert!(d.0 < self.jobs.len(), "unknown dependency {:?}", d);
        }
        self.jobs.push(job);
        JobId(self.jobs.len() - 1)
    }

    /// Number of jobs added so far.
    pub fn job_count(&self) -> usize {
        self.jobs.len()
    }

    /// Like [`Simulator::run`], but also replay every job into `rec` as
    /// structured [`rpr_obs`] trace events, in chronological order.
    ///
    /// The engine activates a job the instant its dependencies finish, so
    /// `TransferQueued` and `TransferStarted` coincide and the reported
    /// queue wait is zero (the real-bytes executor in `rpr-exec` measures
    /// genuine waits). Compute jobs become [`rpr_obs::Event::CombineDone`]
    /// events with placeholder kernel/input/byte fields — this layer sees
    /// only opaque labeled jobs; callers that know the plan (see
    /// `rpr-core`'s traced simulation) rewrite those fields.
    pub fn run_recorded(self, rec: &dyn rpr_obs::Recorder) -> SimReport {
        let topo = self.net.topology().clone();
        let report = self.run();
        let rack = |n: rpr_topology::NodeId| topo.rack_of(n).0;
        // (time, event) in record order; stable sort puts same-time events
        // in insertion order (queued/started before done).
        let mut events: Vec<(f64, rpr_obs::Event)> = Vec::new();
        for r in &report.records {
            match r.kind {
                JobKind::Transfer { from, to, bytes } => {
                    let xfer = rpr_obs::Transfer {
                        label: r.label.clone(),
                        src_node: from.0,
                        src_rack: rack(from),
                        dst_node: to.0,
                        dst_rack: rack(to),
                        bytes,
                        cross: !topo.same_rack(from, to),
                        timestep: None,
                    };
                    // Failed attempts first: each one queued/started at its
                    // attempt start, failed at its abort time, retried
                    // after the backoff.
                    for (attempt, f) in r.failures.iter().enumerate() {
                        events.push((
                            f.start,
                            rpr_obs::Event::TransferQueued {
                                xfer: xfer.clone(),
                                t: f.start,
                            },
                        ));
                        events.push((
                            f.start,
                            rpr_obs::Event::TransferStarted {
                                xfer: xfer.clone(),
                                queue_wait: 0.0,
                                t: f.start,
                            },
                        ));
                        events.push((
                            f.at,
                            rpr_obs::Event::TransferFailed {
                                xfer: xfer.clone(),
                                attempt,
                                reason: f.reason.clone(),
                                t: f.at,
                            },
                        ));
                        events.push((
                            f.at,
                            rpr_obs::Event::RetryScheduled {
                                label: r.label.clone(),
                                rack: xfer.src_rack,
                                attempt,
                                delay: f.delay,
                                t: f.at,
                            },
                        ));
                    }
                    events.push((
                        r.start,
                        rpr_obs::Event::TransferQueued {
                            xfer: xfer.clone(),
                            t: r.start,
                        },
                    ));
                    events.push((
                        r.start,
                        rpr_obs::Event::TransferStarted {
                            xfer: xfer.clone(),
                            queue_wait: 0.0,
                            t: r.start,
                        },
                    ));
                    events.push((
                        r.finish,
                        rpr_obs::Event::TransferDone {
                            xfer,
                            start: r.start,
                            end: r.finish,
                        },
                    ));
                }
                JobKind::Compute { node, .. } => {
                    events.push((
                        r.finish,
                        rpr_obs::Event::CombineDone {
                            label: r.label.clone(),
                            node: node.0,
                            rack: rack(node),
                            kernel: rpr_obs::Kernel::Gf,
                            inputs: 0,
                            bytes: 0,
                            start: r.start,
                            end: r.finish,
                        },
                    ));
                }
            }
        }
        events.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite job times"));
        for (_, e) in events {
            rec.record(e);
        }
        report
    }

    /// Run the DAG to completion and produce a report.
    ///
    /// # Panics
    /// Panics if the dependency graph deadlocks (a cycle), which indicates
    /// a malformed plan.
    pub fn run(mut self) -> SimReport {
        let mut now = 0.0f64;
        let mut done = 0usize;
        let total = self.jobs.len();

        while done < total {
            // Activate every pending job whose dependencies are all done
            // and whose retry backoff (if any) has elapsed.
            for i in 0..self.jobs.len() {
                if self.jobs[i].runnable(&self.jobs) && self.jobs[i].resume_at <= now {
                    self.jobs[i].state = JobState::Active;
                    self.jobs[i].start = now;
                }
            }

            let active: Vec<usize> = (0..self.jobs.len())
                .filter(|&i| self.jobs[i].state == JobState::Active)
                .collect();
            if active.is_empty() {
                // Everything runnable is backing off after a failure:
                // advance the clock to the earliest retry.
                let next = (0..self.jobs.len())
                    .filter(|&i| self.jobs[i].runnable(&self.jobs))
                    .map(|i| self.jobs[i].resume_at)
                    .fold(f64::INFINITY, f64::min);
                assert!(
                    next.is_finite(),
                    "simulator deadlock: {} pending jobs form a cycle",
                    total - done
                );
                now = next;
                continue;
            }

            // Zero-work jobs complete (or fail) instantly.
            let mut instant = false;
            for &i in &active {
                if self.jobs[i].remaining <= EPS {
                    if self.jobs[i].has_pending_fail() {
                        self.fail_job(i, now);
                    } else {
                        self.jobs[i].state = JobState::Done;
                        self.jobs[i].finish = now;
                        done += 1;
                    }
                    instant = true;
                }
            }
            if instant {
                continue;
            }

            let rates = self.allocate(&active);

            // Find the earliest event among active jobs: a completion or
            // an injected attempt failure.
            let mut dt = f64::INFINITY;
            for (idx, &i) in active.iter().enumerate() {
                let r = rates[idx];
                assert!(
                    r > 0.0,
                    "job {:?} ({}) starved: zero allocated rate",
                    JobId(i),
                    self.jobs[i].label
                );
                let job = &self.jobs[i];
                let mut t = job.remaining / r;
                if let Some(spec) = job.fails.get(job.next_fail) {
                    let to_fail = spec.fraction * job.total - (job.total - job.remaining);
                    t = t.min(to_fail.max(0.0) / r);
                }
                dt = dt.min(t);
            }
            // Don't step past a pending retry: the retrying job must
            // re-enter the bandwidth competition exactly at resume time.
            for i in 0..self.jobs.len() {
                if self.jobs[i].runnable(&self.jobs) && self.jobs[i].resume_at > now {
                    dt = dt.min(self.jobs[i].resume_at - now);
                }
            }
            assert!(dt.is_finite(), "no progress possible");

            now += dt;
            for (idx, &i) in active.iter().enumerate() {
                self.jobs[i].remaining -= rates[idx] * dt;
                let tol = EPS * (1.0 + rates[idx] * dt);
                let failing = {
                    let job = &self.jobs[i];
                    match job.fails.get(job.next_fail) {
                        Some(spec) => {
                            job.total - job.remaining >= spec.fraction * job.total - tol
                        }
                        None => false,
                    }
                };
                if failing {
                    self.fail_job(i, now);
                } else if self.jobs[i].remaining <= tol {
                    self.jobs[i].remaining = 0.0;
                    self.jobs[i].state = JobState::Done;
                    self.jobs[i].finish = now;
                    done += 1;
                }
            }
        }

        self.into_report(now)
    }

    /// Fire the next injected failure of job `i` at time `now`: record it,
    /// reset the job's work, and schedule the retry after the backoff.
    fn fail_job(&mut self, i: usize, now: f64) {
        let job = &mut self.jobs[i];
        let spec = job.fails[job.next_fail].clone();
        job.next_fail += 1;
        job.failures.push(FailureRecord {
            start: job.start,
            at: now,
            delay: spec.delay,
            fraction: spec.fraction,
            reason: spec.reason,
        });
        job.remaining = job.total;
        job.state = JobState::Pending;
        job.resume_at = now + spec.delay;
        job.start = f64::NAN;
    }

    /// Max-min fair allocation (progressive filling with per-job caps) for
    /// the given active job indices. Returns one rate per active job.
    fn allocate(&self, active: &[usize]) -> Vec<f64> {
        let m = active.len();
        let mut rate = vec![0.0f64; m];
        let mut frozen = vec![false; m];
        let mut cap_left = self.capacity.clone();

        loop {
            // Count unfrozen users per resource.
            let mut users = vec![0usize; cap_left.len()];
            let mut any = false;
            for (idx, &i) in active.iter().enumerate() {
                if frozen[idx] {
                    continue;
                }
                any = true;
                for &r in &self.jobs[i].resources {
                    users[r] += 1;
                }
            }
            if !any {
                break;
            }

            // The uniform increment every unfrozen job can still take.
            let mut inc = f64::INFINITY;
            for (r, &u) in users.iter().enumerate() {
                if u > 0 {
                    inc = inc.min(cap_left[r] / u as f64);
                }
            }
            for (idx, &i) in active.iter().enumerate() {
                if !frozen[idx] {
                    inc = inc.min(self.jobs[i].rate_cap - rate[idx]);
                }
            }
            debug_assert!(inc >= 0.0 && inc.is_finite());

            // Apply the increment and subtract from the resources.
            for (idx, &i) in active.iter().enumerate() {
                if frozen[idx] {
                    continue;
                }
                rate[idx] += inc;
                for &r in &self.jobs[i].resources {
                    cap_left[r] -= inc;
                }
            }

            // Freeze jobs at their personal cap or on an exhausted resource.
            let mut progressed = false;
            for (idx, &i) in active.iter().enumerate() {
                if frozen[idx] {
                    continue;
                }
                let at_cap = rate[idx] >= self.jobs[i].rate_cap * (1.0 - EPS);
                let exhausted = self.jobs[i]
                    .resources
                    .iter()
                    .any(|&r| cap_left[r] <= self.capacity[r] * EPS);
                if at_cap || exhausted {
                    frozen[idx] = true;
                    progressed = true;
                }
            }
            // inc == 0 without any freeze would loop forever; freezing at
            // least one job per round is guaranteed because inc is limited
            // by some binding constraint.
            assert!(
                progressed || inc > 0.0,
                "progressive filling failed to converge"
            );
        }
        rate
    }

    fn into_report(self, makespan: f64) -> SimReport {
        let nodes = self.net.topology().node_count();
        let mut records = Vec::with_capacity(self.jobs.len());
        let mut cross_bytes = 0u64;
        let mut inner_bytes = 0u64;
        let mut upload = vec![0u64; nodes];
        let mut download = vec![0u64; nodes];
        let mut compute_seconds = vec![0.0f64; nodes];
        let mut retransmitted = 0u64;

        for (i, job) in self.jobs.iter().enumerate() {
            match job.kind {
                JobKind::Transfer { from, to, bytes } => {
                    if self.net.is_cross(from, to) {
                        cross_bytes += bytes;
                    } else {
                        inner_bytes += bytes;
                    }
                    upload[from.0] += bytes;
                    download[to.0] += bytes;
                    for f in &job.failures {
                        retransmitted += (f.fraction * bytes as f64).round() as u64;
                    }
                }
                JobKind::Compute { node, seconds } => {
                    compute_seconds[node.0] += seconds;
                }
            }
            records.push(JobRecord {
                id: JobId(i),
                kind: job.kind.clone(),
                label: job.label.clone(),
                start: job.start,
                finish: job.finish,
                failures: job.failures.clone(),
            });
        }

        SimReport {
            makespan,
            records,
            cross_rack_bytes: cross_bytes,
            inner_rack_bytes: inner_bytes,
            node_upload_bytes: upload,
            node_download_bytes: download,
            node_compute_seconds: compute_seconds,
            retransmitted_bytes: retransmitted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpr_topology::{BandwidthProfile, NodeId, Topology};

    /// 3 racks x 2 nodes, inner 100 B/s, cross 10 B/s for easy arithmetic.
    fn net() -> Network {
        Network::new(
            Topology::uniform(3, 2),
            BandwidthProfile::uniform(3, 100.0, 10.0),
        )
    }

    #[test]
    fn single_inner_transfer_runs_at_nic_rate() {
        let mut sim = Simulator::new(net());
        sim.transfer("t", NodeId(0), NodeId(1), 1000, &[]);
        let r = sim.run();
        assert!((r.makespan - 10.0).abs() < 1e-6, "{}", r.makespan);
        assert_eq!(r.inner_rack_bytes, 1000);
        assert_eq!(r.cross_rack_bytes, 0);
    }

    #[test]
    fn single_cross_transfer_runs_at_cross_rate() {
        let mut sim = Simulator::new(net());
        sim.transfer("t", NodeId(0), NodeId(2), 1000, &[]);
        let r = sim.run();
        assert!((r.makespan - 100.0).abs() < 1e-6, "{}", r.makespan);
        assert_eq!(r.cross_rack_bytes, 1000);
    }

    #[test]
    fn cross_flows_into_one_node_share_the_cross_class() {
        // Two senders in different racks stream to the same destination:
        // the destination's shaped cross class (10 B/s) is the bottleneck,
        // so 2 x 1000 bytes take 200 s — transfers serialize in aggregate,
        // matching the paper's one-cross-transfer-per-rack accounting.
        let mut sim = Simulator::new(net());
        sim.transfer("a", NodeId(2), NodeId(0), 1000, &[]);
        sim.transfer("b", NodeId(4), NodeId(0), 1000, &[]);
        let r = sim.run();
        assert!((r.makespan - 200.0).abs() < 1e-6, "{}", r.makespan);
    }

    #[test]
    fn cross_flows_to_distinct_racks_run_in_parallel() {
        let mut sim = Simulator::new(net());
        sim.transfer("a", NodeId(0), NodeId(2), 1000, &[]);
        sim.transfer("b", NodeId(1), NodeId(4), 1000, &[]);
        let r = sim.run();
        assert!((r.makespan - 100.0).abs() < 1e-6, "{}", r.makespan);
    }

    #[test]
    fn dependencies_serialize_jobs() {
        let mut sim = Simulator::new(net());
        let a = sim.transfer("a", NodeId(0), NodeId(1), 500, &[]);
        let b = sim.transfer("b", NodeId(1), NodeId(0), 500, &[a]);
        let r = sim.run();
        assert!((r.makespan - 10.0).abs() < 1e-6);
        assert!((r.records[b.0].start - 5.0).abs() < 1e-6);
        assert!(r.records[a.0].finish <= r.records[b.0].start + 1e-9);
    }

    #[test]
    fn compute_jobs_share_the_cpu() {
        let mut sim = Simulator::new(net());
        sim.compute("c1", NodeId(0), 2.0, &[]);
        sim.compute("c2", NodeId(0), 2.0, &[]);
        let r = sim.run();
        // Processor sharing: both finish at 4 s.
        assert!((r.makespan - 4.0).abs() < 1e-6, "{}", r.makespan);
        assert!((r.node_compute_seconds[0] - 4.0).abs() < 1e-9);
    }

    #[test]
    fn compute_on_different_nodes_is_parallel() {
        let mut sim = Simulator::new(net());
        sim.compute("c1", NodeId(0), 2.0, &[]);
        sim.compute("c2", NodeId(1), 2.0, &[]);
        let r = sim.run();
        assert!((r.makespan - 2.0).abs() < 1e-6);
    }

    #[test]
    fn zero_byte_transfer_and_zero_compute_complete_instantly() {
        let mut sim = Simulator::new(net());
        let a = sim.transfer("z", NodeId(0), NodeId(1), 0, &[]);
        let b = sim.compute("c", NodeId(0), 0.0, &[a]);
        let c = sim.transfer("t", NodeId(0), NodeId(1), 100, &[b]);
        let r = sim.run();
        assert!((r.makespan - 1.0).abs() < 1e-6);
        assert_eq!(r.records[a.0].finish, 0.0);
        assert_eq!(r.records[c.0].start, 0.0);
    }

    #[test]
    fn release_at_delays_start_on_an_idle_network() {
        let mut sim = Simulator::new(net());
        let a = sim.transfer("a", NodeId(0), NodeId(1), 100, &[]);
        sim.release_at(a, 7.0);
        let r = sim.run();
        assert!((r.records[a.0].start - 7.0).abs() < 1e-9, "{}", r.records[a.0].start);
        assert!((r.makespan - 8.0).abs() < 1e-6);
    }

    #[test]
    fn release_at_composes_with_dependencies() {
        // Dep finishes at 5 s, release is 2 s: the later bound (the dep)
        // governs. Then the other way around: release at 9 s wins.
        let mut sim = Simulator::new(net());
        let a = sim.transfer("a", NodeId(0), NodeId(1), 500, &[]); // 5 s
        let b = sim.transfer("b", NodeId(1), NodeId(0), 100, &[a]);
        sim.release_at(b, 2.0);
        let c = sim.transfer("c", NodeId(2), NodeId(3), 100, &[a]);
        sim.release_at(c, 9.0);
        let r = sim.run();
        assert!((r.records[b.0].start - 5.0).abs() < 1e-6);
        assert!((r.records[c.0].start - 9.0).abs() < 1e-6);
    }

    #[test]
    fn throttle_caps_a_transfer_below_its_path_rate() {
        let mut sim = Simulator::new(net());
        let a = sim.transfer("a", NodeId(0), NodeId(1), 1000, &[]);
        sim.throttle(a, 0.5); // 50 B/s on a 100 B/s path
        let r = sim.run();
        assert!((r.makespan - 20.0).abs() < 1e-6, "{}", r.makespan);
    }

    #[test]
    fn throttled_flow_leaves_headroom_for_a_competitor() {
        // Both flows leave node 0's uplink. Unthrottled they split 50/50
        // and finish together at 20 s; with "a" throttled to 30%, "b"
        // takes the residual 70 B/s and finishes at ~14.3 s.
        let mut sim = Simulator::new(net());
        let a = sim.transfer("a", NodeId(0), NodeId(1), 1000, &[]);
        sim.transfer("b", NodeId(0), NodeId(1), 1000, &[]);
        sim.throttle(a, 0.3);
        let r = sim.run();
        let b_rec = &r.records[1];
        assert!(b_rec.finish < 15.0, "residual goes to b: {}", b_rec.finish);
        assert!((r.records[a.0].finish - 1000.0 / 30.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "factor must be in (0, 1]")]
    fn throttle_rejects_zero_factor() {
        let mut sim = Simulator::new(net());
        let a = sim.transfer("a", NodeId(0), NodeId(1), 100, &[]);
        sim.throttle(a, 0.0);
    }

    #[test]
    #[should_panic(expected = "only transfer jobs")]
    fn throttle_rejects_compute_jobs() {
        let mut sim = Simulator::new(net());
        let c = sim.compute("c", NodeId(0), 1.0, &[]);
        sim.throttle(c, 0.5);
    }

    #[test]
    fn fan_in_dependency_waits_for_all() {
        let mut sim = Simulator::new(net());
        let a = sim.transfer("a", NodeId(0), NodeId(1), 100, &[]); // 1 s
        let b = sim.transfer("b", NodeId(2), NodeId(3), 300, &[]); // 3 s
        let c = sim.compute("c", NodeId(1), 1.0, &[a, b]);
        let r = sim.run();
        assert!((r.records[c.0].start - 3.0).abs() < 1e-6);
        assert!((r.makespan - 4.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "unknown dependency")]
    fn forward_dependencies_are_rejected() {
        // Dependencies must reference already-added jobs, which makes
        // dependency cycles unconstructible through the public API.
        let mut sim = Simulator::new(net());
        let a = sim.transfer("a", NodeId(0), NodeId(1), 100, &[]);
        let _b = sim.transfer("b", NodeId(0), NodeId(1), 100, &[a, JobId(2)]);
    }

    #[test]
    fn aggregation_switch_caps_total_cross_traffic() {
        // Two cross flows between disjoint rack pairs: unconstrained they
        // run in parallel (10 B/s each); an agg switch of 10 B/s total
        // halves them.
        let topo = Topology::uniform(4, 1);
        let profile = BandwidthProfile::uniform(4, 100.0, 10.0);
        let mut sim = Simulator::new(Network::new(topo.clone(), profile.clone()));
        sim.transfer("a", NodeId(0), NodeId(1), 1000, &[]);
        sim.transfer("b", NodeId(2), NodeId(3), 1000, &[]);
        let free = sim.run();
        assert!((free.makespan - 100.0).abs() < 1e-6, "{}", free.makespan);

        let net = Network::new(topo, profile).with_agg_capacity(10.0);
        assert_eq!(net.agg_capacity(), 10.0);
        let mut sim = Simulator::new(net);
        sim.transfer("a", NodeId(0), NodeId(1), 1000, &[]);
        sim.transfer("b", NodeId(2), NodeId(3), 1000, &[]);
        let capped = sim.run();
        assert!(
            (capped.makespan - 200.0).abs() < 1e-6,
            "{}",
            capped.makespan
        );
    }

    #[test]
    fn aggregation_switch_ignores_inner_traffic() {
        let topo = Topology::uniform(2, 2);
        let profile = BandwidthProfile::uniform(2, 100.0, 10.0);
        let net = Network::new(topo, profile).with_agg_capacity(1.0);
        let mut sim = Simulator::new(net);
        // Pure inner-rack transfer: unaffected by a tiny agg capacity.
        sim.transfer("i", NodeId(0), NodeId(1), 1000, &[]);
        let r = sim.run();
        assert!((r.makespan - 10.0).abs() < 1e-6, "{}", r.makespan);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_agg_capacity_rejected() {
        let topo = Topology::uniform(2, 1);
        let profile = BandwidthProfile::uniform(2, 100.0, 10.0);
        let _ = Network::new(topo, profile).with_agg_capacity(0.0);
    }

    #[test]
    fn inner_and_cross_traffic_are_accounted_separately() {
        let mut sim = Simulator::new(net());
        sim.transfer("i", NodeId(0), NodeId(1), 700, &[]);
        sim.transfer("x", NodeId(0), NodeId(2), 900, &[]);
        let r = sim.run();
        assert_eq!(r.inner_rack_bytes, 700);
        assert_eq!(r.cross_rack_bytes, 900);
        assert_eq!(r.node_upload_bytes[0], 1600);
        assert_eq!(r.node_download_bytes[1], 700);
        assert_eq!(r.node_download_bytes[2], 900);
    }

    #[test]
    fn run_recorded_replays_jobs_in_time_order() {
        use rpr_obs::{Event, TraceRecorder};
        let rec = TraceRecorder::default();
        let mut sim = Simulator::new(net());
        let a = sim.transfer("inner", NodeId(0), NodeId(1), 500, &[]); // 5 s
        let b = sim.transfer("cross", NodeId(1), NodeId(2), 100, &[a]); // 10 s
        let _c = sim.compute("decode", NodeId(2), 1.0, &[b]);
        let report = sim.run_recorded(&rec);
        assert!((report.makespan - 16.0).abs() < 1e-6);

        let events = rec.take_events();
        // Two transfers at three events each, plus one combine.
        assert_eq!(events.len(), 7);
        let mut last = 0.0;
        for e in &events {
            assert!(e.time() >= last, "events out of order");
            last = e.time();
        }
        match &events[0] {
            Event::TransferQueued { xfer, t } => {
                assert_eq!(xfer.label, "inner");
                assert!(!xfer.cross);
                assert_eq!((xfer.src_rack, xfer.dst_rack), (0, 0));
                assert_eq!(*t, 0.0);
            }
            other => panic!("expected queued first, got {other:?}"),
        }
        match events.last().unwrap() {
            Event::CombineDone { node, rack, end, .. } => {
                assert_eq!((*node, *rack), (2, 1));
                assert!((end - 16.0).abs() < 1e-6);
            }
            other => panic!("expected combine last, got {other:?}"),
        }
        let snap = rec.snapshot();
        assert_eq!(snap.inner_bytes, 500);
        assert_eq!(snap.cross_bytes, 100);
        assert_eq!(snap.racks[0].inner_bytes_out, 500);
        assert_eq!(snap.racks[0].cross_bytes_out, 100);
    }

    fn fail(fraction: f64, delay: f64) -> crate::FailSpec {
        crate::FailSpec {
            fraction,
            delay,
            reason: "timeout".into(),
        }
    }

    #[test]
    fn injected_failure_retries_with_backoff() {
        // Cross transfer at 10 B/s: clean time 100 s. Fail at 50% with a
        // 5 s backoff: 50 s wasted + 5 s backoff + 100 s retry = 155 s.
        let mut sim = Simulator::new(net());
        let j = sim.transfer("t", NodeId(0), NodeId(2), 1000, &[]);
        sim.fail_attempts(j, vec![fail(0.5, 5.0)]);
        let r = sim.run();
        assert!((r.makespan - 155.0).abs() < 1e-6, "{}", r.makespan);
        let rec = r.record(j);
        assert_eq!(rec.attempts(), 2);
        assert_eq!(rec.failures.len(), 1);
        assert!((rec.failures[0].at - 50.0).abs() < 1e-6);
        assert!((rec.start - 55.0).abs() < 1e-6, "{}", rec.start);
        assert_eq!(r.retransmitted_bytes, 500);
        // Clean per-class accounting is unchanged by the retry.
        assert_eq!(r.cross_rack_bytes, 1000);
    }

    #[test]
    fn full_fraction_failure_models_detected_corruption() {
        // fraction 1.0: the whole payload arrives, verification rejects
        // it, and the transfer repeats — exactly double the clean time.
        let mut sim = Simulator::new(net());
        let j = sim.transfer("t", NodeId(0), NodeId(2), 1000, &[]);
        sim.fail_attempts(j, vec![fail(1.0, 0.0)]);
        let r = sim.run();
        assert!((r.makespan - 200.0).abs() < 1e-6, "{}", r.makespan);
        assert_eq!(r.retransmitted_bytes, 1000);
    }

    #[test]
    fn multiple_failures_consume_specs_in_order() {
        let mut sim = Simulator::new(net());
        let j = sim.transfer("t", NodeId(0), NodeId(2), 1000, &[]);
        sim.fail_attempts(j, vec![fail(0.1, 1.0), fail(0.2, 2.0)]);
        let r = sim.run();
        // 10 + 1 + 20 + 2 + 100 = 133 s.
        assert!((r.makespan - 133.0).abs() < 1e-6, "{}", r.makespan);
        assert_eq!(r.record(j).failures.len(), 2);
        assert!((r.record(j).failures[1].at - 31.0).abs() < 1e-6);
    }

    #[test]
    fn dependent_jobs_wait_for_a_retried_producer() {
        let mut sim = Simulator::new(net());
        let a = sim.transfer("a", NodeId(0), NodeId(1), 500, &[]); // clean 5 s
        sim.fail_attempts(a, vec![fail(0.5, 1.0)]);
        let b = sim.transfer("b", NodeId(1), NodeId(0), 500, &[a]);
        let r = sim.run();
        // a: 2.5 wasted + 1 backoff + 5 = 8.5; b starts only then.
        assert!((r.record(a).finish - 8.5).abs() < 1e-6);
        assert!((r.record(b).start - 8.5).abs() < 1e-6);
        assert!((r.makespan - 13.5).abs() < 1e-6, "{}", r.makespan);
    }

    #[test]
    fn concurrent_job_keeps_running_through_anothers_backoff() {
        // The retrying cross flow leaves and re-enters the competition;
        // the long-running independent flow is simulated continuously.
        let mut sim = Simulator::new(net());
        let a = sim.transfer("a", NodeId(0), NodeId(2), 1000, &[]); // 100 s clean
        let b = sim.transfer("b", NodeId(1), NodeId(4), 2000, &[]); // 200 s clean
        sim.fail_attempts(a, vec![fail(0.3, 10.0)]);
        let r = sim.run();
        // Disjoint rack pairs: no contention. a = 30 + 10 + 100 = 140.
        assert!((r.record(a).finish - 140.0).abs() < 1e-6);
        assert!((r.record(b).finish - 200.0).abs() < 1e-6);
    }

    #[test]
    fn derate_node_slows_only_its_links() {
        let mut sim = Simulator::new(net());
        sim.derate_node(NodeId(0), 0.5);
        let a = sim.transfer("a", NodeId(0), NodeId(1), 1000, &[]);
        let b = sim.transfer("b", NodeId(2), NodeId(3), 1000, &[]);
        let r = sim.run();
        // Node 0 uplink halved to 50 B/s → 20 s; node 2 untouched → 10 s.
        assert!((r.record(a).finish - 20.0).abs() < 1e-6, "{}", r.record(a).finish);
        assert!((r.record(b).finish - 10.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "fraction out of range")]
    fn fail_attempts_rejects_bad_fraction() {
        let mut sim = Simulator::new(net());
        let j = sim.transfer("t", NodeId(0), NodeId(1), 100, &[]);
        sim.fail_attempts(j, vec![fail(1.5, 0.0)]);
    }

    #[test]
    fn run_recorded_replays_failures_and_retries() {
        use rpr_obs::{Event, TraceRecorder};
        let rec = TraceRecorder::default();
        let mut sim = Simulator::new(net());
        let j = sim.transfer("p0op0:send", NodeId(0), NodeId(2), 1000, &[]);
        sim.fail_attempts(j, vec![fail(0.5, 5.0)]);
        let report = sim.run_recorded(&rec);
        assert!((report.makespan - 155.0).abs() < 1e-6);
        let events = rec.take_events();
        // queued/started (failed attempt), failed, retry_scheduled,
        // queued/started (retry), done.
        let names: Vec<&str> = events.iter().map(|e| e.name()).collect();
        assert_eq!(
            names,
            vec![
                "transfer_queued",
                "transfer_started",
                "transfer_failed",
                "retry_scheduled",
                "transfer_queued",
                "transfer_started",
                "transfer_done",
            ]
        );
        match &events[2] {
            Event::TransferFailed {
                attempt, reason, t, ..
            } => {
                assert_eq!(*attempt, 0);
                assert_eq!(reason, "timeout");
                assert!((t - 50.0).abs() < 1e-6);
            }
            other => panic!("expected transfer_failed, got {other:?}"),
        }
        match &events[3] {
            Event::RetryScheduled { delay, rack, .. } => {
                assert!((delay - 5.0).abs() < 1e-6);
                assert_eq!(*rack, 0);
            }
            other => panic!("expected retry_scheduled, got {other:?}"),
        }
        let snap = rec.snapshot();
        assert_eq!(snap.transfer_failures, 1);
        assert_eq!(snap.retries, 1);
        assert_eq!(snap.racks[0].retries, 1);
    }

    #[test]
    fn inner_transfer_unaffected_by_concurrent_cross_traffic() {
        // Wondershaper shapes only the cross class; an inner transfer from
        // the same node still gets most of the NIC.
        let mut sim = Simulator::new(net());
        sim.transfer("x", NodeId(0), NodeId(2), 1000, &[]); // cross, 10 B/s
        sim.transfer("i", NodeId(0), NodeId(1), 900, &[]); // inner
        let r = sim.run();
        // Inner flow: NIC 100 shared max-min with cross flow capped at 10
        // => inner gets 90 B/s, finishes at 10 s; cross at 100 s.
        assert!((r.makespan - 100.0).abs() < 1e-6, "{}", r.makespan);
        let inner = r.records.iter().find(|j| j.label == "i").unwrap();
        assert!((inner.finish - 10.0).abs() < 1e-6, "{}", inner.finish);
    }
}
