//! Proof-carrying repair evidence.
//!
//! Every repair op (a helper sending a block, a hop folding a partial
//! sum) can emit a [`RepairProof`]: the hashes of its inputs, the
//! symbolic GF coefficient vector it claims to have applied, the
//! algorithm/kernel tier that ran, and the chunking geometry — all bound
//! to the hash of its output with a *keyed* 128-bit hash ([`ProofHasher`],
//! SipHash-2-4 with 128-bit output). FNV-1a stays as the fast per-chunk
//! transport checksum; the keyed proof hash is what resists an
//! adversarial helper that fabricates checksum-consistent garbage.
//!
//! Proofs accumulate in a [`ProofLedger`] keyed off the repair seed
//! ([`ProofKey::from_seed`]), serialized as JSON lines, and verifiable
//! *offline* by anyone holding the seed: [`ProofLedger::audit`] recomputes
//! every binding, checks wire consistency (each consumer's input hash
//! must equal its producer's output hash), and localizes the **first
//! dishonest hop** — the earliest op whose output hash disagrees with its
//! expected hash while all of its op-inputs match their producers'
//! *expected* hashes (downstream ops that merely folded a lie are
//! tainted, not dishonest).
//!
//! The trust model is symmetric-key: the supervisor and the auditor share
//! the repair seed, from which the ledger key derives deterministically.
//! A helper never holds the key, so it cannot forge a binding for lied
//! bytes. See `docs/ROBUSTNESS.md` for the full proof-plane story and
//! [`ProofMode`] for how much of it is enforced at repair time.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rpr_faults::SplitMix64;

// ---------------------------------------------------------------------------
// Keyed hashing
// ---------------------------------------------------------------------------

/// The 128-bit key of a proof ledger, derived deterministically from the
/// repair seed. Helpers never see it; the supervisor and the offline
/// auditor both re-derive it from the seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProofKey {
    k0: u64,
    k1: u64,
}

impl ProofKey {
    /// Derive the ledger key for a repair seed. Pure function of the
    /// seed (two draws of the same [`SplitMix64`] stream the rest of the
    /// robustness layer uses), so same seed ⇒ same key ⇒ byte-identical
    /// ledgers across runs.
    pub fn from_seed(seed: u64) -> ProofKey {
        let mut mix = SplitMix64::new(seed ^ 0x7072_6f6f_666b_6579); // "proofkey"
        ProofKey {
            k0: mix.next_u64(),
            k1: mix.next_u64(),
        }
    }
}

/// Streaming SipHash-2-4 with 128-bit output.
///
/// Hand-rolled (the build has no registry access) from the reference
/// description in Aumasson & Bernstein, *SipHash: a fast short-input
/// PRF*. Streaming so the executor can fold chunk after chunk without
/// materializing the whole block — cut-through repair stays
/// allocation-free.
#[derive(Debug, Clone)]
pub struct ProofHasher {
    v0: u64,
    v1: u64,
    v2: u64,
    v3: u64,
    buf: [u8; 8],
    buf_len: usize,
    len: u64,
}

impl ProofHasher {
    /// A hasher for the given ledger key.
    pub fn new(key: ProofKey) -> ProofHasher {
        let mut h = ProofHasher {
            v0: key.k0 ^ 0x736f_6d65_7073_6575,
            v1: key.k1 ^ 0x646f_7261_6e64_6f6d,
            v2: key.k0 ^ 0x6c79_6765_6e65_7261,
            v3: key.k1 ^ 0x7465_6462_7974_6573,
            buf: [0; 8],
            buf_len: 0,
            len: 0,
        };
        h.v1 ^= 0xee; // 128-bit output variant
        h
    }

    #[inline]
    fn rounds(&mut self, n: usize) {
        for _ in 0..n {
            self.v0 = self.v0.wrapping_add(self.v1);
            self.v1 = self.v1.rotate_left(13);
            self.v1 ^= self.v0;
            self.v0 = self.v0.rotate_left(32);
            self.v2 = self.v2.wrapping_add(self.v3);
            self.v3 = self.v3.rotate_left(16);
            self.v3 ^= self.v2;
            self.v0 = self.v0.wrapping_add(self.v3);
            self.v3 = self.v3.rotate_left(21);
            self.v3 ^= self.v0;
            self.v2 = self.v2.wrapping_add(self.v1);
            self.v1 = self.v1.rotate_left(17);
            self.v1 ^= self.v2;
            self.v2 = self.v2.rotate_left(32);
        }
    }

    #[inline]
    fn compress(&mut self, m: u64) {
        self.v3 ^= m;
        self.rounds(2);
        self.v0 ^= m;
    }

    /// Absorb `data`. Chunks may be fed in any split; only the
    /// concatenation matters.
    pub fn update(&mut self, data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        let mut rest = data;
        if self.buf_len > 0 {
            let take = rest.len().min(8 - self.buf_len);
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&rest[..take]);
            self.buf_len += take;
            rest = &rest[take..];
            if self.buf_len < 8 {
                return;
            }
            let m = u64::from_le_bytes(self.buf);
            self.compress(m);
            self.buf_len = 0;
        }
        let mut words = rest.chunks_exact(8);
        for w in &mut words {
            let m = u64::from_le_bytes(w.try_into().expect("8-byte chunk"));
            self.compress(m);
        }
        let tail = words.remainder();
        self.buf[..tail.len()].copy_from_slice(tail);
        self.buf_len = tail.len();
    }

    /// Absorb a `u64` as 8 little-endian bytes (domain separation for
    /// structured fields mixed into a proof binding).
    pub fn update_u64(&mut self, x: u64) {
        self.update(&x.to_le_bytes());
    }

    /// Finalize into the 128-bit digest.
    pub fn finish(mut self) -> u128 {
        let mut last = [0u8; 8];
        last[..self.buf_len].copy_from_slice(&self.buf[..self.buf_len]);
        last[7] = (self.len & 0xff) as u8;
        let m = u64::from_le_bytes(last);
        self.compress(m);
        self.v2 ^= 0xee;
        self.rounds(4);
        let lo = self.v0 ^ self.v1 ^ self.v2 ^ self.v3;
        self.v1 ^= 0xdd;
        self.rounds(4);
        let hi = self.v0 ^ self.v1 ^ self.v2 ^ self.v3;
        (lo as u128) | ((hi as u128) << 64)
    }
}

/// One-shot keyed hash of a byte slice.
pub fn hash_bytes(key: ProofKey, data: &[u8]) -> u128 {
    let mut h = ProofHasher::new(key);
    h.update(data);
    h.finish()
}

/// The symbolic hash of ground-truth block `block` — what the simulator
/// backend uses in place of real block bytes.
pub fn symbolic_block_hash(key: ProofKey, block: usize) -> u128 {
    let mut h = ProofHasher::new(key);
    h.update(b"block");
    h.update_u64(block as u64);
    h.finish()
}

/// The symbolic hash of an op output carrying coefficient vector
/// `coeffs`, tainted by the lying ops in `taint` (sorted `(gen, op)`
/// pairs; empty = honest). The simulator has no bytes, so "wrong bytes"
/// is modeled as a non-empty taint set: the honest expected hash is
/// `symbolic_output_hash(key, coeffs, &[])` and any taint perturbs it.
pub fn symbolic_output_hash(key: ProofKey, coeffs: &[u8], taint: &[(usize, usize)]) -> u128 {
    let mut h = ProofHasher::new(key);
    h.update(b"sym");
    h.update_u64(coeffs.len() as u64);
    h.update(coeffs);
    h.update_u64(taint.len() as u64);
    for &(g, o) in taint {
        h.update_u64(g as u64);
        h.update_u64(o as u64);
    }
    h.finish()
}

// ---------------------------------------------------------------------------
// Proof modes
// ---------------------------------------------------------------------------

/// How much of the proof plane a repair enforces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProofMode {
    /// Proofs are emitted, verified, and *enforced*: a proof rejection
    /// fails the generation, accuses the dishonest helper (quarantine on
    /// evidence), purges its banked partials, and replans without it.
    Mandatory,
    /// Proofs are emitted and verified; rejections are recorded as trace
    /// events but never alter control flow.
    Advisory,
    /// No proofs: bit-identical to the pre-proof-plane behavior.
    #[default]
    Off,
}

impl ProofMode {
    /// Stable lowercase name used in ledgers, summaries, and CLI flags.
    pub fn name(&self) -> &'static str {
        match self {
            ProofMode::Mandatory => "mandatory",
            ProofMode::Advisory => "advisory",
            ProofMode::Off => "off",
        }
    }

    /// Parse a CLI / ledger-header mode name.
    ///
    /// # Errors
    /// Returns a descriptive message for unknown names.
    pub fn from_name(name: &str) -> Result<ProofMode, String> {
        match name {
            "mandatory" => Ok(ProofMode::Mandatory),
            "advisory" => Ok(ProofMode::Advisory),
            "off" => Ok(ProofMode::Off),
            other => Err(format!(
                "unknown proof mode '{other}' (expected mandatory, advisory, or off)"
            )),
        }
    }

    /// True when proofs are computed at all (Mandatory or Advisory).
    pub fn active(&self) -> bool {
        !matches!(self, ProofMode::Off)
    }
}

// ---------------------------------------------------------------------------
// Proofs and ledger entries
// ---------------------------------------------------------------------------

/// Where one proof input came from: a stripe block read from disk, the
/// output of an earlier op in the same generation's plan, or a partial
/// result banked into the reuse pool by an earlier generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProofSource {
    /// Stripe block index (the op read it locally; there is no upstream
    /// producer to blame, so a wrong output here is dishonest at *this*
    /// op).
    Block(usize),
    /// Plan op index within the same generation whose output this op
    /// consumed.
    Op(usize),
    /// Pool provenance: the op re-served a partial that op `op` of
    /// generation `gen` originally produced. Audits follow this edge
    /// across generations, so taint on a re-served partial localizes to
    /// the original liar, not the node that banked and replayed it.
    Pooled {
        /// Generation whose plan produced the banked partial.
        gen: usize,
        /// Op index within that generation.
        op: usize,
    },
}

impl ProofSource {
    fn encode(&self) -> String {
        match self {
            ProofSource::Block(b) => format!("b{b}"),
            ProofSource::Op(o) => format!("o{o}"),
            ProofSource::Pooled { gen, op } => format!("p{gen}.{op}"),
        }
    }

    fn decode(s: &str) -> Result<ProofSource, String> {
        let (tag, idx) = s.split_at(1.min(s.len()));
        if tag == "p" {
            let (gen, op) = idx
                .split_once('.')
                .ok_or_else(|| format!("bad proof source '{s}'"))?;
            return Ok(ProofSource::Pooled {
                gen: gen.parse().map_err(|_| format!("bad proof source '{s}'"))?,
                op: op.parse().map_err(|_| format!("bad proof source '{s}'"))?,
            });
        }
        let idx: usize = idx
            .parse()
            .map_err(|_| format!("bad proof source '{s}'"))?;
        match tag {
            "b" => Ok(ProofSource::Block(idx)),
            "o" => Ok(ProofSource::Op(idx)),
            _ => Err(format!("bad proof source '{s}'")),
        }
    }
}

/// The evidence one repair op emits: everything needed to re-check its
/// work without trusting the process that did it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepairProof {
    /// Plan op index within its generation.
    pub op: usize,
    /// Node that executed the op (the helper under suspicion).
    pub node: usize,
    /// Symbolic GF coefficient vector over stripe blocks that the op
    /// claims its output equals (the pool key of the partial-result
    /// bank).
    pub coeffs: Vec<u8>,
    /// Hashes of every input the op consumed, in consumption order.
    pub inputs: Vec<(ProofSource, u128)>,
    /// Keyed hash of the bytes the op actually produced (simulator:
    /// taint-set symbolic hash).
    pub output_hash: u128,
    /// Keyed hash of what the output *should* be, derived by the
    /// supervisor from ground truth (simulator: taint-free symbolic
    /// hash). Recorded as a witness so the offline auditor can localize
    /// dishonesty without re-deriving ground truth.
    pub expected_hash: u128,
    /// Algorithm / kernel-tier identifier that produced the output
    /// (e.g. `"sim"`, `"gf-scalar"`, `"gf-simd"`).
    pub algorithm: String,
    /// Number of cut-through chunks the output was produced in (1 =
    /// store-and-forward).
    pub chunks: usize,
    /// Bytes per chunk (block size when `chunks == 1`).
    pub chunk_bytes: u64,
}

impl RepairProof {
    /// True when the op's output matches its expected hash.
    pub fn honest_output(&self) -> bool {
        self.output_hash == self.expected_hash
    }
}

/// One sealed ledger line: a proof plus the supervision generation it
/// ran in and the keyed binding over every field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LedgerEntry {
    /// Supervision generation (replan index) the op ran in.
    pub gen: usize,
    /// The proof being sealed.
    pub proof: RepairProof,
    /// Keyed binding over `(gen, proof)`. A helper cannot forge it
    /// without the ledger key, and any post-hoc edit of a recorded field
    /// breaks it.
    pub binding: u128,
}

/// Compute the binding of a proof: the keyed hash over every field in a
/// fixed canonical order.
pub fn bind_proof(key: ProofKey, gen: usize, proof: &RepairProof) -> u128 {
    let mut h = ProofHasher::new(key);
    h.update(b"bind");
    h.update_u64(gen as u64);
    h.update_u64(proof.op as u64);
    h.update_u64(proof.node as u64);
    h.update_u64(proof.coeffs.len() as u64);
    h.update(&proof.coeffs);
    h.update_u64(proof.inputs.len() as u64);
    for (src, hash) in &proof.inputs {
        match src {
            ProofSource::Block(b) => {
                h.update_u64(0);
                h.update_u64(*b as u64);
            }
            ProofSource::Op(o) => {
                h.update_u64(1);
                h.update_u64(*o as u64);
            }
            ProofSource::Pooled { gen, op } => {
                h.update_u64(2);
                h.update_u64(*gen as u64);
                h.update_u64(*op as u64);
            }
        }
        h.update(&hash.to_le_bytes());
    }
    h.update(&proof.output_hash.to_le_bytes());
    h.update(&proof.expected_hash.to_le_bytes());
    h.update_u64(proof.algorithm.len() as u64);
    h.update(proof.algorithm.as_bytes());
    h.update_u64(proof.chunks as u64);
    h.update_u64(proof.chunk_bytes);
    h.finish()
}

// ---------------------------------------------------------------------------
// The ledger
// ---------------------------------------------------------------------------

/// An append-only ledger of sealed repair proofs for one repair, keyed
/// off its seed. Serializes to JSON lines ([`ProofLedger::to_json_lines`])
/// and back ([`ProofLedger::parse`]); [`ProofLedger::audit`] verifies it
/// offline.
#[derive(Debug, Clone, PartialEq)]
pub struct ProofLedger {
    /// The repair seed the ledger key derives from.
    pub seed: u64,
    /// The mode the repair ran under.
    pub mode: ProofMode,
    /// Sealed entries in emission order (generation-major, op order
    /// within a generation).
    pub entries: Vec<LedgerEntry>,
}

impl ProofLedger {
    /// An empty ledger for a repair seed running under `mode`.
    pub fn new(seed: u64, mode: ProofMode) -> ProofLedger {
        ProofLedger {
            seed,
            mode,
            entries: Vec::new(),
        }
    }

    /// The ledger key (re-derived from the seed on every call; cheap).
    pub fn key(&self) -> ProofKey {
        ProofKey::from_seed(self.seed)
    }

    /// Seal `proof` under the ledger key and append it.
    pub fn push(&mut self, gen: usize, proof: RepairProof) {
        let binding = bind_proof(self.key(), gen, &proof);
        self.entries.push(LedgerEntry {
            gen,
            proof,
            binding,
        });
    }

    /// Serialize: one header line, then one JSON object per entry, with
    /// a stable field order so same-seed ledgers compare with `cmp`.
    pub fn to_json_lines(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{{\"ledger\":\"rpr-proof\",\"version\":1,\"seed\":{},\"mode\":\"{}\"}}",
            self.seed,
            self.mode.name()
        );
        for e in &self.entries {
            let p = &e.proof;
            let mut coeffs = String::with_capacity(p.coeffs.len() * 2);
            for b in &p.coeffs {
                let _ = write!(coeffs, "{b:02x}");
            }
            let inputs: Vec<String> = p
                .inputs
                .iter()
                .map(|(s, h)| format!("\"{}:{:032x}\"", s.encode(), h))
                .collect();
            let _ = writeln!(
                out,
                "{{\"gen\":{},\"op\":{},\"node\":{},\"alg\":\"{}\",\"chunks\":{},\
                 \"chunk_bytes\":{},\"coeffs\":\"{}\",\"inputs\":[{}],\
                 \"out\":\"{:032x}\",\"exp\":\"{:032x}\",\"bind\":\"{:032x}\"}}",
                e.gen,
                p.op,
                p.node,
                p.algorithm,
                p.chunks,
                p.chunk_bytes,
                coeffs,
                inputs.join(","),
                p.output_hash,
                p.expected_hash,
                e.binding,
            );
        }
        out
    }

    /// Parse a ledger back from its JSON-lines form.
    ///
    /// # Errors
    /// Returns a descriptive message on any malformed line.
    pub fn parse(text: &str) -> Result<ProofLedger, String> {
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        let header = lines.next().ok_or("empty ledger")?;
        if !header.contains("\"ledger\":\"rpr-proof\"") {
            return Err("not a rpr-proof ledger (bad header)".into());
        }
        let seed = field_u64(header, "seed")?;
        let mode = ProofMode::from_name(&field_str(header, "mode")?)?;
        let mut ledger = ProofLedger::new(seed, mode);
        for (i, line) in lines.enumerate() {
            let err = |m: &str| format!("ledger entry {}: {m}", i + 1);
            let coeffs_hex = field_str(line, "coeffs").map_err(|e| err(&e))?;
            let coeffs = parse_hex_bytes(&coeffs_hex).map_err(|e| err(&e))?;
            let mut inputs = Vec::new();
            for item in field_str_array(line, "inputs").map_err(|e| err(&e))? {
                let (src, hash) = item
                    .split_once(':')
                    .ok_or_else(|| err("input missing ':'"))?;
                inputs.push((
                    ProofSource::decode(src).map_err(|e| err(&e))?,
                    parse_hex_u128(hash).map_err(|e| err(&e))?,
                ));
            }
            let proof = RepairProof {
                op: field_u64(line, "op").map_err(|e| err(&e))? as usize,
                node: field_u64(line, "node").map_err(|e| err(&e))? as usize,
                coeffs,
                inputs,
                output_hash: parse_hex_u128(&field_str(line, "out").map_err(|e| err(&e))?)
                    .map_err(|e| err(&e))?,
                expected_hash: parse_hex_u128(&field_str(line, "exp").map_err(|e| err(&e))?)
                    .map_err(|e| err(&e))?,
                algorithm: field_str(line, "alg").map_err(|e| err(&e))?,
                chunks: field_u64(line, "chunks").map_err(|e| err(&e))? as usize,
                chunk_bytes: field_u64(line, "chunk_bytes").map_err(|e| err(&e))?,
            };
            ledger.entries.push(LedgerEntry {
                gen: field_u64(line, "gen").map_err(|e| err(&e))? as usize,
                proof,
                binding: parse_hex_u128(&field_str(line, "bind").map_err(|e| err(&e))?)
                    .map_err(|e| err(&e))?,
            });
        }
        Ok(ledger)
    }

    /// Verify the whole ledger offline and localize dishonesty. Holding
    /// only this ledger (whose header carries the seed), the auditor
    /// re-derives the key, re-checks every binding, every wire hop, and
    /// every output-vs-expected witness.
    pub fn audit(&self) -> AuditReport {
        let key = self.key();
        let mut report = AuditReport {
            entries: self.entries.len(),
            binding_failures: Vec::new(),
            wire_failures: Vec::new(),
            mismatches: Vec::new(),
            dishonest: Vec::new(),
        };
        for (i, e) in self.entries.iter().enumerate() {
            if bind_proof(key, e.gen, &e.proof) != e.binding {
                report.binding_failures.push(i);
            }
            if !e.proof.honest_output() {
                report.mismatches.push(i);
            }
            // Wire consistency + dishonesty: compare each op-input hash
            // against its producer's recorded output and expected hashes.
            let mut inputs_honest = true;
            for (src, h) in &e.proof.inputs {
                // Pool re-serves resolve across generations to the op
                // that originally banked the partial; plain op inputs
                // resolve within the entry's own generation. Block reads
                // have no upstream producer to check against.
                let (src_gen, src_op) = match src {
                    ProofSource::Block(_) => continue,
                    ProofSource::Op(o) => (e.gen, *o),
                    ProofSource::Pooled { gen, op } => (*gen, *op),
                };
                let producer = self.entries[..i]
                    .iter()
                    .rev()
                    .find(|p| p.gen == src_gen && p.proof.op == src_op);
                match producer {
                    Some(p) => {
                        if *h != p.proof.output_hash {
                            report.wire_failures.push(i);
                        }
                        if *h != p.proof.expected_hash {
                            inputs_honest = false;
                        }
                    }
                    None => {
                        // No producer recorded: the input hash cannot be
                        // cross-checked against anything.
                        report.wire_failures.push(i);
                        inputs_honest = false;
                    }
                }
            }
            if !e.proof.honest_output() && inputs_honest {
                report.dishonest.push(i);
            }
        }
        report
    }
}

/// What [`ProofLedger::audit`] found. All index vectors point into
/// [`ProofLedger::entries`], in ledger order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditReport {
    /// Total entries audited.
    pub entries: usize,
    /// Entries whose keyed binding does not recompute (tampered or
    /// forged lines).
    pub binding_failures: Vec<usize>,
    /// Entries with an op-input hash that disagrees with (or lacks) its
    /// producer's recorded output hash.
    pub wire_failures: Vec<usize>,
    /// Entries whose output hash disagrees with the expected witness
    /// (dishonest *or* downstream-tainted).
    pub mismatches: Vec<usize>,
    /// Entries localized as dishonest: wrong output from honest inputs.
    pub dishonest: Vec<usize>,
}

impl AuditReport {
    /// True when every binding verifies, every wire hop is consistent,
    /// and no output disagrees with its witness.
    pub fn clean(&self) -> bool {
        self.binding_failures.is_empty()
            && self.wire_failures.is_empty()
            && self.mismatches.is_empty()
            && self.dishonest.is_empty()
    }

    /// Index (into the ledger's entries) of the first dishonest hop, if
    /// any.
    pub fn first_dishonest(&self) -> Option<usize> {
        self.dishonest.first().copied()
    }
}

// ---------------------------------------------------------------------------
// Hand-rolled JSON field extraction (the workspace avoids serde)
// ---------------------------------------------------------------------------

fn field_u64(line: &str, key: &str) -> Result<u64, String> {
    let pat = format!("\"{key}\":");
    let at = line
        .find(&pat)
        .ok_or_else(|| format!("missing field '{key}'"))?;
    let rest = &line[at + pat.len()..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end]
        .parse()
        .map_err(|_| format!("bad number in field '{key}'"))
}

fn field_str(line: &str, key: &str) -> Result<String, String> {
    let pat = format!("\"{key}\":\"");
    let at = line
        .find(&pat)
        .ok_or_else(|| format!("missing field '{key}'"))?;
    let rest = &line[at + pat.len()..];
    let end = rest
        .find('"')
        .ok_or_else(|| format!("unterminated field '{key}'"))?;
    Ok(rest[..end].to_string())
}

fn field_str_array(line: &str, key: &str) -> Result<Vec<String>, String> {
    let pat = format!("\"{key}\":[");
    let at = line
        .find(&pat)
        .ok_or_else(|| format!("missing field '{key}'"))?;
    let rest = &line[at + pat.len()..];
    let end = rest
        .find(']')
        .ok_or_else(|| format!("unterminated array '{key}'"))?;
    let body = &rest[..end];
    if body.trim().is_empty() {
        return Ok(Vec::new());
    }
    body.split(',')
        .map(|item| {
            let item = item.trim();
            item.strip_prefix('"')
                .and_then(|s| s.strip_suffix('"'))
                .map(str::to_string)
                .ok_or_else(|| format!("unquoted element in array '{key}'"))
        })
        .collect()
}

fn parse_hex_u128(s: &str) -> Result<u128, String> {
    u128::from_str_radix(s, 16).map_err(|_| format!("bad hex hash '{s}'"))
}

fn parse_hex_bytes(s: &str) -> Result<Vec<u8>, String> {
    if !s.len().is_multiple_of(2) {
        return Err("odd-length hex string".into());
    }
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).map_err(|_| format!("bad hex '{s}'")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn proof(op: usize, node: usize, inputs: Vec<(ProofSource, u128)>, out: u128, exp: u128) -> RepairProof {
        RepairProof {
            op,
            node,
            coeffs: vec![1, 0, 3],
            inputs,
            output_hash: out,
            expected_hash: exp,
            algorithm: "sim".into(),
            chunks: 4,
            chunk_bytes: 8,
        }
    }

    #[test]
    fn streaming_matches_one_shot() {
        let key = ProofKey::from_seed(17);
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        let whole = hash_bytes(key, &data);
        for split in [1usize, 3, 7, 8, 64, 999] {
            let mut h = ProofHasher::new(key);
            for chunk in data.chunks(split) {
                h.update(chunk);
            }
            assert_eq!(h.finish(), whole, "split {split}");
        }
    }

    #[test]
    fn keys_and_inputs_separate_hashes() {
        let k17 = ProofKey::from_seed(17);
        let k18 = ProofKey::from_seed(18);
        assert_eq!(ProofKey::from_seed(17), k17, "key derivation is pure");
        assert_ne!(k17, k18);
        assert_ne!(hash_bytes(k17, b"abc"), hash_bytes(k18, b"abc"));
        assert_ne!(hash_bytes(k17, b"abc"), hash_bytes(k17, b"abd"));
        assert_ne!(hash_bytes(k17, b""), hash_bytes(k17, b"\0"));
        // Length is absorbed: two updates == one concatenated update,
        // but shifting a byte across a field boundary must not collide.
        assert_ne!(symbolic_block_hash(k17, 1), symbolic_block_hash(k17, 2));
        assert_ne!(
            symbolic_output_hash(k17, &[1, 2], &[]),
            symbolic_output_hash(k17, &[1, 2], &[(0, 3)])
        );
    }

    #[test]
    fn mode_names_round_trip() {
        for mode in [ProofMode::Mandatory, ProofMode::Advisory, ProofMode::Off] {
            assert_eq!(ProofMode::from_name(mode.name()), Ok(mode));
        }
        assert!(ProofMode::from_name("loud").is_err());
        assert_eq!(ProofMode::default(), ProofMode::Off);
        assert!(ProofMode::Mandatory.active());
        assert!(!ProofMode::Off.active());
    }

    #[test]
    fn ledger_round_trips_through_json_lines() {
        let key = ProofKey::from_seed(99);
        let mut ledger = ProofLedger::new(99, ProofMode::Mandatory);
        let h0 = symbolic_block_hash(key, 2);
        ledger.push(0, proof(0, 5, vec![(ProofSource::Block(2), h0)], 10, 10));
        ledger.push(1, proof(3, 6, vec![(ProofSource::Op(0), 10)], 20, 21));
        let text = ledger.to_json_lines();
        let back = ProofLedger::parse(&text).expect("parse");
        assert_eq!(back, ledger);
        assert_eq!(back.to_json_lines(), text, "re-serialization is stable");
    }

    #[test]
    fn audit_accepts_honest_ledger_and_localizes_liar() {
        let key = ProofKey::from_seed(7);
        let b = symbolic_block_hash(key, 0);
        // op0 sends block 0 honestly, op1 folds it honestly.
        let mut honest = ProofLedger::new(7, ProofMode::Mandatory);
        honest.push(0, proof(0, 1, vec![(ProofSource::Block(0), b)], 11, 11));
        honest.push(0, proof(1, 2, vec![(ProofSource::Op(0), 11)], 22, 22));
        let report = honest.audit();
        assert!(report.clean(), "{report:?}");
        assert_eq!(report.first_dishonest(), None);

        // op0 lies (out 99 != exp 11); op1 faithfully folds the lie, so
        // its output is wrong too — but only op0 is dishonest.
        let mut lied = ProofLedger::new(7, ProofMode::Mandatory);
        lied.push(0, proof(0, 1, vec![(ProofSource::Block(0), b)], 99, 11));
        lied.push(0, proof(1, 2, vec![(ProofSource::Op(0), 99)], 33, 22));
        let report = lied.audit();
        assert!(!report.clean());
        assert!(report.wire_failures.is_empty(), "lie is wire-consistent");
        assert_eq!(report.mismatches, vec![0, 1]);
        assert_eq!(report.dishonest, vec![0], "taint is not dishonesty");
        assert_eq!(report.first_dishonest(), Some(0));
    }

    #[test]
    fn pooled_provenance_localizes_reserved_taint_to_the_origin() {
        let key = ProofKey::from_seed(3);
        let b = symbolic_block_hash(key, 0);
        // Generation 0: op 0 lies (out 99 != exp 11), its partial is
        // banked. Generation 1: a different node re-serves the banked
        // bytes from the pool — output still 99 against expected 11 —
        // with a provenance input naming generation 0's op 0.
        let mut ledger = ProofLedger::new(3, ProofMode::Advisory);
        ledger.push(0, proof(0, 1, vec![(ProofSource::Block(0), b)], 99, 11));
        ledger.push(
            1,
            proof(0, 2, vec![(ProofSource::Pooled { gen: 0, op: 0 }, 99)], 99, 11),
        );
        let report = ledger.audit();
        assert!(report.binding_failures.is_empty());
        assert!(
            report.wire_failures.is_empty(),
            "the pooled edge resolves across generations: {report:?}"
        );
        assert_eq!(report.mismatches, vec![0, 1], "both outputs are wrong");
        assert_eq!(
            report.dishonest,
            vec![0],
            "the re-serving node inherited the taint; only the origin lied"
        );

        // A pooled edge naming a producer the ledger never recorded (or
        // whose output disagrees) is a wire failure at the re-serve.
        let mut dangling = ProofLedger::new(3, ProofMode::Advisory);
        dangling.push(
            0,
            proof(4, 2, vec![(ProofSource::Pooled { gen: 7, op: 9 }, 99)], 99, 99),
        );
        assert_eq!(dangling.audit().wire_failures, vec![0]);

        // Pooled sources survive the JSON round trip and the binding
        // distinguishes them from plain op inputs.
        let text = ledger.to_json_lines();
        assert!(text.contains("p0.0"), "encoded provenance: {text}");
        let back = ProofLedger::parse(&text).expect("parse");
        assert_eq!(back, ledger);
        let gen_key = ledger.key();
        let as_op = proof(0, 2, vec![(ProofSource::Op(0), 99)], 99, 11);
        assert_ne!(
            bind_proof(gen_key, 1, &ledger.entries[1].proof),
            bind_proof(gen_key, 1, &as_op),
            "a pooled input binds differently from a same-generation op input"
        );
    }

    #[test]
    fn audit_detects_tampered_binding_and_broken_wire() {
        let key = ProofKey::from_seed(5);
        let b = symbolic_block_hash(key, 1);
        let mut ledger = ProofLedger::new(5, ProofMode::Advisory);
        ledger.push(0, proof(0, 1, vec![(ProofSource::Block(1), b)], 11, 11));
        ledger.push(0, proof(1, 2, vec![(ProofSource::Op(0), 12)], 22, 22));
        // Entry 1 claims an input hash its producer never output.
        let report = ledger.audit();
        assert_eq!(report.wire_failures, vec![1]);
        // Tamper with entry 0 after sealing: binding breaks.
        ledger.entries[0].proof.node = 9;
        let report = ledger.audit();
        assert_eq!(report.binding_failures, vec![0]);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(ProofLedger::parse("").is_err());
        assert!(ProofLedger::parse("{\"not\":\"a ledger\"}").is_err());
        let mut ledger = ProofLedger::new(1, ProofMode::Off);
        ledger.push(0, proof(0, 1, Vec::new(), 1, 1));
        let text = ledger.to_json_lines();
        let broken = text.replace("\"op\":0", "\"op\":x");
        assert!(ProofLedger::parse(&broken).is_err());
    }
}
