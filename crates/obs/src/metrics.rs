//! Lock-cheap aggregate metrics: atomic counters, per-rack totals, and
//! power-of-two latency histograms.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of power-of-two buckets in a [`Histogram`]. Bucket `i` counts
/// values in `[2^(i-1), 2^i)` microseconds (bucket 0: `< 1 µs`), so the
/// top bucket covers everything from ~9 hours up.
pub const HISTOGRAM_BUCKETS: usize = 45;

/// A fixed-bucket log2 histogram of durations, safe for concurrent
/// recording (one relaxed atomic increment per sample).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl Histogram {
    /// Record a duration in seconds.
    pub fn record(&self, seconds: f64) {
        let micros = (seconds * 1e6).max(0.0);
        let idx = if micros < 1.0 {
            0
        } else {
            ((micros.log2().floor() as usize) + 1).min(HISTOGRAM_BUCKETS - 1)
        };
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Copy out the current bucket counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self.buckets.each_ref().map(|b| b.load(Ordering::Relaxed)),
        }
    }
}

/// An owned copy of histogram state at one instant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Sample counts per power-of-two microsecond bucket.
    pub buckets: [u64; HISTOGRAM_BUCKETS],
}

impl HistogramSnapshot {
    /// Total recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Upper bound (seconds) of the bucket containing the `q`-quantile
    /// sample (`q` in `[0, 1]`), or `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Bucket i upper bound: 2^i µs (bucket 0 is < 1 µs).
                return Some(2f64.powi(i as i32) / 1e6);
            }
        }
        None
    }
}

/// Per-rack traffic totals, updated with relaxed atomics.
#[derive(Debug, Default)]
pub struct RackCounters {
    /// Bytes sent by nodes in this rack.
    pub bytes_out: AtomicU64,
    /// Bytes received by nodes in this rack.
    pub bytes_in: AtomicU64,
    /// Bytes this rack sent across the rack boundary.
    pub cross_bytes_out: AtomicU64,
    /// Bytes this rack sent to peers in the same rack.
    pub inner_bytes_out: AtomicU64,
    /// Transfers originating in this rack.
    pub transfers_out: AtomicU64,
    /// Combines executed in this rack.
    pub combines: AtomicU64,
    /// Failed transfer attempts originating in this rack.
    pub transfer_failures: AtomicU64,
    /// Retries scheduled for transfers originating in this rack.
    pub retries: AtomicU64,
    /// Total seconds transfers from this rack waited between queued and
    /// started, scaled to microseconds for atomic accumulation.
    pub queue_wait_micros: AtomicU64,
}

/// An owned copy of one rack's counters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RackTotals {
    /// Rack index.
    pub rack: usize,
    /// Bytes sent by nodes in this rack.
    pub bytes_out: u64,
    /// Bytes received by nodes in this rack.
    pub bytes_in: u64,
    /// Bytes this rack sent across the rack boundary.
    pub cross_bytes_out: u64,
    /// Bytes this rack sent to peers in the same rack.
    pub inner_bytes_out: u64,
    /// Transfers originating in this rack.
    pub transfers_out: u64,
    /// Combines executed in this rack.
    pub combines: u64,
    /// Failed transfer attempts originating in this rack.
    pub transfer_failures: u64,
    /// Retries scheduled for transfers originating in this rack.
    pub retries: u64,
    /// Total seconds transfers from this rack waited in queue.
    pub queue_wait_seconds: f64,
}

impl RackCounters {
    /// Copy out the current values.
    pub fn totals(&self, rack: usize) -> RackTotals {
        RackTotals {
            rack,
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            cross_bytes_out: self.cross_bytes_out.load(Ordering::Relaxed),
            inner_bytes_out: self.inner_bytes_out.load(Ordering::Relaxed),
            transfers_out: self.transfers_out.load(Ordering::Relaxed),
            combines: self.combines.load(Ordering::Relaxed),
            transfer_failures: self.transfer_failures.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            queue_wait_seconds: self.queue_wait_micros.load(Ordering::Relaxed) as f64 / 1e6,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_log2_micros() {
        let h = Histogram::default();
        h.record(0.0); // < 1 µs → bucket 0
        h.record(1.5e-6); // [1, 2) µs → bucket 1
        h.record(3e-6); // [2, 4) µs → bucket 2
        h.record(1.0); // 1 s = 2^19.93 µs → bucket 20
        let s = h.snapshot();
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[1], 1);
        assert_eq!(s.buckets[2], 1);
        assert_eq!(s.buckets[20], 1);
        assert_eq!(s.count(), 4);
    }

    #[test]
    fn histogram_quantile_walks_buckets() {
        let h = Histogram::default();
        for _ in 0..99 {
            h.record(1e-6); // bucket 1, upper bound 2 µs
        }
        h.record(1.0); // bucket 20
        let s = h.snapshot();
        assert_eq!(s.quantile(0.5), Some(2e-6));
        assert!(s.quantile(1.0).unwrap() > 0.5);
        let empty = HistogramSnapshot {
            buckets: [0u64; HISTOGRAM_BUCKETS],
        };
        assert_eq!(empty.quantile(0.5), None);
    }

    #[test]
    fn histogram_clamps_huge_values() {
        let h = Histogram::default();
        h.record(1e12); // astronomically large → top bucket, no panic
        assert_eq!(h.snapshot().buckets[HISTOGRAM_BUCKETS - 1], 1);
    }

    #[test]
    fn rack_counters_round_trip() {
        let c = RackCounters::default();
        c.bytes_out.fetch_add(100, Ordering::Relaxed);
        c.queue_wait_micros.fetch_add(2_500_000, Ordering::Relaxed);
        let t = c.totals(3);
        assert_eq!(t.rack, 3);
        assert_eq!(t.bytes_out, 100);
        assert!((t.queue_wait_seconds - 2.5).abs() < 1e-9);
    }
}
