//! The [`Recorder`] trait, the no-op recorder, and the default
//! [`TraceRecorder`] (atomic counters + bounded event ring).

use parking_lot::{Mutex, RwLock};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::event::Event;
use crate::metrics::{Histogram, HistogramSnapshot, RackCounters, RackTotals};

/// A sink for structured repair events.
///
/// Implementations must be cheap and thread-safe: the executor calls
/// [`Recorder::record`] from many worker threads on the data path.
pub trait Recorder: Sync {
    /// Record one event. Implementations must not block for long.
    fn record(&self, event: Event);
}

/// Discards every event. [`noop()`] returns a shared instance so callers
/// without a recorder pay one virtual call per event and nothing else.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn record(&self, _event: Event) {}
}

/// A shared no-op recorder for call sites that don't trace.
pub fn noop() -> &'static NoopRecorder {
    static NOOP: NoopRecorder = NoopRecorder;
    &NOOP
}

/// Default number of events a [`TraceRecorder`] ring retains.
pub const DEFAULT_RING_CAPACITY: usize = 65_536;

/// The default [`Recorder`]: lock-cheap aggregate metrics (relaxed
/// atomics), per-rack counters, latency histograms, and a bounded
/// event ring for export.
///
/// Overflow policy: when the ring is full the **oldest** event is dropped
/// and `dropped_events` is incremented — recent history wins, and the
/// metrics (which are updated before ring insertion) stay complete.
#[derive(Debug)]
pub struct TraceRecorder {
    ring_capacity: usize,
    ring: Mutex<VecDeque<Event>>,
    dropped: AtomicU64,
    recorded: AtomicU64,
    cross_bytes: AtomicU64,
    inner_bytes: AtomicU64,
    transfers: AtomicU64,
    combines: AtomicU64,
    transfer_failures: AtomicU64,
    retries: AtomicU64,
    crashes: AtomicU64,
    replans: AtomicU64,
    streams: AtomicU64,
    chunks_streamed: AtomicU64,
    hedges: AtomicU64,
    hedge_wins: AtomicU64,
    quarantines: AtomicU64,
    deadlines_exceeded: AtomicU64,
    degraded_fallbacks: AtomicU64,
    requests: AtomicU64,
    degraded_reads: AtomicU64,
    qos_throttles: AtomicU64,
    racks: RwLock<Vec<RackCounters>>,
    queue_wait: Histogram,
    transfer_time: Histogram,
    combine_time: Histogram,
    first_chunk_latency: Histogram,
    request_latency: Histogram,
    request_first_byte: Histogram,
}

impl Default for TraceRecorder {
    fn default() -> Self {
        TraceRecorder::with_capacity(DEFAULT_RING_CAPACITY)
    }
}

impl TraceRecorder {
    /// Create a recorder retaining at most `ring_capacity` events.
    pub fn with_capacity(ring_capacity: usize) -> TraceRecorder {
        TraceRecorder {
            ring_capacity: ring_capacity.max(1),
            ring: Mutex::new(VecDeque::new()),
            dropped: AtomicU64::new(0),
            recorded: AtomicU64::new(0),
            cross_bytes: AtomicU64::new(0),
            inner_bytes: AtomicU64::new(0),
            transfers: AtomicU64::new(0),
            combines: AtomicU64::new(0),
            transfer_failures: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            crashes: AtomicU64::new(0),
            replans: AtomicU64::new(0),
            streams: AtomicU64::new(0),
            chunks_streamed: AtomicU64::new(0),
            hedges: AtomicU64::new(0),
            hedge_wins: AtomicU64::new(0),
            quarantines: AtomicU64::new(0),
            deadlines_exceeded: AtomicU64::new(0),
            degraded_fallbacks: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            degraded_reads: AtomicU64::new(0),
            qos_throttles: AtomicU64::new(0),
            racks: RwLock::new(Vec::new()),
            queue_wait: Histogram::default(),
            transfer_time: Histogram::default(),
            combine_time: Histogram::default(),
            first_chunk_latency: Histogram::default(),
            request_latency: Histogram::default(),
            request_first_byte: Histogram::default(),
        }
    }

    /// Run `f` against the counters for `rack`, growing the per-rack
    /// table if this rack has not been seen yet. The fast path is a read
    /// lock plus relaxed atomic updates.
    fn with_rack(&self, rack: usize, f: impl Fn(&RackCounters)) {
        {
            let racks = self.racks.read();
            if let Some(c) = racks.get(rack) {
                f(c);
                return;
            }
        }
        let mut racks = self.racks.write();
        while racks.len() <= rack {
            racks.push(RackCounters::default());
        }
        f(&racks[rack]);
    }

    fn update_metrics(&self, event: &Event) {
        match event {
            Event::TransferStarted {
                xfer, queue_wait, ..
            } => {
                self.queue_wait.record(*queue_wait);
                self.with_rack(xfer.src_rack, |c| {
                    c.queue_wait_micros
                        .fetch_add((queue_wait * 1e6) as u64, Ordering::Relaxed);
                });
            }
            Event::TransferDone { xfer, start, end } => {
                self.transfers.fetch_add(1, Ordering::Relaxed);
                self.transfer_time.record(end - start);
                if xfer.cross {
                    self.cross_bytes.fetch_add(xfer.bytes, Ordering::Relaxed);
                } else {
                    self.inner_bytes.fetch_add(xfer.bytes, Ordering::Relaxed);
                }
                self.with_rack(xfer.src_rack, |c| {
                    c.bytes_out.fetch_add(xfer.bytes, Ordering::Relaxed);
                    c.transfers_out.fetch_add(1, Ordering::Relaxed);
                    if xfer.cross {
                        c.cross_bytes_out.fetch_add(xfer.bytes, Ordering::Relaxed);
                    } else {
                        c.inner_bytes_out.fetch_add(xfer.bytes, Ordering::Relaxed);
                    }
                });
                self.with_rack(xfer.dst_rack, |c| {
                    c.bytes_in.fetch_add(xfer.bytes, Ordering::Relaxed);
                });
            }
            Event::CombineDone {
                rack, start, end, ..
            } => {
                self.combines.fetch_add(1, Ordering::Relaxed);
                self.combine_time.record(end - start);
                self.with_rack(*rack, |c| {
                    c.combines.fetch_add(1, Ordering::Relaxed);
                });
            }
            Event::TransferFailed { xfer, .. } => {
                self.transfer_failures.fetch_add(1, Ordering::Relaxed);
                self.with_rack(xfer.src_rack, |c| {
                    c.transfer_failures.fetch_add(1, Ordering::Relaxed);
                });
            }
            Event::RetryScheduled { rack, .. } => {
                self.retries.fetch_add(1, Ordering::Relaxed);
                self.with_rack(*rack, |c| {
                    c.retries.fetch_add(1, Ordering::Relaxed);
                });
            }
            Event::HelperCrashed { .. } => {
                self.crashes.fetch_add(1, Ordering::Relaxed);
            }
            Event::Replanned { .. } => {
                self.replans.fetch_add(1, Ordering::Relaxed);
            }
            Event::StreamSummary {
                chunks,
                first_chunk_latency,
                ..
            } => {
                self.streams.fetch_add(1, Ordering::Relaxed);
                self.chunks_streamed
                    .fetch_add(*chunks as u64, Ordering::Relaxed);
                self.first_chunk_latency.record(*first_chunk_latency);
            }
            Event::HedgeLaunched { .. } => {
                self.hedges.fetch_add(1, Ordering::Relaxed);
            }
            Event::HedgeWon { .. } => {
                self.hedge_wins.fetch_add(1, Ordering::Relaxed);
            }
            Event::HelperQuarantined { .. } => {
                self.quarantines.fetch_add(1, Ordering::Relaxed);
            }
            Event::DeadlineExceeded { .. } => {
                self.deadlines_exceeded.fetch_add(1, Ordering::Relaxed);
            }
            Event::DegradedFallback { .. } => {
                self.degraded_fallbacks.fetch_add(1, Ordering::Relaxed);
            }
            Event::RequestDone {
                degraded,
                first_byte,
                issued,
                end,
                ..
            } => {
                self.requests.fetch_add(1, Ordering::Relaxed);
                if *degraded {
                    self.degraded_reads.fetch_add(1, Ordering::Relaxed);
                }
                self.request_latency.record(end - issued);
                self.request_first_byte.record(*first_byte);
            }
            Event::QosThrottled { .. } => {
                self.qos_throttles.fetch_add(1, Ordering::Relaxed);
            }
            _ => {}
        }
    }

    /// Drain and return the retained events in arrival order.
    pub fn take_events(&self) -> Vec<Event> {
        self.ring.lock().drain(..).collect()
    }

    /// Copy out the aggregate metrics.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let racks = self.racks.read();
        MetricsSnapshot {
            recorded_events: self.recorded.load(Ordering::Relaxed),
            dropped_events: self.dropped.load(Ordering::Relaxed),
            transfers: self.transfers.load(Ordering::Relaxed),
            combines: self.combines.load(Ordering::Relaxed),
            transfer_failures: self.transfer_failures.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            crashes: self.crashes.load(Ordering::Relaxed),
            replans: self.replans.load(Ordering::Relaxed),
            streams: self.streams.load(Ordering::Relaxed),
            chunks_streamed: self.chunks_streamed.load(Ordering::Relaxed),
            hedges: self.hedges.load(Ordering::Relaxed),
            hedge_wins: self.hedge_wins.load(Ordering::Relaxed),
            quarantines: self.quarantines.load(Ordering::Relaxed),
            deadlines_exceeded: self.deadlines_exceeded.load(Ordering::Relaxed),
            degraded_fallbacks: self.degraded_fallbacks.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            degraded_reads: self.degraded_reads.load(Ordering::Relaxed),
            qos_throttles: self.qos_throttles.load(Ordering::Relaxed),
            cross_bytes: self.cross_bytes.load(Ordering::Relaxed),
            inner_bytes: self.inner_bytes.load(Ordering::Relaxed),
            racks: racks
                .iter()
                .enumerate()
                .map(|(i, c)| c.totals(i))
                .collect(),
            queue_wait: self.queue_wait.snapshot(),
            transfer_time: self.transfer_time.snapshot(),
            combine_time: self.combine_time.snapshot(),
            first_chunk_latency: self.first_chunk_latency.snapshot(),
            request_latency: self.request_latency.snapshot(),
            request_first_byte: self.request_first_byte.snapshot(),
        }
    }
}

impl Recorder for TraceRecorder {
    fn record(&self, event: Event) {
        self.update_metrics(&event);
        self.recorded.fetch_add(1, Ordering::Relaxed);
        let mut ring = self.ring.lock();
        if ring.len() >= self.ring_capacity {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(event);
    }
}

/// An owned copy of a [`TraceRecorder`]'s aggregate metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Events seen by the recorder (including any later dropped).
    pub recorded_events: u64,
    /// Events evicted from the ring by the drop-oldest policy.
    pub dropped_events: u64,
    /// Completed transfers.
    pub transfers: u64,
    /// Completed combines.
    pub combines: u64,
    /// Failed transfer attempts (injected faults, checksum mismatches,
    /// dead senders).
    pub transfer_failures: u64,
    /// Retries scheduled for failed transfers.
    pub retries: u64,
    /// Helper crashes detected mid-repair.
    pub crashes: u64,
    /// Replacement plans adopted after a crash.
    pub replans: u64,
    /// Chunked cut-through streams completed (one per streamed send).
    pub streams: u64,
    /// Total sub-block chunks moved by those streams.
    pub chunks_streamed: u64,
    /// Speculative duplicate transfers launched against stragglers.
    pub hedges: u64,
    /// Hedged duplicates that beat the original transfer.
    pub hedge_wins: u64,
    /// Helpers quarantined by the health tracker.
    pub quarantines: u64,
    /// Repair/wave deadline budgets blown.
    pub deadlines_exceeded: u64,
    /// Degraded service tiers entered by the supervisor.
    pub degraded_fallbacks: u64,
    /// Completed foreground client requests.
    pub requests: u64,
    /// Of those, degraded reads served from the repair pipeline.
    pub degraded_reads: u64,
    /// QoS throttles applied to repair plans.
    pub qos_throttles: u64,
    /// Total bytes moved across racks.
    pub cross_bytes: u64,
    /// Total bytes moved within racks.
    pub inner_bytes: u64,
    /// Per-rack totals, indexed by rack.
    pub racks: Vec<RackTotals>,
    /// Distribution of queued→started waits.
    pub queue_wait: HistogramSnapshot,
    /// Distribution of transfer durations.
    pub transfer_time: HistogramSnapshot,
    /// Distribution of combine durations.
    pub combine_time: HistogramSnapshot,
    /// Distribution of first-chunk (cut-through) latencies per stream.
    pub first_chunk_latency: HistogramSnapshot,
    /// Distribution of foreground request completion latencies
    /// (arrival → last byte).
    pub request_latency: HistogramSnapshot,
    /// Distribution of foreground request first-byte latencies — for
    /// degraded reads this is the pipeline cut-through moment.
    pub request_first_byte: HistogramSnapshot,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Kernel, Transfer};

    fn xfer(src_rack: usize, dst_rack: usize, bytes: u64) -> Transfer {
        Transfer {
            label: "p0op0:send".into(),
            src_node: src_rack * 10,
            src_rack,
            dst_node: dst_rack * 10,
            dst_rack,
            bytes,
            cross: src_rack != dst_rack,
            timestep: if src_rack != dst_rack { Some(0) } else { None },
        }
    }

    #[test]
    fn counters_aggregate_by_rack_and_class() {
        let rec = TraceRecorder::default();
        rec.record(Event::TransferDone {
            xfer: xfer(0, 1, 100),
            start: 0.0,
            end: 0.5,
        });
        rec.record(Event::TransferDone {
            xfer: xfer(1, 1, 40),
            start: 0.0,
            end: 0.1,
        });
        rec.record(Event::CombineDone {
            label: "p0op2:combine".into(),
            node: 10,
            rack: 1,
            kernel: Kernel::Xor,
            inputs: 2,
            bytes: 100,
            start: 0.5,
            end: 0.6,
        });
        let snap = rec.snapshot();
        assert_eq!(snap.transfers, 2);
        assert_eq!(snap.combines, 1);
        assert_eq!(snap.cross_bytes, 100);
        assert_eq!(snap.inner_bytes, 40);
        assert_eq!(snap.racks[0].cross_bytes_out, 100);
        assert_eq!(snap.racks[0].bytes_out, 100);
        assert_eq!(snap.racks[1].bytes_in, 140);
        assert_eq!(snap.racks[1].inner_bytes_out, 40);
        assert_eq!(snap.racks[1].combines, 1);
        assert_eq!(snap.transfer_time.count(), 2);
    }

    #[test]
    fn ring_drops_oldest_on_overflow() {
        let rec = TraceRecorder::with_capacity(3);
        for step in 0..5 {
            rec.record(Event::TimestepStarted {
                step,
                t: step as f64,
            });
        }
        let events = rec.take_events();
        assert_eq!(events.len(), 3);
        // Oldest (steps 0 and 1) were evicted; newest retained in order.
        let steps: Vec<usize> = events
            .iter()
            .map(|e| match e {
                Event::TimestepStarted { step, .. } => *step,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(steps, vec![2, 3, 4]);
        let snap = rec.snapshot();
        assert_eq!(snap.recorded_events, 5);
        assert_eq!(snap.dropped_events, 2);
    }

    #[test]
    fn queue_wait_feeds_histogram_and_rack_total() {
        let rec = TraceRecorder::default();
        rec.record(Event::TransferStarted {
            xfer: xfer(2, 0, 64),
            queue_wait: 0.25,
            t: 0.25,
        });
        let snap = rec.snapshot();
        assert_eq!(snap.queue_wait.count(), 1);
        assert!((snap.racks[2].queue_wait_seconds - 0.25).abs() < 1e-6);
    }

    #[test]
    fn failure_events_feed_retry_counters() {
        let rec = TraceRecorder::default();
        rec.record(Event::TransferFailed {
            xfer: xfer(2, 0, 64),
            attempt: 0,
            reason: "timeout".into(),
            t: 0.5,
        });
        rec.record(Event::RetryScheduled {
            label: "p0op0:send".into(),
            rack: 2,
            attempt: 0,
            delay: 0.05,
            t: 0.5,
        });
        rec.record(Event::HelperCrashed {
            node: 20,
            rack: 2,
            t: 0.7,
        });
        rec.record(Event::Replanned {
            scheme: "rpr".into(),
            failed: 2,
            reused_ops: 3,
            t: 0.75,
        });
        let snap = rec.snapshot();
        assert_eq!(snap.transfer_failures, 1);
        assert_eq!(snap.retries, 1);
        assert_eq!(snap.crashes, 1);
        assert_eq!(snap.replans, 1);
        assert_eq!(snap.racks[2].transfer_failures, 1);
        assert_eq!(snap.racks[2].retries, 1);
        // Failed attempts never count as completed transfers.
        assert_eq!(snap.transfers, 0);
    }

    #[test]
    fn stream_summaries_feed_stream_counters() {
        let rec = TraceRecorder::default();
        rec.record(Event::StreamSummary {
            xfer: xfer(0, 1, 4096),
            chunks: 4,
            chunk_bytes: 1024,
            first_chunk_latency: 0.125,
            throughput: 8192.0,
            t: 0.5,
        });
        rec.record(Event::StreamSummary {
            xfer: xfer(1, 0, 4096),
            chunks: 8,
            chunk_bytes: 512,
            first_chunk_latency: 0.0625,
            throughput: 8192.0,
            t: 0.6,
        });
        let snap = rec.snapshot();
        assert_eq!(snap.streams, 2);
        assert_eq!(snap.chunks_streamed, 12);
        assert_eq!(snap.first_chunk_latency.count(), 2);
        // Stream summaries are bookkeeping, not transfers.
        assert_eq!(snap.transfers, 0);
    }

    #[test]
    fn supervisor_events_feed_counters() {
        let rec = TraceRecorder::default();
        rec.record(Event::HedgeLaunched {
            label: "p0op0:send".into(),
            slow_node: 3,
            hedge_node: 5,
            multiple: 2.0,
            t: 0.4,
        });
        rec.record(Event::HedgeWon {
            label: "p0op0:send".into(),
            winner_node: 5,
            saved: 0.2,
            t: 0.6,
        });
        rec.record(Event::HelperQuarantined {
            node: 3,
            score: 0.25,
            t: 0.6,
        });
        rec.record(Event::DeadlineExceeded {
            scope: "repair".into(),
            budget: 1.0,
            elapsed: 1.4,
            t: 1.4,
        });
        rec.record(Event::DegradedFallback {
            tier: "degraded-read".into(),
            reason: "deadline".into(),
            t: 1.4,
        });
        let snap = rec.snapshot();
        assert_eq!(snap.hedges, 1);
        assert_eq!(snap.hedge_wins, 1);
        assert_eq!(snap.quarantines, 1);
        assert_eq!(snap.deadlines_exceeded, 1);
        assert_eq!(snap.degraded_fallbacks, 1);
        assert_eq!(rec.take_events().len(), 5);
    }

    #[test]
    fn request_events_feed_counters_and_histograms() {
        let rec = TraceRecorder::default();
        rec.record(Event::RequestIssued {
            request: 0,
            read: true,
            degraded: false,
            t: 0.0,
        });
        rec.record(Event::RequestDone {
            request: 0,
            read: true,
            degraded: false,
            first_byte: 0.1,
            issued: 0.0,
            end: 0.5,
        });
        rec.record(Event::RequestDone {
            request: 1,
            read: true,
            degraded: true,
            first_byte: 0.05,
            issued: 0.2,
            end: 0.9,
        });
        rec.record(Event::QosThrottled {
            flows: 4,
            fraction: 0.4,
            t: 0.0,
        });
        let snap = rec.snapshot();
        assert_eq!(snap.requests, 2);
        assert_eq!(snap.degraded_reads, 1);
        assert_eq!(snap.qos_throttles, 1);
        assert_eq!(snap.request_latency.count(), 2);
        assert_eq!(snap.request_first_byte.count(), 2);
        // Issuing alone completes nothing.
        assert_eq!(rec.take_events().len(), 4);
    }

    #[test]
    fn recorder_is_usable_across_threads() {
        let rec = TraceRecorder::default();
        std::thread::scope(|s| {
            for i in 0..4 {
                let rec = &rec;
                s.spawn(move || {
                    for j in 0..100 {
                        rec.record(Event::TransferDone {
                            xfer: xfer(i, (i + 1) % 4, j),
                            start: 0.0,
                            end: 0.001,
                        });
                    }
                });
            }
        });
        assert_eq!(rec.snapshot().transfers, 400);
        assert_eq!(rec.take_events().len(), 400);
    }
}
