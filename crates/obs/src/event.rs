//! Structured repair events.
//!
//! Every event carries simulation or wall-clock time in **seconds** from
//! the start of the repair (`t`, or `start`/`end` for spans). Racks and
//! nodes are plain indices so this crate has no dependency on the
//! topology types; callers translate.
//!
//! The full schema — every event type, field, and unit — is documented in
//! `docs/TRACING.md` at the repository root.

/// Which combine kernel ran: plain XOR (all coefficients 1) or a general
/// GF(2^8) linear combination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// Pure XOR accumulation — no field multiplications.
    Xor,
    /// General GF(2^8) scaled accumulation.
    Gf,
}

impl Kernel {
    /// Stable lowercase name used in trace output.
    pub fn name(&self) -> &'static str {
        match self {
            Kernel::Xor => "xor",
            Kernel::Gf => "gf",
        }
    }
}

/// Endpoints and classification of one block/intermediate movement,
/// shared by the three transfer events.
#[derive(Debug, Clone, PartialEq)]
pub struct Transfer {
    /// Plan-derived label (e.g. `"p0op5:send"`), stable across sim/exec.
    pub label: String,
    /// Sending node index.
    pub src_node: usize,
    /// Rack of the sending node.
    pub src_rack: usize,
    /// Receiving node index.
    pub dst_node: usize,
    /// Rack of the receiving node.
    pub dst_rack: usize,
    /// Payload size in bytes.
    pub bytes: u64,
    /// True when the transfer crosses racks (uses oversubscribed links).
    pub cross: bool,
    /// Cross-rack pipeline timestep (wave) this transfer belongs to;
    /// `None` for inner-rack transfers.
    pub timestep: Option<usize>,
}

/// One structured repair event. See `docs/TRACING.md` for the schema.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A repair plan was constructed and is about to run.
    PlanBuilt {
        /// Planner name (`"rpr"`, `"traditional"`, ...).
        scheme: String,
        /// Independent failure-repair parts in the plan.
        parts: usize,
        /// Total operation count (sends + combines).
        ops: usize,
        /// Cross-rack transfer count.
        cross_transfers: usize,
        /// Inner-rack transfer count.
        inner_transfers: usize,
        /// Number of cross-rack pipeline timesteps (waves) in the plan.
        cross_timesteps: usize,
        /// Block size in bytes.
        block_bytes: u64,
    },
    /// First transfer of cross-rack timestep `step` began at `t`.
    TimestepStarted {
        /// Zero-based wave index.
        step: usize,
        /// Seconds from repair start.
        t: f64,
    },
    /// Last transfer of cross-rack timestep `step` finished at `t`.
    TimestepFinished {
        /// Zero-based wave index.
        step: usize,
        /// Seconds from repair start.
        t: f64,
    },
    /// A transfer became eligible to run (its inputs were ready).
    TransferQueued {
        /// Endpoints and classification.
        xfer: Transfer,
        /// Seconds from repair start.
        t: f64,
    },
    /// A transfer began moving bytes.
    TransferStarted {
        /// Endpoints and classification.
        xfer: Transfer,
        /// Seconds spent waiting between queued and started.
        queue_wait: f64,
        /// Seconds from repair start.
        t: f64,
    },
    /// A transfer completed.
    TransferDone {
        /// Endpoints and classification.
        xfer: Transfer,
        /// Seconds from repair start when the transfer began.
        start: f64,
        /// Seconds from repair start when the last byte arrived.
        end: f64,
    },
    /// A partial-decode combine completed on a node.
    CombineDone {
        /// Plan-derived label (e.g. `"p0op7:combine"`).
        label: String,
        /// Node the combine ran on.
        node: usize,
        /// Rack of that node.
        rack: usize,
        /// Kernel kind: XOR or general GF(2^8).
        kernel: Kernel,
        /// Number of input payloads folded.
        inputs: usize,
        /// Output size in bytes.
        bytes: u64,
        /// Seconds from repair start when the combine began.
        start: f64,
        /// Seconds from repair start when it finished.
        end: f64,
    },
    /// A transfer attempt failed — injected fault, checksum mismatch, or
    /// dead sender. Followed by [`Event::RetryScheduled`] when the
    /// transfer will be retried, or by [`Event::HelperCrashed`] /
    /// [`Event::Replanned`] when the failure escalates to a replan.
    TransferFailed {
        /// Endpoints and classification of the failed attempt.
        xfer: Transfer,
        /// Zero-based attempt number that failed.
        attempt: usize,
        /// Stable failure reason (`"timeout"`, `"corrupt"`,
        /// `"switch_outage"`, `"node_down"` — see `rpr-faults`).
        reason: String,
        /// Seconds from repair start when the failure was detected.
        t: f64,
    },
    /// A failed transfer was scheduled for retry after a backoff delay.
    RetryScheduled {
        /// Plan-derived label of the transfer being retried.
        label: String,
        /// Rack of the sending node (per-rack retry accounting).
        rack: usize,
        /// Zero-based attempt number that just failed.
        attempt: usize,
        /// Backoff delay in seconds before the retry starts.
        delay: f64,
        /// Seconds from repair start when the retry was scheduled.
        t: f64,
    },
    /// A helper node died mid-repair; its partial results on other nodes
    /// survive but everything it still had to produce is lost.
    HelperCrashed {
        /// The dead node.
        node: usize,
        /// Rack of the dead node.
        rack: usize,
        /// Seconds from repair start when the crash was detected.
        t: f64,
    },
    /// The supervisor produced a replacement plan after a helper crash,
    /// re-selecting surviving helpers and reusing partial results.
    Replanned {
        /// Scheme of the replacement plan (`"rpr"`, `"traditional"`, ...).
        scheme: String,
        /// Failure count the replacement plan repairs (original failures
        /// plus the crashed helper's block).
        failed: usize,
        /// Ops of the replacement plan satisfied by already-aggregated
        /// partial results (not re-executed).
        reused_ops: usize,
        /// Seconds from repair start when the new plan was adopted.
        t: f64,
    },
    /// Summary of one chunked cut-through stream along a plan edge:
    /// emitted once per streamed send (bounded — never per chunk), after
    /// its last chunk arrived. Absent from block-level (unchunked) runs.
    StreamSummary {
        /// Endpoints and classification of the streamed send.
        xfer: Transfer,
        /// Number of sub-block chunks the payload moved in.
        chunks: usize,
        /// Configured chunk size in bytes (the tail chunk may be
        /// shorter).
        chunk_bytes: u64,
        /// Seconds from the stream's first activation until its first
        /// chunk had fully arrived downstream — the cut-through latency
        /// that lets the next hop start early.
        first_chunk_latency: f64,
        /// Mean delivered bytes/sec over the whole stream.
        throughput: f64,
        /// Seconds from repair start when the last chunk arrived.
        t: f64,
    },
    /// A transfer fell past the hedge latency multiple of its wave's
    /// median; a speculative duplicate was launched from an alternate
    /// helper. Followed by [`Event::HedgeWon`] if the duplicate finishes
    /// first.
    HedgeLaunched {
        /// Plan-derived label of the straggling transfer.
        label: String,
        /// The straggling (original) helper node.
        slow_node: usize,
        /// The alternate helper the duplicate runs from.
        hedge_node: usize,
        /// Configured latency multiple that triggered the hedge.
        multiple: f64,
        /// Seconds from repair start when the hedge launched.
        t: f64,
    },
    /// A hedged duplicate beat the original transfer; the loser was
    /// cancelled.
    HedgeWon {
        /// Plan-derived label of the hedged transfer.
        label: String,
        /// The helper whose copy won the race.
        winner_node: usize,
        /// Seconds the hedge saved versus the projected original finish.
        saved: f64,
        /// Seconds from repair start when the winning copy arrived.
        t: f64,
    },
    /// A helper's health score sank below the quarantine threshold; the
    /// supervisor will avoid it during helper re-selection until it is
    /// probed back in.
    HelperQuarantined {
        /// The quarantined node.
        node: usize,
        /// EWMA health score at quarantine time (below the threshold).
        score: f64,
        /// Seconds from repair start when the quarantine was imposed.
        t: f64,
    },
    /// A repair/wave deadline budget was blown; the supervisor degrades
    /// (fallback scheme or degraded read) instead of waiting forever.
    DeadlineExceeded {
        /// What ran out: `"repair"` or `"wave"`.
        scope: String,
        /// The budget that was exceeded, in seconds.
        budget: f64,
        /// Observed elapsed seconds when the breach was detected.
        elapsed: f64,
        /// Seconds from repair start when the breach was detected.
        t: f64,
    },
    /// The supervisor exhausted its replan/fallback options and switched
    /// to a degraded service tier (e.g. degraded read to a client node).
    DegradedFallback {
        /// The tier entered (`"car"`, `"traditional"`, `"degraded-read"`).
        tier: String,
        /// Why the previous tier was abandoned.
        reason: String,
        /// Seconds from repair start when the fallback was taken.
        t: f64,
    },
    /// A stripe entered the fleet scheduler's at-risk index (emitted by
    /// `rpr-sched`, not by single-stripe repairs).
    StripeEnqueued {
        /// Fleet-wide stripe id.
        stripe: u64,
        /// At-risk level: number of blocks the stripe has lost. Higher
        /// levels are scheduled strictly first.
        level: usize,
        /// Fleet-clock seconds when the stripe was queued.
        t: f64,
    },
    /// The bandwidth arbiter admitted a stripe's repair: its plan's
    /// demand was reserved on the shared links and the repair started.
    StripeAdmitted {
        /// Fleet-wide stripe id.
        stripe: u64,
        /// At-risk level at admission time.
        level: usize,
        /// Fleet-clock seconds when the repair was admitted.
        t: f64,
    },
    /// A stripe's admission was delayed by bandwidth contention: the
    /// arbiter could not fit its demand when it reached the head of the
    /// queue. Emitted once per delayed stripe, at admission.
    BandwidthWaited {
        /// Fleet-wide stripe id.
        stripe: u64,
        /// At-risk level at admission time.
        level: usize,
        /// Seconds spent waiting at the queue head for link capacity.
        waited: f64,
        /// Fleet-clock seconds when the repair was finally admitted.
        t: f64,
    },
    /// A churn arrival hit a live stripe mid-drain: the stripe lost one
    /// more block while queued or in flight (emitted by `rpr-sched`
    /// drains co-simulated with a `ChurnProcess`).
    ChurnFailure {
        /// Fleet-wide stripe id.
        stripe: u64,
        /// At-risk level **after** the hit (blocks now lost).
        level: usize,
        /// Fleet-clock seconds of the churn arrival.
        t: f64,
    },
    /// The drain escalated a stripe's risk level in response to a churn
    /// hit: queued stripes are re-queued at the higher level (strict
    /// level ordering is preserved); in-flight stripes hand the new
    /// failure to the supervisor's storm path and their repair stretches
    /// instead of restarting.
    RiskEscalated {
        /// Fleet-wide stripe id.
        stripe: u64,
        /// At-risk level before the hit.
        from: usize,
        /// At-risk level after the hit.
        to: usize,
        /// True when the stripe was already admitted (mid-repair) and
        /// the escalation was absorbed by the running supervisor.
        in_flight: bool,
        /// Fleet-clock seconds of the escalation.
        t: f64,
    },
    /// A stripe crossed the unrecoverable threshold (`z > r` failed
    /// blocks) before its repair finished: it is moved to the
    /// permanent-loss ledger, counted and reported instead of retried
    /// forever.
    StripeLost {
        /// Fleet-wide stripe id.
        stripe: u64,
        /// At-risk level at the moment of loss (> parity count).
        level: usize,
        /// Fleet-clock seconds when the stripe became unrecoverable.
        t: f64,
    },
    /// The fleet journal flushed a periodic checkpoint record; on crash,
    /// resume replays from the log so everything acknowledged before this
    /// point is never repaired twice.
    JournalCheckpoint {
        /// Monotone journal sequence number of the checkpoint record.
        seq: u64,
        /// Stripes recorded complete at checkpoint time.
        completed: u64,
        /// Stripes recorded permanently lost at checkpoint time.
        lost: u64,
        /// Fleet-clock seconds of the checkpoint.
        t: f64,
    },
    /// A foreground client request entered the open-loop workload (its
    /// scheduled arrival instant, independent of service capacity).
    RequestIssued {
        /// Workload-wide request id, in arrival order.
        request: u64,
        /// True for a read, false for a write.
        read: bool,
        /// True if the request targets a block under repair and is
        /// served from the repair pipeline (a degraded read).
        degraded: bool,
        /// Clock seconds when the request arrived.
        t: f64,
    },
    /// A foreground client request finished: the last byte reached the
    /// client (reads) or the server (writes).
    RequestDone {
        /// Workload-wide request id, matching [`Event::RequestIssued`].
        request: u64,
        /// True for a read, false for a write.
        read: bool,
        /// True if the request was a degraded read served from the
        /// repair pipeline.
        degraded: bool,
        /// Seconds from arrival until the **first** byte reached the
        /// client — for degraded reads under cut-through streaming this
        /// is much earlier than `end − issued`.
        first_byte: f64,
        /// Clock seconds when the request arrived.
        issued: f64,
        /// Clock seconds when the request completed.
        end: f64,
    },
    /// A QoS class throttled repair flows to a fraction of their path
    /// rate, leaving the residual to foreground traffic. Emitted once
    /// per repair plan lowered under a foreground-priority class.
    QosThrottled {
        /// Repair transfer flows the cap was applied to.
        flows: u64,
        /// The repair fraction: each flow's rate cap as a share of its
        /// path rate, in `(0, 1]`.
        fraction: f64,
        /// Clock seconds when the throttle was applied.
        t: f64,
    },
    /// A repair proof was emitted for one op's output: its input hashes,
    /// claimed coefficient vector, and output hash were sealed into the
    /// repair's proof ledger (see `rpr-proof` and `docs/ROBUSTNESS.md`).
    /// Absent when the repair runs with proofs off.
    ProofEmitted {
        /// Plan op index within the generation.
        op: usize,
        /// Node whose output the proof covers.
        node: usize,
        /// Supervision generation (replan index) the op ran in.
        gen: usize,
        /// Seconds from repair start when the proof was sealed.
        t: f64,
    },
    /// Proof verification rejected an op's output: its output hash
    /// disagrees with the supervisor's expected hash. In Mandatory mode
    /// this fails the generation; in Advisory mode it is evidence only.
    ProofRejected {
        /// Plan op index within the generation.
        op: usize,
        /// Node whose output failed verification.
        node: usize,
        /// Supervision generation (replan index) the op ran in.
        gen: usize,
        /// Seconds from repair start when the rejection was detected.
        t: f64,
    },
    /// The supervisor accused a helper of dishonesty on proof evidence
    /// (wrong output from honest inputs) and quarantined it — evidence-
    /// based, unlike the EWMA path behind
    /// [`Event::HelperQuarantined`]. Mandatory mode only.
    HelperAccused {
        /// The accused node.
        node: usize,
        /// Supervision generation in which the dishonest op ran.
        gen: usize,
        /// Seconds from repair start when the accusation was made.
        t: f64,
    },
    /// The whole repair finished.
    RepairDone {
        /// Seconds from repair start (the repair makespan).
        t: f64,
        /// Total bytes moved across racks.
        cross_bytes: u64,
        /// Total bytes moved within racks.
        inner_bytes: u64,
    },
}

impl Event {
    /// Stable snake_case event-type name used in trace output.
    pub fn name(&self) -> &'static str {
        match self {
            Event::PlanBuilt { .. } => "plan_built",
            Event::TimestepStarted { .. } => "timestep_started",
            Event::TimestepFinished { .. } => "timestep_finished",
            Event::TransferQueued { .. } => "transfer_queued",
            Event::TransferStarted { .. } => "transfer_started",
            Event::TransferDone { .. } => "transfer_done",
            Event::CombineDone { .. } => "combine_done",
            Event::TransferFailed { .. } => "transfer_failed",
            Event::RetryScheduled { .. } => "retry_scheduled",
            Event::HelperCrashed { .. } => "helper_crashed",
            Event::Replanned { .. } => "replanned",
            Event::StreamSummary { .. } => "stream_summary",
            Event::HedgeLaunched { .. } => "hedge_launched",
            Event::HedgeWon { .. } => "hedge_won",
            Event::HelperQuarantined { .. } => "helper_quarantined",
            Event::DeadlineExceeded { .. } => "deadline_exceeded",
            Event::DegradedFallback { .. } => "degraded_fallback",
            Event::StripeEnqueued { .. } => "stripe_enqueued",
            Event::StripeAdmitted { .. } => "stripe_admitted",
            Event::BandwidthWaited { .. } => "bandwidth_waited",
            Event::ChurnFailure { .. } => "churn_failure",
            Event::RiskEscalated { .. } => "risk_escalated",
            Event::StripeLost { .. } => "stripe_lost",
            Event::JournalCheckpoint { .. } => "journal_checkpoint",
            Event::RequestIssued { .. } => "request_issued",
            Event::RequestDone { .. } => "request_done",
            Event::QosThrottled { .. } => "qos_throttled",
            Event::ProofEmitted { .. } => "proof_emitted",
            Event::ProofRejected { .. } => "proof_rejected",
            Event::HelperAccused { .. } => "helper_accused",
            Event::RepairDone { .. } => "repair_done",
        }
    }

    /// Representative timestamp: the instant for point events, the end
    /// for spans. Useful for chronological sorting.
    pub fn time(&self) -> f64 {
        match self {
            Event::PlanBuilt { .. } => 0.0,
            Event::TimestepStarted { t, .. }
            | Event::TimestepFinished { t, .. }
            | Event::TransferQueued { t, .. }
            | Event::TransferStarted { t, .. }
            | Event::TransferFailed { t, .. }
            | Event::RetryScheduled { t, .. }
            | Event::HelperCrashed { t, .. }
            | Event::Replanned { t, .. }
            | Event::StreamSummary { t, .. }
            | Event::HedgeLaunched { t, .. }
            | Event::HedgeWon { t, .. }
            | Event::HelperQuarantined { t, .. }
            | Event::DeadlineExceeded { t, .. }
            | Event::DegradedFallback { t, .. }
            | Event::StripeEnqueued { t, .. }
            | Event::StripeAdmitted { t, .. }
            | Event::BandwidthWaited { t, .. }
            | Event::ChurnFailure { t, .. }
            | Event::RiskEscalated { t, .. }
            | Event::StripeLost { t, .. }
            | Event::JournalCheckpoint { t, .. }
            | Event::RequestIssued { t, .. }
            | Event::QosThrottled { t, .. }
            | Event::ProofEmitted { t, .. }
            | Event::ProofRejected { t, .. }
            | Event::HelperAccused { t, .. }
            | Event::RepairDone { t, .. } => *t,
            Event::TransferDone { end, .. }
            | Event::CombineDone { end, .. }
            | Event::RequestDone { end, .. } => *end,
        }
    }
}
