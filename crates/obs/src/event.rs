//! Structured repair events.
//!
//! Every event carries simulation or wall-clock time in **seconds** from
//! the start of the repair (`t`, or `start`/`end` for spans). Racks and
//! nodes are plain indices so this crate has no dependency on the
//! topology types; callers translate.
//!
//! The full schema — every event type, field, and unit — is documented in
//! `docs/TRACING.md` at the repository root.

/// Which combine kernel ran: plain XOR (all coefficients 1) or a general
/// GF(2^8) linear combination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// Pure XOR accumulation — no field multiplications.
    Xor,
    /// General GF(2^8) scaled accumulation.
    Gf,
}

impl Kernel {
    /// Stable lowercase name used in trace output.
    pub fn name(&self) -> &'static str {
        match self {
            Kernel::Xor => "xor",
            Kernel::Gf => "gf",
        }
    }
}

/// Endpoints and classification of one block/intermediate movement,
/// shared by the three transfer events.
#[derive(Debug, Clone, PartialEq)]
pub struct Transfer {
    /// Plan-derived label (e.g. `"p0op5:send"`), stable across sim/exec.
    pub label: String,
    /// Sending node index.
    pub src_node: usize,
    /// Rack of the sending node.
    pub src_rack: usize,
    /// Receiving node index.
    pub dst_node: usize,
    /// Rack of the receiving node.
    pub dst_rack: usize,
    /// Payload size in bytes.
    pub bytes: u64,
    /// True when the transfer crosses racks (uses oversubscribed links).
    pub cross: bool,
    /// Cross-rack pipeline timestep (wave) this transfer belongs to;
    /// `None` for inner-rack transfers.
    pub timestep: Option<usize>,
}

/// One structured repair event. See `docs/TRACING.md` for the schema.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A repair plan was constructed and is about to run.
    PlanBuilt {
        /// Planner name (`"rpr"`, `"traditional"`, ...).
        scheme: String,
        /// Independent failure-repair parts in the plan.
        parts: usize,
        /// Total operation count (sends + combines).
        ops: usize,
        /// Cross-rack transfer count.
        cross_transfers: usize,
        /// Inner-rack transfer count.
        inner_transfers: usize,
        /// Number of cross-rack pipeline timesteps (waves) in the plan.
        cross_timesteps: usize,
        /// Block size in bytes.
        block_bytes: u64,
    },
    /// First transfer of cross-rack timestep `step` began at `t`.
    TimestepStarted {
        /// Zero-based wave index.
        step: usize,
        /// Seconds from repair start.
        t: f64,
    },
    /// Last transfer of cross-rack timestep `step` finished at `t`.
    TimestepFinished {
        /// Zero-based wave index.
        step: usize,
        /// Seconds from repair start.
        t: f64,
    },
    /// A transfer became eligible to run (its inputs were ready).
    TransferQueued {
        /// Endpoints and classification.
        xfer: Transfer,
        /// Seconds from repair start.
        t: f64,
    },
    /// A transfer began moving bytes.
    TransferStarted {
        /// Endpoints and classification.
        xfer: Transfer,
        /// Seconds spent waiting between queued and started.
        queue_wait: f64,
        /// Seconds from repair start.
        t: f64,
    },
    /// A transfer completed.
    TransferDone {
        /// Endpoints and classification.
        xfer: Transfer,
        /// Seconds from repair start when the transfer began.
        start: f64,
        /// Seconds from repair start when the last byte arrived.
        end: f64,
    },
    /// A partial-decode combine completed on a node.
    CombineDone {
        /// Plan-derived label (e.g. `"p0op7:combine"`).
        label: String,
        /// Node the combine ran on.
        node: usize,
        /// Rack of that node.
        rack: usize,
        /// Kernel kind: XOR or general GF(2^8).
        kernel: Kernel,
        /// Number of input payloads folded.
        inputs: usize,
        /// Output size in bytes.
        bytes: u64,
        /// Seconds from repair start when the combine began.
        start: f64,
        /// Seconds from repair start when it finished.
        end: f64,
    },
    /// The whole repair finished.
    RepairDone {
        /// Seconds from repair start (the repair makespan).
        t: f64,
        /// Total bytes moved across racks.
        cross_bytes: u64,
        /// Total bytes moved within racks.
        inner_bytes: u64,
    },
}

impl Event {
    /// Stable snake_case event-type name used in trace output.
    pub fn name(&self) -> &'static str {
        match self {
            Event::PlanBuilt { .. } => "plan_built",
            Event::TimestepStarted { .. } => "timestep_started",
            Event::TimestepFinished { .. } => "timestep_finished",
            Event::TransferQueued { .. } => "transfer_queued",
            Event::TransferStarted { .. } => "transfer_started",
            Event::TransferDone { .. } => "transfer_done",
            Event::CombineDone { .. } => "combine_done",
            Event::RepairDone { .. } => "repair_done",
        }
    }

    /// Representative timestamp: the instant for point events, the end
    /// for spans. Useful for chronological sorting.
    pub fn time(&self) -> f64 {
        match self {
            Event::PlanBuilt { .. } => 0.0,
            Event::TimestepStarted { t, .. }
            | Event::TimestepFinished { t, .. }
            | Event::TransferQueued { t, .. }
            | Event::TransferStarted { t, .. }
            | Event::RepairDone { t, .. } => *t,
            Event::TransferDone { end, .. } | Event::CombineDone { end, .. } => *end,
        }
    }
}
