//! Trace exporters: JSON-lines and Chrome `trace_event`.
//!
//! Both formats are documented field-by-field in `docs/TRACING.md`.
//! Serialization is hand-rolled (this crate is dependency-free); all
//! strings are escaped per RFC 8259 and non-finite floats are emitted
//! as `null` so output is always valid JSON.

use std::fmt::Write as _;

use crate::event::{Event, Transfer};

fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// Incremental writer for one JSON object.
struct Obj {
    out: String,
    first: bool,
}

impl Obj {
    fn new() -> Obj {
        Obj {
            out: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, key: &str) {
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
        push_json_string(&mut self.out, key);
        self.out.push(':');
    }

    fn str(&mut self, key: &str, v: &str) -> &mut Self {
        self.key(key);
        push_json_string(&mut self.out, v);
        self
    }

    fn u64(&mut self, key: &str, v: u64) -> &mut Self {
        self.key(key);
        let _ = write!(self.out, "{v}");
        self
    }

    fn usize(&mut self, key: &str, v: usize) -> &mut Self {
        self.u64(key, v as u64)
    }

    fn f64(&mut self, key: &str, v: f64) -> &mut Self {
        self.key(key);
        push_f64(&mut self.out, v);
        self
    }

    fn bool(&mut self, key: &str, v: bool) -> &mut Self {
        self.key(key);
        self.out.push_str(if v { "true" } else { "false" });
        self
    }

    fn opt_usize(&mut self, key: &str, v: Option<usize>) -> &mut Self {
        self.key(key);
        match v {
            Some(v) => {
                let _ = write!(self.out, "{v}");
            }
            None => self.out.push_str("null"),
        }
        self
    }

    fn raw(&mut self, key: &str, v: &str) -> &mut Self {
        self.key(key);
        self.out.push_str(v);
        self
    }

    fn finish(mut self) -> String {
        self.out.push('}');
        self.out
    }
}

fn transfer_fields(o: &mut Obj, x: &Transfer) {
    o.str("label", &x.label)
        .usize("src_node", x.src_node)
        .usize("src_rack", x.src_rack)
        .usize("dst_node", x.dst_node)
        .usize("dst_rack", x.dst_rack)
        .u64("bytes", x.bytes)
        .bool("cross", x.cross)
        .opt_usize("timestep", x.timestep);
}

/// Serialize one event as a single-line JSON object (no trailing newline).
pub fn event_to_json(event: &Event) -> String {
    let mut o = Obj::new();
    o.str("type", event.name());
    match event {
        Event::PlanBuilt {
            scheme,
            parts,
            ops,
            cross_transfers,
            inner_transfers,
            cross_timesteps,
            block_bytes,
        } => {
            o.str("scheme", scheme)
                .usize("parts", *parts)
                .usize("ops", *ops)
                .usize("cross_transfers", *cross_transfers)
                .usize("inner_transfers", *inner_transfers)
                .usize("cross_timesteps", *cross_timesteps)
                .u64("block_bytes", *block_bytes);
        }
        Event::TimestepStarted { step, t } | Event::TimestepFinished { step, t } => {
            o.usize("step", *step).f64("t", *t);
        }
        Event::TransferQueued { xfer, t } => {
            transfer_fields(&mut o, xfer);
            o.f64("t", *t);
        }
        Event::TransferStarted {
            xfer,
            queue_wait,
            t,
        } => {
            transfer_fields(&mut o, xfer);
            o.f64("queue_wait", *queue_wait).f64("t", *t);
        }
        Event::TransferDone { xfer, start, end } => {
            transfer_fields(&mut o, xfer);
            o.f64("start", *start).f64("end", *end);
        }
        Event::CombineDone {
            label,
            node,
            rack,
            kernel,
            inputs,
            bytes,
            start,
            end,
        } => {
            o.str("label", label)
                .usize("node", *node)
                .usize("rack", *rack)
                .str("kernel", kernel.name())
                .usize("inputs", *inputs)
                .u64("bytes", *bytes)
                .f64("start", *start)
                .f64("end", *end);
        }
        Event::TransferFailed {
            xfer,
            attempt,
            reason,
            t,
        } => {
            transfer_fields(&mut o, xfer);
            o.usize("attempt", *attempt).str("reason", reason).f64("t", *t);
        }
        Event::RetryScheduled {
            label,
            rack,
            attempt,
            delay,
            t,
        } => {
            o.str("label", label)
                .usize("rack", *rack)
                .usize("attempt", *attempt)
                .f64("delay", *delay)
                .f64("t", *t);
        }
        Event::HelperCrashed { node, rack, t } => {
            o.usize("node", *node).usize("rack", *rack).f64("t", *t);
        }
        Event::Replanned {
            scheme,
            failed,
            reused_ops,
            t,
        } => {
            o.str("scheme", scheme)
                .usize("failed", *failed)
                .usize("reused_ops", *reused_ops)
                .f64("t", *t);
        }
        Event::StreamSummary {
            xfer,
            chunks,
            chunk_bytes,
            first_chunk_latency,
            throughput,
            t,
        } => {
            transfer_fields(&mut o, xfer);
            o.usize("chunks", *chunks)
                .u64("chunk_bytes", *chunk_bytes)
                .f64("first_chunk_latency", *first_chunk_latency)
                .f64("throughput", *throughput)
                .f64("t", *t);
        }
        Event::HedgeLaunched {
            label,
            slow_node,
            hedge_node,
            multiple,
            t,
        } => {
            o.str("label", label)
                .usize("slow_node", *slow_node)
                .usize("hedge_node", *hedge_node)
                .f64("multiple", *multiple)
                .f64("t", *t);
        }
        Event::HedgeWon {
            label,
            winner_node,
            saved,
            t,
        } => {
            o.str("label", label)
                .usize("winner_node", *winner_node)
                .f64("saved", *saved)
                .f64("t", *t);
        }
        Event::HelperQuarantined { node, score, t } => {
            o.usize("node", *node).f64("score", *score).f64("t", *t);
        }
        Event::DeadlineExceeded {
            scope,
            budget,
            elapsed,
            t,
        } => {
            o.str("scope", scope)
                .f64("budget", *budget)
                .f64("elapsed", *elapsed)
                .f64("t", *t);
        }
        Event::DegradedFallback { tier, reason, t } => {
            o.str("tier", tier).str("reason", reason).f64("t", *t);
        }
        Event::StripeEnqueued { stripe, level, t }
        | Event::StripeAdmitted { stripe, level, t }
        | Event::ChurnFailure { stripe, level, t }
        | Event::StripeLost { stripe, level, t } => {
            o.u64("stripe", *stripe).usize("level", *level).f64("t", *t);
        }
        Event::RiskEscalated {
            stripe,
            from,
            to,
            in_flight,
            t,
        } => {
            o.u64("stripe", *stripe)
                .usize("from", *from)
                .usize("to", *to)
                .bool("in_flight", *in_flight)
                .f64("t", *t);
        }
        Event::JournalCheckpoint {
            seq,
            completed,
            lost,
            t,
        } => {
            o.u64("seq", *seq)
                .u64("completed", *completed)
                .u64("lost", *lost)
                .f64("t", *t);
        }
        Event::BandwidthWaited {
            stripe,
            level,
            waited,
            t,
        } => {
            o.u64("stripe", *stripe)
                .usize("level", *level)
                .f64("waited", *waited)
                .f64("t", *t);
        }
        Event::RequestIssued {
            request,
            read,
            degraded,
            t,
        } => {
            o.u64("request", *request)
                .bool("read", *read)
                .bool("degraded", *degraded)
                .f64("t", *t);
        }
        Event::RequestDone {
            request,
            read,
            degraded,
            first_byte,
            issued,
            end,
        } => {
            o.u64("request", *request)
                .bool("read", *read)
                .bool("degraded", *degraded)
                .f64("first_byte", *first_byte)
                .f64("issued", *issued)
                .f64("end", *end);
        }
        Event::QosThrottled { flows, fraction, t } => {
            o.u64("flows", *flows).f64("fraction", *fraction).f64("t", *t);
        }
        Event::ProofEmitted { op, node, gen, t } | Event::ProofRejected { op, node, gen, t } => {
            o.usize("op", *op)
                .usize("node", *node)
                .usize("gen", *gen)
                .f64("t", *t);
        }
        Event::HelperAccused { node, gen, t } => {
            o.usize("node", *node).usize("gen", *gen).f64("t", *t);
        }
        Event::RepairDone {
            t,
            cross_bytes,
            inner_bytes,
        } => {
            o.f64("t", *t)
                .u64("cross_bytes", *cross_bytes)
                .u64("inner_bytes", *inner_bytes);
        }
    }
    o.finish()
}

/// Serialize events as JSON-lines: one JSON object per line.
pub fn to_json_lines(events: &[Event]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&event_to_json(e));
        out.push('\n');
    }
    out
}

const MICROS: f64 = 1e6;

/// Serialize events as a Chrome `trace_event` JSON document, loadable in
/// `chrome://tracing` or [Perfetto](https://ui.perfetto.dev).
///
/// Mapping: **pid = rack**, **tid = node** (transfer spans sit on the
/// sending node's row); timesteps and repair-level events live on a
/// synthetic "pipeline" process one past the highest rack. Timestamps
/// are microseconds (`ts`/`dur`), per the format.
pub fn to_chrome_trace(events: &[Event]) -> String {
    let mut entries: Vec<String> = Vec::new();
    let mut max_rack = 0usize;
    for e in events {
        match e {
            Event::TransferQueued { xfer, .. }
            | Event::TransferStarted { xfer, .. }
            | Event::TransferDone { xfer, .. }
            | Event::TransferFailed { xfer, .. }
            | Event::StreamSummary { xfer, .. } => {
                max_rack = max_rack.max(xfer.src_rack).max(xfer.dst_rack);
            }
            Event::CombineDone { rack, .. }
            | Event::RetryScheduled { rack, .. }
            | Event::HelperCrashed { rack, .. } => max_rack = max_rack.max(*rack),
            _ => {}
        }
    }
    let pipeline_pid = max_rack + 1;

    for rack in 0..=max_rack {
        let mut o = Obj::new();
        o.str("name", "process_name")
            .str("ph", "M")
            .usize("pid", rack)
            .raw("args", &format!("{{\"name\":\"rack {rack}\"}}"));
        entries.push(o.finish());
    }
    {
        let mut o = Obj::new();
        o.str("name", "process_name")
            .str("ph", "M")
            .usize("pid", pipeline_pid)
            .raw("args", "{\"name\":\"repair pipeline\"}");
        entries.push(o.finish());
    }

    for e in events {
        match e {
            Event::PlanBuilt {
                scheme,
                ops,
                cross_transfers,
                cross_timesteps,
                ..
            } => {
                let mut o = Obj::new();
                o.str("name", &format!("plan: {scheme}"))
                    .str("cat", "plan")
                    .str("ph", "i")
                    .f64("ts", 0.0)
                    .usize("pid", pipeline_pid)
                    .usize("tid", 0)
                    .str("s", "p")
                    .raw(
                        "args",
                        &format!(
                            "{{\"ops\":{ops},\"cross_transfers\":{cross_transfers},\
                             \"cross_timesteps\":{cross_timesteps}}}"
                        ),
                    );
                entries.push(o.finish());
            }
            Event::TimestepStarted { .. } => {
                // Rendered as a span from the paired TimestepFinished below.
            }
            Event::TimestepFinished { step, t } => {
                let start = events
                    .iter()
                    .find_map(|e| match e {
                        Event::TimestepStarted { step: s, t } if s == step => Some(*t),
                        _ => None,
                    })
                    .unwrap_or(0.0);
                let mut o = Obj::new();
                o.str("name", &format!("timestep {step}"))
                    .str("cat", "timestep")
                    .str("ph", "X")
                    .f64("ts", start * MICROS)
                    .f64("dur", (t - start).max(0.0) * MICROS)
                    .usize("pid", pipeline_pid)
                    .usize("tid", 1)
                    .raw("args", &format!("{{\"step\":{step}}}"));
                entries.push(o.finish());
            }
            Event::TransferQueued { .. } | Event::TransferStarted { .. } => {
                // Queue wait is visible as the gap between the queued
                // instant (below, on the source node row) and the span.
                if let Event::TransferQueued { xfer, t } = e {
                    let mut o = Obj::new();
                    o.str("name", &format!("queued: {}", xfer.label))
                        .str("cat", "queue")
                        .str("ph", "i")
                        .f64("ts", t * MICROS)
                        .usize("pid", xfer.src_rack)
                        .usize("tid", xfer.src_node)
                        .str("s", "t");
                    entries.push(o.finish());
                }
            }
            Event::TransferDone { xfer, start, end } => {
                let cat = if xfer.cross {
                    "transfer.cross"
                } else {
                    "transfer.inner"
                };
                let mut args = String::from("{");
                let _ = write!(
                    args,
                    "\"bytes\":{},\"dst_node\":{},\"dst_rack\":{}",
                    xfer.bytes, xfer.dst_node, xfer.dst_rack
                );
                if let Some(step) = xfer.timestep {
                    let _ = write!(args, ",\"timestep\":{step}");
                }
                args.push('}');
                let mut o = Obj::new();
                o.str("name", &xfer.label)
                    .str("cat", cat)
                    .str("ph", "X")
                    .f64("ts", start * MICROS)
                    .f64("dur", (end - start).max(0.0) * MICROS)
                    .usize("pid", xfer.src_rack)
                    .usize("tid", xfer.src_node)
                    .raw("args", &args);
                entries.push(o.finish());
            }
            Event::CombineDone {
                label,
                node,
                rack,
                kernel,
                inputs,
                bytes,
                start,
                end,
            } => {
                let mut o = Obj::new();
                o.str("name", label)
                    .str("cat", "combine")
                    .str("ph", "X")
                    .f64("ts", start * MICROS)
                    .f64("dur", (end - start).max(0.0) * MICROS)
                    .usize("pid", *rack)
                    .usize("tid", *node)
                    .raw(
                        "args",
                        &format!(
                            "{{\"kernel\":\"{}\",\"inputs\":{inputs},\"bytes\":{bytes}}}",
                            kernel.name()
                        ),
                    );
                entries.push(o.finish());
            }
            Event::TransferFailed {
                xfer,
                attempt,
                reason,
                t,
            } => {
                let mut o = Obj::new();
                o.str("name", &format!("failed: {} ({reason})", xfer.label))
                    .str("cat", "fault")
                    .str("ph", "i")
                    .f64("ts", t * MICROS)
                    .usize("pid", xfer.src_rack)
                    .usize("tid", xfer.src_node)
                    .str("s", "t")
                    .raw("args", &format!("{{\"attempt\":{attempt}}}"));
                entries.push(o.finish());
            }
            Event::RetryScheduled {
                label,
                rack,
                attempt,
                delay,
                t,
            } => {
                let mut args = String::from("{");
                let _ = write!(args, "\"rack\":{rack},\"attempt\":{attempt},\"delay\":");
                push_f64(&mut args, *delay);
                args.push('}');
                let mut o = Obj::new();
                o.str("name", &format!("retry: {label}"))
                    .str("cat", "fault")
                    .str("ph", "i")
                    .f64("ts", t * MICROS)
                    .usize("pid", pipeline_pid)
                    .usize("tid", 0)
                    .str("s", "p")
                    .raw("args", &args);
                entries.push(o.finish());
            }
            Event::HelperCrashed { node, rack, t } => {
                let mut o = Obj::new();
                o.str("name", &format!("helper crashed: node {node}"))
                    .str("cat", "fault")
                    .str("ph", "i")
                    .f64("ts", t * MICROS)
                    .usize("pid", *rack)
                    .usize("tid", *node)
                    .str("s", "p")
                    .raw("args", &format!("{{\"node\":{node}}}"));
                entries.push(o.finish());
            }
            Event::Replanned {
                scheme,
                failed,
                reused_ops,
                t,
            } => {
                let mut o = Obj::new();
                o.str("name", &format!("replanned: {scheme}"))
                    .str("cat", "fault")
                    .str("ph", "i")
                    .f64("ts", t * MICROS)
                    .usize("pid", pipeline_pid)
                    .usize("tid", 0)
                    .str("s", "p")
                    .raw(
                        "args",
                        &format!("{{\"failed\":{failed},\"reused_ops\":{reused_ops}}}"),
                    );
                entries.push(o.finish());
            }
            Event::StreamSummary {
                xfer,
                chunks,
                chunk_bytes,
                first_chunk_latency,
                throughput,
                t,
            } => {
                let mut args = String::from("{");
                let _ = write!(args, "\"chunks\":{chunks},\"chunk_bytes\":{chunk_bytes}");
                args.push_str(",\"first_chunk_latency\":");
                push_f64(&mut args, *first_chunk_latency);
                args.push_str(",\"throughput\":");
                push_f64(&mut args, *throughput);
                args.push('}');
                let mut o = Obj::new();
                o.str("name", &format!("stream: {}", xfer.label))
                    .str("cat", "stream")
                    .str("ph", "i")
                    .f64("ts", t * MICROS)
                    .usize("pid", xfer.src_rack)
                    .usize("tid", xfer.src_node)
                    .str("s", "t")
                    .raw("args", &args);
                entries.push(o.finish());
            }
            Event::HedgeLaunched {
                label,
                slow_node,
                hedge_node,
                multiple,
                t,
            } => {
                let mut args = String::from("{");
                let _ = write!(args, "\"slow_node\":{slow_node},\"hedge_node\":{hedge_node}");
                args.push_str(",\"multiple\":");
                push_f64(&mut args, *multiple);
                args.push('}');
                let mut o = Obj::new();
                o.str("name", &format!("hedge: {label}"))
                    .str("cat", "hedge")
                    .str("ph", "i")
                    .f64("ts", t * MICROS)
                    .usize("pid", pipeline_pid)
                    .usize("tid", 0)
                    .str("s", "p")
                    .raw("args", &args);
                entries.push(o.finish());
            }
            Event::HedgeWon {
                label,
                winner_node,
                saved,
                t,
            } => {
                let mut args = String::from("{");
                let _ = write!(args, "\"winner_node\":{winner_node},\"saved\":");
                push_f64(&mut args, *saved);
                args.push('}');
                let mut o = Obj::new();
                o.str("name", &format!("hedge won: {label}"))
                    .str("cat", "hedge")
                    .str("ph", "i")
                    .f64("ts", t * MICROS)
                    .usize("pid", pipeline_pid)
                    .usize("tid", 0)
                    .str("s", "p")
                    .raw("args", &args);
                entries.push(o.finish());
            }
            Event::HelperQuarantined { node, score, t } => {
                let mut args = String::from("{");
                let _ = write!(args, "\"node\":{node},\"score\":");
                push_f64(&mut args, *score);
                args.push('}');
                let mut o = Obj::new();
                o.str("name", &format!("quarantined: node {node}"))
                    .str("cat", "health")
                    .str("ph", "i")
                    .f64("ts", t * MICROS)
                    .usize("pid", pipeline_pid)
                    .usize("tid", 0)
                    .str("s", "p")
                    .raw("args", &args);
                entries.push(o.finish());
            }
            Event::DeadlineExceeded {
                scope,
                budget,
                elapsed,
                t,
            } => {
                let mut args = String::from("{");
                args.push_str("\"budget\":");
                push_f64(&mut args, *budget);
                args.push_str(",\"elapsed\":");
                push_f64(&mut args, *elapsed);
                args.push('}');
                let mut o = Obj::new();
                o.str("name", &format!("deadline exceeded ({scope})"))
                    .str("cat", "deadline")
                    .str("ph", "i")
                    .f64("ts", t * MICROS)
                    .usize("pid", pipeline_pid)
                    .usize("tid", 0)
                    .str("s", "p")
                    .raw("args", &args);
                entries.push(o.finish());
            }
            Event::DegradedFallback { tier, reason, t } => {
                let mut o = Obj::new();
                o.str("name", &format!("degraded fallback: {tier}"))
                    .str("cat", "deadline")
                    .str("ph", "i")
                    .f64("ts", t * MICROS)
                    .usize("pid", pipeline_pid)
                    .usize("tid", 0)
                    .str("s", "p")
                    .raw("args", &format!("{{\"reason\":\"{reason}\"}}"));
                entries.push(o.finish());
            }
            Event::StripeEnqueued { stripe, level, t }
            | Event::StripeAdmitted { stripe, level, t } => {
                let verb = if matches!(e, Event::StripeEnqueued { .. }) {
                    "enqueued"
                } else {
                    "admitted"
                };
                let mut o = Obj::new();
                o.str("name", &format!("stripe {stripe} {verb}"))
                    .str("cat", "fleet")
                    .str("ph", "i")
                    .f64("ts", t * MICROS)
                    .usize("pid", pipeline_pid)
                    .usize("tid", 0)
                    .str("s", "p")
                    .raw("args", &format!("{{\"stripe\":{stripe},\"level\":{level}}}"));
                entries.push(o.finish());
            }
            Event::BandwidthWaited {
                stripe,
                level,
                waited,
                t,
            } => {
                let mut args = String::from("{");
                let _ = write!(args, "\"stripe\":{stripe},\"level\":{level},\"waited\":");
                push_f64(&mut args, *waited);
                args.push('}');
                let mut o = Obj::new();
                o.str("name", &format!("stripe {stripe} waited for bandwidth"))
                    .str("cat", "fleet")
                    .str("ph", "i")
                    .f64("ts", t * MICROS)
                    .usize("pid", pipeline_pid)
                    .usize("tid", 0)
                    .str("s", "p")
                    .raw("args", &args);
                entries.push(o.finish());
            }
            Event::ChurnFailure { stripe, level, t } | Event::StripeLost { stripe, level, t } => {
                let verb = if matches!(e, Event::ChurnFailure { .. }) {
                    "hit by churn"
                } else {
                    "permanently lost"
                };
                let mut o = Obj::new();
                o.str("name", &format!("stripe {stripe} {verb}"))
                    .str("cat", "fleet")
                    .str("ph", "i")
                    .f64("ts", t * MICROS)
                    .usize("pid", pipeline_pid)
                    .usize("tid", 0)
                    .str("s", "p")
                    .raw("args", &format!("{{\"stripe\":{stripe},\"level\":{level}}}"));
                entries.push(o.finish());
            }
            Event::RiskEscalated {
                stripe,
                from,
                to,
                in_flight,
                t,
            } => {
                let mut o = Obj::new();
                o.str("name", &format!("stripe {stripe} escalated {from}→{to}"))
                    .str("cat", "fleet")
                    .str("ph", "i")
                    .f64("ts", t * MICROS)
                    .usize("pid", pipeline_pid)
                    .usize("tid", 0)
                    .str("s", "p")
                    .raw(
                        "args",
                        &format!(
                            "{{\"stripe\":{stripe},\"from\":{from},\"to\":{to},\
                             \"in_flight\":{in_flight}}}"
                        ),
                    );
                entries.push(o.finish());
            }
            Event::JournalCheckpoint {
                seq,
                completed,
                lost,
                t,
            } => {
                let mut o = Obj::new();
                o.str("name", &format!("journal checkpoint #{seq}"))
                    .str("cat", "fleet")
                    .str("ph", "i")
                    .f64("ts", t * MICROS)
                    .usize("pid", pipeline_pid)
                    .usize("tid", 0)
                    .str("s", "p")
                    .raw(
                        "args",
                        &format!("{{\"seq\":{seq},\"completed\":{completed},\"lost\":{lost}}}"),
                    );
                entries.push(o.finish());
            }
            Event::RequestIssued {
                request,
                read,
                degraded,
                t,
            } => {
                let kind = if *degraded {
                    "degraded read"
                } else if *read {
                    "read"
                } else {
                    "write"
                };
                let mut o = Obj::new();
                o.str("name", &format!("request {request} issued ({kind})"))
                    .str("cat", "load")
                    .str("ph", "i")
                    .f64("ts", t * MICROS)
                    .usize("pid", pipeline_pid)
                    .usize("tid", 2)
                    .str("s", "p")
                    .raw(
                        "args",
                        &format!("{{\"request\":{request},\"read\":{read},\"degraded\":{degraded}}}"),
                    );
                entries.push(o.finish());
            }
            Event::RequestDone {
                request,
                read,
                degraded,
                first_byte,
                issued,
                end,
            } => {
                let kind = if *degraded {
                    "degraded read"
                } else if *read {
                    "read"
                } else {
                    "write"
                };
                let mut args = String::from("{");
                let _ = write!(args, "\"request\":{request},\"read\":{read},\"degraded\":{degraded}");
                args.push_str(",\"first_byte\":");
                push_f64(&mut args, *first_byte);
                args.push('}');
                let mut o = Obj::new();
                o.str("name", &format!("request {request} ({kind})"))
                    .str("cat", "load")
                    .str("ph", "X")
                    .f64("ts", issued * MICROS)
                    .f64("dur", (end - issued).max(0.0) * MICROS)
                    .usize("pid", pipeline_pid)
                    .usize("tid", 2)
                    .raw("args", &args);
                entries.push(o.finish());
            }
            Event::QosThrottled { flows, fraction, t } => {
                let mut args = String::from("{");
                let _ = write!(args, "\"flows\":{flows},\"fraction\":");
                push_f64(&mut args, *fraction);
                args.push('}');
                let mut o = Obj::new();
                o.str("name", &format!("qos throttled {flows} repair flows"))
                    .str("cat", "load")
                    .str("ph", "i")
                    .f64("ts", t * MICROS)
                    .usize("pid", pipeline_pid)
                    .usize("tid", 0)
                    .str("s", "p")
                    .raw("args", &args);
                entries.push(o.finish());
            }
            Event::ProofEmitted { op, node, gen, t } => {
                let mut o = Obj::new();
                o.str("name", &format!("proof emitted: op {op} (node {node})"))
                    .str("cat", "proof")
                    .str("ph", "i")
                    .f64("ts", t * MICROS)
                    .usize("pid", pipeline_pid)
                    .usize("tid", 0)
                    .str("s", "p")
                    .raw(
                        "args",
                        &format!("{{\"op\":{op},\"node\":{node},\"gen\":{gen}}}"),
                    );
                entries.push(o.finish());
            }
            Event::ProofRejected { op, node, gen, t } => {
                let mut o = Obj::new();
                o.str("name", &format!("proof rejected: op {op} (node {node})"))
                    .str("cat", "proof")
                    .str("ph", "i")
                    .f64("ts", t * MICROS)
                    .usize("pid", pipeline_pid)
                    .usize("tid", 0)
                    .str("s", "p")
                    .raw(
                        "args",
                        &format!("{{\"op\":{op},\"node\":{node},\"gen\":{gen}}}"),
                    );
                entries.push(o.finish());
            }
            Event::HelperAccused { node, gen, t } => {
                let mut o = Obj::new();
                o.str("name", &format!("accused: node {node}"))
                    .str("cat", "proof")
                    .str("ph", "i")
                    .f64("ts", t * MICROS)
                    .usize("pid", pipeline_pid)
                    .usize("tid", 0)
                    .str("s", "p")
                    .raw("args", &format!("{{\"node\":{node},\"gen\":{gen}}}"));
                entries.push(o.finish());
            }
            Event::RepairDone {
                t,
                cross_bytes,
                inner_bytes,
            } => {
                let mut o = Obj::new();
                o.str("name", "repair done")
                    .str("cat", "plan")
                    .str("ph", "i")
                    .f64("ts", t * MICROS)
                    .usize("pid", pipeline_pid)
                    .usize("tid", 0)
                    .str("s", "p")
                    .raw(
                        "args",
                        &format!(
                            "{{\"cross_bytes\":{cross_bytes},\"inner_bytes\":{inner_bytes}}}"
                        ),
                    );
                entries.push(o.finish());
            }
        }
    }

    let mut out = String::from("{\"traceEvents\":[\n");
    for (i, e) in entries.iter().enumerate() {
        out.push_str(e);
        if i + 1 < entries.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Kernel;

    fn sample_events() -> Vec<Event> {
        let xfer = Transfer {
            label: "p0op1:send \"quoted\"\n".into(),
            src_node: 3,
            src_rack: 1,
            dst_node: 0,
            dst_rack: 0,
            bytes: 4096,
            cross: true,
            timestep: Some(0),
        };
        vec![
            Event::PlanBuilt {
                scheme: "rpr".into(),
                parts: 1,
                ops: 4,
                cross_transfers: 2,
                inner_transfers: 1,
                cross_timesteps: 2,
                block_bytes: 4096,
            },
            Event::TimestepStarted { step: 0, t: 0.0 },
            Event::TransferQueued {
                xfer: xfer.clone(),
                t: 0.0,
            },
            Event::TransferStarted {
                xfer: xfer.clone(),
                queue_wait: 0.25,
                t: 0.25,
            },
            Event::TransferDone {
                xfer,
                start: 0.25,
                end: 0.75,
            },
            Event::TimestepFinished { step: 0, t: 0.75 },
            Event::CombineDone {
                label: "p0op2:combine".into(),
                node: 0,
                rack: 0,
                kernel: Kernel::Gf,
                inputs: 2,
                bytes: 4096,
                start: 0.75,
                end: 1.0,
            },
            Event::RepairDone {
                t: 1.0,
                cross_bytes: 4096,
                inner_bytes: 0,
            },
        ]
    }

    /// A tiny structural JSON validator: verifies balanced braces and
    /// brackets outside strings, and that strings close with proper
    /// escape handling. Catches malformed output without a JSON parser.
    fn assert_structurally_valid_json(s: &str) {
        let mut depth_obj = 0i32;
        let mut depth_arr = 0i32;
        let mut in_str = false;
        let mut escaped = false;
        for c in s.chars() {
            if in_str {
                if escaped {
                    escaped = false;
                } else if c == '\\' {
                    escaped = true;
                } else if c == '"' {
                    in_str = false;
                }
                continue;
            }
            match c {
                '"' => in_str = true,
                '{' => depth_obj += 1,
                '}' => depth_obj -= 1,
                '[' => depth_arr += 1,
                ']' => depth_arr -= 1,
                _ => {}
            }
            assert!(depth_obj >= 0 && depth_arr >= 0, "unbalanced close in {s}");
        }
        assert!(!in_str, "unterminated string in {s}");
        assert_eq!(depth_obj, 0, "unbalanced braces in {s}");
        assert_eq!(depth_arr, 0, "unbalanced brackets in {s}");
    }

    #[test]
    fn json_lines_one_valid_object_per_event() {
        let events = sample_events();
        let out = to_json_lines(&events);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), events.len());
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'));
            assert_structurally_valid_json(line);
        }
        assert!(lines[0].contains("\"type\":\"plan_built\""));
        assert!(lines[4].contains("\"type\":\"transfer_done\""));
        // The quote and newline in the label must be escaped.
        assert!(lines[4].contains("\\\"quoted\\\"\\n"));
    }

    #[test]
    fn chrome_trace_is_valid_and_complete() {
        let out = to_chrome_trace(&sample_events());
        assert_structurally_valid_json(&out);
        assert!(out.starts_with("{\"traceEvents\":["));
        // Spans for the transfer, the combine, and the timestep.
        assert!(out.contains("\"cat\":\"transfer.cross\""));
        assert!(out.contains("\"cat\":\"combine\""));
        assert!(out.contains("\"name\":\"timestep 0\""));
        // pid = rack of the sender (1), tid = sending node (3).
        assert!(out.contains("\"pid\":1,\"tid\":3"));
        // Process-name metadata for racks and the pipeline lane.
        assert!(out.contains("\"name\":\"rack 0\""));
        assert!(out.contains("\"name\":\"repair pipeline\""));
        // Durations are microseconds: the 0.5 s transfer is 500000 µs.
        assert!(out.contains("\"dur\":500000"));
    }

    #[test]
    fn failure_events_serialize_in_both_formats() {
        let xfer = Transfer {
            label: "p0op1:send".into(),
            src_node: 3,
            src_rack: 1,
            dst_node: 0,
            dst_rack: 0,
            bytes: 4096,
            cross: true,
            timestep: Some(0),
        };
        let events = vec![
            Event::TransferFailed {
                xfer,
                attempt: 0,
                reason: "timeout".into(),
                t: 0.4,
            },
            Event::RetryScheduled {
                label: "p0op1:send".into(),
                rack: 1,
                attempt: 0,
                delay: 0.05,
                t: 0.4,
            },
            Event::HelperCrashed {
                node: 3,
                rack: 1,
                t: 0.6,
            },
            Event::Replanned {
                scheme: "rpr".into(),
                failed: 2,
                reused_ops: 3,
                t: 0.65,
            },
        ];
        let jsonl = to_json_lines(&events);
        for line in jsonl.lines() {
            assert_structurally_valid_json(line);
        }
        assert!(jsonl.contains("\"type\":\"transfer_failed\""));
        assert!(jsonl.contains("\"reason\":\"timeout\""));
        assert!(jsonl.contains("\"type\":\"retry_scheduled\""));
        assert!(jsonl.contains("\"delay\":0.05"));
        assert!(jsonl.contains("\"type\":\"helper_crashed\""));
        assert!(jsonl.contains("\"type\":\"replanned\""));
        assert!(jsonl.contains("\"reused_ops\":3"));
        let chrome = to_chrome_trace(&events);
        assert_structurally_valid_json(&chrome);
        assert!(chrome.contains("\"cat\":\"fault\""));
        assert!(chrome.contains("failed: p0op1:send (timeout)"));
        assert!(chrome.contains("replanned: rpr"));
    }

    #[test]
    fn supervisor_events_serialize_in_both_formats() {
        let events = vec![
            Event::HedgeLaunched {
                label: "p1op4:send".into(),
                slow_node: 3,
                hedge_node: 7,
                multiple: 2.5,
                t: 0.4,
            },
            Event::HedgeWon {
                label: "p1op4:send".into(),
                winner_node: 7,
                saved: 0.125,
                t: 0.55,
            },
            Event::HelperQuarantined {
                node: 3,
                score: 0.25,
                t: 0.55,
            },
            Event::DeadlineExceeded {
                scope: "wave".into(),
                budget: 0.5,
                elapsed: 0.8,
                t: 0.8,
            },
            Event::DegradedFallback {
                tier: "degraded-read".into(),
                reason: "replan budget exhausted".into(),
                t: 0.9,
            },
        ];
        let jsonl = to_json_lines(&events);
        for line in jsonl.lines() {
            assert_structurally_valid_json(line);
        }
        assert!(jsonl.contains("\"type\":\"hedge_launched\""));
        assert!(jsonl.contains("\"hedge_node\":7"));
        assert!(jsonl.contains("\"type\":\"hedge_won\""));
        assert!(jsonl.contains("\"saved\":0.125"));
        assert!(jsonl.contains("\"type\":\"helper_quarantined\""));
        assert!(jsonl.contains("\"score\":0.25"));
        assert!(jsonl.contains("\"type\":\"deadline_exceeded\""));
        assert!(jsonl.contains("\"scope\":\"wave\""));
        assert!(jsonl.contains("\"type\":\"degraded_fallback\""));
        assert!(jsonl.contains("\"tier\":\"degraded-read\""));
        let chrome = to_chrome_trace(&events);
        assert_structurally_valid_json(&chrome);
        assert!(chrome.contains("\"cat\":\"hedge\""));
        assert!(chrome.contains("hedge won: p1op4:send"));
        assert!(chrome.contains("quarantined: node 3"));
        assert!(chrome.contains("deadline exceeded (wave)"));
        assert!(chrome.contains("degraded fallback: degraded-read"));
    }

    #[test]
    fn stream_summary_serializes_in_both_formats() {
        let events = vec![Event::StreamSummary {
            xfer: Transfer {
                label: "p0op1:send".into(),
                src_node: 3,
                src_rack: 1,
                dst_node: 0,
                dst_rack: 0,
                bytes: 4096,
                cross: true,
                timestep: Some(0),
            },
            chunks: 4,
            chunk_bytes: 1024,
            first_chunk_latency: 0.125,
            throughput: 8192.0,
            t: 0.5,
        }];
        let jsonl = to_json_lines(&events);
        for line in jsonl.lines() {
            assert_structurally_valid_json(line);
        }
        assert!(jsonl.contains("\"type\":\"stream_summary\""));
        assert!(jsonl.contains("\"chunks\":4"));
        assert!(jsonl.contains("\"chunk_bytes\":1024"));
        assert!(jsonl.contains("\"first_chunk_latency\":0.125"));
        assert!(jsonl.contains("\"throughput\":8192"));
        let chrome = to_chrome_trace(&events);
        assert_structurally_valid_json(&chrome);
        assert!(chrome.contains("\"cat\":\"stream\""));
        assert!(chrome.contains("stream: p0op1:send"));
    }

    #[test]
    fn fleet_events_serialize_in_both_formats() {
        let events = vec![
            Event::StripeEnqueued {
                stripe: 123456,
                level: 2,
                t: 0.0,
            },
            Event::StripeAdmitted {
                stripe: 123456,
                level: 2,
                t: 1.5,
            },
            Event::BandwidthWaited {
                stripe: 123456,
                level: 2,
                waited: 1.5,
                t: 1.5,
            },
        ];
        let jsonl = to_json_lines(&events);
        for line in jsonl.lines() {
            assert_structurally_valid_json(line);
        }
        assert!(jsonl.contains("\"type\":\"stripe_enqueued\""));
        assert!(jsonl.contains("\"type\":\"stripe_admitted\""));
        assert!(jsonl.contains("\"type\":\"bandwidth_waited\""));
        assert!(jsonl.contains("\"stripe\":123456"));
        assert!(jsonl.contains("\"level\":2"));
        assert!(jsonl.contains("\"waited\":1.5"));
        let chrome = to_chrome_trace(&events);
        assert_structurally_valid_json(&chrome);
        assert!(chrome.contains("\"cat\":\"fleet\""));
        assert!(chrome.contains("stripe 123456 enqueued"));
        assert!(chrome.contains("stripe 123456 admitted"));
        assert!(chrome.contains("stripe 123456 waited for bandwidth"));
    }

    #[test]
    fn churn_events_serialize_in_both_formats() {
        let events = vec![
            Event::ChurnFailure {
                stripe: 42,
                level: 2,
                t: 1.0,
            },
            Event::RiskEscalated {
                stripe: 42,
                from: 1,
                to: 2,
                in_flight: true,
                t: 1.0,
            },
            Event::StripeLost {
                stripe: 43,
                level: 4,
                t: 2.5,
            },
            Event::JournalCheckpoint {
                seq: 9,
                completed: 100,
                lost: 1,
                t: 3.0,
            },
        ];
        let jsonl = to_json_lines(&events);
        for line in jsonl.lines() {
            assert_structurally_valid_json(line);
        }
        assert!(jsonl.contains("\"type\":\"churn_failure\""));
        assert!(jsonl.contains("\"type\":\"risk_escalated\""));
        assert!(jsonl.contains("\"type\":\"stripe_lost\""));
        assert!(jsonl.contains("\"type\":\"journal_checkpoint\""));
        assert!(jsonl.contains("\"from\":1"));
        assert!(jsonl.contains("\"to\":2"));
        assert!(jsonl.contains("\"in_flight\":true"));
        assert!(jsonl.contains("\"seq\":9"));
        assert!(jsonl.contains("\"completed\":100"));
        assert!(jsonl.contains("\"lost\":1"));
        let chrome = to_chrome_trace(&events);
        assert_structurally_valid_json(&chrome);
        assert!(chrome.contains("stripe 42 hit by churn"));
        assert!(chrome.contains("stripe 42 escalated 1→2"));
        assert!(chrome.contains("stripe 43 permanently lost"));
        assert!(chrome.contains("journal checkpoint #9"));
    }

    #[test]
    fn request_events_serialize_in_both_formats() {
        let events = vec![
            Event::RequestIssued {
                request: 7,
                read: true,
                degraded: true,
                t: 0.25,
            },
            Event::RequestDone {
                request: 7,
                read: true,
                degraded: true,
                first_byte: 0.05,
                issued: 0.25,
                end: 0.75,
            },
            Event::QosThrottled {
                flows: 3,
                fraction: 0.4,
                t: 0.1,
            },
        ];
        let jsonl = to_json_lines(&events);
        for line in jsonl.lines() {
            assert_structurally_valid_json(line);
        }
        assert!(jsonl.contains("\"type\":\"request_issued\""));
        assert!(jsonl.contains("\"type\":\"request_done\""));
        assert!(jsonl.contains("\"request\":7"));
        assert!(jsonl.contains("\"degraded\":true"));
        assert!(jsonl.contains("\"first_byte\":0.05"));
        assert!(jsonl.contains("\"type\":\"qos_throttled\""));
        assert!(jsonl.contains("\"fraction\":0.4"));
        let chrome = to_chrome_trace(&events);
        assert_structurally_valid_json(&chrome);
        assert!(chrome.contains("\"cat\":\"load\""));
        assert!(chrome.contains("request 7 issued (degraded read)"));
        assert!(chrome.contains("request 7 (degraded read)"));
        assert!(chrome.contains("qos throttled 3 repair flows"));
        // The 0.5 s request span renders as 500000 µs.
        assert!(chrome.contains("\"dur\":500000"));
    }

    #[test]
    fn proof_events_serialize_in_both_formats() {
        let events = vec![
            Event::ProofEmitted {
                op: 4,
                node: 9,
                gen: 0,
                t: 0.2,
            },
            Event::ProofRejected {
                op: 4,
                node: 9,
                gen: 0,
                t: 0.3,
            },
            Event::HelperAccused {
                node: 9,
                gen: 0,
                t: 0.3,
            },
        ];
        let jsonl = to_json_lines(&events);
        for line in jsonl.lines() {
            assert_structurally_valid_json(line);
        }
        assert!(jsonl.contains("\"type\":\"proof_emitted\""));
        assert!(jsonl.contains("\"type\":\"proof_rejected\""));
        assert!(jsonl.contains("\"type\":\"helper_accused\""));
        assert!(jsonl.contains("\"op\":4"));
        assert!(jsonl.contains("\"node\":9"));
        assert!(jsonl.contains("\"gen\":0"));
        let chrome = to_chrome_trace(&events);
        assert_structurally_valid_json(&chrome);
        assert!(chrome.contains("\"cat\":\"proof\""));
        assert!(chrome.contains("proof emitted: op 4 (node 9)"));
        assert!(chrome.contains("proof rejected: op 4 (node 9)"));
        assert!(chrome.contains("accused: node 9"));
    }

    #[test]
    fn non_finite_floats_serialize_as_null() {
        let e = Event::RepairDone {
            t: f64::NAN,
            cross_bytes: 0,
            inner_bytes: 0,
        };
        let line = event_to_json(&e);
        assert_structurally_valid_json(&line);
        assert!(line.contains("\"t\":null"));
    }
}
