//! # rpr-obs — repair observability
//!
//! Structured trace events, per-rack metrics, and exporters for the
//! rack-aware pipeline repair (RPR) reproduction. The paper's central
//! claims are measurements — cross-rack timesteps (`⌈log2(sources+1)⌉`),
//! per-rack upload imbalance, the wide-/narrow-decode gap — and this
//! crate makes them visible *inside* a repair rather than only as final
//! aggregates.
//!
//! Three pieces:
//!
//! - [`Recorder`]: the sink trait. [`NoopRecorder`] (via [`noop()`])
//!   keeps untraced call sites free; [`TraceRecorder`] is the default
//!   real implementation — relaxed atomic counters, per-rack totals,
//!   log2 latency histograms, and a bounded drop-oldest event ring.
//! - [`Event`]: the structured event vocabulary (plan built, timestep
//!   started/finished, transfer queued/started/done, combine done with
//!   XOR-vs-GF kernel kind, repair done). Units and semantics are
//!   specified in `docs/TRACING.md`.
//! - [`export`]: JSON-lines ([`export::to_json_lines`]) and Chrome
//!   `trace_event` ([`export::to_chrome_trace`]) serialization, both
//!   hand-rolled so this crate stays dependency-free (the build
//!   environment has no registry access).
//!
//! Racks and nodes appear as plain `usize` indices, so `rpr-obs` sits at
//! the bottom of the workspace dependency graph next to `rpr-gf`, and
//! every layer (`core`, `netsim`, `exec`, `cli`, `experiments`) can
//! record into it without cycles.
//!
//! ```
//! use rpr_obs::{Event, Recorder, TraceRecorder, Transfer};
//!
//! let rec = TraceRecorder::default();
//! rec.record(Event::TransferDone {
//!     xfer: Transfer {
//!         label: "p0op0:send".into(),
//!         src_node: 4, src_rack: 1, dst_node: 0, dst_rack: 0,
//!         bytes: 4096, cross: true, timestep: Some(0),
//!     },
//!     start: 0.0,
//!     end: 0.5,
//! });
//! let snapshot = rec.snapshot();
//! assert_eq!(snapshot.cross_bytes, 4096);
//! let jsonl = rpr_obs::export::to_json_lines(&rec.take_events());
//! assert!(jsonl.contains("\"type\":\"transfer_done\""));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
pub mod export;
mod metrics;
mod recorder;

pub use event::{Event, Kernel, Transfer};
pub use metrics::{Histogram, HistogramSnapshot, RackCounters, RackTotals, HISTOGRAM_BUCKETS};
pub use recorder::{
    noop, MetricsSnapshot, NoopRecorder, Recorder, TraceRecorder, DEFAULT_RING_CAPACITY,
};
