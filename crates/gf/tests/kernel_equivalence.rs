//! Cross-kernel equivalence: every runtime-dispatchable SIMD tier must be
//! byte-for-byte identical to the scalar table path — and the scalar path
//! to the bit-level reference multiplier — for every coefficient class,
//! ragged length, and misalignment the repair pipeline can produce.
//!
//! This is the bit-identity guarantee `rpr_gf::kernels` documents: tier
//! choice changes throughput, never output.

use proptest::prelude::*;
use rpr_gf::kernels::{available_tiers, mul_acc_slice_on, mul_slice_on, xor_slice_on, KernelTier};

/// Deterministic pseudo-random fill so failures reproduce exactly.
fn fill(len: usize, seed: u64) -> Vec<u8> {
    let mut s = seed | 1;
    (0..len)
        .map(|_| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (s >> 33) as u8
        })
        .collect()
}

/// Reference product computed pointwise from the bit-level multiplier.
fn reference_mul(c: u8, src: &[u8]) -> Vec<u8> {
    src.iter().map(|&s| rpr_gf::mul_reference(c, s)).collect()
}

/// Every length in 0..=257 crosses each kernel's vector-width boundary
/// (16 and 32) several times and exercises the empty, sub-vector, exact,
/// and ragged-tail cases.
#[test]
fn all_tiers_match_reference_for_ragged_lengths() {
    let tiers = available_tiers();
    assert!(tiers.contains(&KernelTier::Scalar));
    for len in 0..=257usize {
        let src = fill(len, 0x9E37 + len as u64);
        let init = fill(len, 0x7F4A + len as u64);
        for &c in &[0u8, 1, 2, 3, 0x1D, 0x53, 0x80, 0xFE, 0xFF] {
            let want_mul = reference_mul(c, &src);
            let want_acc: Vec<u8> = init
                .iter()
                .zip(&want_mul)
                .map(|(&d, &p)| d ^ p)
                .collect();
            for &tier in &tiers {
                let mut dst = vec![0xA5u8; len];
                mul_slice_on(tier, c, &src, &mut dst);
                assert_eq!(dst, want_mul, "mul_slice {tier} c={c:#04x} len={len}");

                let mut acc = init.clone();
                mul_acc_slice_on(tier, c, &src, &mut acc);
                assert_eq!(acc, want_acc, "mul_acc_slice {tier} c={c:#04x} len={len}");
            }
        }
        // Bulk XOR: every tier equals the pointwise reference XOR.
        let want_xor: Vec<u8> = init.iter().zip(&src).map(|(&d, &s)| d ^ s).collect();
        for &tier in &tiers {
            let mut dst = init.clone();
            xor_slice_on(tier, &mut dst, &src);
            assert_eq!(dst, want_xor, "xor_slice {tier} len={len}");
        }
    }
}

/// Unaligned offsets: carve sub-slices at every offset 0..32 out of an
/// over-allocated buffer so the vector kernels see pointers at every
/// possible alignment class (they use unaligned loads — this must never
/// matter).
#[test]
fn all_tiers_match_at_every_alignment_offset() {
    const LEN: usize = 97; // prime: never a multiple of any vector width
    let backing_src = fill(LEN + 64, 0xDEAD);
    let backing_dst = fill(LEN + 64, 0xBEEF);
    for off in 0..32usize {
        let src = &backing_src[off..off + LEN];
        let init = &backing_dst[off..off + LEN];
        for &c in &[2u8, 0x53, 0xE1] {
            let want: Vec<u8> = init
                .iter()
                .zip(reference_mul(c, src))
                .map(|(&d, p)| d ^ p)
                .collect();
            for &tier in &available_tiers() {
                // Rebuild an offset destination each round so the kernel
                // writes through a pointer with alignment `off mod 32`.
                let mut dst_backing = backing_dst.clone();
                let dst = &mut dst_backing[off..off + LEN];
                mul_acc_slice_on(tier, c, src, dst);
                assert_eq!(dst, want.as_slice(), "{tier} c={c:#04x} off={off}");
                // Bytes outside the slice must be untouched.
                assert_eq!(dst_backing[..off], backing_dst[..off], "prefix {tier}");
                assert_eq!(
                    dst_backing[off + LEN..],
                    backing_dst[off + LEN..],
                    "suffix {tier}"
                );
            }
        }
    }
}

proptest! {
    /// The dispatched entry points (whatever tier this host selected)
    /// agree with the scalar tier on randomized slices — coefficient,
    /// contents, length, and an arbitrary sub-slice offset all fuzzed.
    #[test]
    fn dispatched_kernels_match_scalar_on_random_slices(
        c: u8,
        a in proptest::collection::vec(any::<u8>(), 0..300),
        b in proptest::collection::vec(any::<u8>(), 0..300),
        off in 0usize..64,
    ) {
        let len = a.len().min(b.len());
        let off = off.min(len);
        let src = &a[off..len];
        let init = &b[off..len];

        let mut scalar_acc = init.to_vec();
        mul_acc_slice_on(KernelTier::Scalar, c, src, &mut scalar_acc);
        let mut fast_acc = init.to_vec();
        rpr_gf::mul_acc_slice(c, src, &mut fast_acc);
        prop_assert_eq!(&scalar_acc, &fast_acc, "acc c={:#04x}", c);

        let mut scalar_mul = vec![0u8; src.len()];
        mul_slice_on(KernelTier::Scalar, c, src, &mut scalar_mul);
        let mut fast_mul = vec![0xFFu8; src.len()];
        rpr_gf::mul_slice(c, src, &mut fast_mul);
        prop_assert_eq!(&scalar_mul, &fast_mul, "mul c={:#04x}", c);

        let mut scalar_xor = init.to_vec();
        xor_slice_on(KernelTier::Scalar, &mut scalar_xor, src);
        let mut fast_xor = init.to_vec();
        rpr_gf::xor_slice(&mut fast_xor, src);
        prop_assert_eq!(&scalar_xor, &fast_xor, "xor");
    }
}

/// lin_comb and lin_comb_multi build on the dispatched kernels; their
/// results must equal the scalar-composed combination regardless of the
/// active tier, including across cache-span boundaries.
#[test]
fn combinators_are_tier_independent() {
    const LEN: usize = 40_000; // > one 32 KiB cache span, ragged tail
    let blocks: Vec<Vec<u8>> = (0..5).map(|i| fill(LEN, 100 + i)).collect();
    let refs: Vec<&[u8]> = blocks.iter().map(|b| b.as_slice()).collect();
    let coeffs = [7u8, 1, 0, 0xC3, 2];

    let mut scalar_out = vec![0u8; LEN];
    for (o, byte) in scalar_out.iter_mut().enumerate() {
        let mut acc = 0u8;
        for (&c, b) in coeffs.iter().zip(&blocks) {
            acc ^= rpr_gf::mul_reference(c, b[o]);
        }
        *byte = acc;
    }

    let mut out = vec![0u8; LEN];
    rpr_gf::lin_comb(&coeffs, &refs, &mut out);
    assert_eq!(out, scalar_out, "lin_comb");

    let rows: [&[u8]; 2] = [&coeffs, &[1, 1, 1, 1, 1]];
    let mut multi: Vec<Vec<u8>> = vec![vec![0u8; LEN]; 2];
    {
        let mut out_refs: Vec<&mut [u8]> = multi.iter_mut().map(|o| o.as_mut_slice()).collect();
        rpr_gf::lin_comb_multi(&rows, &refs, &mut out_refs);
    }
    assert_eq!(multi[0], scalar_out, "lin_comb_multi row 0");
    let mut xor_all = vec![0u8; LEN];
    for b in &blocks {
        rpr_gf::xor_slice(&mut xor_all, b);
    }
    assert_eq!(multi[1], xor_all, "lin_comb_multi XOR row");
}
