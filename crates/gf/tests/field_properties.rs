//! Property-based verification that GF(2^8) satisfies the field axioms and
//! that the bulk slice kernels agree with scalar arithmetic.

use proptest::prelude::*;
use rpr_gf::{add, div, inv, is_xor_only, lin_comb, mul, mul_acc_slice, mul_slice, pow, xor_slice};

proptest! {
    #[test]
    fn addition_is_commutative_and_associative(a: u8, b: u8, c: u8) {
        prop_assert_eq!(add(a, b), add(b, a));
        prop_assert_eq!(add(add(a, b), c), add(a, add(b, c)));
    }

    #[test]
    fn addition_identity_and_self_inverse(a: u8) {
        prop_assert_eq!(add(a, 0), a);
        prop_assert_eq!(add(a, a), 0, "every element is its own additive inverse");
    }

    #[test]
    fn multiplication_is_commutative_and_associative(a: u8, b: u8, c: u8) {
        prop_assert_eq!(mul(a, b), mul(b, a));
        prop_assert_eq!(mul(mul(a, b), c), mul(a, mul(b, c)));
    }

    #[test]
    fn multiplication_distributes_over_addition(a: u8, b: u8, c: u8) {
        prop_assert_eq!(mul(a, add(b, c)), add(mul(a, b), mul(a, c)));
    }

    #[test]
    fn multiplicative_identity_and_zero(a: u8) {
        prop_assert_eq!(mul(a, 1), a);
        prop_assert_eq!(mul(a, 0), 0);
    }

    #[test]
    fn nonzero_elements_have_inverses(a in 1u8..) {
        prop_assert_eq!(mul(a, inv(a)), 1);
        prop_assert_eq!(div(1, a), inv(a));
    }

    #[test]
    fn division_is_multiplication_by_inverse(a: u8, b in 1u8..) {
        prop_assert_eq!(div(a, b), mul(a, inv(b)));
    }

    #[test]
    fn pow_is_repeated_multiplication(a: u8, e in 0usize..600) {
        let mut expect = 1u8;
        for _ in 0..e {
            expect = mul(expect, a);
        }
        prop_assert_eq!(pow(a, e), expect);
    }

    #[test]
    fn xor_slice_equals_scalar_loop(
        pair in proptest::collection::vec((any::<u8>(), any::<u8>()), 0..200)
    ) {
        let src: Vec<u8> = pair.iter().map(|p| p.0).collect();
        let mut dst: Vec<u8> = pair.iter().map(|p| p.1).collect();
        let expect: Vec<u8> = dst.iter().zip(&src).map(|(d, s)| d ^ s).collect();
        xor_slice(&mut dst, &src);
        prop_assert_eq!(dst, expect);
    }

    #[test]
    fn mul_slice_equals_scalar_loop(c: u8, src in proptest::collection::vec(any::<u8>(), 0..200)) {
        let mut dst = vec![0u8; src.len()];
        mul_slice(c, &src, &mut dst);
        let expect: Vec<u8> = src.iter().map(|&s| mul(c, s)).collect();
        prop_assert_eq!(dst, expect);
    }

    #[test]
    fn mul_acc_slice_equals_scalar_loop(
        c: u8,
        pair in proptest::collection::vec((any::<u8>(), any::<u8>()), 0..200)
    ) {
        let src: Vec<u8> = pair.iter().map(|p| p.0).collect();
        let mut dst: Vec<u8> = pair.iter().map(|p| p.1).collect();
        let expect: Vec<u8> = dst.iter().zip(&src).map(|(d, s)| d ^ mul(c, *s)).collect();
        mul_acc_slice(c, &src, &mut dst);
        prop_assert_eq!(dst, expect);
    }

    #[test]
    fn lin_comb_is_order_independent_under_permutation(
        blocks in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 16..=16), 1..6),
        coeffs_seed in any::<u64>(),
    ) {
        // Build coefficient list of matching arity from the seed.
        let coeffs: Vec<u8> = (0..blocks.len())
            .map(|i| ((coeffs_seed >> (i * 8)) & 0xFF) as u8)
            .collect();
        let refs: Vec<&[u8]> = blocks.iter().map(|b| b.as_slice()).collect();
        let mut out = vec![0u8; 16];
        lin_comb(&coeffs, &refs, &mut out);

        // Reversed order must give the same combination (commutativity).
        let rev_coeffs: Vec<u8> = coeffs.iter().rev().copied().collect();
        let rev_refs: Vec<&[u8]> = refs.iter().rev().copied().collect();
        let mut out_rev = vec![0u8; 16];
        lin_comb(&rev_coeffs, &rev_refs, &mut out_rev);
        prop_assert_eq!(out, out_rev);
    }

    #[test]
    fn xor_only_combinations_match_plain_xor(
        blocks in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 32..=32), 1..5),
    ) {
        let coeffs = vec![1u8; blocks.len()];
        prop_assert!(is_xor_only(&coeffs));
        let refs: Vec<&[u8]> = blocks.iter().map(|b| b.as_slice()).collect();
        let mut via_lincomb = vec![0u8; 32];
        lin_comb(&coeffs, &refs, &mut via_lincomb);
        let mut via_xor = vec![0u8; 32];
        for b in &blocks {
            xor_slice(&mut via_xor, b);
        }
        prop_assert_eq!(via_lincomb, via_xor);
    }
}
