//! Runtime-dispatched GF(2^8) bulk-multiply and bulk-XOR kernels.
//!
//! The crate's public slice API ([`crate::xor_slice`], [`crate::mul_slice`],
//! [`crate::mul_acc_slice`], [`crate::lin_comb`], [`crate::lin_comb_multi`])
//! routes every general coefficient through this module. At first use the
//! best kernel the CPU supports is detected once and cached; every later
//! call is a single atomic load plus an indirect-free `match`:
//!
//! | tier | ISA | bytes/step | technique |
//! |------|-----|-----------:|-----------|
//! | [`KernelTier::Avx2`]  | x86-64 AVX2  | 32 | `vpshufb` split-nibble |
//! | [`KernelTier::Ssse3`] | x86-64 SSSE3 | 16 | `pshufb` split-nibble |
//! | [`KernelTier::Neon`]  | AArch64 NEON | 16 | `tbl` split-nibble |
//! | [`KernelTier::Scalar`]| any | 1 | 256-entry table row |
//!
//! The split-nibble trick: `c·x` for `x = (hi << 4) | lo` equals
//! `NIB_LO[c][lo] ⊕ NIB_HI[c][hi]` (multiplication distributes over the
//! field's XOR addition), and each 16-entry table fits one shuffle
//! register, so a single `pshufb`/`tbl` performs 16–32 table lookups in
//! parallel.
//!
//! The bulk XOR (`dst[i] ^= src[i]`, the paper's eq. 6 accumulate) is
//! dispatched on the same tiers: one `pxor`/`vpxor`/`eor` per vector on
//! the SIMD tiers, wide `u64` lanes on the scalar tier. Optimized builds
//! auto-vectorize the scalar lanes anyway; the explicit path keeps
//! unoptimized and cross-compiled builds at vector width too.
//!
//! # Bit identity
//!
//! Every tier computes the *same function* — results are guaranteed (and
//! property-tested, see `crates/gf/tests/kernel_equivalence.rs`) to be
//! byte-for-byte identical to [`crate::mul_reference`] applied pointwise,
//! for every coefficient, length, and alignment. Picking a tier changes
//! throughput only, never output.
//!
//! # Alignment and remainders
//!
//! The vector bodies use unaligned loads/stores exclusively
//! (`loadu`/`storeu`, `vld1q`/`vst1q`), so callers never need aligned
//! buffers. Lengths that are not a multiple of the vector width fall
//! through to the scalar table-row loop for the tail bytes; lengths
//! shorter than one vector run entirely scalar.
//!
//! # Escape hatch
//!
//! Setting the environment variable `RPR_FORCE_SCALAR` (to anything but
//! `0` or the empty string) before first use pins the dispatcher to
//! [`KernelTier::Scalar`]. This is the supported way to rule the SIMD
//! paths in or out when bisecting a miscompare or measuring the scalar
//! baseline; it is read once and cached with the detection result.

// The SIMD bodies below are the only unsafe code in the workspace's coding
// stack; each unsafe block states the invariant that makes it sound.
#![allow(unsafe_code)]

use crate::tables;
use core::sync::atomic::{AtomicU8, Ordering};

/// One dispatchable kernel implementation, ordered from slowest to
/// fastest. See the [module docs](self) for the table of tiers.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Hash)]
pub enum KernelTier {
    /// Portable per-byte 256-entry table-row loop. Always available; the
    /// mandatory fallback every other tier is verified against.
    Scalar,
    /// SSE `pshufb` split-nibble multiply, 16 bytes per step (x86-64).
    Ssse3,
    /// AVX2 `vpshufb` split-nibble multiply, 32 bytes per step (x86-64).
    Avx2,
    /// NEON `tbl` split-nibble multiply, 16 bytes per step (AArch64).
    Neon,
}

impl KernelTier {
    /// Stable lowercase name, as written into `BENCH_*.json` snapshots.
    pub fn name(self) -> &'static str {
        match self {
            KernelTier::Scalar => "scalar",
            KernelTier::Ssse3 => "ssse3",
            KernelTier::Avx2 => "avx2",
            KernelTier::Neon => "neon",
        }
    }
}

impl core::fmt::Display for KernelTier {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

// Cached dispatch decision: 0 = undetected, else tier discriminant + 1.
static ACTIVE: AtomicU8 = AtomicU8::new(0);

fn tier_code(t: KernelTier) -> u8 {
    match t {
        KernelTier::Scalar => 1,
        KernelTier::Ssse3 => 2,
        KernelTier::Avx2 => 3,
        KernelTier::Neon => 4,
    }
}

fn tier_from_code(c: u8) -> KernelTier {
    match c {
        1 => KernelTier::Scalar,
        2 => KernelTier::Ssse3,
        3 => KernelTier::Avx2,
        4 => KernelTier::Neon,
        _ => unreachable!("invalid cached kernel tier"),
    }
}

fn force_scalar() -> bool {
    match std::env::var_os("RPR_FORCE_SCALAR") {
        None => false,
        Some(v) => !v.is_empty() && v != "0",
    }
}

fn detect() -> KernelTier {
    if force_scalar() {
        return KernelTier::Scalar;
    }
    *available_tiers().last().expect("scalar is always available")
}

/// The kernel tier the dispatcher is using, detecting (and caching) it on
/// the first call. `RPR_FORCE_SCALAR` is honored at detection time only.
pub fn active_tier() -> KernelTier {
    let cached = ACTIVE.load(Ordering::Relaxed);
    if cached != 0 {
        return tier_from_code(cached);
    }
    let t = detect();
    // A concurrent first call detects the same value; the race is benign.
    ACTIVE.store(tier_code(t), Ordering::Relaxed);
    t
}

/// Every tier this CPU can run, slowest first (always starts with
/// [`KernelTier::Scalar`]). Ignores `RPR_FORCE_SCALAR`: this reports
/// hardware capability, not the dispatch decision.
pub fn available_tiers() -> Vec<KernelTier> {
    let mut tiers = vec![KernelTier::Scalar];
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("ssse3") {
            tiers.push(KernelTier::Ssse3);
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            tiers.push(KernelTier::Avx2);
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        if std::arch::is_aarch64_feature_detected!("neon") {
            tiers.push(KernelTier::Neon);
        }
    }
    tiers
}

/// `dst[i] = c * src[i]` on an explicit tier. Exposed for the equivalence
/// tests and benchmarks; production code uses the dispatched
/// [`crate::mul_slice`].
///
/// # Panics
/// Panics if the slices have different lengths or `tier` is not in
/// [`available_tiers`] on this CPU.
pub fn mul_slice_on(tier: KernelTier, c: u8, src: &[u8], dst: &mut [u8]) {
    assert_eq!(dst.len(), src.len(), "mul_slice: length mismatch");
    assert!(
        available_tiers().contains(&tier),
        "kernel tier {tier} not available on this CPU"
    );
    dispatch::<false>(tier, c, src, dst);
}

/// `dst[i] ^= c * src[i]` on an explicit tier. Exposed for the
/// equivalence tests and benchmarks; production code uses the dispatched
/// [`crate::mul_acc_slice`].
///
/// # Panics
/// As [`mul_slice_on`].
pub fn mul_acc_slice_on(tier: KernelTier, c: u8, src: &[u8], dst: &mut [u8]) {
    assert_eq!(dst.len(), src.len(), "mul_acc_slice: length mismatch");
    assert!(
        available_tiers().contains(&tier),
        "kernel tier {tier} not available on this CPU"
    );
    dispatch::<true>(tier, c, src, dst);
}

/// `dst[i] ^= src[i]` on an explicit tier. Exposed for the equivalence
/// tests and benchmarks; production code uses the dispatched
/// [`crate::xor_slice`].
///
/// # Panics
/// Panics if the slices have different lengths or `tier` is not in
/// [`available_tiers`] on this CPU.
pub fn xor_slice_on(tier: KernelTier, dst: &mut [u8], src: &[u8]) {
    assert_eq!(dst.len(), src.len(), "xor_slice: length mismatch");
    assert!(
        available_tiers().contains(&tier),
        "kernel tier {tier} not available on this CPU"
    );
    dispatch_xor(tier, dst, src);
}

/// Dispatched general-coefficient multiply: `dst = c·src` (`ACC = false`)
/// or `dst ^= c·src` (`ACC = true`). Callers have already peeled the
/// `c == 0` / `c == 1` special cases.
#[inline]
pub(crate) fn mul_dispatch<const ACC: bool>(c: u8, src: &[u8], dst: &mut [u8]) {
    dispatch::<ACC>(active_tier(), c, src, dst);
}

/// Dispatched bulk XOR behind [`crate::xor_slice`]. Lengths are already
/// asserted equal by the caller.
#[inline]
pub(crate) fn xor_dispatch(dst: &mut [u8], src: &[u8]) {
    dispatch_xor(active_tier(), dst, src);
}

#[inline]
fn dispatch_xor(tier: KernelTier, dst: &mut [u8], src: &[u8]) {
    match tier {
        KernelTier::Scalar => scalar_xor(dst, src),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: the tier is only selected when the matching CPU feature
        // was runtime-detected (`available_tiers` / `detect`).
        KernelTier::Ssse3 => unsafe { x86::xor_sse2(dst, src) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above — AVX2 was runtime-detected.
        KernelTier::Avx2 => unsafe { x86::xor_avx2(dst, src) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: as above — NEON was runtime-detected.
        KernelTier::Neon => unsafe { neon::xor_neon(dst, src) },
        #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
        _ => scalar_xor(dst, src),
        // A SIMD tier of the *other* architecture can never be selected
        // (available_tiers is arch-gated), but the match must be total.
        #[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
        _ => unreachable!("foreign-architecture kernel tier"),
    }
}

#[inline]
fn dispatch<const ACC: bool>(tier: KernelTier, c: u8, src: &[u8], dst: &mut [u8]) {
    match tier {
        KernelTier::Scalar => scalar::<ACC>(c, src, dst),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: the tier is only selected when the matching CPU feature
        // was runtime-detected (`available_tiers` / `detect`).
        KernelTier::Ssse3 => unsafe { x86::mul_ssse3::<ACC>(c, src, dst) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above — AVX2 was runtime-detected.
        KernelTier::Avx2 => unsafe { x86::mul_avx2::<ACC>(c, src, dst) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: as above — NEON was runtime-detected.
        KernelTier::Neon => unsafe { neon::mul_neon::<ACC>(c, src, dst) },
        #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
        _ => scalar::<ACC>(c, src, dst),
        // A SIMD tier of the *other* architecture can never be selected
        // (available_tiers is arch-gated), but the match must be total.
        #[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
        _ => unreachable!("foreign-architecture kernel tier"),
    }
}

/// The scalar XOR fallback and every vector XOR kernel's tail loop: wide
/// `u64` lanes via `chunks_exact`, byte-at-a-time only for the final
/// `len % 8` bytes. Safe code throughout.
fn scalar_xor(dst: &mut [u8], src: &[u8]) {
    const LANE: usize = 8;
    let mut d = dst.chunks_exact_mut(LANE);
    let mut s = src.chunks_exact(LANE);
    for (dc, sc) in (&mut d).zip(&mut s) {
        let dv = u64::from_ne_bytes(dc.try_into().unwrap());
        let sv = u64::from_ne_bytes(sc.try_into().unwrap());
        dc.copy_from_slice(&(dv ^ sv).to_ne_bytes());
    }
    for (db, sb) in d.into_remainder().iter_mut().zip(s.remainder()) {
        *db ^= *sb;
    }
}

/// The scalar fallback: one 256-entry table row, one lookup per byte.
/// This is byte-addressed (no lane tricks), so it has no alignment or
/// remainder concerns and serves as the tail loop of every vector kernel.
fn scalar<const ACC: bool>(c: u8, src: &[u8], dst: &mut [u8]) {
    let row = tables::mul_row(c);
    if ACC {
        for (d, s) in dst.iter_mut().zip(src) {
            *d ^= row[*s as usize];
        }
    } else {
        for (d, s) in dst.iter_mut().zip(src) {
            *d = row[*s as usize];
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    //! SSSE3 / AVX2 split-nibble kernels.
    //!
    //! Soundness rests on three invariants, shared by both widths:
    //!
    //! 1. **ISA**: the caller verified the CPU feature at runtime before
    //!    selecting this path (`#[target_feature]` makes the fn unsafe for
    //!    exactly this reason).
    //! 2. **Bounds**: the vector loop only touches `i..i + W` for
    //!    `i + W <= len`; the `..len` tail is handled by the safe scalar
    //!    loop.
    //! 3. **Aliasing**: `src` and `dst` are distinct Rust slices (`&` vs
    //!    `&mut`), so the raw pointers derived from them cannot overlap.
    //!
    //! All loads/stores are the unaligned variants; there is no alignment
    //! precondition.

    use super::scalar;
    use crate::tables::{NIB_HI, NIB_LO};
    use core::arch::x86_64::*;

    /// `dst ^= src` over 16-byte lanes (`pxor`).
    ///
    /// # Safety
    /// CPU must support SSE2 (baseline on x86-64; the dispatcher only
    /// takes this path after detecting the SSSE3 tier, which implies it).
    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn xor_sse2(dst: &mut [u8], src: &[u8]) {
        const W: usize = 16;
        let len = src.len();
        let mut i = 0;
        while i + W <= len {
            // SAFETY: i + 16 <= len for both slices (equal lengths,
            // asserted by the caller); loadu/storeu need no alignment.
            unsafe {
                let s = _mm_loadu_si128(src.as_ptr().add(i) as *const __m128i);
                let d = dst.as_mut_ptr().add(i) as *mut __m128i;
                _mm_storeu_si128(d, _mm_xor_si128(_mm_loadu_si128(d as *const __m128i), s));
            }
            i += W;
        }
        super::scalar_xor(&mut dst[i..], &src[i..]);
    }

    /// `dst ^= src` over 32-byte lanes (`vpxor`).
    ///
    /// # Safety
    /// CPU must support AVX2 (runtime-detected by the dispatcher).
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn xor_avx2(dst: &mut [u8], src: &[u8]) {
        const W: usize = 32;
        let len = src.len();
        let mut i = 0;
        while i + W <= len {
            // SAFETY: i + 32 <= len for both slices (equal lengths,
            // asserted by the caller); loadu/storeu need no alignment.
            unsafe {
                let s = _mm256_loadu_si256(src.as_ptr().add(i) as *const __m256i);
                let d = dst.as_mut_ptr().add(i) as *mut __m256i;
                _mm256_storeu_si256(
                    d,
                    _mm256_xor_si256(_mm256_loadu_si256(d as *const __m256i), s),
                );
            }
            i += W;
        }
        super::scalar_xor(&mut dst[i..], &src[i..]);
    }

    /// `dst ?= c·src` over 16-byte lanes.
    ///
    /// # Safety
    /// CPU must support SSSE3 (runtime-detected by the dispatcher).
    #[target_feature(enable = "ssse3")]
    pub(super) unsafe fn mul_ssse3<const ACC: bool>(c: u8, src: &[u8], dst: &mut [u8]) {
        const W: usize = 16;
        let len = src.len();
        // SAFETY: NIB_* rows are 16 bytes, exactly one __m128i.
        let lo_t = unsafe { _mm_loadu_si128(NIB_LO[c as usize].as_ptr() as *const __m128i) };
        let hi_t = unsafe { _mm_loadu_si128(NIB_HI[c as usize].as_ptr() as *const __m128i) };
        let mask = _mm_set1_epi8(0x0F);
        let mut i = 0;
        while i + W <= len {
            // SAFETY: i + 16 <= len for both slices (equal lengths,
            // asserted by the caller); loadu/storeu need no alignment.
            unsafe {
                let s = _mm_loadu_si128(src.as_ptr().add(i) as *const __m128i);
                let lo = _mm_shuffle_epi8(lo_t, _mm_and_si128(s, mask));
                let hi = _mm_shuffle_epi8(hi_t, _mm_and_si128(_mm_srli_epi64(s, 4), mask));
                let mut prod = _mm_xor_si128(lo, hi);
                let d = dst.as_mut_ptr().add(i) as *mut __m128i;
                if ACC {
                    prod = _mm_xor_si128(prod, _mm_loadu_si128(d as *const __m128i));
                }
                _mm_storeu_si128(d, prod);
            }
            i += W;
        }
        scalar::<ACC>(c, &src[i..], &mut dst[i..]);
    }

    /// `dst ?= c·src` over 32-byte lanes.
    ///
    /// # Safety
    /// CPU must support AVX2 (runtime-detected by the dispatcher).
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn mul_avx2<const ACC: bool>(c: u8, src: &[u8], dst: &mut [u8]) {
        const W: usize = 32;
        let len = src.len();
        // SAFETY: NIB_* rows are 16 bytes, exactly one __m128i; the
        // broadcast replicates the table into both 128-bit halves because
        // vpshufb shuffles within each half independently.
        let lo_t = unsafe {
            _mm256_broadcastsi128_si256(_mm_loadu_si128(
                NIB_LO[c as usize].as_ptr() as *const __m128i
            ))
        };
        let hi_t = unsafe {
            _mm256_broadcastsi128_si256(_mm_loadu_si128(
                NIB_HI[c as usize].as_ptr() as *const __m128i
            ))
        };
        let mask = _mm256_set1_epi8(0x0F);
        let mut i = 0;
        while i + W <= len {
            // SAFETY: i + 32 <= len for both slices (equal lengths,
            // asserted by the caller); loadu/storeu need no alignment.
            unsafe {
                let s = _mm256_loadu_si256(src.as_ptr().add(i) as *const __m256i);
                let lo = _mm256_shuffle_epi8(lo_t, _mm256_and_si256(s, mask));
                let hi =
                    _mm256_shuffle_epi8(hi_t, _mm256_and_si256(_mm256_srli_epi64(s, 4), mask));
                let mut prod = _mm256_xor_si256(lo, hi);
                let d = dst.as_mut_ptr().add(i) as *mut __m256i;
                if ACC {
                    prod = _mm256_xor_si256(prod, _mm256_loadu_si256(d as *const __m256i));
                }
                _mm256_storeu_si256(d, prod);
            }
            i += W;
        }
        scalar::<ACC>(c, &src[i..], &mut dst[i..]);
    }
}

#[cfg(target_arch = "aarch64")]
mod neon {
    //! NEON split-nibble kernel. Same three soundness invariants as the
    //! x86 module: runtime-detected ISA, vector body bounded by
    //! `i + 16 <= len` with a safe scalar tail, and non-overlapping
    //! `&`/`&mut` slices. `vld1q`/`vst1q` have no alignment requirement.

    use super::scalar;
    use crate::tables::{NIB_HI, NIB_LO};
    use core::arch::aarch64::*;

    /// `dst ^= src` over 16-byte lanes (`eor`).
    ///
    /// # Safety
    /// CPU must support NEON (runtime-detected by the dispatcher).
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn xor_neon(dst: &mut [u8], src: &[u8]) {
        const W: usize = 16;
        let len = src.len();
        let mut i = 0;
        while i + W <= len {
            // SAFETY: i + 16 <= len for both slices (equal lengths,
            // asserted by the caller).
            unsafe {
                let s = vld1q_u8(src.as_ptr().add(i));
                let d = vld1q_u8(dst.as_ptr().add(i));
                vst1q_u8(dst.as_mut_ptr().add(i), veorq_u8(d, s));
            }
            i += W;
        }
        super::scalar_xor(&mut dst[i..], &src[i..]);
    }

    /// `dst ?= c·src` over 16-byte lanes.
    ///
    /// # Safety
    /// CPU must support NEON (runtime-detected by the dispatcher; NEON is
    /// baseline on AArch64 but the dispatcher checks anyway).
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn mul_neon<const ACC: bool>(c: u8, src: &[u8], dst: &mut [u8]) {
        const W: usize = 16;
        let len = src.len();
        // SAFETY: NIB_* rows are 16 bytes, exactly one uint8x16_t.
        let lo_t = unsafe { vld1q_u8(NIB_LO[c as usize].as_ptr()) };
        let hi_t = unsafe { vld1q_u8(NIB_HI[c as usize].as_ptr()) };
        let mask = vdupq_n_u8(0x0F);
        let mut i = 0;
        while i + W <= len {
            // SAFETY: i + 16 <= len for both slices (equal lengths,
            // asserted by the caller).
            unsafe {
                let s = vld1q_u8(src.as_ptr().add(i));
                let lo = vqtbl1q_u8(lo_t, vandq_u8(s, mask));
                let hi = vqtbl1q_u8(hi_t, vshrq_n_u8(s, 4));
                let mut prod = veorq_u8(lo, hi);
                if ACC {
                    prod = veorq_u8(prod, vld1q_u8(dst.as_ptr().add(i)));
                }
                vst1q_u8(dst.as_mut_ptr().add(i), prod);
            }
            i += W;
        }
        scalar::<ACC>(c, &src[i..], &mut dst[i..]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn active_tier_is_available_and_cached() {
        let t = active_tier();
        assert!(available_tiers().contains(&t));
        assert_eq!(active_tier(), t, "detection must be cached and stable");
    }

    #[test]
    fn available_tiers_start_with_scalar_in_speed_order() {
        let tiers = available_tiers();
        assert_eq!(tiers[0], KernelTier::Scalar);
        assert!(tiers.windows(2).all(|w| w[0] < w[1]), "{tiers:?}");
    }

    #[test]
    fn tier_names_are_stable() {
        for (t, n) in [
            (KernelTier::Scalar, "scalar"),
            (KernelTier::Ssse3, "ssse3"),
            (KernelTier::Avx2, "avx2"),
            (KernelTier::Neon, "neon"),
        ] {
            assert_eq!(t.name(), n);
            assert_eq!(format!("{t}"), n);
        }
    }

    #[test]
    fn every_available_tier_matches_reference() {
        // Small smoke check here; the exhaustive ragged/unaligned sweep
        // lives in tests/kernel_equivalence.rs.
        let src: Vec<u8> = (0..100u8).map(|i| i.wrapping_mul(37)).collect();
        for tier in available_tiers() {
            for c in [0u8, 1, 2, 0x53, 0xFF] {
                let mut dst = vec![0xAAu8; src.len()];
                mul_slice_on(tier, c, &src, &mut dst);
                for (d, s) in dst.iter().zip(&src) {
                    assert_eq!(*d, crate::mul_reference(c, *s), "{tier} c={c}");
                }
                let mut acc = src.clone();
                mul_acc_slice_on(tier, c, &src, &mut acc);
                for (a, s) in acc.iter().zip(&src) {
                    assert_eq!(*a, s ^ crate::mul_reference(c, *s), "{tier} c={c}");
                }
            }
        }
    }

    #[test]
    fn every_available_tier_xors_identically() {
        // Ragged lengths straddle the 16/32-byte vector widths so every
        // tier exercises both its vector body and its scalar tail.
        for len in [0usize, 1, 7, 8, 15, 16, 17, 31, 32, 33, 100, 257] {
            let src: Vec<u8> = (0..len).map(|i| (i as u8).wrapping_mul(37)).collect();
            let base: Vec<u8> = (0..len).map(|i| (i as u8).wrapping_add(113)).collect();
            let want: Vec<u8> = base.iter().zip(&src).map(|(d, s)| d ^ s).collect();
            for tier in available_tiers() {
                let mut dst = base.clone();
                xor_slice_on(tier, &mut dst, &src);
                assert_eq!(dst, want, "{tier} len={len}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn explicit_tier_checks_lengths() {
        mul_slice_on(KernelTier::Scalar, 3, &[0u8; 4], &mut [0u8; 5]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn explicit_tier_xor_checks_lengths() {
        xor_slice_on(KernelTier::Scalar, &mut [0u8; 4], &[0u8; 5]);
    }
}
