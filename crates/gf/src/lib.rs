//! Arithmetic over the Galois field GF(2^8) and bulk slice kernels.
//!
//! This crate provides the finite-field substrate for the Reed-Solomon codec
//! used throughout the RPR repository. It mirrors what the paper obtains from
//! the Jerasure library: `w = 8` Galois-field arithmetic with the primitive
//! polynomial `x^8 + x^4 + x^3 + x^2 + 1` (`0x11D`), the same polynomial
//! Jerasure uses for `w = 8`.
//!
//! Two API layers are exposed:
//!
//! * scalar ops on [`Gf8`] / raw `u8` ([`add`], [`mul`], [`div`], [`inv`],
//!   [`pow`], [`exp`], [`log`]) used by matrix algebra and plan construction;
//! * bulk kernels ([`xor_slice`], [`mul_slice`], [`mul_acc_slice`],
//!   [`lin_comb`], [`lin_comb_multi`]) used on block-sized buffers.
//!   `xor_slice` runs at memory bandwidth (wide `u64` lanes); the multiply
//!   kernels are runtime-dispatched through [`kernels`] to SSSE3/AVX2
//!   `pshufb` or NEON `tbl` split-nibble SIMD, with a per-coefficient
//!   256-entry table row as the mandatory scalar fallback
//!   (`RPR_FORCE_SCALAR=1` pins it).
//!
//! On the *scalar* fallback a general-coefficient fold runs roughly 10×
//! slower than an XOR fold — the physical origin of the paper's
//! `t_wd ≈ 4 × t_nd` observation (§3.3), which folds in per-fold fixed
//! costs. With the SIMD kernels active the gap nearly closes: measured on
//! the AVX2 reference host (see `docs/PERFORMANCE.md` and the committed
//! `BENCH_*.json` trajectory), `mul_acc_slice` reaches ≈ 21.5 GB/s on
//! 256 KiB buffers — ≈ 0.8× the 27.6 GB/s `xor_slice` rate and ≈ 10×
//! the ≈ 2.1 GB/s scalar multiply path — so chunked repair pipelines
//! stop being CPU-bound and the paper's ratio survives only as a
//! *modeled* cost on hosts without SIMD.
//!
//! All tables are computed at compile time (`const fn`), so there is no
//! runtime initialization or locking; kernel detection happens once at
//! first use and is cached.
//!
//! ```
//! use rpr_gf::{mul, inv, lin_comb};
//!
//! // Scalar field arithmetic.
//! let a = 0x53u8;
//! assert_eq!(mul(a, inv(a)), 1);
//!
//! // Bulk partial decoding: out = 3·x ⊕ 1·y.
//! let (x, y) = ([1u8, 2, 3], [4u8, 5, 6]);
//! let mut out = [0u8; 3];
//! lin_comb(&[3, 1], &[&x, &y], &mut out);
//! assert_eq!(out[0], mul(3, 1) ^ 4);
//! ```

// Unsafe is denied everywhere except the SIMD bodies in `kernels`, which
// opt back in locally and document their safety contracts.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod kernels;
pub mod tables;

pub use kernels::{active_tier, available_tiers, xor_slice_on, KernelTier};
pub use tables::{EXP, LOG};

/// The primitive polynomial for GF(2^8): `x^8 + x^4 + x^3 + x^2 + 1`.
pub const PRIMITIVE_POLY: u16 = 0x11D;

/// Number of elements in the field.
pub const FIELD_SIZE: usize = 256;

/// The multiplicative order of the field (number of nonzero elements).
pub const ORDER: usize = 255;

/// An element of GF(2^8).
///
/// A thin newtype over `u8`; arithmetic is exposed both through methods and
/// through the free functions in this crate (which operate on raw `u8` and
/// are preferred in hot loops).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Gf8(pub u8);

impl core::fmt::Debug for Gf8 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Gf8({:#04x})", self.0)
    }
}

impl core::fmt::Display for Gf8 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{:#04x}", self.0)
    }
}

#[allow(clippy::should_implement_trait)] // methods mirror the operator impls below
impl Gf8 {
    /// The additive identity.
    pub const ZERO: Gf8 = Gf8(0);
    /// The multiplicative identity.
    pub const ONE: Gf8 = Gf8(1);
    /// The canonical generator (`x`, i.e. 2) of the multiplicative group.
    pub const GENERATOR: Gf8 = Gf8(2);

    /// Field addition (XOR).
    #[inline]
    pub fn add(self, rhs: Gf8) -> Gf8 {
        Gf8(self.0 ^ rhs.0)
    }

    /// Field subtraction — identical to addition in characteristic 2.
    #[inline]
    pub fn sub(self, rhs: Gf8) -> Gf8 {
        self.add(rhs)
    }

    /// Field multiplication.
    #[inline]
    pub fn mul(self, rhs: Gf8) -> Gf8 {
        Gf8(mul(self.0, rhs.0))
    }

    /// Field division.
    ///
    /// # Panics
    /// Panics if `rhs` is zero.
    #[inline]
    pub fn div(self, rhs: Gf8) -> Gf8 {
        Gf8(div(self.0, rhs.0))
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    /// Panics if `self` is zero.
    #[inline]
    pub fn inv(self) -> Gf8 {
        Gf8(inv(self.0))
    }

    /// Raise to an integer power (with `x^0 == 1`, including `0^0 == 1`).
    #[inline]
    pub fn pow(self, e: usize) -> Gf8 {
        Gf8(pow(self.0, e))
    }

    /// True if this is the zero element.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl core::ops::Add for Gf8 {
    type Output = Gf8;
    #[inline]
    fn add(self, rhs: Gf8) -> Gf8 {
        Gf8::add(self, rhs)
    }
}

impl core::ops::Sub for Gf8 {
    type Output = Gf8;
    #[inline]
    fn sub(self, rhs: Gf8) -> Gf8 {
        Gf8::sub(self, rhs)
    }
}

impl core::ops::Mul for Gf8 {
    type Output = Gf8;
    #[inline]
    fn mul(self, rhs: Gf8) -> Gf8 {
        Gf8::mul(self, rhs)
    }
}

impl core::ops::Div for Gf8 {
    type Output = Gf8;
    #[inline]
    fn div(self, rhs: Gf8) -> Gf8 {
        Gf8::div(self, rhs)
    }
}

impl From<u8> for Gf8 {
    #[inline]
    fn from(v: u8) -> Gf8 {
        Gf8(v)
    }
}

impl From<Gf8> for u8 {
    #[inline]
    fn from(v: Gf8) -> u8 {
        v.0
    }
}

/// Field addition on raw bytes (XOR).
#[inline]
pub fn add(a: u8, b: u8) -> u8 {
    a ^ b
}

/// Field multiplication on raw bytes via log/exp tables.
#[inline]
pub fn mul(a: u8, b: u8) -> u8 {
    if a == 0 || b == 0 {
        return 0;
    }
    // LOG entries are < 255 and their sum is < 510; EXP has 512 entries so
    // no modulo reduction is needed.
    EXP[LOG[a as usize] as usize + LOG[b as usize] as usize]
}

/// Field division on raw bytes.
///
/// # Panics
/// Panics if `b == 0`.
#[inline]
pub fn div(a: u8, b: u8) -> u8 {
    assert!(b != 0, "division by zero in GF(2^8)");
    if a == 0 {
        return 0;
    }
    let diff = LOG[a as usize] as isize - LOG[b as usize] as isize;
    let idx = diff.rem_euclid(ORDER as isize) as usize;
    EXP[idx]
}

/// Multiplicative inverse of a raw byte.
///
/// # Panics
/// Panics if `a == 0`.
#[inline]
pub fn inv(a: u8) -> u8 {
    assert!(a != 0, "zero has no inverse in GF(2^8)");
    EXP[ORDER - LOG[a as usize] as usize]
}

/// `a^e` with the convention `a^0 == 1` (also for `a == 0`).
#[inline]
pub fn pow(a: u8, e: usize) -> u8 {
    if e == 0 {
        return 1;
    }
    if a == 0 {
        return 0;
    }
    // a^e = g^(log(a) * e mod 255); reduce e first to avoid overflow.
    EXP[(LOG[a as usize] as usize * (e % ORDER)) % ORDER]
}

/// Discrete logarithm base the canonical generator.
///
/// # Panics
/// Panics if `a == 0`.
#[inline]
pub fn log(a: u8) -> u8 {
    assert!(a != 0, "log of zero in GF(2^8)");
    LOG[a as usize]
}

/// `GENERATOR^e`.
#[inline]
pub fn exp(e: usize) -> u8 {
    EXP[e % ORDER]
}

/// Carry-less "schoolbook" multiply with polynomial reduction.
///
/// This is the reference implementation used to generate and cross-check the
/// tables; it is slow and exists for verification only.
pub fn mul_reference(a: u8, b: u8) -> u8 {
    tables::mul_slow(a, b)
}

// ---------------------------------------------------------------------------
// Bulk slice kernels
// ---------------------------------------------------------------------------

/// `dst[i] ^= src[i]` over whole slices, runtime-dispatched to the
/// fastest available kernel (see [`kernels`]).
///
/// This is the "no decoding matrix" fast path of the paper (eq. 6): pure XOR
/// accumulation at close to memory bandwidth. SIMD tiers run one
/// `pxor`/`vpxor`/`eor` per vector; the scalar tier XORs wide `u64`
/// lanes, so even unoptimized builds never fall back to a
/// byte-at-a-time loop. Output is bit-identical across kernels.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn xor_slice(dst: &mut [u8], src: &[u8]) {
    assert_eq!(dst.len(), src.len(), "xor_slice: length mismatch");
    kernels::xor_dispatch(dst, src);
}

/// `dst[i] = c * src[i]`, runtime-dispatched to the fastest available
/// kernel (see [`kernels`]).
///
/// Coefficients `0` and `1` take allocation-free fast paths (`fill` /
/// `copy_from_slice`); every other coefficient runs the split-nibble SIMD
/// kernel when the CPU has one, the 256-entry table row otherwise. Output
/// is bit-identical across kernels.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn mul_slice(c: u8, src: &[u8], dst: &mut [u8]) {
    assert_eq!(dst.len(), src.len(), "mul_slice: length mismatch");
    match c {
        0 => dst.fill(0),
        1 => dst.copy_from_slice(src),
        _ => kernels::mul_dispatch::<false>(c, src, dst),
    }
}

/// `dst[i] ^= c * src[i]` — the fused multiply-accumulate kernel used by
/// encoding, decoding and partial decoding, runtime-dispatched like
/// [`mul_slice`].
///
/// Coefficient `0` is a no-op and coefficient `1` degenerates to
/// [`xor_slice`]; general coefficients use the dispatched kernel. Output
/// is bit-identical across kernels.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn mul_acc_slice(c: u8, src: &[u8], dst: &mut [u8]) {
    assert_eq!(dst.len(), src.len(), "mul_acc_slice: length mismatch");
    match c {
        0 => {}
        1 => xor_slice(dst, src),
        _ => kernels::mul_dispatch::<true>(c, src, dst),
    }
}

/// Cache-block span for the multi-input combinators: big enough to
/// amortize per-span dispatch, small enough that one output span plus one
/// input span stay resident in L1/L2 while every input (or every output
/// row) is folded over it.
const CACHE_SPAN: usize = 32 * 1024;

/// Compute the linear combination `out = Σ coeffs[i] * blocks[i]`.
///
/// This is precisely a "partial decode" in the sense of the paper (§2.1.2):
/// the output is an intermediate block that can later be combined (XORed,
/// when coefficients have already been applied) with other intermediates.
///
/// The fold is *cache-blocked*: for buffers larger than one cache span the
/// inputs are folded span by span, so the output span is written `k` times
/// while hot instead of streaming the full output through cache `k` times.
///
/// # Panics
/// Panics if `coeffs.len() != blocks.len()`, if any block length differs from
/// `out`, or if `blocks` is empty.
pub fn lin_comb(coeffs: &[u8], blocks: &[&[u8]], out: &mut [u8]) {
    assert_eq!(coeffs.len(), blocks.len(), "lin_comb: arity mismatch");
    assert!(!blocks.is_empty(), "lin_comb: empty input");
    for (b, block) in blocks.iter().enumerate() {
        assert_eq!(block.len(), out.len(), "lin_comb: block {b} length");
    }
    let len = out.len();
    let mut start = 0;
    while start < len {
        let end = (start + CACHE_SPAN).min(len);
        mul_slice(coeffs[0], &blocks[0][start..end], &mut out[start..end]);
        for (&c, b) in coeffs[1..].iter().zip(&blocks[1..]) {
            mul_acc_slice(c, &b[start..end], &mut out[start..end]);
        }
        start = end;
    }
}

/// Compute several linear combinations of the same blocks at once:
/// `outs[r] = Σ_j coeff_rows[r][j] * blocks[j]` — one matrix–vector
/// product over block-sized buffers. This is the shape of a multi-row RS
/// encode (every parity row reads the same data blocks) and of a full
/// decode (every recovered row reads the same survivors).
///
/// Cache-blocked across *rows*: each input span is loaded once and folded
/// into every output row while it is still resident, instead of streaming
/// all inputs from memory once per row as repeated [`lin_comb`] calls
/// would.
///
/// Rows may contain zero coefficients (the corresponding block is skipped
/// for that row). Outputs are fully overwritten.
///
/// # Panics
/// Panics if row/block arities disagree, any buffer length differs, or
/// `blocks`/`coeff_rows` is empty.
pub fn lin_comb_multi(coeff_rows: &[&[u8]], blocks: &[&[u8]], outs: &mut [&mut [u8]]) {
    assert!(!coeff_rows.is_empty(), "lin_comb_multi: no rows");
    assert!(!blocks.is_empty(), "lin_comb_multi: empty input");
    assert_eq!(coeff_rows.len(), outs.len(), "lin_comb_multi: row arity");
    let len = outs[0].len();
    for (r, row) in coeff_rows.iter().enumerate() {
        assert_eq!(row.len(), blocks.len(), "lin_comb_multi: row {r} arity");
        assert_eq!(outs[r].len(), len, "lin_comb_multi: out {r} length");
    }
    for (b, block) in blocks.iter().enumerate() {
        assert_eq!(block.len(), len, "lin_comb_multi: block {b} length");
    }
    for out in outs.iter_mut() {
        out.fill(0);
    }
    let mut start = 0;
    while start < len {
        let end = (start + CACHE_SPAN).min(len);
        for (j, block) in blocks.iter().enumerate() {
            let span = &block[start..end];
            for (row, out) in coeff_rows.iter().zip(outs.iter_mut()) {
                mul_acc_slice(row[j], span, &mut out[start..end]);
            }
        }
        start = end;
    }
}

/// True if every coefficient equals 1, i.e. the combination is a pure XOR
/// (eq. 6 of the paper) and no Galois multiplication is needed.
pub fn is_xor_only(coeffs: &[u8]) -> bool {
    coeffs.iter().all(|&c| c == 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mul_matches_reference_exhaustively() {
        for a in 0..=255u8 {
            for b in 0..=255u8 {
                assert_eq!(mul(a, b), mul_reference(a, b), "a={a} b={b}");
            }
        }
    }

    #[test]
    fn exp_log_roundtrip() {
        for a in 1..=255u8 {
            assert_eq!(exp(log(a) as usize), a);
        }
        for e in 0..ORDER {
            assert_eq!(log(exp(e)) as usize, e);
        }
    }

    #[test]
    fn inverse_is_correct() {
        for a in 1..=255u8 {
            assert_eq!(mul(a, inv(a)), 1, "a={a}");
        }
    }

    #[test]
    #[should_panic(expected = "zero has no inverse")]
    fn inverse_of_zero_panics() {
        inv(0);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn division_by_zero_panics() {
        div(1, 0);
    }

    #[test]
    fn division_inverts_multiplication() {
        for a in 0..=255u8 {
            for b in 1..=255u8 {
                assert_eq!(div(mul(a, b), b), a, "a={a} b={b}");
            }
        }
    }

    #[test]
    fn pow_basics() {
        assert_eq!(pow(0, 0), 1);
        assert_eq!(pow(0, 5), 0);
        assert_eq!(pow(7, 0), 1);
        for a in 1..=255u8 {
            assert_eq!(pow(a, 1), a);
            assert_eq!(pow(a, 2), mul(a, a));
            assert_eq!(pow(a, ORDER), 1, "Fermat's little theorem, a={a}");
        }
    }

    #[test]
    fn generator_has_full_order() {
        let mut seen = [false; 256];
        let mut x = 1u8;
        for _ in 0..ORDER {
            assert!(!seen[x as usize], "generator order < 255");
            seen[x as usize] = true;
            x = mul(x, Gf8::GENERATOR.0);
        }
        assert_eq!(x, 1, "generator does not cycle back to 1");
    }

    #[test]
    fn gf8_operator_overloads() {
        let a = Gf8(0x53);
        let b = Gf8(0xCA);
        assert_eq!((a + b).0, 0x53 ^ 0xCA);
        assert_eq!((a - b).0, 0x53 ^ 0xCA);
        assert_eq!((a * b).0, mul(0x53, 0xCA));
        assert_eq!((a / b).0, div(0x53, 0xCA));
        assert_eq!(a.inv() * a, Gf8::ONE);
        assert_eq!(a.pow(0), Gf8::ONE);
        assert!(!a.is_zero() && Gf8::ZERO.is_zero());
        assert_eq!(u8::from(a), 0x53);
        assert_eq!(Gf8::from(0x53u8), a);
        assert_eq!(format!("{a}"), "0x53");
        assert_eq!(format!("{a:?}"), "Gf8(0x53)");
    }

    #[test]
    fn xor_slice_basic_and_remainder() {
        // Length 19 exercises both the u64 body and the tail.
        let mut dst: Vec<u8> = (0..19).collect();
        let src: Vec<u8> = (100..119).collect();
        let expect: Vec<u8> = dst.iter().zip(&src).map(|(a, b)| a ^ b).collect();
        xor_slice(&mut dst, &src);
        assert_eq!(dst, expect);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn xor_slice_length_mismatch_panics() {
        xor_slice(&mut [0u8; 3], &[0u8; 4]);
    }

    #[test]
    fn mul_slice_special_coefficients() {
        let src = [1u8, 2, 3, 255];
        let mut dst = [9u8; 4];
        mul_slice(0, &src, &mut dst);
        assert_eq!(dst, [0; 4]);
        mul_slice(1, &src, &mut dst);
        assert_eq!(dst, src);
        mul_slice(7, &src, &mut dst);
        let expect: Vec<u8> = src.iter().map(|&s| mul(7, s)).collect();
        assert_eq!(dst.to_vec(), expect);
    }

    #[test]
    fn mul_acc_slice_accumulates() {
        let src = [10u8, 20, 30];
        let mut dst = [1u8, 2, 3];
        let snapshot = dst;
        mul_acc_slice(0, &src, &mut dst);
        assert_eq!(dst, snapshot, "c=0 must be a no-op");
        mul_acc_slice(3, &src, &mut dst);
        let expect: Vec<u8> = snapshot
            .iter()
            .zip(&src)
            .map(|(&d, &s)| d ^ mul(3, s))
            .collect();
        assert_eq!(dst.to_vec(), expect);
    }

    #[test]
    fn lin_comb_matches_scalar_math() {
        let b0 = [1u8, 2, 3, 4];
        let b1 = [5u8, 6, 7, 8];
        let b2 = [9u8, 10, 11, 12];
        let coeffs = [3u8, 1, 200];
        let mut out = [0u8; 4];
        lin_comb(&coeffs, &[&b0, &b1, &b2], &mut out);
        for i in 0..4 {
            let want = mul(3, b0[i]) ^ b1[i] ^ mul(200, b2[i]);
            assert_eq!(out[i], want);
        }
    }

    #[test]
    fn lin_comb_cache_blocking_matches_unblocked_math() {
        // Longer than one CACHE_SPAN (plus a ragged tail) so the blocked
        // loop takes more than one span.
        let len = 3 * super::CACHE_SPAN + 17;
        let mk = |seed: u8| -> Vec<u8> {
            (0..len)
                .map(|i| (i as u8).wrapping_mul(31).wrapping_add(seed))
                .collect()
        };
        let blocks = [mk(1), mk(2), mk(3)];
        let refs: Vec<&[u8]> = blocks.iter().map(|b| b.as_slice()).collect();
        let coeffs = [9u8, 1, 0xC3];
        let mut out = vec![0u8; len];
        lin_comb(&coeffs, &refs, &mut out);
        for i in [0, 1, super::CACHE_SPAN - 1, super::CACHE_SPAN, len - 1] {
            let want = mul(9, blocks[0][i]) ^ blocks[1][i] ^ mul(0xC3, blocks[2][i]);
            assert_eq!(out[i], want, "byte {i}");
        }
    }

    #[test]
    fn lin_comb_multi_matches_per_row_lin_comb() {
        let len = super::CACHE_SPAN + 41;
        let mk = |seed: u8| -> Vec<u8> {
            (0..len)
                .map(|i| (i as u8).wrapping_mul(113).wrapping_add(seed))
                .collect()
        };
        let blocks = [mk(5), mk(6), mk(7), mk(8)];
        let refs: Vec<&[u8]> = blocks.iter().map(|b| b.as_slice()).collect();
        // Includes a zero coefficient and an all-ones (XOR) row.
        let rows: [&[u8]; 3] = [&[1, 1, 1, 1], &[3, 0, 7, 200], &[0, 0, 0, 5]];
        let mut outs: Vec<Vec<u8>> = vec![vec![0xEE; len]; 3];
        {
            let mut out_refs: Vec<&mut [u8]> =
                outs.iter_mut().map(|o| o.as_mut_slice()).collect();
            lin_comb_multi(&rows, &refs, &mut out_refs);
        }
        for (r, row) in rows.iter().enumerate() {
            let mut want = vec![0u8; len];
            lin_comb(row, &refs, &mut want);
            assert_eq!(outs[r], want, "row {r}");
        }
    }

    #[test]
    #[should_panic(expected = "row 1 arity")]
    fn lin_comb_multi_rejects_ragged_rows() {
        let b = [1u8, 2, 3];
        let mut o1 = [0u8; 3];
        let mut o2 = [0u8; 3];
        let rows: [&[u8]; 2] = [&[1], &[1, 2]];
        lin_comb_multi(&rows, &[&b], &mut [&mut o1, &mut o2]);
    }

    #[test]
    fn is_xor_only_detection() {
        assert!(is_xor_only(&[1, 1, 1]));
        assert!(!is_xor_only(&[1, 2, 1]));
        assert!(is_xor_only(&[]), "empty combination is vacuously XOR-only");
    }
}
