//! Compile-time lookup tables for GF(2^8) with primitive polynomial `0x11D`.
//!
//! * [`EXP`]: `EXP[i] = g^i` for `i in 0..512` (doubled so that
//!   `EXP[log a + log b]` needs no modulo);
//! * [`LOG`]: `LOG[a] = log_g(a)` for `a in 1..256` (`LOG[0]` is a sentinel
//!   and must never be read — the public API guards all accesses);
//! * [`MUL`]: the full 256×256 multiplication table, laid out row-major so a
//!   single row serves as the per-coefficient lookup used by the slice
//!   kernels;
//! * [`NIB_LO`] / [`NIB_HI`]: the split-nibble tables behind the SIMD
//!   kernels. Any byte `x = (hi << 4) | lo` factors the product as
//!   `c·x = c·lo ⊕ c·(hi << 4)` because multiplication distributes over
//!   XOR, so two 16-entry lookups (`NIB_LO[c][lo]` and `NIB_HI[c][hi]`)
//!   replace one 256-entry lookup — and a 16-entry table fits exactly into
//!   one `pshufb` / `vtbl` shuffle register.
//!
//! Everything is produced by `const fn` evaluation from the bit-level
//! reference multiplier [`mul_slow`], so the tables cannot drift from the
//! field definition.

use crate::PRIMITIVE_POLY;

/// Bit-by-bit carry-less multiplication with reduction by the primitive
/// polynomial. Reference semantics for the whole field.
pub const fn mul_slow(a: u8, b: u8) -> u8 {
    let mut a = a as u16;
    let mut b = b as u16;
    let mut r: u16 = 0;
    while b != 0 {
        if b & 1 != 0 {
            r ^= a;
        }
        b >>= 1;
        a <<= 1;
        if a & 0x100 != 0 {
            a ^= PRIMITIVE_POLY;
        }
    }
    r as u8
}

const fn build_exp() -> [u8; 512] {
    let mut exp = [0u8; 512];
    let mut x: u8 = 1;
    let mut i = 0;
    while i < 255 {
        exp[i] = x;
        exp[i + 255] = x;
        x = mul_slow(x, 2);
        i += 1;
    }
    // Indices 510/511 are never referenced (max log sum is 508) but keep the
    // table total: g^510 = g^0, g^511 = g^1.
    exp[510] = 1;
    exp[511] = 2;
    exp
}

const fn build_log(exp: &[u8; 512]) -> [u8; 256] {
    let mut log = [0u8; 256];
    let mut i = 0;
    while i < 255 {
        log[exp[i] as usize] = i as u8;
        i += 1;
    }
    log
}

const fn build_mul() -> [[u8; 256]; 256] {
    let mut t = [[0u8; 256]; 256];
    let mut a = 0usize;
    while a < 256 {
        let mut b = 0usize;
        while b < 256 {
            t[a][b] = mul_slow(a as u8, b as u8);
            b += 1;
        }
        a += 1;
    }
    t
}

/// Exponentiation table: `EXP[i] = GENERATOR^i`, doubled to 512 entries.
pub static EXP: [u8; 512] = build_exp();

/// Logarithm table: `LOG[a] = log(a)` for nonzero `a`; `LOG[0]` is unused.
pub static LOG: [u8; 256] = {
    let exp = build_exp();
    build_log(&exp)
};

/// Full multiplication table, row-major: `MUL[a][b] = a * b`.
pub static MUL: [[u8; 256]; 256] = build_mul();

const fn build_nib(shift: u8) -> [[u8; 16]; 256] {
    let mut t = [[0u8; 16]; 256];
    let mut c = 0usize;
    while c < 256 {
        let mut x = 0usize;
        while x < 16 {
            t[c][x] = mul_slow(c as u8, (x as u8) << shift);
            x += 1;
        }
        c += 1;
    }
    t
}

/// Low-nibble product table: `NIB_LO[c][x] = c * x` for `x in 0..16`.
///
/// Together with [`NIB_HI`] this is the shuffle payload of the SIMD
/// kernels: `c·b = NIB_LO[c][b & 0xF] ⊕ NIB_HI[c][b >> 4]`.
pub static NIB_LO: [[u8; 16]; 256] = build_nib(0);

/// High-nibble product table: `NIB_HI[c][x] = c * (x << 4)` for `x in 0..16`.
pub static NIB_HI: [[u8; 16]; 256] = build_nib(4);

/// The 256-entry multiplication row for coefficient `c`:
/// `mul_row(c)[x] == c * x`.
#[inline]
pub fn mul_row(c: u8) -> &'static [u8; 256] {
    &MUL[c as usize]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exp_table_is_periodic() {
        for i in 0..255 {
            assert_eq!(EXP[i], EXP[i + 255]);
        }
        assert_eq!(EXP[0], 1);
        assert_eq!(EXP[1], 2);
    }

    #[test]
    fn exp_covers_all_nonzero_elements() {
        let mut seen = [false; 256];
        for i in 0..255 {
            seen[EXP[i] as usize] = true;
        }
        assert!(!seen[0]);
        assert!(seen[1..].iter().all(|&s| s), "EXP must enumerate GF* fully");
    }

    #[test]
    fn mul_table_matches_slow_path() {
        // Spot-check a grid; the exhaustive cross-check lives in lib.rs.
        for a in (0..256).step_by(17) {
            for b in (0..256).step_by(13) {
                assert_eq!(MUL[a][b], mul_slow(a as u8, b as u8));
            }
        }
    }

    #[test]
    fn mul_row_is_table_row() {
        assert_eq!(mul_row(7)[13], MUL[7][13]);
    }

    #[test]
    fn nibble_tables_recompose_full_products() {
        for c in 0..256usize {
            for b in 0..256usize {
                let split = NIB_LO[c][b & 0x0F] ^ NIB_HI[c][b >> 4];
                assert_eq!(split, MUL[c][b], "c={c} b={b}");
            }
        }
    }

    #[test]
    fn mul_slow_agrees_with_known_vectors() {
        // Known products under 0x11D.
        assert_eq!(mul_slow(0x02, 0x80), 0x1D);
        assert_eq!(mul_slow(0xFF, 0x01), 0xFF);
        assert_eq!(mul_slow(0x00, 0xAB), 0x00);
        // Commutativity spot check.
        assert_eq!(mul_slow(0x53, 0xCA), mul_slow(0xCA, 0x53));
    }
}
