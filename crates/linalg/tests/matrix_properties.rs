//! Property-based tests for matrix algebra over GF(2^8) and the MDS
//! constructions used by the codec.

use proptest::prelude::*;
use rpr_linalg::{cauchy, is_superregular, rs_coding_matrix, vandermonde, Matrix};

/// Strategy: a random square matrix with dimension 1..=6.
fn square_matrix() -> impl Strategy<Value = Matrix> {
    (1usize..=6).prop_flat_map(|n| {
        proptest::collection::vec(any::<u8>(), n * n).prop_map(move |data| {
            let mut m = Matrix::zero(n, n);
            for i in 0..n {
                for j in 0..n {
                    m[(i, j)] = data[i * n + j];
                }
            }
            m
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn inverse_roundtrip(m in square_matrix()) {
        if let Some(inv) = m.inverse() {
            let n = m.rows();
            prop_assert_eq!(m.mul(&inv), Matrix::identity(n));
            prop_assert_eq!(inv.mul(&m), Matrix::identity(n));
            prop_assert!(m.determinant() != 0);
            prop_assert_eq!(m.rank(), n);
        } else {
            prop_assert_eq!(m.determinant(), 0);
            prop_assert!(m.rank() < m.rows());
        }
    }

    #[test]
    fn determinant_is_multiplicative(a in square_matrix(), seed: u64) {
        // Build b with the same dimension as a from the seed.
        let n = a.rows();
        let mut b = Matrix::zero(n, n);
        let mut s = seed;
        for i in 0..n {
            for j in 0..n {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                b[(i, j)] = (s >> 33) as u8;
            }
        }
        let lhs = a.mul(&b).determinant();
        let rhs = rpr_gf::mul(a.determinant(), b.determinant());
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn matrix_multiplication_is_associative(a in square_matrix(), s1: u64, s2: u64) {
        let n = a.rows();
        let gen = |seed: u64| {
            let mut m = Matrix::zero(n, n);
            let mut s = seed | 1;
            for i in 0..n {
                for j in 0..n {
                    s = s.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(i as u64 + j as u64);
                    m[(i, j)] = (s >> 40) as u8;
                }
            }
            m
        };
        let b = gen(s1);
        let c = gen(s2);
        prop_assert_eq!(a.mul(&b).mul(&c), a.mul(&b.mul(&c)));
    }

    #[test]
    fn any_n_rows_of_rs_generator_are_invertible(
        (n, k) in prop_oneof![Just((4usize, 2usize)), Just((6, 2)), Just((6, 3)), Just((8, 4))],
        seed: u64,
    ) {
        // Draw a random survivor set of size n from the n+k generator rows
        // and check invertibility — the operational MDS property used by
        // every decode in the repository.
        let generator = Matrix::identity(n).vstack(&rs_coding_matrix(n, k));
        let mut rows: Vec<usize> = (0..n + k).collect();
        let mut s = seed;
        // Fisher-Yates with an inline LCG for determinism under proptest.
        for i in (1..rows.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            rows.swap(i, (s >> 33) as usize % (i + 1));
        }
        rows.truncate(n);
        rows.sort_unstable();
        prop_assert!(generator.select_rows(&rows).is_invertible(),
            "survivor rows {:?} of RS({},{}) must decode", rows, n, k);
    }
}

#[test]
fn vandermonde_any_rows_invertible_small() {
    // For the 8x4 Vandermonde matrix, every 4-row selection is invertible.
    let v = vandermonde(8, 4);
    rpr_linalg::for_each_combination(8, 4, |sel| {
        assert!(
            v.select_rows(sel).is_invertible(),
            "vandermonde rows {sel:?}"
        );
    });
}

#[test]
fn cauchy_superregularity_exhaustive_small() {
    for k in 1..=3 {
        for n in 1..=6 {
            assert!(is_superregular(&cauchy(k, n)), "cauchy {k}x{n}");
        }
    }
}
