//! Dense row-major matrix over GF(2^8) with the operations needed by an RS
//! codec: multiplication, Gauss-Jordan inversion, determinant, rank, row/col
//! elementary operations and sub-matrix selection.

use rpr_gf as gf;

/// A dense `rows × cols` matrix of GF(2^8) elements.
#[derive(Clone, PartialEq, Eq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<u8>,
}

impl core::fmt::Debug for Matrix {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            write!(f, "  ")?;
            for j in 0..self.cols {
                write!(f, "{:3} ", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

impl core::ops::Index<(usize, usize)> for Matrix {
    type Output = u8;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &u8 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl core::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut u8 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl Matrix {
    /// The all-zero `rows × cols` matrix.
    pub fn zero(rows: usize, cols: usize) -> Matrix {
        assert!(rows > 0 && cols > 0, "Matrix: dimensions must be positive");
        Matrix {
            rows,
            cols,
            data: vec![0; rows * cols],
        }
    }

    /// The `n × n` identity matrix.
    pub fn identity(n: usize) -> Matrix {
        let mut m = Matrix::zero(n, n);
        for i in 0..n {
            m[(i, i)] = 1;
        }
        m
    }

    /// Build a matrix from a row-major nested slice.
    ///
    /// # Panics
    /// Panics if rows are empty or ragged.
    pub fn from_rows(rows: &[&[u8]]) -> Matrix {
        assert!(!rows.is_empty(), "Matrix::from_rows: no rows");
        let cols = rows[0].len();
        assert!(cols > 0, "Matrix::from_rows: empty rows");
        assert!(
            rows.iter().all(|r| r.len() == cols),
            "Matrix::from_rows: ragged rows"
        );
        Matrix {
            rows: rows.len(),
            cols,
            data: rows.concat(),
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[u8] {
        assert!(i < self.rows, "Matrix::row: out of range");
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Borrow the raw row-major data.
    #[inline]
    pub fn as_bytes(&self) -> &[u8] {
        &self.data
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn mul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "Matrix::mul: dimension mismatch");
        let mut out = Matrix::zero(self.rows, rhs.cols);
        for i in 0..self.rows {
            for l in 0..self.cols {
                let a = self[(i, l)];
                if a == 0 {
                    continue;
                }
                let row = gf::tables::mul_row(a);
                for j in 0..rhs.cols {
                    out[(i, j)] ^= row[rhs[(l, j)] as usize];
                }
            }
        }
        out
    }

    /// Multiply by a column vector.
    ///
    /// # Panics
    /// Panics if `v.len() != cols`.
    pub fn mul_vec(&self, v: &[u8]) -> Vec<u8> {
        assert_eq!(v.len(), self.cols, "Matrix::mul_vec: dimension mismatch");
        (0..self.rows)
            .map(|i| {
                self.row(i)
                    .iter()
                    .zip(v)
                    .fold(0u8, |acc, (&a, &b)| acc ^ gf::mul(a, b))
            })
            .collect()
    }

    /// Select a sub-matrix by (not necessarily contiguous) row and column
    /// indices.
    ///
    /// # Panics
    /// Panics if any index is out of range or the selections are empty.
    pub fn select(&self, row_idx: &[usize], col_idx: &[usize]) -> Matrix {
        assert!(
            !row_idx.is_empty() && !col_idx.is_empty(),
            "Matrix::select: empty selection"
        );
        let mut out = Matrix::zero(row_idx.len(), col_idx.len());
        for (oi, &i) in row_idx.iter().enumerate() {
            assert!(i < self.rows, "Matrix::select: row out of range");
            for (oj, &j) in col_idx.iter().enumerate() {
                assert!(j < self.cols, "Matrix::select: col out of range");
                out[(oi, oj)] = self[(i, j)];
            }
        }
        out
    }

    /// Select whole rows.
    pub fn select_rows(&self, row_idx: &[usize]) -> Matrix {
        let cols: Vec<usize> = (0..self.cols).collect();
        self.select(row_idx, &cols)
    }

    /// Vertically stack `self` on top of `other`.
    ///
    /// # Panics
    /// Panics if column counts differ.
    pub fn vstack(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "Matrix::vstack: column mismatch");
        let mut data = self.data.clone();
        data.extend_from_slice(&other.data);
        Matrix {
            rows: self.rows + other.rows,
            cols: self.cols,
            data,
        }
    }

    /// Swap two columns in place.
    pub fn swap_cols(&mut self, a: usize, b: usize) {
        assert!(a < self.cols && b < self.cols);
        if a == b {
            return;
        }
        for i in 0..self.rows {
            self.data.swap(i * self.cols + a, i * self.cols + b);
        }
    }

    /// Scale column `j` by nonzero `c` in place.
    pub fn scale_col(&mut self, j: usize, c: u8) {
        assert!(j < self.cols && c != 0);
        for i in 0..self.rows {
            let v = self[(i, j)];
            self[(i, j)] = gf::mul(v, c);
        }
    }

    /// `col[dst] ^= c * col[src]` in place.
    pub fn add_scaled_col(&mut self, src: usize, dst: usize, c: u8) {
        assert!(src < self.cols && dst < self.cols && src != dst);
        for i in 0..self.rows {
            let v = gf::mul(self[(i, src)], c);
            self[(i, dst)] ^= v;
        }
    }

    /// Gauss-Jordan inversion. Returns `None` if the matrix is singular.
    ///
    /// # Panics
    /// Panics if the matrix is not square.
    pub fn inverse(&self) -> Option<Matrix> {
        assert_eq!(self.rows, self.cols, "Matrix::inverse: not square");
        let n = self.rows;
        let mut a = self.clone();
        let mut inv = Matrix::identity(n);
        for col in 0..n {
            // Find pivot.
            let pivot = (col..n).find(|&r| a[(r, col)] != 0)?;
            if pivot != col {
                a.swap_rows(pivot, col);
                inv.swap_rows(pivot, col);
            }
            let p_inv = gf::inv(a[(col, col)]);
            if p_inv != 1 {
                a.scale_row(col, p_inv);
                inv.scale_row(col, p_inv);
            }
            for r in 0..n {
                if r != col && a[(r, col)] != 0 {
                    let factor = a[(r, col)];
                    a.add_scaled_row(col, r, factor);
                    inv.add_scaled_row(col, r, factor);
                }
            }
        }
        Some(inv)
    }

    /// Determinant via Gaussian elimination (returns 0 when singular).
    ///
    /// # Panics
    /// Panics if the matrix is not square.
    pub fn determinant(&self) -> u8 {
        assert_eq!(self.rows, self.cols, "Matrix::determinant: not square");
        let n = self.rows;
        let mut a = self.clone();
        let mut det = 1u8;
        for col in 0..n {
            let Some(pivot) = (col..n).find(|&r| a[(r, col)] != 0) else {
                return 0;
            };
            if pivot != col {
                a.swap_rows(pivot, col);
                // In GF(2^m), -1 == 1, so row swaps do not change the sign.
            }
            det = gf::mul(det, a[(col, col)]);
            let p_inv = gf::inv(a[(col, col)]);
            for r in col + 1..n {
                if a[(r, col)] != 0 {
                    let factor = gf::mul(a[(r, col)], p_inv);
                    for c in col..n {
                        let v = gf::mul(a[(col, c)], factor);
                        a[(r, c)] ^= v;
                    }
                }
            }
        }
        det
    }

    /// Rank via Gaussian elimination.
    pub fn rank(&self) -> usize {
        let mut a = self.clone();
        let mut rank = 0;
        let mut row = 0;
        for col in 0..a.cols {
            let Some(pivot) = (row..a.rows).find(|&r| a[(r, col)] != 0) else {
                continue;
            };
            a.swap_rows(pivot, row);
            let p_inv = gf::inv(a[(row, col)]);
            for r in row + 1..a.rows {
                if a[(r, col)] != 0 {
                    let factor = gf::mul(a[(r, col)], p_inv);
                    for c in col..a.cols {
                        let v = gf::mul(a[(row, c)], factor);
                        a[(r, c)] ^= v;
                    }
                }
            }
            rank += 1;
            row += 1;
            if row == a.rows {
                break;
            }
        }
        rank
    }

    /// True if square and invertible.
    pub fn is_invertible(&self) -> bool {
        self.rows == self.cols && self.determinant() != 0
    }

    fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        let (lo, hi) = (a.min(b), a.max(b));
        let (head, tail) = self.data.split_at_mut(hi * self.cols);
        head[lo * self.cols..(lo + 1) * self.cols].swap_with_slice(&mut tail[..self.cols]);
    }

    fn scale_row(&mut self, i: usize, c: u8) {
        let row = &mut self.data[i * self.cols..(i + 1) * self.cols];
        for v in row {
            *v = gf::mul(*v, c);
        }
    }

    /// `row[dst] ^= c * row[src]`.
    fn add_scaled_row(&mut self, src: usize, dst: usize, c: u8) {
        debug_assert_ne!(src, dst);
        let cols = self.cols;
        let row_tbl = gf::tables::mul_row(c);
        let (a, b) = if src < dst {
            let (head, tail) = self.data.split_at_mut(dst * cols);
            (&head[src * cols..(src + 1) * cols], &mut tail[..cols])
        } else {
            let (head, tail) = self.data.split_at_mut(src * cols);
            let a = &tail[..cols];
            let b = &mut head[dst * cols..(dst + 1) * cols];
            (a, b)
        };
        for (bv, &av) in b.iter_mut().zip(a) {
            *bv ^= row_tbl[av as usize];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> Matrix {
        Matrix::from_rows(&[&[1, 2, 3], &[4, 5, 6], &[7, 8, 10]])
    }

    #[test]
    fn identity_multiplication_is_neutral() {
        let m = example();
        let i = Matrix::identity(3);
        assert_eq!(m.mul(&i), m);
        assert_eq!(i.mul(&m), m);
    }

    #[test]
    fn inverse_times_self_is_identity() {
        let m = example();
        let inv = m.inverse().expect("example is invertible");
        assert_eq!(m.mul(&inv), Matrix::identity(3));
        assert_eq!(inv.mul(&m), Matrix::identity(3));
    }

    #[test]
    fn singular_matrix_has_no_inverse_and_zero_det() {
        let m = Matrix::from_rows(&[&[1, 2], &[1, 2]]);
        assert!(m.inverse().is_none());
        assert_eq!(m.determinant(), 0);
        assert!(!m.is_invertible());
        assert_eq!(m.rank(), 1);
    }

    #[test]
    fn determinant_of_identity_and_diagonal() {
        assert_eq!(Matrix::identity(4).determinant(), 1);
        let mut d = Matrix::zero(2, 2);
        d[(0, 0)] = 3;
        d[(1, 1)] = 7;
        assert_eq!(d.determinant(), rpr_gf::mul(3, 7));
    }

    #[test]
    fn mul_vec_matches_matrix_product() {
        let m = example();
        let v = [9u8, 11, 13];
        let got = m.mul_vec(&v);
        // Compare against explicit column-matrix product.
        let col = Matrix::from_rows(&[&[9], &[11], &[13]]);
        let prod = m.mul(&col);
        for i in 0..3 {
            assert_eq!(got[i], prod[(i, 0)]);
        }
    }

    #[test]
    fn select_extracts_submatrix() {
        let m = example();
        let s = m.select(&[0, 2], &[1, 2]);
        assert_eq!(s[(0, 0)], 2);
        assert_eq!(s[(0, 1)], 3);
        assert_eq!(s[(1, 0)], 8);
        assert_eq!(s[(1, 1)], 10);
        let r = m.select_rows(&[1]);
        assert_eq!(r.row(0), &[4, 5, 6]);
    }

    #[test]
    fn vstack_concatenates_rows() {
        let a = Matrix::from_rows(&[&[1, 2]]);
        let b = Matrix::from_rows(&[&[3, 4], &[5, 6]]);
        let s = a.vstack(&b);
        assert_eq!(s.rows(), 3);
        assert_eq!(s.row(2), &[5, 6]);
    }

    #[test]
    fn column_operations() {
        let mut m = example();
        let orig = m.clone();
        m.swap_cols(0, 2);
        assert_eq!(m[(0, 0)], orig[(0, 2)]);
        m.swap_cols(0, 2);
        assert_eq!(m, orig);

        m.scale_col(1, 2);
        assert_eq!(m[(0, 1)], rpr_gf::mul(2, orig[(0, 1)]));

        let mut m2 = orig.clone();
        m2.add_scaled_col(0, 1, 3);
        for i in 0..3 {
            assert_eq!(m2[(i, 1)], orig[(i, 1)] ^ rpr_gf::mul(3, orig[(i, 0)]));
        }
    }

    #[test]
    fn rank_of_structured_matrices() {
        assert_eq!(Matrix::identity(5).rank(), 5);
        assert_eq!(Matrix::zero(3, 4).rank(), 0);
        // A wide matrix with independent rows.
        let m = Matrix::from_rows(&[&[1, 0, 0, 5], &[0, 1, 0, 6]]);
        assert_eq!(m.rank(), 2);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mul_rejects_mismatched_shapes() {
        let a = Matrix::zero(2, 3);
        let b = Matrix::zero(2, 3);
        let _ = a.mul(&b);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn from_rows_rejects_ragged_input() {
        let _ = Matrix::from_rows(&[&[1, 2], &[3]]);
    }

    #[test]
    fn debug_format_is_stable() {
        let m = Matrix::identity(2);
        let s = format!("{m:?}");
        assert!(s.contains("Matrix 2x2"));
    }
}
