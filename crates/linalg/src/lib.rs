//! Dense matrix algebra over GF(2^8).
//!
//! Provides the matrix substrate the Reed-Solomon codec is built on:
//!
//! * [`Matrix`]: a dense row-major matrix of field elements with
//!   multiplication, Gauss-Jordan inversion, rank, and sub-matrix selection;
//! * [`vandermonde`] / [`cauchy`]: classical structured matrix builders;
//! * [`is_superregular`]: the MDS certificate — a systematic generator
//!   `[I; C]` is MDS iff every square submatrix of `C` is nonsingular;
//! * construction helpers used by `rpr-codec` to obtain a systematic
//!   distribution matrix whose *first coding row is all ones* — the property
//!   the paper's pre-placement optimization (§3.3, eq. 6) depends on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod matrix;

pub use matrix::Matrix;

use rpr_gf as gf;

/// Build the `rows × cols` Vandermonde matrix `V[i][j] = x_i ^ j` over the
/// evaluation points `x_i = i` (the Jerasure "big Vandermonde" convention).
///
/// Any `cols` *distinct-point* rows of a Vandermonde matrix are linearly
/// independent, which is what makes it suitable as an RS distribution matrix
/// seed.
///
/// # Panics
/// Panics if `rows > 256` (points must be distinct field elements).
pub fn vandermonde(rows: usize, cols: usize) -> Matrix {
    assert!(rows <= gf::FIELD_SIZE, "vandermonde: need distinct points");
    let mut m = Matrix::zero(rows, cols);
    for i in 0..rows {
        for j in 0..cols {
            m[(i, j)] = gf::pow(i as u8, j);
        }
    }
    m
}

/// Build the `rows × cols` Cauchy matrix `C[i][j] = 1 / (x_i + y_j)` with
/// `x_i = i` and `y_j = rows + j`.
///
/// Cauchy matrices are *superregular* (every square submatrix is
/// nonsingular), so `[I; C]` is always an MDS generator.
///
/// # Panics
/// Panics if `rows + cols > 256` (all points must be distinct).
pub fn cauchy(rows: usize, cols: usize) -> Matrix {
    assert!(
        rows + cols <= gf::FIELD_SIZE,
        "cauchy: x and y points must be distinct"
    );
    let mut m = Matrix::zero(rows, cols);
    for i in 0..rows {
        for j in 0..cols {
            m[(i, j)] = gf::inv((i as u8) ^ (rows + j) as u8);
        }
    }
    m
}

/// Check superregularity: every square submatrix (of every size) of `c` is
/// nonsingular. For a systematic generator `[I; C]` this is exactly the MDS
/// property.
///
/// Exponential in `min(rows, cols)` — intended for the small coding matrices
/// of practical RS configurations (`k ≤ 4`, `n ≤ 16` in the paper), where the
/// full check costs a few thousand tiny determinants.
pub fn is_superregular(c: &Matrix) -> bool {
    let r = c.rows();
    let n = c.cols();
    let max_s = r.min(n);
    for s in 1..=max_s {
        let mut singular = false;
        for_each_combination(r, s, |row_sel| {
            if singular {
                return;
            }
            for_each_combination(n, s, |col_sel| {
                if singular {
                    return;
                }
                if c.select(row_sel, col_sel).determinant() == 0 {
                    singular = true;
                }
            });
        });
        if singular {
            return false;
        }
    }
    true
}

/// Normalize the columns of a superregular matrix so its first row becomes
/// all ones. Column scaling by nonzero constants preserves superregularity
/// (every square submatrix determinant is multiplied by a nonzero product).
///
/// # Panics
/// Panics if any first-row entry is zero (impossible for a superregular
/// matrix, whose 1×1 submatrices are all nonzero).
pub fn normalize_first_row(c: &Matrix) -> Matrix {
    let mut out = c.clone();
    for j in 0..c.cols() {
        let d = c[(0, j)];
        assert!(d != 0, "normalize_first_row: zero entry in first row");
        let inv = gf::inv(d);
        for i in 0..c.rows() {
            out[(i, j)] = gf::mul(out[(i, j)], inv);
        }
    }
    out
}

/// Construct the `k × n` coding matrix for a systematic RS(n, k) code such
/// that:
///
/// 1. `[I_n; C]` is MDS (verified superregular), and
/// 2. the first coding row is all ones, so `P0 = D0 ⊕ D1 ⊕ … ⊕ D(n-1)`
///    (paper eq. 2), enabling the matrix-free XOR repair path of eq. 6.
///
/// The construction is a column-normalized Cauchy matrix, which satisfies
/// both properties for every valid `(n, k)`; superregularity is re-verified
/// at construction time (debug builds) as a defense-in-depth measure.
///
/// Naming note: the paper (and this crate) uses `n` = data blocks,
/// `k` = parity blocks.
///
/// # Panics
/// Panics if `n == 0`, `k == 0`, or `n + k > 256`.
pub fn rs_coding_matrix(n: usize, k: usize) -> Matrix {
    assert!(n > 0 && k > 0, "rs_coding_matrix: need n, k >= 1");
    assert!(n + k <= gf::FIELD_SIZE, "rs_coding_matrix: n + k <= 256");
    let c = normalize_first_row(&cauchy(k, n));
    debug_assert!(is_superregular(&c));
    debug_assert!((0..n).all(|j| c[(0, j)] == 1));
    c
}

/// Construct a Jerasure-style systematic coding matrix from an extended
/// Vandermonde seed, provided for cross-validation and ablation studies.
///
/// The `(n+k) × n` Vandermonde matrix is reduced by elementary *column*
/// operations (which preserve the any-`n`-rows-invertible property) until its
/// top `n × n` block is the identity; the bottom `k` rows form the coding
/// matrix. Unlike [`rs_coding_matrix`], the all-ones first row is **not**
/// guaranteed by this construction; callers should verify whichever
/// properties they need.
///
/// # Panics
/// Panics if the parameters are out of range.
pub fn vandermonde_systematic(n: usize, k: usize) -> Matrix {
    assert!(n > 0 && k > 0 && n + k <= gf::FIELD_SIZE);
    let mut v = vandermonde(n + k, n);
    // Column-reduce so that rows 0..n become the identity. Column ops are
    // right-multiplications by invertible matrices, preserving the rank of
    // every row subset.
    for i in 0..n {
        let pivot = (i..n)
            .find(|&j| v[(i, j)] != 0)
            .expect("vandermonde rows are independent");
        v.swap_cols(i, pivot);
        let inv = gf::inv(v[(i, i)]);
        if inv != 1 {
            v.scale_col(i, inv);
        }
        for j in 0..n {
            if j != i && v[(i, j)] != 0 {
                let factor = v[(i, j)];
                v.add_scaled_col(i, j, factor);
            }
        }
    }
    let rows: Vec<usize> = (n..n + k).collect();
    let cols: Vec<usize> = (0..n).collect();
    v.select(&rows, &cols)
}

/// Iterate over all `s`-combinations of `0..limit` in lexicographic order,
/// calling `f` for each.
pub fn for_each_combination(limit: usize, s: usize, mut f: impl FnMut(&[usize])) {
    if s > limit {
        return;
    }
    let mut sel: Vec<usize> = (0..s).collect();
    loop {
        f(&sel);
        if !next_combination(&mut sel, limit) {
            break;
        }
    }
}

/// Advance `sel` to the next `s`-combination of `0..limit`; returns false
/// when exhausted.
fn next_combination(sel: &mut [usize], limit: usize) -> bool {
    let s = sel.len();
    let mut i = s;
    while i > 0 {
        i -= 1;
        if sel[i] < limit - (s - i) {
            sel[i] += 1;
            for j in i + 1..s {
                sel[j] = sel[j - 1] + 1;
            }
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vandermonde_rows_are_powers() {
        let v = vandermonde(5, 3);
        assert_eq!(v[(0, 0)], 1); // 0^0 == 1 by convention
        assert_eq!(v[(0, 1)], 0);
        assert_eq!(v[(2, 2)], gf::mul(2, 2));
        assert_eq!(v[(3, 2)], gf::mul(3, 3));
    }

    #[test]
    fn cauchy_is_superregular_for_paper_configs() {
        for (n, k) in [(4, 2), (6, 2), (8, 2), (6, 3), (8, 4), (12, 4)] {
            assert!(is_superregular(&cauchy(k, n)), "cauchy ({n},{k})");
        }
    }

    #[test]
    fn normalized_cauchy_keeps_superregularity() {
        for (n, k) in [(4, 2), (8, 4), (12, 4)] {
            let c = normalize_first_row(&cauchy(k, n));
            assert!(is_superregular(&c), "normalized cauchy ({n},{k})");
            assert!((0..n).all(|j| c[(0, j)] == 1));
        }
    }

    #[test]
    fn rs_coding_matrix_first_row_is_all_ones() {
        for (n, k) in [(4, 2), (6, 2), (8, 2), (6, 3), (8, 4), (12, 4), (10, 4)] {
            let c = rs_coding_matrix(n, k);
            assert_eq!(c.rows(), k);
            assert_eq!(c.cols(), n);
            assert!((0..n).all(|j| c[(0, j)] == 1), "({n},{k})");
        }
    }

    #[test]
    fn superregularity_detects_singular_submatrices() {
        // A matrix with a zero entry has a singular 1x1 submatrix.
        let mut c = cauchy(2, 3);
        c[(1, 1)] = 0;
        assert!(!is_superregular(&c));
        // A matrix with two proportional columns has a singular 2x2 submatrix.
        let mut c = cauchy(2, 3);
        c[(0, 1)] = c[(0, 0)];
        c[(1, 1)] = c[(1, 0)];
        assert!(!is_superregular(&c));
    }

    #[test]
    fn vandermonde_systematic_yields_mds_generator() {
        for (n, k) in [(4, 2), (6, 3), (8, 4), (12, 4)] {
            let c = vandermonde_systematic(n, k);
            assert_eq!((c.rows(), c.cols()), (k, n));
            assert!(
                is_superregular(&c),
                "vandermonde systematic ({n},{k}) must be MDS"
            );
        }
    }

    #[test]
    fn combinations_enumerate_binomials() {
        let mut count = 0;
        for_each_combination(6, 3, |sel| {
            assert_eq!(sel.len(), 3);
            assert!(sel.windows(2).all(|w| w[0] < w[1]));
            count += 1;
        });
        assert_eq!(count, 20); // C(6,3)
        let mut count = 0;
        for_each_combination(3, 0, |_| count += 1);
        assert_eq!(count, 1, "the empty combination");
        let mut count = 0;
        for_each_combination(2, 3, |_| count += 1);
        assert_eq!(count, 0, "s > limit yields nothing");
    }

    #[test]
    #[should_panic(expected = "n + k <= 256")]
    fn rs_coding_matrix_rejects_oversized_codes() {
        rs_coding_matrix(250, 10);
    }
}
