//! Degraded-mode repair: how much does an injected fault cost RPR?
//!
//! For every single-failure configuration of the paper, run the RPR repair
//! on the flow simulator under each applicable fault family (fixed seed,
//! so the whole table is deterministic) and compare against the fault-free
//! repair time. Crash rows exercise the full recovery path: replanning
//! around the dead helper with partial-result reuse
//! (`docs/ROBUSTNESS.md`).

use crate::util::{self, Fixture, PAPER_CODES};
use rpr_codec::BlockId;
use rpr_core::{crash_candidates, simulate_injected, Op, Payload, RepairPlanner, RprPlanner};
use rpr_faults::{FaultKind, FaultPlan, RetryPolicy};

/// Seed for every fault table row — fixed so reruns are bit-identical.
const SEED: u64 = 17;

pub fn faults() {
    let block: u64 = 256 << 20;
    let policy = RetryPolicy::default();
    let mut rows = Vec::new();
    for (n, k) in PAPER_CODES {
        let fx = Fixture::simics(n, k, block);
        let ctx = fx.ctx(vec![BlockId(1)]);
        let plan = RprPlanner::new().plan(&ctx);
        plan.validate(&fx.codec, &fx.topo, &fx.placement)
            .expect("generated plans must validate");
        let (waves, _) = plan.cross_waves(&fx.topo);

        let mut cases: Vec<(&str, FaultKind)> = Vec::new();
        if let Some(&(node, timestep)) = crash_candidates(&plan, &ctx).first() {
            cases.push(("crash", FaultKind::HelperCrash { node, timestep }));
        }
        if let Some(op) = plan
            .ops
            .iter()
            .position(|op| matches!(op, Op::Send { .. }))
        {
            cases.push(("timeout", FaultKind::TransferTimeout { op }));
        }
        if let Some(op) = plan.ops.iter().position(|op| {
            matches!(
                op,
                Op::Send {
                    what: Payload::Intermediate(_),
                    ..
                }
            )
        }) {
            cases.push(("corrupt", FaultKind::CorruptIntermediate { op }));
        }
        if let Some((rack, timestep)) = plan.ops.iter().enumerate().find_map(|(i, op)| {
            match (op, waves[i]) {
                (Op::Send { from, .. }, Some(w)) => Some((fx.topo.rack_of(*from).0, w)),
                _ => None,
            }
        }) {
            cases.push(("rack outage", FaultKind::RackSwitchOutage { rack, timestep }));
        }

        for (label, kind) in cases {
            let fp = FaultPlan::new(SEED).with(kind);
            let out = simulate_injected(&plan, &ctx, &fp, &policy, rpr_obs::noop())
                .expect("injected repair must complete");
            rows.push(vec![
                format!("({n},{k})"),
                label.to_string(),
                util::fmt_s(out.clean_time),
                util::fmt_s(out.repair_time),
                util::fmt_pct(out.repair_time / out.clean_time - 1.0),
                out.retries.to_string(),
                out.replans.to_string(),
                out.reused_ops.to_string(),
                out.final_scheme.to_string(),
            ]);
        }
    }
    util::print_table(
        "Degraded repair under injected faults (RPR, single failure, sim, seed 17)",
        &[
            "code",
            "fault",
            "clean (s)",
            "degraded (s)",
            "overhead",
            "retries",
            "replans",
            "reused ops",
            "finished as",
        ],
        &rows,
    );
}
