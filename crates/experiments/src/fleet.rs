//! Fleet-scale recovery: whole-node and whole-rack failures over a
//! multi-stripe store — the production setting (§1: Facebook's 180 TB/day
//! of repair traffic) that motivates rack-aware repair.
//!
//! Not a paper figure; an extension experiment quantifying what the paper's
//! single-stripe numbers translate to when every affected stripe repairs
//! concurrently on shared links.

use crate::util::{fmt_pct, fmt_s, print_table};
use rpr_codec::CodeParams;
use rpr_core::{CostModel, SuperviseConfig};
use rpr_faults::{CrashSite, StormFault};
use rpr_store::{Failure, Scheme, Store, StoreConfig, SupervisedRecoveryOptions};
use rpr_topology::{BandwidthProfile, NodeId, RackId};

/// Node- and rack-failure recovery across schemes.
pub fn fleet(fast: bool) {
    let stripes = if fast { 24 } else { 96 };
    let store = Store::build(StoreConfig {
        params: CodeParams::new(6, 3),
        racks: 5,
        nodes_per_rack: 5,
        stripes,
        block_bytes: 64 << 20,
        preplace_p0: true,
        seed: 0xF1EE7,
    });
    let profile = BandwidthProfile::simics_default(store.topology().rack_count());
    let cost = CostModel::simics().scaled_for_block(store.config().block_bytes);

    // --- Node failure -----------------------------------------------------
    // Fail the busiest node, as production incident reports do.
    let node = store
        .topology()
        .nodes()
        .max_by_key(|&n| store.blocks_on_node(n).len())
        .unwrap_or(NodeId(0));
    let affected = store.affected_stripes(Failure::Node(node)).len();
    let mut rows = Vec::new();
    let mut tra_makespan = f64::NAN;
    for scheme in [Scheme::Traditional, Scheme::Car, Scheme::Rpr] {
        let out = store.recover(Failure::Node(node), scheme, &profile, cost);
        if scheme == Scheme::Traditional {
            tra_makespan = out.makespan;
        }
        rows.push(vec![
            scheme.name().to_string(),
            fmt_s(out.makespan),
            fmt_s(out.mean_stripe_finish()),
            format!("{:.1}", out.cross_rack_bytes as f64 / (1 << 30) as f64),
            format!("{:.2}x", out.upload_imbalance),
            format!("{:.2}x", out.rack_upload_imbalance()),
            fmt_pct(1.0 - out.makespan / tra_makespan),
        ]);
    }
    print_table(
        &format!(
            "Fleet recovery — node failure: RS(6,3), {} stripes on {} racks x \
             {} nodes, {} stripes affected, 64 MiB blocks (Simics rates)",
            stripes,
            store.config().racks,
            store.config().nodes_per_rack,
            affected
        ),
        &[
            "scheme",
            "makespan (s)",
            "mean stripe (s)",
            "cross GiB",
            "node imbalance",
            "rack imbalance",
            "vs tra",
        ],
        &rows,
    );

    // --- Rack failure ------------------------------------------------------
    let rack = RackId(0);
    let affected = store.affected_stripes(Failure::Rack(rack)).len();
    let mut rows = Vec::new();
    let mut tra_makespan = f64::NAN;
    for scheme in [Scheme::Traditional, Scheme::Rpr] {
        let out = store.recover(Failure::Rack(rack), scheme, &profile, cost);
        if scheme == Scheme::Traditional {
            tra_makespan = out.makespan;
        }
        rows.push(vec![
            scheme.name().to_string(),
            fmt_s(out.makespan),
            fmt_s(out.mean_stripe_finish()),
            format!("{:.1}", out.cross_rack_bytes as f64 / (1 << 30) as f64),
            format!("{:.2}x", out.upload_imbalance),
            fmt_pct(1.0 - out.makespan / tra_makespan),
        ]);
    }
    print_table(
        &format!(
            "Fleet recovery — rack failure: same store, {} stripes affected \
             (multi-block repairs, rebuilt in surviving racks)",
            affected
        ),
        &[
            "scheme",
            "makespan (s)",
            "mean stripe (s)",
            "cross GiB",
            "node imbalance",
            "vs tra",
        ],
        &rows,
    );
    println!(
        "\n> Extension experiment (not a paper figure): single-stripe gains \
         compound at fleet scale\n> because partial decoding also removes the \
         recovery-node bottleneck that serializes stripes."
    );

    // --- Supervised recovery under fault storms ----------------------------
    // Route the same node failure through the repair supervisor: every
    // stripe repairs under a seeded storm while a fleet-shared health
    // tracker steers later stripes away from helpers that already failed.
    let mut rows = Vec::new();
    for (label, storm) in [
        ("clean", vec![]),
        ("crash/stripe", vec![vec![StormFault::Crash(CrashSite::SeedPick)]]),
        (
            "crash+replacement",
            vec![
                vec![StormFault::Crash(CrashSite::SeedPick)],
                vec![StormFault::Crash(CrashSite::NewHelper)],
            ],
        ),
    ] {
        for max_concurrent in [None, Some(8)] {
            let opts = SupervisedRecoveryOptions {
                max_concurrent,
                storm: storm.clone(),
                seed: 0xF1EE7,
                cfg: SuperviseConfig::default(),
            };
            let out = store.recover_supervised(Failure::Node(node), &profile, cost, &opts);
            rows.push(vec![
                label.to_string(),
                max_concurrent.map_or("all".into(), |c| c.to_string()),
                format!("{}/{}", out.completed, out.stripes_affected),
                fmt_s(out.makespan),
                fmt_s(out.mttr),
                fmt_s(out.p99_stripe_seconds),
                out.replans.to_string(),
                out.degraded.to_string(),
                out.quarantined_nodes.len().to_string(),
            ]);
        }
    }
    print_table(
        &format!(
            "Fleet recovery — supervised (RPR tier ladder), node failure, \
             {} stripes affected, fleet-shared health tracker",
            store.affected_stripes(Failure::Node(node)).len()
        ),
        &[
            "storm",
            "admission",
            "completed",
            "makespan (s)",
            "MTTR (s)",
            "p99 stripe (s)",
            "replans",
            "degraded",
            "quarantined",
        ],
        &rows,
    );
    println!(
        "\n> Supervised makespans are comparable within this table only: \
         admission waves serialize,\n> but link contention inside a wave is \
         not modeled on the supervised path."
    );
}
