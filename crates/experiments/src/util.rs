//! Shared experiment scaffolding: fixtures, failure-set enumeration, and
//! markdown table printing.

use rpr_codec::{BlockId, CodeParams, StripeCodec};
use rpr_core::{simulate, CostModel, RepairContext, RepairPlanner};
use rpr_topology::{cluster_for, BandwidthProfile, Placement, PlacementPolicy, Topology};

/// The six RS configurations of the paper's single-failure evaluation.
pub const PAPER_CODES: [(usize, usize); 6] = [(4, 2), (6, 2), (8, 2), (6, 3), (8, 4), (12, 4)];

/// The multi-failure (non-worst) configurations of Figures 9/10/13:
/// `(n, k, z)` = a `z`-block failure of the `(n, k)` code.
pub const MULTI_CODES: [(usize, usize, usize); 5] =
    [(6, 3, 2), (8, 4, 2), (8, 4, 3), (12, 4, 2), (12, 4, 3)];

/// The worst-case configurations of Figures 11/14 (codes with
/// `(n+k)/k > 3`, failing all `k` blocks).
pub const WORST_CODES: [(usize, usize); 3] = [(6, 2), (8, 2), (12, 4)];

/// A ready-to-run cluster for one code.
pub struct Fixture {
    pub codec: StripeCodec,
    pub topo: Topology,
    pub placement: Placement,
    pub profile: BandwidthProfile,
    pub block_bytes: u64,
    pub cost: CostModel,
}

impl Fixture {
    /// The "Simics" cluster of §5.1: compact placement with the §3.3
    /// pre-placement, 1 Gb/s inner, 0.1 Gb/s cross, 256 MB blocks.
    pub fn simics(n: usize, k: usize, block_bytes: u64) -> Fixture {
        let params = CodeParams::new(n, k);
        let topo = cluster_for(params, 1, 1);
        let placement = Placement::by_policy(PlacementPolicy::RprPreplaced, params, &topo);
        let profile = BandwidthProfile::simics_default(topo.rack_count());
        Fixture {
            codec: StripeCodec::new(params),
            topo,
            placement,
            profile,
            block_bytes,
            cost: CostModel::simics().scaled_for_block(block_bytes),
        }
    }

    /// The "EC2" cluster of §5.2: Table-1 bandwidths (scaled), t2.micro
    /// decode costs (scaled to the block size).
    pub fn ec2(n: usize, k: usize, block_bytes: u64, bw_scale: f64) -> Fixture {
        let params = CodeParams::new(n, k);
        let topo = cluster_for(params, 1, 1);
        let placement = Placement::by_policy(PlacementPolicy::RprPreplaced, params, &topo);
        let profile = rpr_exec::scaled_ec2_profile(topo.rack_count(), bw_scale);
        Fixture {
            codec: StripeCodec::new(params),
            topo,
            placement,
            profile,
            block_bytes,
            cost: CostModel::ec2_t2micro().scaled_for_block(block_bytes),
        }
    }

    pub fn ctx(&self, failed: Vec<BlockId>) -> RepairContext<'_> {
        RepairContext::new(
            &self.codec,
            &self.topo,
            &self.placement,
            failed,
            self.block_bytes,
            &self.profile,
            self.cost,
        )
    }

    /// Simulated repair time and cross-rack traffic (in blocks) for one
    /// scheme and failure set.
    pub fn run_sim(&self, planner: &dyn RepairPlanner, failed: Vec<BlockId>) -> (f64, f64) {
        let ctx = self.ctx(failed);
        let plan = planner.plan(&ctx);
        plan.validate(&self.codec, &self.topo, &self.placement)
            .expect("generated plans must validate");
        let out = simulate(&plan, &ctx);
        (
            out.repair_time,
            out.stats.cross_bytes as f64 / self.block_bytes as f64,
        )
    }
}

/// All `z`-subsets of the data blocks `0..n`, optionally capped by seeded
/// sampling (the cap is reported so no truncation is silent).
pub fn failure_sets(n: usize, z: usize, cap: usize, label: &str) -> Vec<Vec<BlockId>> {
    let mut all: Vec<Vec<BlockId>> = Vec::new();
    rpr_linalg::for_each_combination(n, z, |sel| {
        all.push(sel.iter().map(|&i| BlockId(i)).collect());
    });
    if all.len() > cap {
        // Deterministic thinning: take every ceil(len/cap)-th combination.
        let stride = all.len().div_ceil(cap);
        let sampled: Vec<Vec<BlockId>> = all.into_iter().step_by(stride).collect();
        println!(
            "> note: {label}: sampled {} of C({n},{z}) failure sets (stride {stride})",
            sampled.len()
        );
        sampled
    } else {
        all
    }
}

/// Average, min, max of a slice.
pub fn stats(xs: &[f64]) -> (f64, f64, f64) {
    let avg = xs.iter().sum::<f64>() / xs.len() as f64;
    let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    (avg, min, max)
}

/// Where CSV copies of every table go (set by `--out DIR`).
static OUTPUT_DIR: std::sync::OnceLock<std::path::PathBuf> = std::sync::OnceLock::new();

/// The `--out` directory, if one was set. Trace dumps go here too.
pub fn output_dir() -> Option<&'static std::path::Path> {
    OUTPUT_DIR.get().map(|p| p.as_path())
}

/// Enable CSV output: every subsequent [`print_table`] also writes
/// `<slug>.csv` under `dir` (created if missing).
pub fn set_output_dir(dir: &str) {
    let path = std::path::PathBuf::from(dir);
    std::fs::create_dir_all(&path).expect("create --out directory");
    let _ = OUTPUT_DIR.set(path);
}

/// Print a markdown table (and, when `--out` is set, write it as CSV).
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n## {title}\n");
    println!("| {} |", headers.join(" | "));
    println!(
        "|{}|",
        headers.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
    for row in rows {
        println!("| {} |", row.join(" | "));
    }
    if let Some(dir) = OUTPUT_DIR.get() {
        let slug: String = title
            .chars()
            .take(40)
            .map(|c| {
                if c.is_ascii_alphanumeric() {
                    c.to_ascii_lowercase()
                } else {
                    '_'
                }
            })
            .collect::<String>()
            .split('_')
            .filter(|s| !s.is_empty())
            .collect::<Vec<_>>()
            .join("_");
        let mut csv = String::new();
        csv.push_str(&headers.join(","));
        csv.push('\n');
        for row in rows {
            let escaped: Vec<String> = row
                .iter()
                .map(|cell| {
                    if cell.contains(',') || cell.contains('"') {
                        format!("\"{}\"", cell.replace('"', "\"\""))
                    } else {
                        cell.clone()
                    }
                })
                .collect();
            csv.push_str(&escaped.join(","));
            csv.push('\n');
        }
        let path = dir.join(format!("{slug}.csv"));
        std::fs::write(&path, csv).expect("write CSV table");
        println!("\n> csv: {}", path.display());
    }
}

/// Format seconds with 2 decimals.
pub fn fmt_s(x: f64) -> String {
    format!("{x:.2}")
}

/// Format a percentage.
pub fn fmt_pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}
