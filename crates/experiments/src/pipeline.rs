//! Pipeline table — chunked cut-through streaming vs store-and-forward.
//!
//! Store-and-forward moves whole blocks hop to hop, so RPR's §3.2
//! pipeline pays `waves × t_block`. With cut-through streaming
//! (ECPipe-style sub-block slices over RPR's rack-aware DAG) the
//! planner lays the cross-rack ops out as a chain and the makespan
//! collapses toward `t_block + (waves − 1) × t_chunk`.

use crate::util::{fmt_pct, fmt_s, print_table, stats, Fixture, PAPER_CODES};
use rpr_codec::BlockId;
use rpr_core::{ChainPlanner, RepairPlanner, RprPlanner};

const BLOCK: u64 = 256 << 20; // 256 MiB, §5.1.1
const CHUNK: u64 = 8 << 20; // 8 MiB slices, 32 chunks per block

impl Fixture {
    /// Simulated repair time for one scheme and failure set with
    /// cut-through streaming at `chunk` bytes.
    fn run_sim_chunked(
        &self,
        planner: &dyn RepairPlanner,
        failed: Vec<BlockId>,
        chunk: u64,
    ) -> f64 {
        let ctx = self.ctx(failed).with_chunk_size(chunk);
        let plan = planner.plan(&ctx);
        plan.validate(&self.codec, &self.topo, &self.placement)
            .expect("generated plans must validate");
        rpr_core::simulate(&plan, &ctx).repair_time
    }
}

/// The `pipeline` table: block-level RPR vs chunked RPR vs an
/// ECPipe-style sliced chain, averaged over all data positions.
pub fn pipeline(fast: bool) {
    let block = if fast { BLOCK >> 4 } else { BLOCK };
    let chunk = if fast { 1 << 20 } else { CHUNK };
    let mut rows = Vec::new();
    let mut collapses = Vec::new();
    for (n, k) in PAPER_CODES {
        let f = Fixture::simics(n, k, block);
        let (mut store, mut cut, mut chain) = (Vec::new(), Vec::new(), Vec::new());
        for fail in 0..n {
            store.push(f.run_sim(&RprPlanner::new(), vec![BlockId(fail)]).0);
            cut.push(f.run_sim_chunked(&RprPlanner::new(), vec![BlockId(fail)], chunk));
            chain.push(f.run_sim_chunked(&ChainPlanner::new(), vec![BlockId(fail)], chunk));
        }
        let (sa, _, _) = stats(&store);
        let (ca, _, _) = stats(&cut);
        let (ha, _, _) = stats(&chain);
        collapses.push(1.0 - ca / sa);
        rows.push(vec![
            format!("({n},{k})"),
            fmt_s(sa),
            fmt_s(ca),
            fmt_s(ha),
            fmt_pct(1.0 - ca / sa),
        ]);
    }
    print_table(
        &format!(
            "Pipeline — store-and-forward RPR vs cut-through RPR vs sliced \
             chain (ECPipe-style), {} MiB blocks, {} MiB chunks, averaged \
             over all data positions (Simics simulator)",
            block >> 20,
            chunk >> 20
        ),
        &["code", "RPR s&f", "RPR cut", "chain cut", "collapse"],
        &rows,
    );
    let (avg, min, max) = stats(&collapses);
    println!(
        "\n> Cut-through collapses RPR's `waves × t_block` critical path toward \
         `t_block + (waves − 1) × t_chunk`: avg {} (min {}, max {}). Codes \
         with one cross wave have nothing to collapse; multi-wave codes \
         approach the single-block-transfer floor.",
        fmt_pct(avg),
        fmt_pct(min),
        fmt_pct(max)
    );
}
