//! Supervised repair under fault storms: MTTR and completion rate.
//!
//! For every single-failure configuration of the paper, drive the RPR
//! repair through the supervisor (`rpr_core::supervise_injected`) under a
//! battery of seeded chaos storms (`rpr_faults::ChaosProcess`) plus the
//! acceptance storm — helper crash, crash of its replacement, then a
//! transient timeout. Fixed base seed, so the whole table is
//! bit-deterministic across reruns (`docs/ROBUSTNESS.md`).

use crate::util::{self, Fixture, PAPER_CODES};
use rpr_codec::BlockId;
use rpr_core::{supervise_injected, SuperviseConfig, Tier};
use rpr_faults::{ChaosProcess, CrashSite, FaultStorm, HealthTracker, StormFault};

/// Base seed for every storm in the table.
const SEED: u64 = 17;

pub fn chaos(fast: bool) {
    let block: u64 = 256 << 20;
    let storms_per_code = if fast { 8 } else { 24 };
    let cfg = SuperviseConfig {
        hedge: Some(3.0),
        ..SuperviseConfig::default()
    };

    let mut rows = Vec::new();
    for (n, k) in PAPER_CODES {
        let fx = Fixture::simics(n, k, block);

        // The acceptance storm first, then seeded chaos processes.
        let mut storms: Vec<FaultStorm> = vec![FaultStorm::new(SEED)
            .with_generation(vec![StormFault::Crash(CrashSite::SeedPick)])
            .with_generation(vec![StormFault::Crash(CrashSite::NewHelper)])
            .with_generation(vec![StormFault::Timeout])];
        for s in 0..storms_per_code as u64 - 1 {
            storms.push(ChaosProcess::new(SEED ^ (s + 1)).storm());
        }

        let mut clean = f64::NAN;
        let mut times = Vec::new();
        let (mut replans, mut hedge_wins, mut degraded) = (0usize, 0usize, 0usize);
        for storm in &storms {
            let ctx = fx.ctx(vec![BlockId(1)]);
            let mut tracker = HealthTracker::with_defaults();
            let Ok(out) = supervise_injected(&ctx, storm, &cfg, &mut tracker, rpr_obs::noop())
            else {
                // Storms may legitimately exceed the retry budget or k
                // total failures; those count against the completion rate.
                continue;
            };
            clean = out.clean_time;
            times.push(out.repair_time);
            replans += out.replans;
            hedge_wins += out.hedge_wins;
            if out.final_tier > Tier::Full {
                degraded += 1;
            }
        }

        let mttr = times.iter().sum::<f64>() / times.len().max(1) as f64;
        rows.push(vec![
            format!("({n},{k})"),
            storms.len().to_string(),
            util::fmt_pct(times.len() as f64 / storms.len() as f64),
            util::fmt_s(clean),
            util::fmt_s(mttr),
            util::fmt_s(rpr_store::quantile(&times, 0.99)),
            util::fmt_pct(mttr / clean - 1.0),
            replans.to_string(),
            hedge_wins.to_string(),
            degraded.to_string(),
        ]);
    }
    util::print_table(
        &format!(
            "Supervised repair under chaos storms (RPR, single failure, sim, \
             seed {SEED}, {storms_per_code} storms/code, hedge 3.0x)"
        ),
        &[
            "code",
            "storms",
            "completed",
            "clean (s)",
            "MTTR (s)",
            "p99 (s)",
            "overhead",
            "replans",
            "hedges won",
            "degraded",
        ],
        &rows,
    );
    println!(
        "\n> Every storm resolves its fault sites against the live plan \
         generation by generation;\n> incomplete rows hit the retry budget or \
         lost more than k blocks — never a hang."
    );
}
