//! Regenerate the tables and figures of the RPR paper (ICPP '20).
//!
//! ```text
//! rpr-experiments <fig6..fig14|table1|fleet|fleet-scale|churn|foreground|ablation|traces|byzantine|pipeline|all> [--fast] [--out DIR]
//! ```
//!
//! Figures 6–11 run on the `rpr-netsim` flow simulator (the paper's Simics
//! cluster); Table 1 and Figures 12–14 run on the `rpr-exec` real-data
//! engine with the Table-1 EC2 bandwidth matrix (scaled). `--fast` shrinks
//! blocks/samples for quick smoke runs; `--out DIR` also writes every table
//! as CSV into DIR.

mod ablation;
mod byzantine;
mod chaos;
mod churn;
mod exec_figs;
mod faults;
mod fleet;
mod fleet_scale;
mod foreground;
mod pipeline;
mod sim_figs;
mod table1;
mod theory;
mod traces;
mod util;

use std::env;

fn main() {
    let args: Vec<String> = env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    if let Some(i) = args.iter().position(|a| a == "--out") {
        match args.get(i + 1) {
            Some(dir) => util::set_output_dir(dir),
            None => {
                eprintln!("--out needs a directory");
                std::process::exit(2);
            }
        }
    }
    let mut skip_next = false;
    let which: Vec<&str> = args
        .iter()
        .filter(|a| {
            if skip_next {
                skip_next = false;
                return false;
            }
            if a.as_str() == "--out" {
                skip_next = true;
                return false;
            }
            !a.starts_with("--")
        })
        .map(|s| s.as_str())
        .collect();
    let which = if which.is_empty() { vec!["all"] } else { which };

    for w in which {
        match w {
            "fig6" => theory::fig6(),
            "fig7" => sim_figs::fig7(),
            "fig8" => sim_figs::fig8(),
            "fig9" => sim_figs::fig9(fast),
            "fig10" => sim_figs::fig10(fast),
            "fig11" => sim_figs::fig11(fast),
            "table1" => table1::table1(fast),
            "fig12" => exec_figs::fig12(fast),
            "fig13" => exec_figs::fig13(fast),
            "fig14" => exec_figs::fig14(fast),
            "fleet" => fleet::fleet(fast),
            "fleet-scale" => fleet_scale::fleet_scale(fast),
            "churn" => churn::churn(fast),
            "foreground" => foreground::foreground(fast),
            "ablation" => ablation::ablation(),
            "traces" => traces::traces(fast),
            "faults" => faults::faults(),
            "chaos" => chaos::chaos(fast),
            "byzantine" => byzantine::byzantine(),
            "pipeline" => pipeline::pipeline(fast),
            "all" => {
                theory::fig6();
                sim_figs::fig7();
                sim_figs::fig8();
                sim_figs::fig9(fast);
                sim_figs::fig10(fast);
                sim_figs::fig11(fast);
                table1::table1(fast);
                exec_figs::fig12(fast);
                exec_figs::fig13(fast);
                exec_figs::fig14(fast);
                fleet::fleet(fast);
                fleet_scale::fleet_scale(fast);
                churn::churn(fast);
                foreground::foreground(fast);
                ablation::ablation();
                traces::traces(fast);
                faults::faults();
                chaos::chaos(fast);
                byzantine::byzantine();
                pipeline::pipeline(fast);
            }
            other => {
                eprintln!("unknown experiment `{other}`");
                eprintln!(
                    "usage: rpr-experiments \
                     <fig6..fig14|table1|fleet|fleet-scale|churn|foreground|ablation|traces\
                     |faults|chaos|byzantine|pipeline|all> [--fast] [--out DIR]"
                );
                std::process::exit(2);
            }
        }
    }
}
