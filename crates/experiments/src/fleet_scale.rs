//! Fleet-scale scheduler sweep: drain backlogs of 10k → 1M at-risk
//! stripes through the `rpr-sched` prioritized, bandwidth-arbitrated
//! repair scheduler, reporting sustained repair throughput and the MTTR
//! distribution at each scale.
//!
//! The cluster is sized like a production cell (625 racks × 16 nodes =
//! 10k nodes) with the paper's §5.1 bandwidth shape (1 Gb/s inner,
//! 0.1 Gb/s cross per node). The backlog's at-risk mix skews toward
//! single failures the way real fleets do (85% / 12% / 3% for z =
//! 1/2/3). Everything is seeded, so reruns reproduce the table
//! bit-for-bit; only the wall-clock column varies by host.

use crate::util::print_table;
use rpr_codec::CodeParams;
use rpr_sched::{run_synthetic_fleet, FleetSpec};

/// Print the fleet-scale sweep table (`--fast` caps the sweep at 100k
/// stripes for smoke runs).
pub fn fleet_scale(fast: bool) {
    let sizes: &[usize] = if fast {
        &[1_000, 10_000, 100_000]
    } else {
        &[10_000, 100_000, 1_000_000]
    };
    println!(
        "\nfleet-scale: RS(6,3) stripes over 625 racks x 16 nodes (10k-node cell), \
         block 256 MiB, level mix 85/12/3"
    );

    let mut rows = Vec::new();
    for &stripes in sizes {
        let spec = FleetSpec {
            params: CodeParams::new(6, 3),
            racks: 625,
            nodes_per_rack: 16,
            stripes,
            block_bytes: 256 << 20,
            seed: 17,
            ..FleetSpec::default()
        };
        let start = std::time::Instant::now();
        let out = run_synthetic_fleet(&spec, rpr_obs::noop());
        let wall = start.elapsed().as_secs_f64();
        let s = &out.summary;
        rows.push(vec![
            format!("{stripes}"),
            format!("{}", out.classes),
            format!("{:.0}", s.makespan),
            format!("{:.1}", s.stripes_per_sec),
            format!("{:.2}", s.bytes_per_sec / 1e9),
            format!("{:.1}", s.mttr_p50),
            format!("{:.1}", s.mttr_p99),
            format!("{:.1}%", s.waited as f64 / s.stripes.max(1) as f64 * 100.0),
            format!("{:.2}", wall),
        ]);
        assert_eq!(s.repaired, stripes, "the drain must run to completion");
    }
    print_table(
        "Fleet-scale repair scheduling (RS(6,3), 10k-node cell)",
        &[
            "stripes",
            "classes",
            "makespan (s)",
            "stripes/s",
            "GB/s",
            "MTTR p50 (s)",
            "MTTR p99 (s)",
            "waited",
            "wall (s)",
        ],
        &rows,
    );
}
