//! Drains under churn: co-simulate a live failure-arrival stream with
//! the fleet drain and sweep the arrival rate against the escalation
//! policy.
//!
//! Each row drains the same seeded backlog while a Poisson churn
//! process keeps failing nodes, racks, and correlated batches on the
//! fleet clock. `escalate` rows re-prioritize a churn-hit stripe at its
//! new at-risk level (in-flight victims hand the failure to their
//! running supervisor); `keep` rows serve victims in enqueue order —
//! the policy baseline. The queue-wait quantiles split by served level
//! show what escalation buys: multi-failure stripes jump the backlog
//! instead of waiting behind thousands of single-failure repairs.
//! `repaired + lost == stripes` holds on every row; at rates the drain
//! outpaces, `lost` stays 0.

use crate::util::print_table;
use rpr_codec::CodeParams;
use rpr_sched::{quantile, run_synthetic_fleet, FleetSpec};

/// Print the churn sweep table (`--fast` shrinks the backlog).
pub fn churn(fast: bool) {
    let stripes = if fast { 400 } else { 1500 };
    let rates: &[f64] = &[0.0, 0.002, 0.01, 0.05];
    println!(
        "\nchurn: RS(6,3) x {stripes} stripes over 50 racks x 16 nodes, live \
         failure arrivals co-simulated with the drain (seed 17)"
    );

    let mut rows = Vec::new();
    for &rate in rates {
        for escalate in [true, false] {
            if rate == 0.0 && !escalate {
                continue; // no churn, nothing to escalate: one baseline row
            }
            let spec = FleetSpec {
                params: CodeParams::new(6, 3),
                racks: 50,
                nodes_per_rack: 16,
                stripes,
                block_bytes: 64 << 20,
                seed: 17,
                churn_rate: rate,
                escalate,
                ..FleetSpec::default()
            };
            let out = run_synthetic_fleet(&spec, rpr_obs::noop());
            let s = &out.summary;
            assert_eq!(
                s.repaired + s.lost,
                stripes,
                "every stripe must end repaired or accounted lost"
            );
            if rate == 0.002 && escalate {
                assert_eq!(s.lost, 0, "the drain outpaces this churn rate");
            }

            // Queue wait by served level: did multi-failure stripes
            // actually jump the single-failure backlog?
            let mut hot: Vec<f64> = Vec::new();
            let mut cold: Vec<f64> = Vec::new();
            for r in &out.records {
                if r.level >= 2 {
                    hot.push(r.waited);
                } else {
                    cold.push(r.waited);
                }
            }
            hot.sort_by(f64::total_cmp);
            cold.sort_by(f64::total_cmp);
            rows.push(vec![
                format!("{rate}"),
                if escalate { "escalate" } else { "keep" }.to_string(),
                format!("{}", s.churn_failures),
                format!("{}", s.escalations),
                format!("{}", s.repaired),
                format!("{}", s.lost),
                format!("{:.0}", s.makespan),
                format!("{:.0}", quantile(&hot, 0.5)),
                format!("{:.0}", quantile(&cold, 0.5)),
            ]);
        }
    }
    print_table(
        "Drains under churn (loss accounting and escalation policy)",
        &[
            "churn/s",
            "policy",
            "failures",
            "escalated",
            "repaired",
            "lost",
            "makespan (s)",
            "wait p50 z>=2 (s)",
            "wait p50 z=1 (s)",
        ],
        &rows,
    );
}
