//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. cross/inner bandwidth ratio sweep — where does pipelining stop
//!    mattering? (the paper assumes 10:1);
//! 2. pre-placement on/off at EC2 decode costs;
//! 3. helper-selection search vs heuristic;
//! 4. traditional repair's recovery site (spare rack vs failed rack).

use crate::util::{fmt_pct, fmt_s, print_table};
use rpr_codec::{BlockId, CodeParams, StripeCodec};
use rpr_core::{
    simulate, CarPlanner, CostModel, RepairContext, RepairPlanner, RprPlanner, TraditionalPlanner,
};
use rpr_topology::{cluster_for, BandwidthProfile, Placement, PlacementPolicy, GBIT};

const BLOCK: u64 = 256 << 20;

/// Run all ablations.
pub fn ablation() {
    ratio_sweep();
    preplacement();
    search_vs_heuristic();
    recovery_site();
    agg_switch();
    chain_baseline();
}

/// 1. Sweep the cross:inner bandwidth ratio for RS(12,4).
fn ratio_sweep() {
    let params = CodeParams::new(12, 4);
    let codec = StripeCodec::new(params);
    let topo = cluster_for(params, 1, 1);
    let placement = Placement::rpr_preplaced(params, &topo);

    let mut rows = Vec::new();
    for ratio in [1.0, 2.0, 5.0, 10.0, 20.0, 32.0] {
        let profile = BandwidthProfile::uniform(topo.rack_count(), GBIT, GBIT / ratio);
        let mut row = vec![format!("1:{ratio:.0}")];
        let mut tra_t = f64::NAN;
        for planner in [
            &TraditionalPlanner::new() as &dyn RepairPlanner,
            &CarPlanner::new(),
            &RprPlanner::new(),
        ] {
            let ctx = RepairContext::new(
                &codec,
                &topo,
                &placement,
                vec![BlockId(0)],
                BLOCK,
                &profile,
                CostModel::simics(),
            );
            let t = simulate(&planner.plan(&ctx), &ctx).repair_time;
            if tra_t.is_nan() {
                tra_t = t;
            }
            row.push(fmt_s(t));
        }
        let rpr_t: f64 = row.last().unwrap().parse().unwrap();
        row.push(fmt_pct(1.0 - rpr_t / tra_t));
        rows.push(row);
    }
    print_table(
        "Ablation 1 — cross:inner bandwidth ratio sweep, RS(12,4) single \
         failure (s). The paper assumes 1:10.",
        &["cross:inner", "Tra", "CAR", "RPR", "RPR vs Tra"],
        &rows,
    );
    println!(
        "\n> At 1:1 the rack hierarchy is irrelevant and all schemes converge; \
         the RPR advantage grows with the ratio."
    );
}

/// 2. Pre-placement on/off, averaged over data failures, EC2 decode costs.
fn preplacement() {
    let mut rows = Vec::new();
    for (n, k) in [(6usize, 2usize), (6, 3), (12, 4)] {
        let params = CodeParams::new(n, k);
        let codec = StripeCodec::new(params);
        let topo = cluster_for(params, 1, 1);
        let profile = BandwidthProfile::simics_default(topo.rack_count());
        let mut means = Vec::new();
        let mut hits = Vec::new();
        for policy in [PlacementPolicy::Compact, PlacementPolicy::RprPreplaced] {
            let placement = Placement::by_policy(policy, params, &topo);
            let mut sum = 0.0;
            let mut xor_hits = 0usize;
            for fail in 0..n {
                let ctx = RepairContext::new(
                    &codec,
                    &topo,
                    &placement,
                    vec![BlockId(fail)],
                    BLOCK,
                    &profile,
                    CostModel::ec2_t2micro(),
                );
                let plan = RprPlanner::new().plan(&ctx);
                if !plan.stats(&topo).needs_matrix {
                    xor_hits += 1;
                }
                sum += simulate(&plan, &ctx).repair_time;
            }
            means.push(sum / n as f64);
            hits.push(xor_hits);
        }
        rows.push(vec![
            format!("({n},{k})"),
            fmt_s(means[0]),
            format!("{}/{n}", hits[0]),
            fmt_s(means[1]),
            format!("{}/{n}", hits[1]),
            fmt_pct(1.0 - means[1] / means[0]),
        ]);
    }
    print_table(
        "Ablation 2 — §3.3 pre-placement on/off: mean RPR repair time over all \
         data failures (s) and XOR-path hit rate, slow-CPU (t2.micro) decode \
         costs",
        &[
            "code",
            "compact",
            "compact XOR",
            "pre-placed",
            "pre-placed XOR",
            "gain",
        ],
        &rows,
    );
    println!(
        "\n> Reproduction finding: with a *time-driven, XOR-aware* helper \
         selection (which prefers P0\n> over other parities), the compact \
         layout already reaches the eq.-6 path whenever the\n> distribution \
         allows, so physically relocating P0 adds little — the paper's gain \
         comes from\n> choosing the XOR-friendly helper set, not from where \
         P0 sits."
    );
}

/// 3. Helper-selection search vs the fullest-first heuristic.
fn search_vs_heuristic() {
    let mut rows = Vec::new();
    for (n, k) in [(6usize, 2usize), (8, 2), (8, 4), (12, 4)] {
        let params = CodeParams::new(n, k);
        let codec = StripeCodec::new(params);
        let topo = cluster_for(params, 1, 1);
        let placement = Placement::rpr_preplaced(params, &topo);
        let profile = BandwidthProfile::simics_default(topo.rack_count());
        let (mut s_sum, mut h_sum) = (0.0, 0.0);
        for fail in 0..n {
            let ctx = RepairContext::new(
                &codec,
                &topo,
                &placement,
                vec![BlockId(fail)],
                BLOCK,
                &profile,
                CostModel::simics(),
            );
            s_sum += simulate(&RprPlanner::new().plan(&ctx), &ctx).repair_time;
            h_sum += simulate(&RprPlanner::without_search().plan(&ctx), &ctx).repair_time;
        }
        rows.push(vec![
            format!("({n},{k})"),
            fmt_s(s_sum / n as f64),
            fmt_s(h_sum / n as f64),
            fmt_pct(1.0 - s_sum / h_sum),
        ]);
    }
    print_table(
        "Ablation 3 — exhaustive helper-selection search vs fullest-first \
         heuristic: mean RPR repair time (s)",
        &["code", "search", "heuristic", "search gain"],
        &rows,
    );
}

/// 4. Traditional repair's recovery site.
fn recovery_site() {
    let mut rows = Vec::new();
    for (n, k) in [(6usize, 2usize), (12, 4)] {
        let params = CodeParams::new(n, k);
        let codec = StripeCodec::new(params);
        let topo = cluster_for(params, 1, 1);
        let placement = Placement::compact(params, &topo);
        let profile = BandwidthProfile::simics_default(topo.rack_count());
        let t = |planner: &dyn RepairPlanner| {
            let ctx = RepairContext::new(
                &codec,
                &topo,
                &placement,
                vec![BlockId(0)],
                BLOCK,
                &profile,
                CostModel::simics(),
            );
            simulate(&planner.plan(&ctx), &ctx).repair_time
        };
        let spare = t(&TraditionalPlanner::new());
        let local = t(&TraditionalPlanner::locality_aware());
        rows.push(vec![
            format!("({n},{k})"),
            fmt_s(spare),
            fmt_s(local),
            fmt_pct(1.0 - local / spare),
        ]);
    }
    print_table(
        "Ablation 4 — traditional repair's recovery site: spare rack (the \
         paper's n*t_c model) vs failed rack (locality-aware) (s)",
        &["code", "spare rack", "failed rack", "locality gain"],
        &rows,
    );
    println!(
        "\n> Even locality-aware traditional repair stays far behind RPR \
         (compare Figure 8)."
    );
}

/// 5. Oversubscribed aggregation switch (Figure 2's shared fabric) at
///    fleet scale: a node failure repairs ~25 stripes concurrently, and
///    once the switch's total cross-rack capacity binds, traffic *volume*
///    (not just per-link scheduling) dictates the recovery makespan, so
///    RPR's traffic reduction pays twice.
fn agg_switch() {
    use rpr_core::CostModel as Cost;
    use rpr_store::{Failure, RecoveryOptions, Scheme, Store, StoreConfig};
    use rpr_topology::GBIT;

    let store = Store::build(StoreConfig {
        params: CodeParams::new(6, 3),
        racks: 5,
        nodes_per_rack: 5,
        stripes: 60,
        block_bytes: 64 << 20,
        preplace_p0: true,
        seed: 0xA66,
    });
    let profile = BandwidthProfile::simics_default(store.topology().rack_count());
    let cost = Cost::simics().scaled_for_block(store.config().block_bytes);
    let node = store
        .topology()
        .nodes()
        .max_by_key(|&n| store.blocks_on_node(n).len())
        .unwrap();

    let mut rows = Vec::new();
    for agg_gbit in [f64::INFINITY, 0.2, 0.1, 0.05] {
        let opts = RecoveryOptions {
            agg_capacity: agg_gbit.is_finite().then_some(agg_gbit * GBIT),
            ..Default::default()
        };
        let tra = store.recover_with_options(
            Failure::Node(node),
            Scheme::Traditional,
            &profile,
            cost,
            opts,
        );
        let rpr =
            store.recover_with_options(Failure::Node(node), Scheme::Rpr, &profile, cost, opts);
        rows.push(vec![
            if agg_gbit.is_finite() {
                format!("{agg_gbit} Gb/s")
            } else {
                "unlimited".to_string()
            },
            fmt_s(tra.makespan),
            fmt_s(rpr.makespan),
            fmt_pct(1.0 - rpr.makespan / tra.makespan),
        ]);
    }
    print_table(
        "Ablation 5 — oversubscribed aggregation switch at fleet scale: node \
         failure over a 60-stripe RS(6,3) store, total cross-rack fabric \
         capacity swept (recovery makespan, s)",
        &["agg capacity", "Tra", "RPR", "RPR vs Tra"],
        &rows,
    );
    println!(
        "\n> Once the shared fabric binds, makespan approaches \
         cross-bytes / capacity — and RPR\n> moves less than half the bytes."
    );
}

/// 6. Slice-pipelined chain repair (PUSH / ECPipe, the paper's related
///    work \[16\]) vs RPR's tree pipeline: same cross-rack traffic, different
///    schedule shape — the chain amortizes hops over slices, the tree
///    parallelizes racks over whole blocks.
fn chain_baseline() {
    use rpr_core::ChainPlanner;
    let mut rows = Vec::new();
    for (n, k) in [(6usize, 2usize), (8, 2), (8, 4), (12, 4)] {
        let params = CodeParams::new(n, k);
        let codec = StripeCodec::new(params);
        let topo = cluster_for(params, 1, 1);
        let placement = Placement::rpr_preplaced(params, &topo);
        let profile = BandwidthProfile::simics_default(topo.rack_count());
        let run = |planner: &dyn RepairPlanner| {
            let mut sum = 0.0;
            for fail in 0..n {
                let ctx = RepairContext::new(
                    &codec,
                    &topo,
                    &placement,
                    vec![BlockId(fail)],
                    BLOCK,
                    &profile,
                    CostModel::simics(),
                );
                sum += simulate(&planner.plan(&ctx), &ctx).repair_time;
            }
            sum / n as f64
        };
        let rpr = run(&RprPlanner::new());
        let chain1 = run(&ChainPlanner::with_slices(1));
        let chain16 = run(&ChainPlanner::with_slices(16));
        rows.push(vec![
            format!("({n},{k})"),
            fmt_s(rpr),
            fmt_s(chain1),
            fmt_s(chain16),
            fmt_pct(1.0 - chain16 / rpr),
        ]);
    }
    print_table(
        "Ablation 6 — repair pipelining (chain) baseline vs RPR: mean repair \
         time over data failures (s); chain shown unsliced and with 16 slices",
        &["code", "RPR", "chain s=1", "chain s=16", "chain16 vs RPR"],
        &rows,
    );
    println!(
        "\n> Slicing is orthogonal to rack-awareness: a 16-slice chain \
         amortizes its hop count and\n> can edge out whole-block tree \
         aggregation; RPR's schedule could adopt slicing too."
    );
}
