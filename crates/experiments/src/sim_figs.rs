//! Figures 7–11: the "Simics" simulator experiments.

use crate::util::{
    failure_sets, fmt_pct, fmt_s, print_table, stats, Fixture, MULTI_CODES, PAPER_CODES,
    WORST_CODES,
};
use rpr_codec::BlockId;
use rpr_core::{CarPlanner, RprPlanner, TraditionalPlanner};

const BLOCK: u64 = 256 << 20; // 256 MiB, §5.1.1

/// Figure 7 — cross-rack traffic (blocks), single-block failures.
pub fn fig7() {
    let mut rows = Vec::new();
    for (n, k) in PAPER_CODES {
        let f = Fixture::simics(n, k, BLOCK);
        let (mut tra, mut car, mut rpr) = (Vec::new(), Vec::new(), Vec::new());
        for fail in 0..n {
            tra.push(f.run_sim(&TraditionalPlanner::new(), vec![BlockId(fail)]).1);
            car.push(f.run_sim(&CarPlanner::new(), vec![BlockId(fail)]).1);
            rpr.push(f.run_sim(&RprPlanner::new(), vec![BlockId(fail)]).1);
        }
        rows.push(vec![
            format!("({n},{k})"),
            format!("{:.2}", stats(&tra).0),
            format!("{:.2}", stats(&car).0),
            format!("{:.2}", stats(&rpr).0),
        ]);
    }
    print_table(
        "Figure 7 — cross-rack traffic (blocks) for single-block failures, \
         averaged over all data positions (Simics simulator)",
        &["code", "Tra", "CAR", "RPR"],
        &rows,
    );
    println!("\n> Paper's shape: CAR == RPR (both use partial decoding); both < Tra = n.");
}

/// Figure 8 — total repair time (s), single-block failures.
pub fn fig8() {
    let mut rows = Vec::new();
    let mut reductions_tra = Vec::new();
    let mut reductions_car = Vec::new();
    for (n, k) in PAPER_CODES {
        let f = Fixture::simics(n, k, BLOCK);
        let (mut tra, mut car, mut rpr) = (Vec::new(), Vec::new(), Vec::new());
        for fail in 0..n {
            tra.push(f.run_sim(&TraditionalPlanner::new(), vec![BlockId(fail)]).0);
            car.push(f.run_sim(&CarPlanner::new(), vec![BlockId(fail)]).0);
            rpr.push(f.run_sim(&RprPlanner::new(), vec![BlockId(fail)]).0);
        }
        let (ta, _, _) = stats(&tra);
        let (ca, _, _) = stats(&car);
        let (ra, _, _) = stats(&rpr);
        reductions_tra.push(1.0 - ra / ta);
        reductions_car.push(1.0 - ra / ca);
        rows.push(vec![
            format!("({n},{k})"),
            fmt_s(ta),
            fmt_s(ca),
            fmt_s(ra),
            fmt_pct(1.0 - ra / ta),
            fmt_pct(1.0 - ra / ca),
        ]);
    }
    print_table(
        "Figure 8 — total repair time (s) for single-block failures, averaged \
         over all data positions (Simics simulator, 256 MiB blocks)",
        &["code", "Tra", "CAR", "RPR", "RPR vs Tra", "RPR vs CAR"],
        &rows,
    );
    let (at, _, mt) = stats(&reductions_tra);
    let (ac, _, mc) = stats(&reductions_car);
    println!(
        "\n> vs traditional: avg {} / max {} (paper: 67% / 81.5%); \
         vs CAR: avg {} / max {} (paper: 24% / 37%).",
        fmt_pct(at),
        fmt_pct(mt),
        fmt_pct(ac),
        fmt_pct(mc)
    );
}

fn multi_rows(time_not_traffic: bool, fast: bool) -> Vec<Vec<String>> {
    let cap = if fast { 20 } else { 300 };
    let mut rows = Vec::new();
    for (n, k, z) in MULTI_CODES {
        let f = Fixture::simics(n, k, BLOCK);
        let label = format!("({n},{k},{z})");
        let sets = failure_sets(n, z, cap, &label);
        let mut tra = Vec::new();
        let mut rpr = Vec::new();
        for failed in &sets {
            let t = f.run_sim(&TraditionalPlanner::new(), failed.clone());
            let r = f.run_sim(&RprPlanner::new(), failed.clone());
            if time_not_traffic {
                tra.push(t.0);
                rpr.push(r.0);
            } else {
                tra.push(t.1);
                rpr.push(r.1);
            }
        }
        let (ta, _, _) = stats(&tra);
        let (ra, rmin, rmax) = stats(&rpr);
        rows.push(vec![
            label,
            fmt_s(ta),
            format!("{} [{}, {}]", fmt_s(ra), fmt_s(rmin), fmt_s(rmax)),
            fmt_pct(1.0 - ra / ta),
        ]);
    }
    rows
}

/// Figure 9 — total repair time (s), multi-block non-worst failures.
pub fn fig9(fast: bool) {
    let rows = multi_rows(true, fast);
    print_table(
        "Figure 9 — total repair time (s) for 2..k-1 failures, averaged over \
         data-block failure positions; RPR shown as avg [min, max] (Simics)",
        &["code (n,k,z)", "Tra", "RPR avg [min,max]", "reduction"],
        &rows,
    );
    println!("\n> Paper: RPR reduces repair time by avg 40.75%, up to 64.5%.");
}

/// Figure 10 — cross-rack traffic (blocks), multi-block non-worst failures.
pub fn fig10(fast: bool) {
    let rows = multi_rows(false, fast);
    print_table(
        "Figure 10 — cross-rack traffic (blocks) for 2..k-1 failures; RPR shown \
         as avg [min, max] (Simics)",
        &["code (n,k,z)", "Tra", "RPR avg [min,max]", "reduction"],
        &rows,
    );
    println!("\n> Paper: RPR uses avg 29.35%, up to 50% less cross-rack traffic.");
}

/// Figure 11 — total repair time (s), worst case (k failures).
pub fn fig11(fast: bool) {
    let cap = if fast { 20 } else { 300 };
    let mut rows = Vec::new();
    for (n, k) in WORST_CODES {
        let f = Fixture::simics(n, k, BLOCK);
        let label = format!("({n},{k})");
        let sets = failure_sets(n, k, cap, &label);
        let mut tra = Vec::new();
        let mut rpr = Vec::new();
        for failed in &sets {
            tra.push(f.run_sim(&TraditionalPlanner::new(), failed.clone()).0);
            rpr.push(f.run_sim(&RprPlanner::new(), failed.clone()).0);
        }
        let (ta, _, _) = stats(&tra);
        let (ra, rmin, rmax) = stats(&rpr);
        rows.push(vec![
            label,
            fmt_s(ta),
            format!("{} [{}, {}]", fmt_s(ra), fmt_s(rmin), fmt_s(rmax)),
            fmt_pct(1.0 - ra / ta),
        ]);
    }
    print_table(
        "Figure 11 — total repair time (s) for the worst case (k failures), \
         codes with (n+k)/k > 3; RPR shown as avg [min, max] (Simics)",
        &["code", "Tra", "RPR avg [min,max]", "reduction"],
        &rows,
    );
    println!("\n> Paper: RPR reduces worst-case repair time by avg 18.3%, up to 29.8%.");
}
