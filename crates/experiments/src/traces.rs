//! Structured repair traces (`rpr-obs`) for the paper's single-failure
//! configurations: one simulated RPR repair per code, with the pipeline's
//! cross-rack timestep count checked against the paper's `⌈log2(s+1)⌉`
//! bound (§3.2). With `--out DIR`, the Chrome `trace_event` JSON for each
//! repair is written to `DIR/trace_rpr_<n>_<k>.json` — load it in
//! `chrome://tracing` or Perfetto. Schema: `docs/TRACING.md`.

use crate::util::{self, Fixture, PAPER_CODES};
use rpr_codec::BlockId;
use rpr_core::{simulate_traced, RepairPlanner, RprPlanner};

pub fn traces(fast: bool) {
    let block: u64 = if fast { 4 << 20 } else { 256 << 20 };
    let mut rows = Vec::new();
    for (n, k) in PAPER_CODES {
        let fx = Fixture::simics(n, k, block);
        let ctx = fx.ctx(vec![BlockId(1)]);
        let plan = RprPlanner::new().plan(&ctx);
        plan.validate(&fx.codec, &fx.topo, &fx.placement)
            .expect("generated plans must validate");

        let rec = rpr_obs::TraceRecorder::default();
        let out = simulate_traced(&plan, &ctx, &rec);
        let snap = rec.snapshot();
        let events = rec.take_events();

        let stats = plan.stats(&fx.topo);
        let (_, timesteps) = plan.cross_waves(&fx.topo);
        let expected = ceil_log2(stats.cross_transfers + 1);

        let mut file = String::from("—");
        if let Some(dir) = util::output_dir() {
            let path = dir.join(format!("trace_rpr_{n}_{k}.json"));
            std::fs::write(&path, rpr_obs::export::to_chrome_trace(&events))
                .expect("write trace JSON");
            file = path.display().to_string();
        }
        rows.push(vec![
            format!("({n},{k})"),
            stats.cross_transfers.to_string(),
            expected.to_string(),
            timesteps.to_string(),
            util::fmt_s(out.repair_time),
            format!("{} ({} dropped)", snap.recorded_events, snap.dropped_events),
            file,
        ]);
        assert_eq!(
            timesteps, expected,
            "({n},{k}): pipeline must hit the ⌈log2(s+1)⌉ timestep bound"
        );
    }
    util::print_table(
        "Repair traces: cross-rack pipeline timesteps (single failure, RPR)",
        &[
            "code",
            "cross sends s",
            "⌈log2(s+1)⌉",
            "timesteps",
            "sim time (s)",
            "events",
            "trace file",
        ],
        &rows,
    );
}

fn ceil_log2(x: usize) -> usize {
    (usize::BITS - (x.max(1) - 1).leading_zeros()) as usize
}
