//! The proof plane against a Byzantine helper: detection, conviction,
//! and the cost of integrity.
//!
//! For every single-failure configuration of the paper, inject a seeded
//! `StormFault::Lie` — wrong bytes under a valid FNV checksum — and run
//! the supervised repair at each proof mode. Off misses the lie
//! entirely; Advisory records the rejected proofs without touching
//! control flow; Mandatory convicts the liar, replans around it, and the
//! offline auditor (`ProofLedger::audit`) localizes the same dishonest
//! hop from the sealed ledger alone (`docs/ROBUSTNESS.md`).

use crate::util::{self, Fixture, PAPER_CODES};
use rpr_codec::BlockId;
use rpr_core::{supervise_injected, SuperviseConfig, SuperviseOutcome};
use rpr_faults::{FaultStorm, HealthTracker, StormFault};
use rpr_proof::ProofMode;

/// Seed for every lie storm in the table.
const SEED: u64 = 21;

pub fn byzantine() {
    let block: u64 = 256 << 20;

    let mut rows = Vec::new();
    for (n, k) in PAPER_CODES {
        let fx = Fixture::simics(n, k, block);
        let storm = FaultStorm::new(SEED).with_generation(vec![StormFault::Lie]);

        let run = |mode: ProofMode| -> SuperviseOutcome {
            let ctx = fx.ctx(vec![BlockId(1)]);
            let cfg = SuperviseConfig {
                proof: mode,
                ..SuperviseConfig::default()
            };
            let mut tracker = HealthTracker::with_defaults();
            supervise_injected(&ctx, &storm, &cfg, &mut tracker, rpr_obs::noop())
                .expect("a lone lie never exceeds the replan budget")
        };

        let off = run(ProofMode::Off);
        let adv = run(ProofMode::Advisory);
        let man = run(ProofMode::Mandatory);

        // Advisory must be a pure observer of the Off timeline.
        assert_eq!(adv.repair_time, off.repair_time);
        assert_eq!(adv.replans, off.replans);

        let audit = man.ledger.audit();
        let verdict = match audit.first_dishonest() {
            Some(i) => {
                let e = &man.ledger.entries[i];
                format!("node {} (gen {} op {})", e.proof.node, e.gen, e.proof.op)
            }
            None => "none".to_string(),
        };
        rows.push(vec![
            format!("({n},{k})"),
            util::fmt_s(off.clean_time),
            "undetected".to_string(),
            format!("{} rejected", adv.proofs_rejected),
            format!("{}/{}", man.proofs_rejected, man.proofs_emitted),
            man.accusations.to_string(),
            util::fmt_s(man.repair_time),
            util::fmt_pct(man.repair_time / off.clean_time - 1.0),
            verdict,
        ]);
    }
    util::print_table(
        &format!("Byzantine helper vs the proof plane (RPR, single failure, sim, lie seed {SEED})"),
        &[
            "code",
            "clean (s)",
            "off",
            "advisory",
            "mandatory rej/emit",
            "accused",
            "repair (s)",
            "overhead",
            "audit localizes",
        ],
        &rows,
    );
    println!(
        "\n> Off completes on time with silently wrong bytes; Advisory sees the lie \
         without acting;\n> Mandatory pays one replan to finish verified, and the \
         offline audit convicts the same hop\n> from the ledger alone."
    );
}
