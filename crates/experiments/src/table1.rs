//! Table 1: the inter/intra-region bandwidth matrix, as configured and as
//! *measured* through the rpr-exec token-bucket links.

use crate::util::print_table;
use rpr_topology::{EC2_REGIONS, EC2_TABLE1_MBPS, MBIT};

/// Regenerate Table 1. The configured matrix is the paper's measurement;
/// the measured column verifies that the execution engine's shapers
/// actually deliver those rates (scaled 1/16 to keep the probe fast).
pub fn table1(fast: bool) {
    let scale = 1.0 / 16.0;
    let probe_seconds = if fast { 0.1 } else { 0.4 };

    let mut rows = Vec::new();
    for (i, from) in EC2_REGIONS.iter().enumerate() {
        let mut row = vec![from.to_string()];
        #[allow(clippy::needless_range_loop)] // j indexes both matrix axes
        for j in 0..EC2_REGIONS.len() {
            if j < i {
                row.push(String::new());
                continue;
            }
            let nominal = EC2_TABLE1_MBPS[i][j];
            let measured = rpr_exec::measure_path_throughput(nominal * MBIT * scale, probe_seconds)
                / MBIT
                / scale;
            row.push(format!("{nominal:.1} ({measured:.1})"));
        }
        rows.push(row);
    }
    let mut headers = vec!["Mbps"];
    headers.extend(EC2_REGIONS.iter().copied());
    print_table(
        "Table 1 — inter/intra-region bandwidth in Mbps: configured (measured \
         through the rpr-exec shapers, rescaled)",
        &headers,
        &rows,
    );
    let profile = rpr_topology::ec2_table1_profile(5);
    println!(
        "\n> mean cross {:.2} Mbps (paper 53.03), mean inner {:.2} Mbps (paper \
         600.97), ratio {:.2} (paper 11.32).",
        profile.mean_cross() / MBIT,
        profile.mean_inner() / MBIT,
        profile.cross_to_inner_ratio()
    );
}
