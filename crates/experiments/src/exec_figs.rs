//! Figures 12–14: the "EC2" experiments — real bytes through Table-1
//! bandwidth shapers, executed by `rpr-exec` and verified byte-for-byte.

use crate::util::{
    fmt_pct, fmt_s, print_table, stats, Fixture, MULTI_CODES, PAPER_CODES, WORST_CODES,
};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rpr_codec::BlockId;
use rpr_core::{CarPlanner, RepairPlanner, RprPlanner, TraditionalPlanner};
use rpr_exec::execute;

/// Experiments run with 4 MiB blocks (1/64 of the paper's 256 MB) at the
/// unscaled Table-1 rates, so every reported time is 1/64 of the EC2-scale
/// equivalent with all ratios preserved.
fn block_bytes(fast: bool) -> u64 {
    if fast {
        2 << 20
    } else {
        8 << 20
    }
}

fn stripe_for(f: &Fixture, seed: u64) -> Vec<Vec<u8>> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let n = f.codec.params().n;
    let data: Vec<Vec<u8>> = (0..n)
        .map(|_| (0..f.block_bytes).map(|_| rng.random()).collect())
        .collect();
    let refs: Vec<&[u8]> = data.iter().map(|b| b.as_slice()).collect();
    f.codec.encode_stripe(&refs)
}

fn run_exec(f: &Fixture, planner: &dyn RepairPlanner, failed: Vec<BlockId>, seed: u64) -> f64 {
    let ctx = f.ctx(failed);
    let plan = planner.plan(&ctx);
    plan.validate(&f.codec, &f.topo, &f.placement)
        .expect("generated plans must validate");
    let stripe = stripe_for(f, seed);
    let report = execute(&plan, &ctx, &stripe);
    assert!(
        report.verified,
        "executor reconstructed wrong bytes: {:?}",
        report.mismatches
    );
    report.wall_seconds
}

/// Figure 12 — total repair time (s), single-block failures on "EC2".
pub fn fig12(fast: bool) {
    let block = block_bytes(fast);
    let positions = if fast { 1 } else { 2 };
    let mut rows = Vec::new();
    let mut red_tra = Vec::new();
    let mut red_car = Vec::new();
    for (n, k) in PAPER_CODES {
        let f = Fixture::ec2(n, k, block, 1.0);
        let mut rng = ChaCha8Rng::seed_from_u64(0x5EED + n as u64 * 31 + k as u64);
        let (mut tra, mut car, mut rpr) = (Vec::new(), Vec::new(), Vec::new());
        for p in 0..positions {
            let fail = rng.random_range(0..n);
            let seed = 1000 + p as u64;
            tra.push(run_exec(
                &f,
                &TraditionalPlanner::new(),
                vec![BlockId(fail)],
                seed,
            ));
            car.push(run_exec(&f, &CarPlanner::new(), vec![BlockId(fail)], seed));
            rpr.push(run_exec(&f, &RprPlanner::new(), vec![BlockId(fail)], seed));
        }
        let (ta, _, _) = stats(&tra);
        let (ca, _, _) = stats(&car);
        let (ra, _, _) = stats(&rpr);
        red_tra.push(1.0 - ra / ta);
        red_car.push(1.0 - ra / ca);
        rows.push(vec![
            format!("({n},{k})"),
            fmt_s(ta),
            fmt_s(ca),
            fmt_s(ra),
            fmt_pct(1.0 - ra / ta),
            fmt_pct(1.0 - ra / ca),
        ]);
    }
    print_table(
        &format!(
            "Figure 12 — total repair time (s) for single-block failures on the \
             'EC2' engine ({} MiB blocks, Table-1 rates; times are 1/{} of the \
             256 MB-scale equivalent)",
            block >> 20,
            256 / (block >> 20)
        ),
        &["code", "Tra", "CAR", "RPR", "RPR vs Tra", "RPR vs CAR"],
        &rows,
    );
    let (at, _, mt) = stats(&red_tra);
    let (ac, _, mc) = stats(&red_car);
    println!(
        "\n> vs traditional: avg {} / max {} (paper: 67.6% / 80.8%); vs CAR: \
         avg {} / max {} (paper: 37.2% / 50.3%).",
        fmt_pct(at),
        fmt_pct(mt),
        fmt_pct(ac),
        fmt_pct(mc)
    );
}

fn exec_multi(codes: &[(usize, usize, usize)], fast: bool, title: &str, note: &str) {
    let block = block_bytes(fast);
    let combos = if fast { 1 } else { 2 };
    let mut rows = Vec::new();
    for &(n, k, z) in codes {
        let f = Fixture::ec2(n, k, block, 1.0);
        let mut rng = ChaCha8Rng::seed_from_u64(0xC0DE + (n * 100 + k * 10 + z) as u64);
        let mut tra = Vec::new();
        let mut rpr = Vec::new();
        for c in 0..combos {
            // A random z-subset of the data blocks.
            let mut failed: Vec<usize> = Vec::new();
            while failed.len() < z {
                let b = rng.random_range(0..n);
                if !failed.contains(&b) {
                    failed.push(b);
                }
            }
            failed.sort_unstable();
            let failed: Vec<BlockId> = failed.into_iter().map(BlockId).collect();
            let seed = 2000 + c as u64;
            tra.push(run_exec(
                &f,
                &TraditionalPlanner::new(),
                failed.clone(),
                seed,
            ));
            rpr.push(run_exec(&f, &RprPlanner::new(), failed, seed));
        }
        let (ta, _, _) = stats(&tra);
        let (ra, rmin, rmax) = stats(&rpr);
        rows.push(vec![
            format!("({n},{k},{z})"),
            fmt_s(ta),
            format!("{} [{}, {}]", fmt_s(ra), fmt_s(rmin), fmt_s(rmax)),
            fmt_pct(1.0 - ra / ta),
        ]);
    }
    print_table(
        title,
        &["code (n,k,z)", "Tra", "RPR avg [min,max]", "reduction"],
        &rows,
    );
    println!("\n> {note}");
}

/// Figure 13 — multi-block (non-worst) repair time on "EC2".
pub fn fig13(fast: bool) {
    let codes: Vec<(usize, usize, usize)> = MULTI_CODES.to_vec();
    exec_multi(
        &codes,
        fast,
        "Figure 13 — total repair time (s) for 2..k-1 failures on the 'EC2' \
         engine (sampled failure positions)",
        "Paper: RPR reduces repair time by avg 39.93%, up to 61.96%.",
    );
}

/// Figure 14 — multi-block worst case (k failures) on "EC2".
pub fn fig14(fast: bool) {
    let codes: Vec<(usize, usize, usize)> = WORST_CODES.iter().map(|&(n, k)| (n, k, k)).collect();
    exec_multi(
        &codes,
        fast,
        "Figure 14 — total repair time (s) for the worst case (k failures) on \
         the 'EC2' engine (sampled failure positions)",
        "Paper: RPR reduces worst-case repair time by avg 20.6%, up to 32.8%.",
    );
}
