//! Figure 6: theoretical total repair time, traditional vs RPR worst case.

use crate::util::{print_table, PAPER_CODES};
use rpr_codec::CodeParams;
use rpr_core::analysis::{
    rpr_cross_time, rpr_inner_time, rpr_repair_time, traditional_repair_time, AnalysisParams,
};

/// Regenerate Figure 6 (`t_i = 1 ms`, `t_c = 10 ms`).
pub fn fig6() {
    let a = AnalysisParams::figure6();
    let rows: Vec<Vec<String>> = PAPER_CODES
        .iter()
        .map(|&(n, k)| {
            let p = CodeParams::new(n, k);
            vec![
                format!("({n},{k})"),
                format!("{:.0}", traditional_repair_time(p, a) * 1e3),
                format!("{:.0}", rpr_inner_time(p, a) * 1e3),
                format!("{:.0}", rpr_cross_time(p, a) * 1e3),
                format!("{:.0}", rpr_repair_time(p, a) * 1e3),
                format!(
                    "{:.1}%",
                    (1.0 - rpr_repair_time(p, a) / traditional_repair_time(p, a)) * 100.0
                ),
            ]
        })
        .collect();
    print_table(
        "Figure 6 — theoretical repair time (ms), traditional (eq. 10) vs RPR worst case (eq. 13)",
        &[
            "code",
            "traditional",
            "RPR inner (eq. 11)",
            "RPR cross (eq. 12)",
            "RPR total",
            "reduction",
        ],
        &rows,
    );
    println!(
        "\n> Paper's trend: traditional grows linearly in n; RPR grows with \
         ⌊log2⌋ terms only."
    );
}
