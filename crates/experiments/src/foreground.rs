//! Foreground latency under repair: the `rpr-load` open-loop client
//! workload co-simulated with a staggered stream of stripe repairs, in
//! the three tenancy modes of `docs/FOREGROUND.md` — repair off (the
//! pre-failure baseline), unthrottled repair, and foreground-priority
//! QoS (85% link share reserved for clients, 10% repair floor).
//!
//! Everything is seeded through [`LoadSpec::paper_config`], so reruns
//! reproduce the table bit-for-bit; only the wall-clock column varies
//! by host. The table asserts the headline claim — QoS-throttled p99
//! strictly below unthrottled p99 at the (6,3) paper config — so a
//! regression fails the experiment run, not just a test.

use crate::util::print_table;
use rpr_load::{run_load, LoadSpec, RepairMode};

/// Print the foreground-latency table (`--fast` runs one seed instead
/// of three).
pub fn foreground(fast: bool) {
    let seeds: &[u64] = if fast { &[17] } else { &[17, 4242, 99] };
    let modes = [
        RepairMode::Off,
        RepairMode::Unthrottled,
        LoadSpec::paper_qos(),
    ];
    println!(
        "\nforeground: RS(6,3), 240 requests at 40 req/s (90% reads, zipf 0.9 over 64 \
         objects), 4 MiB requests, 4 staggered stripe repairs of 64 MiB blocks"
    );

    let mut rows = Vec::new();
    for &seed in seeds {
        let mut p99 = [0.0f64; 3];
        for (i, &mode) in modes.iter().enumerate() {
            let start = std::time::Instant::now();
            let s = run_load(&LoadSpec::paper_config(seed, mode));
            let wall = start.elapsed().as_secs_f64();
            p99[i] = s.latency_p99;
            rows.push(vec![
                format!("{seed}"),
                s.mode.to_string(),
                format!("{:.2}", s.repair_fraction),
                format!("{}", s.degraded),
                format!("{:.3}", s.latency_p50),
                format!("{:.3}", s.latency_p99),
                format!("{:.3}", s.latency_p999),
                format!("{:.3}", s.first_byte_p99),
                format!("{:.2}", s.repair_makespan),
                format!("{:.2}", wall),
            ]);
        }
        assert!(
            p99[2] < p99[1],
            "seed {seed}: QoS p99 ({}) must be strictly below unthrottled p99 ({})",
            p99[2],
            p99[1]
        );
    }
    print_table(
        "Foreground latency under repair (RS(6,3), 3 modes)",
        &[
            "seed",
            "mode",
            "repair frac",
            "degraded",
            "p50 (s)",
            "p99 (s)",
            "p999 (s)",
            "first-byte p99 (s)",
            "repair makespan (s)",
            "wall (s)",
        ],
        &rows,
    );
}
