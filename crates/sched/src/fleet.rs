//! Synthetic fleet construction and the end-to-end fleet run.
//!
//! A **fleet** is a large population of stripes spread over a rack
//! cluster, each stripe missing 1..=k blocks (its *at-risk level*). This
//! module generates such a population deterministically from a seed,
//! costs every stripe's supervised repair, and drains the backlog
//! through [`drain_fleet`] under bandwidth arbitration — optionally
//! co-simulated with a churn stream and journaled for crash restart
//! (see [`FleetIo`]).
//!
//! **Why a million stripes fit in one process.** Every stripe uses the
//! paper's compact placement pattern: `q = ⌈(n+k)/k⌉` racks, at most `k`
//! blocks per rack, same block→rack layout for all stripes — only the
//! *which racks / which hosts* assignment differs per stripe. Repair
//! cost and plan shape depend only on the failed-block set (the stripe's
//! **repair class**), not on which physical racks the stripe landed on.
//! So the fleet run simulates one supervised repair per distinct class
//! on a canonical `q`-rack cluster — a few dozen to a few hundred sims,
//! parallelized on the work-stealing pool — and every stripe stores just
//! its class id and its `n+k` host nodes (~40 bytes/stripe). Per-stripe
//! bandwidth demands are translated from canonical to physical node ids
//! lazily, only while a stripe is at the queue head, so the scheduler
//! never materializes a million demand vectors.
//!
//! Class caching is only valid when the repair outcome is
//! seed-independent: with an empty fault storm and hedging disabled,
//! `supervise_injected` is a pure function of the repair context. When a
//! storm template is configured (or hedging is on), the fleet falls back
//! to one full supervised sim per stripe — same per-stripe seed
//! derivation as `Store::recover_supervised` — still pooled, but sized
//! for thousands of stripes rather than millions.

use std::cell::RefCell;
use std::collections::HashMap;

use rpr_codec::{BlockId, CodeParams, StripeCodec};
use rpr_core::{
    supervise_injected, CarPlanner, CostModel, RepairContext, RepairPlan, RepairPlanner,
    RprPlanner, SuperviseConfig, Tier, TraditionalPlanner,
};
use rpr_faults::{ChurnProcess, FaultStorm, HealthTracker, SplitMix64, StormFault};
use rpr_netsim::Network;
use rpr_obs::Recorder;
use rpr_topology::{BandwidthProfile, NodeId, Placement, Topology, GBIT};

use crate::arbiter::{plan_demand, BandwidthArbiter, Demand, QosClass};
use crate::journal::{FleetJournal, JournalReplay};
use crate::pool::{default_threads, run_indexed};
use crate::sched::{
    drain_fleet, ChurnOptions, DrainOptions, FleetJob, FleetSummary, JobCost, LostStripe,
    StripeRecord,
};

/// Salt mixed into the per-stripe escalation stream so escalated failed
/// blocks never replay the draws that chose the base failed set.
const ESCALATION_SALT: u64 = 0x9D39_247E_3377_6D41;

/// Salt deriving the fleet churn stream from the master seed.
const CHURN_SALT: u64 = 0x6368_7572_6E21_7273;

/// Everything that defines a synthetic fleet run. Construct with
/// [`FleetSpec::default`] and override fields.
#[derive(Clone, Debug)]
pub struct FleetSpec {
    /// Code geometry of every stripe.
    pub params: CodeParams,
    /// Rack count of the physical cluster (must be ≥ the code's `q`).
    pub racks: usize,
    /// Nodes per rack (must be > `k` so every rack keeps a spare, and
    /// ≤ 64).
    pub nodes_per_rack: usize,
    /// Number of at-risk stripes in the backlog.
    pub stripes: usize,
    /// Bytes per block.
    pub block_bytes: u64,
    /// Master seed: placement, at-risk levels, and fault sites all
    /// derive from it. Same seed → bit-identical run.
    pub seed: u64,
    /// `level_weights[z-1]` is the relative frequency of stripes with
    /// `z` failed blocks; truncated at `k` and renormalized. The default
    /// skews heavily toward single failures, as real fleets do.
    pub level_weights: Vec<f64>,
    /// Fault-storm template applied to every stripe (empty = clean
    /// repairs, enabling class caching). Same shape as
    /// `SupervisedRecoveryOptions::storm`.
    pub storm: Vec<Vec<StormFault>>,
    /// Supervisor configuration shared by every stripe.
    pub cfg: SuperviseConfig,
    /// Finite aggregation-switch capacity in bytes/sec shared by all
    /// concurrent cross-rack repair traffic (`None` = unconstrained).
    pub agg_capacity: Option<f64>,
    /// When false the arbiter admits everything immediately — used to
    /// prove arbitration only adds waiting.
    pub arbitrate: bool,
    /// QoS class repair admission runs under: with
    /// [`QosClass::ForegroundPriority`] the arbiter admits each stripe
    /// against only the residual (non-foreground) fraction of every
    /// link, so a drain sharing the cluster with client traffic queues
    /// earlier. See `docs/FOREGROUND.md`.
    pub qos: QosClass,
    /// Inner-rack link rate in bytes/sec.
    pub inner_bps: f64,
    /// Cross-rack link rate in bytes/sec.
    pub cross_bps: f64,
    /// Decode-cost model for planning and simulation.
    pub cost: CostModel,
    /// Worker threads for class sims and storm-path repairs
    /// (0 = automatic).
    pub threads: usize,
    /// Mean churn events per fleet-clock second co-simulated with the
    /// drain (0 = the world stops failing once the drain starts, the
    /// pre-churn behavior). Each event hits one or more live stripes
    /// with another block failure; a stripe pushed past `k` failures is
    /// permanently lost.
    pub churn_rate: f64,
    /// Escalation policy under churn: `true` re-prioritizes victims at
    /// their new at-risk level (in-flight victims hand the failure to
    /// their running supervisor); `false` keeps the enqueue-time order,
    /// the baseline the `churn` experiments table contrasts against.
    pub escalate: bool,
}

impl Default for FleetSpec {
    fn default() -> FleetSpec {
        FleetSpec {
            params: CodeParams::new(6, 3),
            racks: 25,
            nodes_per_rack: 16,
            stripes: 10_000,
            block_bytes: 256 << 20,
            seed: 17,
            level_weights: vec![0.85, 0.12, 0.03],
            storm: Vec::new(),
            cfg: SuperviseConfig::default(),
            agg_capacity: None,
            arbitrate: true,
            qos: QosClass::Unthrottled,
            inner_bps: GBIT,
            cross_bps: GBIT / 10.0,
            cost: CostModel::free(),
            threads: 0,
            churn_rate: 0.0,
            escalate: true,
        }
    }
}

impl FleetSpec {
    /// Panics with a descriptive message if the spec is internally
    /// inconsistent (too few racks for the code, no spare nodes, ...).
    pub fn validate(&self) {
        let q = self.params.rack_count();
        assert!(self.racks >= q, "FleetSpec: need at least {q} racks");
        assert!(
            self.nodes_per_rack > self.params.k,
            "FleetSpec: each rack needs a spare node beyond its {} blocks",
            self.params.k
        );
        assert!(
            self.nodes_per_rack <= 64,
            "FleetSpec: nodes_per_rack is limited to 64"
        );
        assert!(self.stripes > 0, "FleetSpec: empty fleet");
        assert!(self.block_bytes > 0, "FleetSpec: zero block size");
        assert!(
            !self.level_weights.is_empty() && self.level_weights.iter().any(|&w| w > 0.0),
            "FleetSpec: level weights must have positive mass"
        );
        assert!(
            self.churn_rate >= 0.0 && self.churn_rate.is_finite(),
            "FleetSpec: churn_rate must be finite and non-negative"
        );
    }

    /// True when every stripe's repair outcome is seed-independent, so
    /// stripes sharing a failed-block set share one canonical sim.
    fn cacheable(&self) -> bool {
        self.storm.is_empty() && self.cfg.hedge.is_none()
    }
}

/// External plumbing for a fleet run: the write-ahead journal the drain
/// appends to, and a parsed prior journal whose cost records short-cut
/// re-simulation on resume. `FleetIo::default()` runs unplumbed.
///
/// Resume works by deterministic re-derivation: the virtual-clock drain
/// is pure arithmetic, so replaying the same spec reconstructs the index
/// and arbiter state exactly. What the journal buys is skipping the
/// expensive part — the per-stripe supervised simulations of the storm
/// path — via `cost` records keyed `(stripe, level)` (the class-cached
/// clean path runs a few dozen shared sims and doesn't need skipping).
#[derive(Default)]
pub struct FleetIo<'a> {
    /// Append every scheduling decision and per-stripe cost here.
    pub journal: Option<&'a RefCell<FleetJournal>>,
    /// Replay cost records from this parsed journal (its header must
    /// match the spec's seed and stripe count).
    pub resume: Option<&'a JournalReplay>,
}

/// Result of a fleet run.
#[derive(Clone, Debug)]
pub struct FleetOutcome {
    /// Aggregate fleet numbers (what `rpr fleet --json` prints).
    pub summary: FleetSummary,
    /// Per-stripe admission/finish records for **repaired** stripes, in
    /// stripe order (every stripe, absent churn losses).
    pub records: Vec<StripeRecord>,
    /// Permanent-loss ledger: stripes churn pushed past the code's
    /// repair capability mid-drain, in loss order.
    pub lost: Vec<LostStripe>,
    /// Distinct repair classes the fleet decomposed into (1 sim each on
    /// the cached path).
    pub classes: usize,
    /// Total replan generations across the fleet.
    pub replans: usize,
    /// Total transfer retries across the fleet.
    pub retries: usize,
    /// Stripes that completed below [`Tier::Full`].
    pub degraded: usize,
    /// Stripes whose storm was unrecoverable (excluded from the
    /// backlog; 0 on the cached path).
    pub unrepairable: usize,
    /// Peak reservation on the most loaded arbitrated link, as a
    /// fraction of its capacity (≤ 1 unless arbitration was disabled).
    pub max_utilization: f64,
    /// Per-stripe simulations skipped because a resume journal already
    /// held their cost records (0 without [`FleetIo::resume`]).
    pub replayed: usize,
}

/// What one repair class costs: the outcome of its canonical sim plus
/// its bandwidth demand in canonical node ids.
#[derive(Clone)]
struct ClassInfo {
    duration: f64,
    cross_bytes: u64,
    inner_bytes: u64,
    demand: Demand,
    replans: usize,
    retries: usize,
    degraded: bool,
}

/// Where a canonical node sits in the per-stripe translation: hosting
/// block `b`, or the `rank`-th spare of canonical rack `rack_pos`.
#[derive(Clone, Copy)]
enum Role {
    Host(usize),
    Free { rack_pos: usize, rank: usize },
}

/// The planner fallback chain the supervisor uses for its first
/// generation (RPR, then CAR for single failures, then traditional) —
/// reproduced here to derive the *initial* plan's bandwidth demand.
/// Replans stay within the same stripe's rack footprint, so the initial
/// demand remains the right reservation.
///
/// # Errors
/// Returns the last validation failure if no planner in the chain
/// produces a valid plan (cannot happen for ≤ k failures on a
/// single-rack-fault-tolerant placement).
pub fn first_valid_plan(ctx: &RepairContext<'_>) -> Result<RepairPlan, String> {
    let plan = RprPlanner::new().plan(ctx);
    if plan.validate(ctx.codec, ctx.topo, ctx.placement).is_ok() {
        return Ok(plan);
    }
    if ctx.failed.len() == 1 {
        let plan = CarPlanner::new().plan(ctx);
        if plan.validate(ctx.codec, ctx.topo, ctx.placement).is_ok() {
            return Ok(plan);
        }
    }
    let plan = TraditionalPlanner::new().plan(ctx);
    plan.validate(ctx.codec, ctx.topo, ctx.placement)?;
    Ok(plan)
}

/// Draw an at-risk level from the spec's weight table (1-based,
/// truncated at `k`).
fn draw_level(rng: &mut SplitMix64, weights: &[f64], k: usize) -> usize {
    let weights = &weights[..weights.len().min(k)];
    let total: f64 = weights.iter().filter(|w| w.is_sign_positive()).sum();
    let mut u = rng.next_f64() * total;
    for (i, &w) in weights.iter().enumerate() {
        if w <= 0.0 {
            continue;
        }
        u -= w;
        if u <= 0.0 {
            return i + 1;
        }
    }
    1
}

/// One stripe of the synthetic fleet: its repair class and where its
/// blocks physically live.
struct StripeGen {
    class: u32,
    /// Global node id of each block, indexed by block id.
    hosts: Box<[u32]>,
}

/// Run a synthetic fleet: generate the stripe population, cost every
/// repair class (or every stripe, under a storm), then drain the
/// backlog through the bandwidth arbiter — under churn and journaling
/// when the spec and [`FleetIo`] ask for them. Deterministic for a
/// fixed spec; `rec` receives the `stripe_enqueued` / `stripe_admitted`
/// / `bandwidth_waited` / churn event stream.
///
/// # Panics
/// Panics if the spec fails [`FleetSpec::validate`], or a resume
/// journal's header does not match the spec.
pub fn run_synthetic_fleet(spec: &FleetSpec, rec: &dyn Recorder) -> FleetOutcome {
    run_fleet_with(spec, FleetIo::default(), rec)
}

/// [`run_synthetic_fleet`] with journal/resume plumbing. See [`FleetIo`]
/// for the resume model.
///
/// # Panics
/// Panics if the spec fails [`FleetSpec::validate`], or a resume
/// journal's header does not match the spec.
pub fn run_fleet_with(spec: &FleetSpec, io: FleetIo<'_>, rec: &dyn Recorder) -> FleetOutcome {
    spec.validate();
    if let Some(r) = io.resume {
        assert_eq!(
            r.seed, spec.seed,
            "fleet resume: journal was written by seed {} but the spec says {}",
            r.seed, spec.seed
        );
        assert_eq!(
            r.stripes, spec.stripes,
            "fleet resume: journal covers {} stripes but the spec says {}",
            r.stripes, spec.stripes
        );
    }
    let params = spec.params;
    let q = params.rack_count();
    let npr = spec.nodes_per_rack;
    let total = params.total();
    let threads = if spec.threads == 0 {
        default_threads()
    } else {
        spec.threads
    };

    // Canonical q-rack world every class sim runs on. Same nodes-per-rack
    // as the physical cluster, so the canonical↔physical node translation
    // is a bijection per stripe.
    let codec = StripeCodec::new(params);
    let canon_topo = Topology::uniform(q, npr);
    let canon_placement = Placement::rpr_preplaced(params, &canon_topo);
    let canon_profile = BandwidthProfile::uniform(q, spec.inner_bps, spec.cross_bps);
    let canon_net = Network::new(canon_topo.clone(), canon_profile.clone());
    let canon_nodes = canon_topo.node_count();

    // Role of every canonical node, and each canonical rack's first
    // block (used to recover the stripe's physical rack from its hosts).
    let mut roles: Vec<Role> = Vec::with_capacity(canon_nodes);
    let mut free_rank = vec![0usize; q];
    for c in 0..canon_nodes {
        let rack_pos = c / npr;
        match canon_placement.block_on(NodeId(c)) {
            Some(b) => roles.push(Role::Host(b.0)),
            None => {
                roles.push(Role::Free {
                    rack_pos,
                    rank: free_rank[rack_pos],
                });
                free_rank[rack_pos] += 1;
            }
        }
    }
    let first_block_in_rack: Vec<usize> = (0..q)
        .map(|p| {
            (0..total)
                .find(|&b| canon_placement.node_of(BlockId(b)).0 / npr == p)
                .expect("compact placement hosts a block in every rack")
        })
        .collect();

    // ---- Stripe population -------------------------------------------
    // Per-stripe generation is serial (it interns class keys), but cheap:
    // a handful of rng draws and one map probe per stripe.
    let mut class_keys: std::collections::HashMap<Vec<usize>, u32> =
        std::collections::HashMap::new();
    let mut class_failed: Vec<Vec<usize>> = Vec::new();
    let mut stripes: Vec<StripeGen> = Vec::with_capacity(spec.stripes);
    for s in 0..spec.stripes {
        let mut rng = SplitMix64::new(
            (spec.seed ^ (s as u64))
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(0x5851_F42D_4C95_7F2D),
        );
        let z = draw_level(&mut rng, &spec.level_weights, params.k);
        let mut failed: Vec<usize> = Vec::with_capacity(z);
        while failed.len() < z {
            let b = rng.pick(total);
            if !failed.contains(&b) {
                failed.push(b);
            }
        }
        failed.sort_unstable();
        let next_id = class_failed.len() as u32;
        let class = *class_keys.entry(failed.clone()).or_insert_with(|| {
            class_failed.push(failed.clone());
            next_id
        });

        // Physical placement: q distinct racks, then a distinct slot per
        // block within its rack.
        let mut racks: Vec<usize> = Vec::with_capacity(q);
        while racks.len() < q {
            let r = rng.pick(spec.racks);
            if !racks.contains(&r) {
                racks.push(r);
            }
        }
        let mut hosts = vec![0u32; total].into_boxed_slice();
        let mut used_slots = vec![0u64; q];
        for b in 0..total {
            let c = canon_placement.node_of(BlockId(b)).0;
            let rack_pos = c / npr;
            loop {
                let slot = rng.pick(npr);
                if used_slots[rack_pos] & (1 << slot) == 0 {
                    used_slots[rack_pos] |= 1 << slot;
                    hosts[b] = (racks[rack_pos] * npr + slot) as u32;
                    break;
                }
            }
        }
        stripes.push(StripeGen { class, hosts });
    }

    // ---- Repair costing ----------------------------------------------
    let cost = spec.cost;
    let make_ctx = |failed: &[usize]| {
        RepairContext::new(
            &codec,
            &canon_topo,
            &canon_placement,
            failed.iter().map(|&b| BlockId(b)).collect(),
            spec.block_bytes,
            &canon_profile,
            cost,
        )
    };

    let mut replans = 0usize;
    let mut retries = 0usize;
    let mut degraded = 0usize;
    let mut unrepairable = 0usize;
    let mut replayed = 0usize;

    // jobs[i] schedules stripes[kept[i]]; per-job demand comes from
    // `demands` (cached path: shared per class; storm path: per stripe).
    let mut jobs: Vec<FleetJob> = Vec::with_capacity(spec.stripes);
    let mut kept: Vec<u32> = Vec::with_capacity(spec.stripes);
    let job_demands: Vec<Demand>;

    if spec.cacheable() {
        // One canonical sim per distinct failed-block set.
        let infos: Vec<ClassInfo> = run_indexed(threads, class_failed.len(), |ci| {
            let ctx = make_ctx(&class_failed[ci]);
            let storm = FaultStorm::new(0);
            let mut tracker = HealthTracker::with_defaults();
            let out = supervise_injected(&ctx, &storm, &spec.cfg, &mut tracker, rpr_obs::noop())
                .expect("clean supervised repair cannot fail");
            let plan = first_valid_plan(&ctx).expect("a valid plan exists for <=k failures");
            ClassInfo {
                duration: out.repair_time,
                cross_bytes: out.cross_bytes,
                inner_bytes: out.inner_bytes,
                demand: plan_demand(&plan, &canon_topo, &canon_net),
                replans: out.replans,
                retries: out.retries,
                degraded: out.final_tier > Tier::Full,
            }
        });
        for (s, gen) in stripes.iter().enumerate() {
            let info = &infos[gen.class as usize];
            replans += info.replans;
            retries += info.retries;
            degraded += usize::from(info.degraded);
            jobs.push(FleetJob {
                stripe: s as u32,
                level: class_failed[gen.class as usize].len(),
                duration: info.duration,
                arrival: 0.0,
                cross_bytes: info.cross_bytes,
                inner_bytes: info.inner_bytes,
            });
            kept.push(s as u32);
        }
        job_demands = infos.into_iter().map(|i| i.demand).collect();
    } else {
        // Storm path: every stripe runs its own supervised sim with the
        // same per-stripe seed derivation as `Store::recover_supervised`
        // — unless a resume journal already holds the stripe's cost
        // record, in which case the sim (the expensive part of a
        // restarted drain) is skipped and only the cheap plan-shaped
        // demand is rebuilt.
        let resume = io.resume;
        let outcomes: Vec<Option<(ClassInfo, bool)>> = run_indexed(threads, spec.stripes, |s| {
            let gen = &stripes[s];
            let base = &class_failed[gen.class as usize];
            if let Some(r) = resume {
                if r.unrepairable.contains(&(s as u32)) {
                    return None;
                }
                if let Some(c) = r.cost(s as u32, base.len()) {
                    let ctx = make_ctx(base);
                    let plan =
                        first_valid_plan(&ctx).expect("a valid plan exists for <=k failures");
                    return Some((
                        ClassInfo {
                            duration: c.dur,
                            cross_bytes: c.cross,
                            inner_bytes: c.inner,
                            demand: plan_demand(&plan, &canon_topo, &canon_net),
                            replans: c.replans,
                            retries: c.retries,
                            degraded: c.degraded,
                        },
                        true,
                    ));
                }
            }
            let ctx = make_ctx(base);
            let mut mix = SplitMix64::new(spec.seed ^ (s as u64));
            let mut storm = FaultStorm::new(mix.next_u64());
            for bucket in &spec.storm {
                storm = storm.with_generation(bucket.clone());
            }
            let mut tracker = HealthTracker::with_defaults();
            let out =
                supervise_injected(&ctx, &storm, &spec.cfg, &mut tracker, rpr_obs::noop()).ok()?;
            let plan = first_valid_plan(&ctx).expect("a valid plan exists for <=k failures");
            Some((
                ClassInfo {
                    duration: out.repair_time,
                    cross_bytes: out.cross_bytes,
                    inner_bytes: out.inner_bytes,
                    demand: plan_demand(&plan, &canon_topo, &canon_net),
                    replans: out.replans,
                    retries: out.retries,
                    degraded: out.final_tier > Tier::Full,
                },
                false,
            ))
        });
        let mut demands = Vec::new();
        for (s, info) in outcomes.into_iter().enumerate() {
            let Some((info, was_replay)) = info else {
                unrepairable += 1;
                if let Some(j) = io.journal {
                    j.borrow_mut().unrepairable(s as u32);
                }
                continue;
            };
            replayed += usize::from(was_replay);
            replans += info.replans;
            retries += info.retries;
            degraded += usize::from(info.degraded);
            let level = class_failed[stripes[s].class as usize].len();
            if let Some(j) = io.journal {
                // Cost records land before the drain starts, so a crash
                // at any later point leaves them all replayable.
                j.borrow_mut().cost(
                    s as u32,
                    level,
                    info.duration,
                    info.cross_bytes,
                    info.inner_bytes,
                    info.replans,
                    info.retries,
                    info.degraded,
                );
            }
            jobs.push(FleetJob {
                stripe: s as u32,
                level,
                duration: info.duration,
                arrival: 0.0,
                cross_bytes: info.cross_bytes,
                inner_bytes: info.inner_bytes,
            });
            kept.push(s as u32);
            demands.push(info.demand);
        }
        job_demands = demands;
    }

    // ---- Admission ----------------------------------------------------
    let phys_topo = Topology::uniform(spec.racks, npr);
    let phys_profile = BandwidthProfile::uniform(spec.racks, spec.inner_bps, spec.cross_bps);
    let mut phys_net = Network::new(phys_topo, phys_profile);
    if let Some(cap) = spec.agg_capacity {
        phys_net = phys_net.with_agg_capacity(cap);
    }
    let phys_nodes = phys_net.topology().node_count();
    let mut arbiter = BandwidthArbiter::new(&phys_net);
    arbiter.set_enabled(spec.arbitrate);
    arbiter.set_qos(spec.qos);

    let cacheable = spec.cacheable();
    // Escalated-class memo: churn can push a stripe into a failed-block
    // set no base stripe has, so those classes are costed lazily, the
    // first time the drain asks for them. The sim is the *clean*
    // canonical one even on the storm path (hedging off): the storm
    // already priced the stripe's own turbulence into its base cost, and
    // a seed-independent sim keeps `cost_of(stripe, level)` a pure
    // function — the property journal resume relies on.
    let esc_classes: RefCell<HashMap<Vec<usize>, ClassInfo>> = RefCell::new(HashMap::new());
    let mut esc_cfg = spec.cfg.clone();
    esc_cfg.hedge = None;
    let escalated = |s: usize, lvl: usize| -> ClassInfo {
        let base = &class_failed[stripes[s].class as usize];
        let failed = escalated_failed(base, total, spec.seed ^ (s as u64) ^ ESCALATION_SALT, lvl);
        if let Some(info) = esc_classes.borrow().get(&failed) {
            return info.clone();
        }
        let ctx = make_ctx(&failed);
        let storm = FaultStorm::new(0);
        let mut tracker = HealthTracker::with_defaults();
        let out = supervise_injected(&ctx, &storm, &esc_cfg, &mut tracker, rpr_obs::noop())
            .expect("clean supervised repair cannot fail");
        let plan = first_valid_plan(&ctx).expect("a valid plan exists for <=k failures");
        let info = ClassInfo {
            duration: out.repair_time,
            cross_bytes: out.cross_bytes,
            inner_bytes: out.inner_bytes,
            demand: plan_demand(&plan, &canon_topo, &canon_net),
            replans: out.replans,
            retries: out.retries,
            degraded: out.final_tier > Tier::Full,
        };
        esc_classes.borrow_mut().insert(failed, info.clone());
        info
    };
    let mut cost_of = |job: usize, lvl: usize| -> JobCost {
        let gen = &stripes[kept[job] as usize];
        let translate = |canon: &Demand| -> Demand {
            if !spec.arbitrate {
                return Demand::default();
            }
            translate_demand(
                canon,
                canon_nodes,
                phys_nodes,
                npr,
                &roles,
                &first_block_in_rack,
                &gen.hosts,
            )
        };
        if lvl == jobs[job].level {
            let canon = if cacheable {
                &job_demands[gen.class as usize]
            } else {
                &job_demands[job]
            };
            JobCost {
                duration: jobs[job].duration,
                cross_bytes: jobs[job].cross_bytes,
                inner_bytes: jobs[job].inner_bytes,
                demand: translate(canon),
            }
        } else {
            let info = escalated(kept[job] as usize, lvl);
            JobCost {
                duration: info.duration,
                cross_bytes: info.cross_bytes,
                inner_bytes: info.inner_bytes,
                demand: translate(&info.demand),
            }
        }
    };
    let opts = DrainOptions {
        churn: (spec.churn_rate > 0.0).then(|| ChurnOptions {
            process: ChurnProcess::new(spec.seed ^ CHURN_SALT, spec.churn_rate),
            max_level: params.k,
            escalate: spec.escalate,
        }),
        journal: io.journal,
    };
    let outcome = drain_fleet(&jobs, &mut cost_of, &mut arbiter, opts, rec);
    let escalated_classes = esc_classes.borrow().len();

    FleetOutcome {
        summary: outcome.summary,
        records: outcome.records,
        lost: outcome.lost,
        classes: class_failed.len() + escalated_classes,
        replans,
        retries,
        degraded,
        unrepairable,
        max_utilization: arbiter.max_utilization(),
        replayed,
    }
}

/// Pure derivation of a stripe's failed-block set at an escalated
/// at-risk level: the base class's blocks plus distinct extra blocks
/// drawn from the stripe's own escalation stream. Deterministic in
/// `(base, esc_seed, level)` and prefix-stable — the set at level `z+1`
/// contains the set at level `z` — so repeated escalations of one
/// stripe model one accumulating failure history.
fn escalated_failed(base: &[usize], total: usize, esc_seed: u64, level: usize) -> Vec<usize> {
    let mut failed = base.to_vec();
    let mut rng = SplitMix64::new(esc_seed);
    while failed.len() < level {
        let b = rng.pick(total);
        if !failed.contains(&b) {
            failed.push(b);
        }
    }
    failed.sort_unstable();
    failed
}

/// Rewrite a canonical-node demand into physical-cluster resources for
/// one stripe: hosts map to the stripe's physical block locations,
/// canonical spares map to the same-ranked spare of the stripe's
/// physical rack, and the canonical aggregation switch maps to the
/// physical one.
#[allow(clippy::too_many_arguments)]
fn translate_demand(
    canon: &Demand,
    canon_nodes: usize,
    phys_nodes: usize,
    npr: usize,
    roles: &[Role],
    first_block_in_rack: &[usize],
    hosts: &[u32],
) -> Demand {
    let canon_agg = BandwidthArbiter::agg(canon_nodes);
    let entries = canon
        .entries
        .iter()
        .map(|&(r, rate)| {
            if r == canon_agg {
                return (BandwidthArbiter::agg(phys_nodes), rate);
            }
            let c = r as usize / 2;
            let g = match roles[c] {
                Role::Host(b) => hosts[b] as usize,
                Role::Free { rack_pos, rank } => {
                    let rack = hosts[first_block_in_rack[rack_pos]] as usize / npr;
                    (rack * npr..(rack + 1) * npr)
                        .filter(|n| !hosts.contains(&(*n as u32)))
                        .nth(rank)
                        .expect("physical rack has as many spares as the canonical one")
                }
            };
            ((2 * g + (r as usize % 2)) as u32, rate)
        })
        .collect();
    Demand { entries }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpr_obs::NoopRecorder;

    fn tiny_spec() -> FleetSpec {
        FleetSpec {
            params: CodeParams::new(4, 2),
            racks: 6,
            nodes_per_rack: 4,
            stripes: 200,
            block_bytes: 8 << 20,
            seed: 17,
            ..FleetSpec::default()
        }
    }

    #[test]
    fn fleet_repairs_every_stripe() {
        let out = run_synthetic_fleet(&tiny_spec(), &NoopRecorder);
        assert_eq!(out.summary.stripes, 200);
        assert_eq!(out.summary.repaired, 200);
        assert_eq!(out.records.len(), 200);
        assert_eq!(out.unrepairable, 0);
        assert!(out.classes >= 1);
        assert!(out.summary.makespan > 0.0);
        assert!(out.summary.mttr_p99 >= out.summary.mttr_p50);
        assert!(out.max_utilization <= 1.0 + 1e-6);
    }

    #[test]
    fn same_seed_runs_are_identical() {
        let a = run_synthetic_fleet(&tiny_spec(), &NoopRecorder);
        let b = run_synthetic_fleet(&tiny_spec(), &NoopRecorder);
        assert_eq!(a.summary.to_json(), b.summary.to_json());
        assert_eq!(a.records, b.records);
    }

    #[test]
    fn different_seeds_differ() {
        let a = run_synthetic_fleet(&tiny_spec(), &NoopRecorder);
        let b = run_synthetic_fleet(
            &FleetSpec {
                seed: 4242,
                ..tiny_spec()
            },
            &NoopRecorder,
        );
        assert_ne!(
            a.records, b.records,
            "placement and levels must depend on the seed"
        );
    }

    #[test]
    fn disabling_arbitration_only_removes_waiting() {
        let contended = FleetSpec {
            racks: 4,
            stripes: 300,
            ..tiny_spec()
        };
        let free = FleetSpec {
            arbitrate: false,
            ..contended.clone()
        };
        let with = run_synthetic_fleet(&contended, &NoopRecorder);
        let without = run_synthetic_fleet(&free, &NoopRecorder);
        // Same per-stripe durations, only admission times differ.
        for (a, b) in with.records.iter().zip(&without.records) {
            assert_eq!(a.stripe, b.stripe);
            let da = a.finish - a.admitted;
            let db = b.finish - b.admitted;
            assert!((da - db).abs() < 1e-12, "stripe {}: {da} vs {db}", a.stripe);
            assert_eq!(b.waited, 0.0, "no waiting without arbitration");
        }
        assert!(with.summary.makespan >= without.summary.makespan);
    }

    #[test]
    fn storm_path_matches_store_seed_derivation() {
        use rpr_faults::CrashSite;
        let spec = FleetSpec {
            stripes: 24,
            storm: vec![vec![StormFault::Crash(CrashSite::SeedPick)]],
            ..tiny_spec()
        };
        let out = run_synthetic_fleet(&spec, &NoopRecorder);
        assert_eq!(out.summary.repaired + out.unrepairable, 24);
        assert!(out.replans > 0, "every stripe crashed at least once");
        let again = run_synthetic_fleet(&spec, &NoopRecorder);
        assert_eq!(out.records, again.records, "storm path is deterministic");
    }

    #[test]
    fn foreground_qos_only_adds_waiting() {
        // A finite aggregation switch is the shared resource: several
        // stripes fit under it unthrottled, far fewer under a 5%
        // residual (per-node links admit one full-rate repair each
        // under either class, so they cannot show the difference).
        let contended = FleetSpec {
            racks: 4,
            stripes: 300,
            agg_capacity: Some(GBIT),
            ..tiny_spec()
        };
        let qos = FleetSpec {
            qos: QosClass::ForegroundPriority {
                foreground_share: 0.95,
                repair_floor: 0.05,
            },
            ..contended.clone()
        };
        let full = run_synthetic_fleet(&contended, &NoopRecorder);
        let shared = run_synthetic_fleet(&qos, &NoopRecorder);
        // Admission against the residual fraction changes *when* stripes
        // start, never how long each repair takes once admitted.
        for (a, b) in full.records.iter().zip(&shared.records) {
            assert_eq!(a.stripe, b.stripe);
            let da = a.finish - a.admitted;
            let db = b.finish - b.admitted;
            assert!((da - db).abs() < 1e-12, "stripe {}: {da} vs {db}", a.stripe);
        }
        let wait = |out: &FleetOutcome| -> f64 { out.records.iter().map(|r| r.waited).sum() };
        assert!(
            shared.summary.makespan >= full.summary.makespan,
            "residual admission can only delay the drain ({} vs {})",
            shared.summary.makespan,
            full.summary.makespan
        );
        assert!(
            wait(&shared) > wait(&full),
            "a 5% residual must queue more stripe admissions ({} vs {})",
            wait(&shared),
            wait(&full)
        );
        assert_eq!(shared.summary.repaired, 300, "QoS never starves repair");
    }

    #[test]
    #[should_panic(expected = "at least")]
    fn too_few_racks_rejected() {
        let spec = FleetSpec {
            racks: 1,
            ..tiny_spec()
        };
        run_synthetic_fleet(&spec, &NoopRecorder);
    }
}
