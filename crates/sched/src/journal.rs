//! Crash-restartable fleet drains: a durable JSON-lines write-ahead log.
//!
//! A drain that dies (OOM-kill, node reboot, `kill -9`) must not forget
//! what it already repaired. [`FleetJournal`] appends one self-contained
//! JSON record per scheduling decision — enqueue, admit, per-stripe cost,
//! complete, escalate, lost — plus periodic checkpoints, flushing every
//! line so the log is valid up to the crash instant (a torn final line is
//! expected and ignored on replay).
//!
//! [`JournalReplay`] parses a journal back into lookup maps. Resume
//! (`rpr fleet --resume F`) re-drives the *deterministic* admission loop
//! from the same seed — reconstructing index and arbiter state exactly —
//! while the costing layer consults the replay and **skips the expensive
//! per-stripe repair simulation** for every stripe the journal already
//! priced. Because the loop is a pure function of seed + costs, the
//! resumed run's summary and records are bit-identical to an
//! uninterrupted run's; `scripts/verify.sh` kills a journaled drain
//! mid-flight and byte-compares exactly that.
//!
//! Record schema (one JSON object per line; field order is fixed):
//!
//! ```text
//! {"journal":"rpr-fleet","version":1,"seed":S,"stripes":N}      header
//! {"rec":"enqueue","stripe":s,"level":z,"t":T}
//! {"rec":"cost","stripe":s,"level":z,"dur":D,"cross":C,"inner":I,
//!  "replans":R,"retries":Y,"degraded":B}
//! {"rec":"admit","stripe":s,"level":z,"t":T,"waited":W}
//! {"rec":"complete","stripe":s,"level":z,"admitted":A,"finish":F,
//!  "waited":W}
//! {"rec":"escalate","stripe":s,"from":a,"to":b,"in_flight":B,"t":T}
//! {"rec":"lost","stripe":s,"level":z,"t":T}
//! {"rec":"unrepairable","stripe":s}
//! {"rec":"checkpoint","seq":Q,"completed":C,"lost":L,"t":T}
//! ```
//!
//! Floats use Rust's shortest-roundtrip formatting, so a parsed value is
//! bit-identical to the written one — the property the resume
//! byte-identity guarantee rests on.

use std::collections::{HashMap, HashSet};
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

/// Default completions between checkpoint records.
pub const DEFAULT_CHECKPOINT_EVERY: u64 = 1000;

/// A checkpoint the journal just flushed (surfaced so the drain can emit
/// the matching `journal_checkpoint` event).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Checkpoint {
    /// Monotone record sequence number of the checkpoint line.
    pub seq: u64,
    /// Stripes recorded complete so far.
    pub completed: u64,
    /// Stripes recorded permanently lost so far.
    pub lost: u64,
}

/// Append-only JSON-lines write-ahead log of one fleet drain.
///
/// Every appended record is flushed before the method returns, so the
/// log never lags the decisions it records by more than the line being
/// written when the process dies.
#[derive(Debug)]
pub struct FleetJournal {
    out: BufWriter<File>,
    path: PathBuf,
    seq: u64,
    completed: u64,
    lost: u64,
    checkpoint_every: u64,
    stall: Option<std::time::Duration>,
}

impl FleetJournal {
    /// Create (truncate) the journal at `path` and write the header.
    pub fn create(path: &Path, seed: u64, stripes: usize) -> std::io::Result<FleetJournal> {
        let file = File::create(path)?;
        let mut j = FleetJournal {
            out: BufWriter::new(file),
            path: path.to_path_buf(),
            seq: 0,
            completed: 0,
            lost: 0,
            checkpoint_every: DEFAULT_CHECKPOINT_EVERY,
            stall: None,
        };
        j.write_line(&format!(
            "{{\"journal\":\"rpr-fleet\",\"version\":1,\"seed\":{seed},\"stripes\":{stripes}}}"
        ));
        Ok(j)
    }

    /// Path the journal writes to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Override the checkpoint cadence (completions per checkpoint).
    pub fn set_checkpoint_every(&mut self, every: u64) {
        self.checkpoint_every = every.max(1);
    }

    /// Sleep this long after every appended record. Test/CI hook: it
    /// slows the drain down enough that an external `kill -9` reliably
    /// lands mid-drain (`RPR_JOURNAL_STALL_US` on the CLI).
    pub fn set_stall(&mut self, stall: std::time::Duration) {
        self.stall = Some(stall);
    }

    fn write_line(&mut self, line: &str) {
        // A journal that cannot persist is worse than no journal: fail
        // loudly rather than silently dropping the crash guarantee.
        let io = self
            .out
            .write_all(line.as_bytes())
            .and_then(|()| self.out.write_all(b"\n"))
            .and_then(|()| self.out.flush());
        if let Err(e) = io {
            panic!("fleet journal write to {} failed: {e}", self.path.display());
        }
        self.seq += 1;
        if let Some(d) = self.stall {
            std::thread::sleep(d);
        }
    }

    /// Record a stripe entering the at-risk index.
    pub fn enqueue(&mut self, stripe: u32, level: usize, t: f64) {
        self.write_line(&format!(
            "{{\"rec\":\"enqueue\",\"stripe\":{stripe},\"level\":{level},\"t\":{t}}}"
        ));
    }

    /// Record the costed repair of `stripe` at `level`: stand-alone
    /// duration, bytes moved, and supervision counters. Resume uses
    /// these to skip re-simulating already-priced repairs.
    #[allow(clippy::too_many_arguments)]
    pub fn cost(
        &mut self,
        stripe: u32,
        level: usize,
        dur: f64,
        cross: u64,
        inner: u64,
        replans: usize,
        retries: usize,
        degraded: bool,
    ) {
        self.write_line(&format!(
            "{{\"rec\":\"cost\",\"stripe\":{stripe},\"level\":{level},\"dur\":{dur},\
             \"cross\":{cross},\"inner\":{inner},\"replans\":{replans},\
             \"retries\":{retries},\"degraded\":{degraded}}}"
        ));
    }

    /// Record an admission.
    pub fn admit(&mut self, stripe: u32, level: usize, t: f64, waited: f64) {
        self.write_line(&format!(
            "{{\"rec\":\"admit\",\"stripe\":{stripe},\"level\":{level},\"t\":{t},\
             \"waited\":{waited}}}"
        ));
    }

    /// Record a completed repair. Returns a [`Checkpoint`] when the
    /// cadence elapsed and a checkpoint record was appended after it.
    pub fn complete(
        &mut self,
        stripe: u32,
        level: usize,
        admitted: f64,
        finish: f64,
        waited: f64,
    ) -> Option<Checkpoint> {
        self.write_line(&format!(
            "{{\"rec\":\"complete\",\"stripe\":{stripe},\"level\":{level},\
             \"admitted\":{admitted},\"finish\":{finish},\"waited\":{waited}}}"
        ));
        self.completed += 1;
        if self.completed.is_multiple_of(self.checkpoint_every) {
            Some(self.checkpoint(finish))
        } else {
            None
        }
    }

    /// Record a risk escalation.
    pub fn escalate(&mut self, stripe: u32, from: usize, to: usize, in_flight: bool, t: f64) {
        self.write_line(&format!(
            "{{\"rec\":\"escalate\",\"stripe\":{stripe},\"from\":{from},\"to\":{to},\
             \"in_flight\":{in_flight},\"t\":{t}}}"
        ));
    }

    /// Record a permanent loss (the stripe crossed `z > r`).
    pub fn lost(&mut self, stripe: u32, level: usize, t: f64) {
        self.write_line(&format!(
            "{{\"rec\":\"lost\",\"stripe\":{stripe},\"level\":{level},\"t\":{t}}}"
        ));
        self.lost += 1;
    }

    /// Record a stripe that was unrepairable at costing time (too many
    /// failures for the code before the drain even started).
    pub fn unrepairable(&mut self, stripe: u32) {
        self.write_line(&format!("{{\"rec\":\"unrepairable\",\"stripe\":{stripe}}}"));
    }

    /// Append a checkpoint record now and return it.
    pub fn checkpoint(&mut self, t: f64) -> Checkpoint {
        let cp = Checkpoint {
            seq: self.seq,
            completed: self.completed,
            lost: self.lost,
        };
        self.write_line(&format!(
            "{{\"rec\":\"checkpoint\",\"seq\":{},\"completed\":{},\"lost\":{},\"t\":{t}}}",
            cp.seq, cp.completed, cp.lost
        ));
        cp
    }
}

/// One journaled `complete` record.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CompletedRec {
    /// At-risk level the stripe was served at.
    pub level: usize,
    /// Fleet-clock admission time.
    pub admitted: f64,
    /// Fleet-clock finish time.
    pub finish: f64,
    /// Seconds waited at the queue head.
    pub waited: f64,
}

/// One journaled `cost` record: everything the costing layer needs to
/// skip a per-stripe repair simulation on resume.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostRec {
    /// Stand-alone repair duration in seconds.
    pub dur: f64,
    /// Cross-rack bytes the repair moves.
    pub cross: u64,
    /// Inner-rack bytes the repair moves.
    pub inner: u64,
    /// Replans the supervised repair needed.
    pub replans: usize,
    /// Transfer retries the supervised repair needed.
    pub retries: usize,
    /// True when the repair fell back to a degraded tier.
    pub degraded: bool,
}

/// A parsed fleet journal, ready to answer resume queries.
#[derive(Clone, Debug, Default)]
pub struct JournalReplay {
    /// Seed recorded in the header.
    pub seed: u64,
    /// Backlog size recorded in the header.
    pub stripes: usize,
    /// Completed stripes by id.
    pub completed: HashMap<u32, CompletedRec>,
    /// Costed (stripe, level) pairs.
    pub costs: HashMap<(u32, usize), CostRec>,
    /// Permanently lost stripes by id → (level, t).
    pub lost: HashMap<u32, (usize, f64)>,
    /// Stripes unrepairable at costing time.
    pub unrepairable: HashSet<u32>,
    /// Total well-formed records parsed (header excluded).
    pub records: usize,
    /// True when the final line was torn (crash mid-write) and dropped.
    pub truncated: bool,
}

impl JournalReplay {
    /// Parse journal text. The final line may be torn (the process was
    /// killed mid-write); it is dropped, not an error. Any other
    /// malformed line is an error — a corrupt middle means the file is
    /// not a journal.
    pub fn parse(text: &str) -> Result<JournalReplay, String> {
        let mut lines = text.lines();
        let header = lines.next().ok_or("journal is empty")?;
        if field_raw(header, "journal") != Some("\"rpr-fleet\"") {
            return Err("not an rpr-fleet journal (bad header)".into());
        }
        let version = field_u64(header, "version").ok_or("header missing version")?;
        if version != 1 {
            return Err(format!("unsupported journal version {version}"));
        }
        let mut replay = JournalReplay {
            seed: field_u64(header, "seed").ok_or("header missing seed")?,
            stripes: field_u64(header, "stripes").ok_or("header missing stripes")? as usize,
            ..JournalReplay::default()
        };
        // Only a missing trailing newline marks the last line as
        // possibly torn; parse failures there are tolerated.
        let complete_tail = text.ends_with('\n');
        let body: Vec<&str> = lines.collect();
        for (i, line) in body.iter().enumerate() {
            let last = i + 1 == body.len();
            match parse_record(line, &mut replay) {
                Ok(()) => replay.records += 1,
                Err(e) if last && !complete_tail => {
                    replay.truncated = true;
                    let _ = e;
                }
                Err(e) => return Err(format!("journal line {}: {e}", i + 2)),
            }
        }
        Ok(replay)
    }

    /// Parse the journal file at `path`.
    pub fn load(path: &Path) -> Result<JournalReplay, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read journal {}: {e}", path.display()))?;
        JournalReplay::parse(&text)
    }

    /// The cost record journaled for `(stripe, level)`, if any.
    pub fn cost(&self, stripe: u32, level: usize) -> Option<CostRec> {
        self.costs.get(&(stripe, level)).copied()
    }
}

fn parse_record(line: &str, replay: &mut JournalReplay) -> Result<(), String> {
    let rec = field_raw(line, "rec").ok_or("missing rec field")?;
    match rec {
        "\"enqueue\"" | "\"admit\"" | "\"escalate\"" | "\"checkpoint\"" => {
            // Progress records: informational on replay (resume
            // re-derives them deterministically), but they must still be
            // well-formed.
            Ok(())
        }
        "\"cost\"" => {
            let stripe = field_u64(line, "stripe").ok_or("cost missing stripe")? as u32;
            let level = field_u64(line, "level").ok_or("cost missing level")? as usize;
            replay.costs.insert(
                (stripe, level),
                CostRec {
                    dur: field_f64(line, "dur").ok_or("cost missing dur")?,
                    cross: field_u64(line, "cross").ok_or("cost missing cross")?,
                    inner: field_u64(line, "inner").ok_or("cost missing inner")?,
                    replans: field_u64(line, "replans").ok_or("cost missing replans")? as usize,
                    retries: field_u64(line, "retries").ok_or("cost missing retries")? as usize,
                    degraded: field_bool(line, "degraded").ok_or("cost missing degraded")?,
                },
            );
            Ok(())
        }
        "\"complete\"" => {
            let stripe = field_u64(line, "stripe").ok_or("complete missing stripe")? as u32;
            replay.completed.insert(
                stripe,
                CompletedRec {
                    level: field_u64(line, "level").ok_or("complete missing level")? as usize,
                    admitted: field_f64(line, "admitted").ok_or("complete missing admitted")?,
                    finish: field_f64(line, "finish").ok_or("complete missing finish")?,
                    waited: field_f64(line, "waited").ok_or("complete missing waited")?,
                },
            );
            Ok(())
        }
        "\"lost\"" => {
            let stripe = field_u64(line, "stripe").ok_or("lost missing stripe")? as u32;
            let level = field_u64(line, "level").ok_or("lost missing level")? as usize;
            let t = field_f64(line, "t").ok_or("lost missing t")?;
            replay.lost.insert(stripe, (level, t));
            Ok(())
        }
        "\"unrepairable\"" => {
            let stripe = field_u64(line, "stripe").ok_or("unrepairable missing stripe")? as u32;
            replay.unrepairable.insert(stripe);
            Ok(())
        }
        other => Err(format!("unknown record kind {other}")),
    }
}

/// Raw text of `"key":<value>` in a one-line JSON object (value ends at
/// the next top-level `,` or the closing `}`). Values here are numbers,
/// booleans, or simple quoted strings — no nesting, no escapes.
fn field_raw<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let mut end = rest.len();
    let mut in_str = false;
    for (i, c) in rest.char_indices() {
        match c {
            '"' => in_str = !in_str,
            ',' | '}' if !in_str => {
                end = i;
                break;
            }
            _ => {}
        }
    }
    Some(rest[..end].trim())
}

fn field_u64(line: &str, key: &str) -> Option<u64> {
    field_raw(line, key)?.parse().ok()
}

fn field_f64(line: &str, key: &str) -> Option<f64> {
    field_raw(line, key)?.parse().ok()
}

fn field_bool(line: &str, key: &str) -> Option<bool> {
    field_raw(line, key)?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("rpr-journal-test-{}-{name}.jsonl", std::process::id()));
        p
    }

    #[test]
    fn journal_roundtrips_through_replay() {
        let path = temp_path("roundtrip");
        {
            let mut j = FleetJournal::create(&path, 17, 3).expect("create");
            j.set_checkpoint_every(2);
            j.enqueue(0, 1, 0.0);
            j.enqueue(1, 2, 0.0);
            j.cost(0, 1, 2.5, 100, 50, 1, 2, false);
            j.cost(1, 2, 4.25, 200, 80, 0, 0, true);
            j.admit(1, 2, 0.0, 0.0);
            assert!(j.complete(1, 2, 0.0, 4.25, 0.0).is_none());
            j.escalate(0, 1, 2, false, 1.5);
            j.admit(0, 2, 4.25, 4.25);
            // Second completion crosses the cadence → checkpoint.
            let cp = j.complete(0, 2, 4.25, 6.75, 4.25).expect("checkpoint");
            assert_eq!(cp.completed, 2);
            assert_eq!(cp.lost, 0);
            j.lost(2, 4, 7.0);
            j.unrepairable(9);
        }
        let replay = JournalReplay::load(&path).expect("parse");
        std::fs::remove_file(&path).ok();
        assert_eq!(replay.seed, 17);
        assert_eq!(replay.stripes, 3);
        assert!(!replay.truncated);
        assert_eq!(replay.completed.len(), 2);
        let c0 = replay.completed[&0];
        assert_eq!(c0.level, 2);
        assert_eq!(c0.finish.to_bits(), 6.75f64.to_bits());
        let cost = replay.cost(1, 2).expect("cost record");
        assert_eq!(cost.dur.to_bits(), 4.25f64.to_bits());
        assert_eq!(cost.cross, 200);
        assert!(cost.degraded);
        assert_eq!(replay.cost(1, 3), None);
        assert_eq!(replay.lost[&2], (4, 7.0));
        assert!(replay.unrepairable.contains(&9));
    }

    #[test]
    fn torn_final_line_is_tolerated_but_corrupt_middle_is_not() {
        let good = "{\"journal\":\"rpr-fleet\",\"version\":1,\"seed\":1,\"stripes\":2}\n\
                    {\"rec\":\"enqueue\",\"stripe\":0,\"level\":1,\"t\":0}\n\
                    {\"rec\":\"complete\",\"stripe\":0,\"level\":1,\"admitted\":0,\"fini";
        let replay = JournalReplay::parse(good).expect("torn tail tolerated");
        assert!(replay.truncated);
        assert!(replay.completed.is_empty());
        assert_eq!(replay.records, 1);

        let bad = "{\"journal\":\"rpr-fleet\",\"version\":1,\"seed\":1,\"stripes\":2}\n\
                   {\"rec\":\"garbage\"}\n\
                   {\"rec\":\"enqueue\",\"stripe\":0,\"level\":1,\"t\":0}\n";
        assert!(JournalReplay::parse(bad).is_err(), "corrupt middle rejected");

        assert!(JournalReplay::parse("").is_err());
        assert!(JournalReplay::parse("{\"journal\":\"other\"}").is_err());
    }

    #[test]
    fn float_roundtrip_is_bit_exact() {
        // The resume byte-identity guarantee needs shortest-roundtrip
        // floats to survive write → parse exactly.
        let vals = [
            0.1 + 0.2,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            123456.789012345,
            2.5e-17,
        ];
        for v in vals {
            let s = format!("{v}");
            let back: f64 = s.parse().expect("parses");
            assert_eq!(back.to_bits(), v.to_bits(), "{v} did not roundtrip");
        }
    }
}
