//! A small work-stealing thread pool for batched plan construction and
//! sim-backed repairs.
//!
//! [`run_indexed`] fans N independent tasks over a fixed set of scoped
//! worker threads. Each worker owns a deque seeded with a contiguous
//! slice of the task indices; it pops work from its own front and, when
//! empty, steals from the *back* of a sibling's deque (classic
//! work-stealing: owners and thieves touch opposite ends, so contention
//! on any one lock is brief). Results are collected per worker and
//! merged back into task-index order, so the output is deterministic no
//! matter how the steals interleave.

use std::collections::VecDeque;
use std::sync::Mutex;

/// Default worker count: the machine's available parallelism, capped at
/// 8 (the per-task sims are short; more threads than that just shuffle
/// cache lines), and at least 1.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .clamp(1, 8)
}

/// Run `tasks` independent jobs on `threads` workers and return their
/// results in task-index order (`out[i] = f(i)`).
///
/// `f` is called exactly once per index, from an arbitrary worker
/// thread. Panics in `f` propagate.
pub fn run_indexed<T, F>(threads: usize, tasks: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if tasks == 0 {
        return Vec::new();
    }
    let threads = threads.clamp(1, tasks);
    if threads == 1 {
        return (0..tasks).map(f).collect();
    }

    // Seed each worker's deque with a contiguous chunk of indices so
    // neighboring tasks (often touching the same cached state) start on
    // the same worker.
    let chunk = tasks.div_ceil(threads);
    let queues: Vec<Mutex<VecDeque<usize>>> = (0..threads)
        .map(|w| Mutex::new((w * chunk..((w + 1) * chunk).min(tasks)).collect()))
        .collect();

    let mut buckets: Vec<Vec<(usize, T)>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|me| {
                let queues = &queues;
                let f = &f;
                scope.spawn(move || {
                    let mut out: Vec<(usize, T)> = Vec::new();
                    loop {
                        // Own work first (front), then steal (back). The
                        // own-queue guard must drop before stealing: a
                        // thief that still holds its own lock while
                        // waiting for a sibling's deadlocks with a
                        // sibling doing the converse.
                        let own = queues[me].lock().unwrap().pop_front();
                        let task = own.or_else(|| {
                            (1..queues.len()).find_map(|step| {
                                queues[(me + step) % queues.len()]
                                    .lock()
                                    .unwrap()
                                    .pop_back()
                            })
                        });
                        match task {
                            Some(i) => out.push((i, f(i))),
                            None => return out,
                        }
                    }
                })
            })
            .collect();
        buckets = handles
            .into_iter()
            .map(|h| h.join().expect("pool worker panicked"))
            .collect();
    });

    let mut tagged: Vec<(usize, T)> = buckets.into_iter().flatten().collect();
    debug_assert_eq!(tagged.len(), tasks);
    tagged.sort_unstable_by_key(|&(i, _)| i);
    tagged.into_iter().map(|(_, v)| v).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_index_order() {
        let out = run_indexed(4, 257, |i| i * 3);
        assert_eq!(out.len(), 257);
        assert!(out.iter().enumerate().all(|(i, &v)| v == i * 3));
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let calls = AtomicUsize::new(0);
        let out = run_indexed(8, 1000, |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(calls.load(Ordering::Relaxed), 1000);
        assert_eq!(out, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn uneven_work_is_stolen() {
        // Worker 0's chunk is heavy; the run still completes and stays
        // ordered. (Timing-free: we only check correctness, the stealing
        // path is exercised because thread 1 drains long before 0.)
        let out = run_indexed(2, 64, |i| {
            if i < 32 {
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
            i + 1
        });
        assert_eq!(out, (1..=64).collect::<Vec<_>>());
    }

    #[test]
    fn degenerate_shapes() {
        assert_eq!(run_indexed(4, 0, |i| i), Vec::<usize>::new());
        assert_eq!(run_indexed(1, 3, |i| i), vec![0, 1, 2]);
        assert_eq!(run_indexed(16, 2, |i| i), vec![0, 1]);
    }
}
