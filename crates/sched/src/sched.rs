//! The fleet admission loop: a deterministic virtual-clock scheduler
//! driving the stripe index and the bandwidth arbiter.
//!
//! Jobs enter the index at their [`FleetJob::arrival`] time (0 for the
//! pre-existing backlog; later for stripes whose failures are detected
//! mid-drain — they are enqueued into the live index when the clock
//! reaches them, never dropped until a next run). The loop then
//! alternates between two moves:
//!
//! 1. **Admit** — while the index head's (clamped) demand fits under the
//!    arbiter, pop it, reserve, and schedule its completion at
//!    `now + duration`. Admission is strictly head-of-line: nothing
//!    behind the head is ever admitted before it, so a level-`z−1`
//!    stripe can never jump a runnable level-`z` stripe (priority
//!    inversion is impossible by construction).
//! 2. **Advance** — when the head is blocked (or the queue is empty),
//!    jump the clock to the earlier of the next in-flight completion
//!    (releasing its reservations) and the next arrival (enqueuing it).
//!
//! **Timing model.** An admitted repair reserves its stand-alone peak
//! link rates for its stand-alone duration. Because the arbiter never
//! over-commits any link, every admitted repair runs at exactly the
//! rates its plan assumed on an idle cluster — so contention changes
//! *when* a repair starts, never how long it takes or which plan it
//! uses. MTTR under contention = admission wait + idle-cluster repair
//! time.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt::Write as _;

use rpr_obs::{Event, Recorder};

use crate::arbiter::{BandwidthArbiter, Demand};
use crate::index::StripeIndex;

/// One schedulable unit of fleet work: a stripe whose repair plan has
/// been built and costed.
#[derive(Clone, Debug)]
pub struct FleetJob {
    /// Fleet-wide stripe id (reported in records and events).
    pub stripe: u32,
    /// At-risk level = number of failed blocks; higher repairs first.
    pub level: usize,
    /// Stand-alone repair time in seconds (idle-cluster supervised sim).
    pub duration: f64,
    /// Cross-rack bytes the repair moves.
    pub cross_bytes: u64,
    /// Inner-rack bytes the repair moves.
    pub inner_bytes: u64,
    /// Fleet-clock seconds when the stripe's failure is detected: 0 for
    /// the pre-existing backlog, later for failures that arrive while
    /// the drain is already running.
    pub arrival: f64,
}

/// Per-stripe outcome of a fleet run.
#[derive(Clone, Debug, PartialEq)]
pub struct StripeRecord {
    /// Fleet-wide stripe id.
    pub stripe: u32,
    /// At-risk level the stripe was served at.
    pub level: usize,
    /// Fleet-clock seconds when the repair was admitted.
    pub admitted: f64,
    /// Fleet-clock seconds when the repair finished. Its MTTR is
    /// `finish − arrival`.
    pub finish: f64,
    /// Seconds spent queued between arrival and admission.
    pub waited: f64,
}

/// Aggregate results of a fleet run — the numbers the `fleet-scale`
/// experiment tables and `rpr fleet --json` report.
#[derive(Clone, Debug, PartialEq)]
pub struct FleetSummary {
    /// Stripes enqueued.
    pub stripes: usize,
    /// Stripes repaired (always equals `stripes`; the drain runs to
    /// completion).
    pub repaired: usize,
    /// Fleet-clock seconds until the last repair finished.
    pub makespan: f64,
    /// Sustained repair throughput in stripes per fleet-clock second.
    pub stripes_per_sec: f64,
    /// Sustained repair traffic in bytes per fleet-clock second
    /// (cross + inner).
    pub bytes_per_sec: f64,
    /// Median time-to-repair in seconds (nearest-rank).
    pub mttr_p50: f64,
    /// 99th-percentile time-to-repair in seconds (nearest-rank).
    pub mttr_p99: f64,
    /// Mean time-to-repair in seconds.
    pub mttr_mean: f64,
    /// Stripes whose admission was delayed by bandwidth contention.
    pub waited: usize,
    /// Longest admission wait in seconds.
    pub max_wait: f64,
    /// Mean admission wait in seconds over all stripes.
    pub mean_wait: f64,
    /// Total cross-rack bytes moved.
    pub cross_bytes: u64,
    /// Total inner-rack bytes moved.
    pub inner_bytes: u64,
    /// Releases during this drain that did not match an admitted
    /// reservation (see [`BandwidthArbiter::mismatched_releases`]).
    /// Always zero for a healthy scheduler; soaks assert on it.
    pub mismatched_releases: u64,
}

impl FleetSummary {
    /// One-line JSON rendering with a stable field order. Two runs with
    /// the same seed produce byte-identical output (all values are
    /// computed deterministically and formatted with Rust's default
    /// shortest-roundtrip float formatting).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        let _ = write!(s, "\"stripes\":{}", self.stripes);
        let _ = write!(s, ",\"repaired\":{}", self.repaired);
        let _ = write!(s, ",\"makespan\":{}", self.makespan);
        let _ = write!(s, ",\"stripes_per_sec\":{}", self.stripes_per_sec);
        let _ = write!(s, ",\"bytes_per_sec\":{}", self.bytes_per_sec);
        let _ = write!(s, ",\"mttr_p50\":{}", self.mttr_p50);
        let _ = write!(s, ",\"mttr_p99\":{}", self.mttr_p99);
        let _ = write!(s, ",\"mttr_mean\":{}", self.mttr_mean);
        let _ = write!(s, ",\"waited\":{}", self.waited);
        let _ = write!(s, ",\"max_wait\":{}", self.max_wait);
        let _ = write!(s, ",\"mean_wait\":{}", self.mean_wait);
        let _ = write!(s, ",\"cross_bytes\":{}", self.cross_bytes);
        let _ = write!(s, ",\"inner_bytes\":{}", self.inner_bytes);
        let _ = write!(s, ",\"mismatched_releases\":{}", self.mismatched_releases);
        s.push('}');
        s
    }
}

/// Result of [`schedule_fleet`]: the summary plus per-stripe records in
/// job order.
#[derive(Clone, Debug)]
pub struct AdmissionOutcome {
    /// Aggregate fleet numbers.
    pub summary: FleetSummary,
    /// One record per job, in the input job order.
    pub records: Vec<StripeRecord>,
}

/// Total order on completion times for the virtual-clock heap.
#[derive(PartialEq)]
struct TimeKey(f64);

impl Eq for TimeKey {}

impl PartialOrd for TimeKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TimeKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Drain a backlog of repair jobs through the arbiter on a virtual
/// clock. See the [module docs](self) for the admission discipline and
/// timing model.
///
/// `demand_of(job_index)` materializes the clamped bandwidth demand of
/// a job when it reaches the queue head; the scheduler holds at most
/// one demand per in-flight repair, so a million-stripe backlog never
/// materializes a million demand vectors at once.
///
/// # Panics
/// Panics if a job's duration is negative or NaN, or a demand is not
/// admissible on an idle arbiter (clamp demands to capacity first).
pub fn schedule_fleet(
    jobs: &[FleetJob],
    demand_of: &mut dyn FnMut(usize) -> Demand,
    arbiter: &mut BandwidthArbiter,
    rec: &dyn Recorder,
) -> AdmissionOutcome {
    let max_level = jobs.iter().map(|j| j.level).max().unwrap_or(1).max(1);
    let mut index = StripeIndex::new(max_level, 16, jobs.len());
    // Jobs not yet arrived, ascending by arrival time (ties in job
    // order); `next_due` walks this list as the clock advances.
    let mut due: Vec<u32> = (0..jobs.len() as u32).collect();
    due.sort_by(|&a, &b| {
        jobs[a as usize]
            .arrival
            .total_cmp(&jobs[b as usize].arrival)
            .then(a.cmp(&b))
    });
    for (i, job) in jobs.iter().enumerate() {
        assert!(
            job.duration >= 0.0,
            "schedule_fleet: job {i} has invalid duration"
        );
        assert!(
            job.arrival >= 0.0 && job.arrival.is_finite(),
            "schedule_fleet: job {i} has invalid arrival"
        );
    }
    let mut next_due = 0usize;
    let mismatch_base = arbiter.mismatched_releases();

    let mut now = 0.0f64;
    // Earliest-completion heap of (finish, job index); reservations of
    // in-flight jobs are parked in `holding` until released.
    let mut running: BinaryHeap<Reverse<(TimeKey, u32)>> = BinaryHeap::new();
    let mut holding: Vec<Option<Demand>> = vec![None; jobs.len()];
    let mut records: Vec<Option<StripeRecord>> = vec![None; jobs.len()];
    let mut makespan = 0.0f64;

    loop {
        // Re-scan arrivals: failures detected by now enter the live
        // index (mid-drain arrivals are never deferred to a next run).
        while next_due < due.len() && jobs[due[next_due] as usize].arrival <= now {
            let i = due[next_due];
            next_due += 1;
            let job = &jobs[i as usize];
            index.enqueue(i, job.level);
            rec.record(Event::StripeEnqueued {
                stripe: job.stripe as u64,
                level: job.level,
                t: job.arrival,
            });
        }
        // Admit as much of the queue head as fits right now.
        while let Some((head, level)) = index.peek() {
            let i = head as usize;
            let mut demand = demand_of(i);
            arbiter.clamp(&mut demand);
            if !arbiter.try_admit(&demand) {
                if running.is_empty() {
                    panic!(
                        "schedule_fleet: job {i} inadmissible on an idle arbiter \
                         (demand exceeds clamped capacity)"
                    );
                }
                break;
            }
            index.pop();
            let job = &jobs[i];
            let waited = now - job.arrival;
            rec.record(Event::StripeAdmitted {
                stripe: job.stripe as u64,
                level,
                t: now,
            });
            if waited > 0.0 {
                rec.record(Event::BandwidthWaited {
                    stripe: job.stripe as u64,
                    level,
                    waited,
                    t: now,
                });
            }
            let finish = now + job.duration;
            records[i] = Some(StripeRecord {
                stripe: job.stripe,
                level,
                admitted: now,
                finish,
                waited,
            });
            holding[i] = Some(demand);
            running.push(Reverse((TimeKey(finish), head)));
        }
        // Advance the clock to the next completion or the next arrival,
        // whichever is earlier.
        let next_arrival = due
            .get(next_due)
            .map(|&i| jobs[i as usize].arrival)
            .unwrap_or(f64::INFINITY);
        match running.peek() {
            Some(&Reverse((TimeKey(finish), _))) if finish <= next_arrival => {
                let Some(Reverse((TimeKey(finish), idx))) = running.pop() else {
                    unreachable!()
                };
                now = finish;
                makespan = makespan.max(finish);
                let demand = holding[idx as usize].take().expect("in-flight demand");
                arbiter.release(&demand);
            }
            _ if next_arrival.is_finite() => now = next_arrival,
            _ => break,
        }
    }

    let records: Vec<StripeRecord> = records
        .into_iter()
        .map(|r| r.expect("every enqueued stripe is repaired"))
        .collect();
    let mut summary = summarize(jobs, &records, makespan);
    summary.mismatched_releases = arbiter.mismatched_releases() - mismatch_base;
    AdmissionOutcome { summary, records }
}

/// Aggregate per-stripe records into a [`FleetSummary`].
fn summarize(jobs: &[FleetJob], records: &[StripeRecord], makespan: f64) -> FleetSummary {
    let stripes = jobs.len();
    let mut mttr: Vec<f64> = records
        .iter()
        .zip(jobs)
        .map(|(r, j)| r.finish - j.arrival)
        .collect();
    mttr.sort_by(f64::total_cmp);
    let cross_bytes: u64 = jobs.iter().map(|j| j.cross_bytes).sum();
    let inner_bytes: u64 = jobs.iter().map(|j| j.inner_bytes).sum();
    let waits: Vec<f64> = records.iter().map(|r| r.waited).collect();
    let waited = waits.iter().filter(|&&w| w > 0.0).count();
    FleetSummary {
        stripes,
        repaired: records.len(),
        makespan,
        stripes_per_sec: if makespan > 0.0 {
            stripes as f64 / makespan
        } else {
            0.0
        },
        bytes_per_sec: if makespan > 0.0 {
            (cross_bytes + inner_bytes) as f64 / makespan
        } else {
            0.0
        },
        mttr_p50: quantile(&mttr, 0.50),
        mttr_p99: quantile(&mttr, 0.99),
        mttr_mean: mean(&mttr),
        waited,
        max_wait: waits.iter().fold(0.0, |a: f64, &b| a.max(b)),
        mean_wait: mean(&waits),
        cross_bytes,
        inner_bytes,
        mismatched_releases: 0,
    }
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Nearest-rank quantile over an ascending-sorted sample; 0 when empty.
/// `q·len` is snapped to the nearest integer rank when float rounding
/// puts it within one ulp-scale tolerance, so e.g. `q = 0.5` over two
/// elements reliably selects rank 1 instead of spilling to rank 2.
pub fn quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let len = sorted.len();
    let pos = q.clamp(0.0, 1.0) * len as f64;
    let snapped = pos.round();
    let rank = if (pos - snapped).abs() < 1e-9 * (len as f64).max(1.0) {
        snapped as usize
    } else {
        pos.ceil() as usize
    };
    sorted[rank.clamp(1, len) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpr_netsim::Network;
    use rpr_obs::NoopRecorder;
    use rpr_topology::{BandwidthProfile, Topology, GBIT};

    fn arb() -> BandwidthArbiter {
        BandwidthArbiter::new(&Network::new(
            Topology::uniform(3, 2),
            BandwidthProfile::simics_default(3),
        ))
    }

    fn job(stripe: u32, level: usize, duration: f64) -> FleetJob {
        FleetJob {
            stripe,
            level,
            duration,
            arrival: 0.0,
            cross_bytes: 100,
            inner_bytes: 50,
        }
    }

    #[test]
    fn uncontended_jobs_all_start_at_zero() {
        let jobs = vec![job(0, 1, 2.0), job(1, 2, 3.0), job(2, 1, 1.0)];
        let mut arb = arb();
        let out = schedule_fleet(&jobs, &mut |_| Demand::default(), &mut arb, &NoopRecorder);
        assert_eq!(out.summary.repaired, 3);
        assert_eq!(out.summary.waited, 0);
        assert_eq!(out.summary.makespan, 3.0);
        for r in &out.records {
            assert_eq!(r.admitted, 0.0);
            assert_eq!(r.waited, 0.0);
        }
        // Records are in job order regardless of service order.
        assert_eq!(out.records[1].stripe, 1);
        assert_eq!(out.records[1].finish, 3.0);
    }

    #[test]
    fn saturated_link_serializes_by_level_then_fifo() {
        // Three jobs all demanding the full cross uplink of node 0: they
        // must run one at a time, the level-2 job first.
        let cross = 0.1 * GBIT;
        let jobs = vec![job(10, 1, 1.0), job(11, 2, 1.0), job(12, 1, 1.0)];
        let mut arb = arb();
        let mut demand_of = |_: usize| Demand {
            entries: vec![(BandwidthArbiter::uplink(0), cross)],
        };
        let out = schedule_fleet(&jobs, &mut demand_of, &mut arb, &NoopRecorder);
        let by_stripe = |s: u32| out.records.iter().find(|r| r.stripe == s).unwrap();
        assert_eq!(by_stripe(11).admitted, 0.0, "level 2 first");
        assert_eq!(by_stripe(10).admitted, 1.0, "then FIFO within level 1");
        assert_eq!(by_stripe(12).admitted, 2.0);
        assert_eq!(out.summary.makespan, 3.0);
        assert_eq!(out.summary.waited, 2);
        assert_eq!(out.summary.max_wait, 2.0);
        assert!(arb.total_reserved() < 1e-6, "all reservations released");
    }

    #[test]
    fn mid_drain_failure_is_enqueued_not_dropped() {
        // Regression for the enqueue-once drain: stripe 99's failure is
        // detected at t = 0.5, after the drain has started on a
        // saturated link. It must be enqueued into the live index and
        // repaired in this run — and, being level 2, it must be served
        // ahead of the level-1 stripes still queued at its arrival.
        let cross = 0.1 * GBIT;
        let mut jobs = vec![job(10, 1, 1.0), job(11, 1, 1.0), job(12, 1, 1.0)];
        jobs.push(FleetJob {
            stripe: 99,
            level: 2,
            duration: 1.0,
            arrival: 0.5,
            cross_bytes: 100,
            inner_bytes: 50,
        });
        let mut arb = arb();
        let mut demand_of = |_: usize| Demand {
            entries: vec![(BandwidthArbiter::uplink(0), cross)],
        };
        let out = schedule_fleet(&jobs, &mut demand_of, &mut arb, &NoopRecorder);
        assert_eq!(out.summary.repaired, 4, "mid-drain arrival is repaired");
        let by_stripe = |s: u32| out.records.iter().find(|r| r.stripe == s).unwrap();
        // Stripe 10 holds the link over [0, 1); 99 arrives at 0.5 and,
        // at the t = 1 completion, outranks the queued level-1 stripes.
        assert_eq!(by_stripe(10).admitted, 0.0);
        assert_eq!(by_stripe(99).admitted, 1.0, "level 2 jumps the queue");
        assert_eq!(by_stripe(99).waited, 0.5, "waited counts from arrival");
        assert_eq!(by_stripe(11).admitted, 2.0);
        assert_eq!(by_stripe(12).admitted, 3.0);
        // MTTR is measured from arrival, not from drain start.
        assert_eq!(by_stripe(99).finish, 2.0);
        assert!(arb.total_reserved() < 1e-6, "all reservations released");
    }

    #[test]
    fn idle_clock_jumps_to_next_arrival() {
        // Nothing to do until t = 4: the scheduler must advance the
        // clock to the arrival instead of panicking on an idle arbiter.
        let jobs = vec![FleetJob {
            stripe: 7,
            level: 1,
            duration: 2.0,
            arrival: 4.0,
            cross_bytes: 100,
            inner_bytes: 50,
        }];
        let mut arb = arb();
        let out = schedule_fleet(&jobs, &mut |_| Demand::default(), &mut arb, &NoopRecorder);
        assert_eq!(out.records[0].admitted, 4.0);
        assert_eq!(out.records[0].waited, 0.0);
        assert_eq!(out.records[0].finish, 6.0);
        assert_eq!(out.summary.makespan, 6.0);
        // MTTR is finish − arrival, not absolute finish time.
        assert_eq!(out.summary.mttr_p50, 2.0);
    }

    #[test]
    fn summary_json_is_stable() {
        let jobs = vec![job(0, 1, 2.0)];
        let mut arb1 = arb();
        let mut arb2 = arb();
        let a = schedule_fleet(&jobs, &mut |_| Demand::default(), &mut arb1, &NoopRecorder);
        let b = schedule_fleet(&jobs, &mut |_| Demand::default(), &mut arb2, &NoopRecorder);
        assert_eq!(a.summary.to_json(), b.summary.to_json());
        assert!(a.summary.to_json().starts_with("{\"stripes\":1,\"repaired\":1,"));
        // The arbiter's double-release counter is surfaced last so the
        // established field order stays a stable prefix.
        assert!(a.summary.to_json().ends_with(",\"mismatched_releases\":0}"));
        assert_eq!(a.summary.mismatched_releases, 0);
    }

    #[test]
    fn quantile_nearest_rank_edge_cases() {
        assert_eq!(quantile(&[], 0.5), 0.0);
        assert_eq!(quantile(&[7.0], 0.0), 7.0);
        assert_eq!(quantile(&[7.0], 0.5), 7.0);
        assert_eq!(quantile(&[7.0], 0.99), 7.0);
        assert_eq!(quantile(&[7.0], 1.0), 7.0);
        assert_eq!(quantile(&[1.0, 2.0], 0.5), 1.0, "p50 of 2 is rank 1");
        assert_eq!(quantile(&[1.0, 2.0], 0.99), 2.0);
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(quantile(&v, 0.99), 99.0);
        assert_eq!(quantile(&v, 0.50), 50.0);
    }
}
