//! The fleet admission loop: a deterministic virtual-clock scheduler
//! driving the stripe index and the bandwidth arbiter.
//!
//! Jobs enter the index at their [`FleetJob::arrival`] time (0 for the
//! pre-existing backlog; later for stripes whose failures are detected
//! mid-drain — they are enqueued into the live index when the clock
//! reaches them, never dropped until a next run). The loop then
//! alternates between two moves:
//!
//! 1. **Admit** — while the index head's (clamped) demand fits under the
//!    arbiter, pop it, reserve, and schedule its completion at
//!    `now + duration`. Admission is strictly head-of-line: nothing
//!    behind the head is ever admitted before it, so a level-`z−1`
//!    stripe can never jump a runnable level-`z` stripe (priority
//!    inversion is impossible by construction).
//! 2. **Advance** — when the head is blocked (or the queue is empty),
//!    jump the clock to the earlier of the next in-flight completion
//!    (releasing its reservations) and the next arrival (enqueuing it).
//!
//! **Timing model.** An admitted repair reserves its stand-alone peak
//! link rates for its stand-alone duration. Because the arbiter never
//! over-commits any link, every admitted repair runs at exactly the
//! rates its plan assumed on an idle cluster — so contention changes
//! *when* a repair starts, never how long it takes or which plan it
//! uses. MTTR under contention = admission wait + idle-cluster repair
//! time.

use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt::Write as _;

use rpr_faults::{ChurnProcess, SplitMix64};
use rpr_obs::{Event, Recorder};

use crate::arbiter::{BandwidthArbiter, Demand};
use crate::index::StripeIndex;
use crate::journal::FleetJournal;

/// One schedulable unit of fleet work: a stripe whose repair plan has
/// been built and costed.
#[derive(Clone, Debug)]
pub struct FleetJob {
    /// Fleet-wide stripe id (reported in records and events).
    pub stripe: u32,
    /// At-risk level = number of failed blocks; higher repairs first.
    pub level: usize,
    /// Stand-alone repair time in seconds (idle-cluster supervised sim).
    pub duration: f64,
    /// Cross-rack bytes the repair moves.
    pub cross_bytes: u64,
    /// Inner-rack bytes the repair moves.
    pub inner_bytes: u64,
    /// Fleet-clock seconds when the stripe's failure is detected: 0 for
    /// the pre-existing backlog, later for failures that arrive while
    /// the drain is already running.
    pub arrival: f64,
}

/// Per-stripe outcome of a fleet run.
#[derive(Clone, Debug, PartialEq)]
pub struct StripeRecord {
    /// Fleet-wide stripe id.
    pub stripe: u32,
    /// At-risk level the stripe was served at.
    pub level: usize,
    /// Fleet-clock seconds when the repair was admitted.
    pub admitted: f64,
    /// Fleet-clock seconds when the repair finished. Its MTTR is
    /// `finish − arrival`.
    pub finish: f64,
    /// Seconds spent queued between arrival and admission.
    pub waited: f64,
}

/// Aggregate results of a fleet run — the numbers the `fleet-scale`
/// experiment tables and `rpr fleet --json` report.
#[derive(Clone, Debug, PartialEq)]
pub struct FleetSummary {
    /// Stripes enqueued.
    pub stripes: usize,
    /// Stripes repaired. Equals `stripes` except under churn, where
    /// permanently lost stripes are accounted in `lost` instead
    /// (`repaired + lost == stripes` always holds).
    pub repaired: usize,
    /// Fleet-clock seconds until the last repair finished.
    pub makespan: f64,
    /// Sustained repair throughput in stripes per fleet-clock second.
    pub stripes_per_sec: f64,
    /// Sustained repair traffic in bytes per fleet-clock second
    /// (cross + inner).
    pub bytes_per_sec: f64,
    /// Median time-to-repair in seconds (nearest-rank).
    pub mttr_p50: f64,
    /// 99th-percentile time-to-repair in seconds (nearest-rank).
    pub mttr_p99: f64,
    /// Mean time-to-repair in seconds.
    pub mttr_mean: f64,
    /// Stripes whose admission was delayed by bandwidth contention.
    pub waited: usize,
    /// Longest admission wait in seconds.
    pub max_wait: f64,
    /// Mean admission wait in seconds over all stripes.
    pub mean_wait: f64,
    /// Total cross-rack bytes moved.
    pub cross_bytes: u64,
    /// Total inner-rack bytes moved.
    pub inner_bytes: u64,
    /// Releases during this drain that did not match an admitted
    /// reservation (see [`BandwidthArbiter::mismatched_releases`]).
    /// Always zero for a healthy scheduler; soaks assert on it.
    pub mismatched_releases: u64,
    /// Stripes permanently lost: churn pushed them past the code's
    /// parity count (`z > r`) before their repair finished. Always
    /// `repaired + lost == stripes`.
    pub lost: usize,
    /// Risk escalations applied by the drain (queued re-prioritizations
    /// plus in-flight supervisor handoffs).
    pub escalations: usize,
    /// Individual churn block-failures that hit live stripes mid-drain.
    pub churn_failures: usize,
}

impl FleetSummary {
    /// One-line JSON rendering with a stable field order. Two runs with
    /// the same seed produce byte-identical output (all values are
    /// computed deterministically and formatted with Rust's default
    /// shortest-roundtrip float formatting).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        let _ = write!(s, "\"stripes\":{}", self.stripes);
        let _ = write!(s, ",\"repaired\":{}", self.repaired);
        let _ = write!(s, ",\"makespan\":{}", self.makespan);
        let _ = write!(s, ",\"stripes_per_sec\":{}", self.stripes_per_sec);
        let _ = write!(s, ",\"bytes_per_sec\":{}", self.bytes_per_sec);
        let _ = write!(s, ",\"mttr_p50\":{}", self.mttr_p50);
        let _ = write!(s, ",\"mttr_p99\":{}", self.mttr_p99);
        let _ = write!(s, ",\"mttr_mean\":{}", self.mttr_mean);
        let _ = write!(s, ",\"waited\":{}", self.waited);
        let _ = write!(s, ",\"max_wait\":{}", self.max_wait);
        let _ = write!(s, ",\"mean_wait\":{}", self.mean_wait);
        let _ = write!(s, ",\"cross_bytes\":{}", self.cross_bytes);
        let _ = write!(s, ",\"inner_bytes\":{}", self.inner_bytes);
        let _ = write!(s, ",\"mismatched_releases\":{}", self.mismatched_releases);
        let _ = write!(s, ",\"lost\":{}", self.lost);
        let _ = write!(s, ",\"escalations\":{}", self.escalations);
        let _ = write!(s, ",\"churn_failures\":{}", self.churn_failures);
        s.push('}');
        s
    }
}

/// One permanently lost stripe: churn pushed it past the code's parity
/// count before its repair finished.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LostStripe {
    /// Fleet-wide stripe id.
    pub stripe: u32,
    /// At-risk level at the moment of loss (parity count + 1 or more).
    pub level: usize,
    /// Fleet-clock seconds when the fatal churn hit landed.
    pub t: f64,
}

/// Result of [`schedule_fleet`] / [`drain_fleet`]: the summary plus
/// per-stripe records.
#[derive(Clone, Debug)]
pub struct AdmissionOutcome {
    /// Aggregate fleet numbers.
    pub summary: FleetSummary,
    /// One record per **repaired** job, in the input job order. Without
    /// churn every job is repaired, so this aligns positionally with
    /// the job slice; lost stripes are in `lost` instead.
    pub records: Vec<StripeRecord>,
    /// Permanent-loss ledger, in loss order.
    pub lost: Vec<LostStripe>,
}

/// The costed shape of one repair at one at-risk level, materialized
/// when a stripe reaches the queue head (or escalates mid-flight):
/// stand-alone duration, bytes moved, and clamped bandwidth demand.
#[derive(Clone, Debug)]
pub struct JobCost {
    /// Stand-alone repair time in seconds (idle-cluster supervised sim).
    pub duration: f64,
    /// Cross-rack bytes the repair moves.
    pub cross_bytes: u64,
    /// Inner-rack bytes the repair moves.
    pub inner_bytes: u64,
    /// Peak per-link rates the repair reserves while admitted.
    pub demand: Demand,
}

/// Churn co-simulation knobs for [`drain_fleet`].
#[derive(Clone, Debug)]
pub struct ChurnOptions {
    /// The seeded failure arrival stream, co-simulated on the drain's
    /// virtual clock.
    pub process: ChurnProcess,
    /// Highest repairable at-risk level (the code's parity count `r`).
    /// A stripe pushed past it is permanently lost.
    pub max_level: usize,
    /// `true`: each churn hit escalates the victim's priority (queued
    /// stripes requeue at the higher level; in-flight stripes hand the
    /// failure to the running supervisor). `false`: risk still rises —
    /// and `z > r` still loses the stripe — but admission order ignores
    /// it (the baseline policy the `churn` experiments table contrasts).
    pub escalate: bool,
}

/// Optional drain extensions: churn co-simulation and the write-ahead
/// journal. `DrainOptions::default()` is exactly [`schedule_fleet`].
#[derive(Default)]
pub struct DrainOptions<'a> {
    /// Co-simulate a failure arrival stream with the drain.
    pub churn: Option<ChurnOptions>,
    /// Append every scheduling decision to this write-ahead journal
    /// (shared with the costing layer via `RefCell`, which also writes
    /// per-stripe cost records into it).
    pub journal: Option<&'a RefCell<FleetJournal>>,
}

/// Total order on completion times for the virtual-clock heap.
#[derive(PartialEq)]
struct TimeKey(f64);

impl Eq for TimeKey {}

impl PartialOrd for TimeKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TimeKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Drain a backlog of repair jobs through the arbiter on a virtual
/// clock. See the [module docs](self) for the admission discipline and
/// timing model.
///
/// `demand_of(job_index)` materializes the clamped bandwidth demand of
/// a job when it reaches the queue head; the scheduler holds at most
/// one demand per in-flight repair, so a million-stripe backlog never
/// materializes a million demand vectors at once.
///
/// # Panics
/// Panics if a job's duration is negative or NaN, or a demand is not
/// admissible on an idle arbiter (clamp demands to capacity first).
pub fn schedule_fleet(
    jobs: &[FleetJob],
    demand_of: &mut dyn FnMut(usize) -> Demand,
    arbiter: &mut BandwidthArbiter,
    rec: &dyn Recorder,
) -> AdmissionOutcome {
    drain_fleet(
        jobs,
        &mut |i, _level| JobCost {
            duration: jobs[i].duration,
            cross_bytes: jobs[i].cross_bytes,
            inner_bytes: jobs[i].inner_bytes,
            demand: demand_of(i),
        },
        arbiter,
        DrainOptions::default(),
        rec,
    )
}

/// [`schedule_fleet`] extended for a world that keeps failing while it
/// repairs: co-simulated churn arrivals, O(1) risk escalation, a
/// permanent-loss ledger, and write-ahead journaling.
///
/// `cost_of(job, level)` materializes the repair cost of a job *at a
/// given at-risk level* — called at admission with the job's current
/// level, and again when an in-flight stripe escalates (the supervisor
/// absorbs the new failure: the running repair stretches by the cost
/// difference between the two levels instead of restarting). With
/// [`DrainOptions::default()`] the loop is bit-identical to
/// [`schedule_fleet`].
///
/// Churn hits land on live stripes (queued or in-flight), drawn
/// deterministically from the event's seed. A hit raises the victim's
/// level; under the escalation policy queued victims requeue at the
/// higher level (strict level ordering preserved, O(1) via the index's
/// lazy requeue) and in-flight victims stretch. A victim pushed past
/// [`ChurnOptions::max_level`] is **permanently lost**: counted, evented
/// (`stripe_lost`), journaled, and removed from the drain — never
/// retried forever. The invariant `repaired + lost == enqueued` holds on
/// every exit.
///
/// # Panics
/// Panics if a job's duration is negative or NaN, a demand is not
/// admissible on an idle arbiter, or a journal write fails.
pub fn drain_fleet(
    jobs: &[FleetJob],
    cost_of: &mut dyn FnMut(usize, usize) -> JobCost,
    arbiter: &mut BandwidthArbiter,
    opts: DrainOptions<'_>,
    rec: &dyn Recorder,
) -> AdmissionOutcome {
    let DrainOptions { churn, journal } = opts;
    let mut churn = churn;
    let loss_level = churn.as_ref().map(|c| c.max_level).unwrap_or(usize::MAX);
    let base_max = jobs.iter().map(|j| j.level).max().unwrap_or(1).max(1);
    let index_max = if churn.is_some() {
        base_max.max(loss_level)
    } else {
        base_max
    };
    let mut index = StripeIndex::new(index_max, 16, jobs.len());
    // Jobs not yet arrived, ascending by arrival time (ties in job
    // order); `next_due` walks this list as the clock advances.
    let mut due: Vec<u32> = (0..jobs.len() as u32).collect();
    due.sort_by(|&a, &b| {
        jobs[a as usize]
            .arrival
            .total_cmp(&jobs[b as usize].arrival)
            .then(a.cmp(&b))
    });
    for (i, job) in jobs.iter().enumerate() {
        assert!(
            job.duration >= 0.0,
            "schedule_fleet: job {i} has invalid duration"
        );
        assert!(
            job.arrival >= 0.0 && job.arrival.is_finite(),
            "schedule_fleet: job {i} has invalid arrival"
        );
    }
    let mut next_due = 0usize;
    let mismatch_base = arbiter.mismatched_releases();

    // Per-job drain state. `level` is the authoritative at-risk level
    // (the index's copy goes stale under the no-escalation policy);
    // `finish_at` is the authoritative completion time of in-flight
    // jobs — escalations push updated heap entries and stale ones are
    // dropped lazily, mirroring the index's O(1) requeue.
    let mut level: Vec<usize> = jobs.iter().map(|j| j.level).collect();
    let mut finish_at: Vec<f64> = vec![f64::NAN; jobs.len()];
    let mut dur_standalone: Vec<f64> = vec![0.0; jobs.len()];
    let mut bytes: Vec<(u64, u64)> = jobs
        .iter()
        .map(|j| (j.cross_bytes, j.inner_bytes))
        .collect();
    let mut arrived: Vec<bool> = vec![false; jobs.len()];
    let mut lost_flag: Vec<bool> = vec![false; jobs.len()];
    let mut lost: Vec<LostStripe> = Vec::new();
    let mut escalations = 0usize;
    let mut churn_failures = 0usize;
    let mut churn_next = churn.as_mut().and_then(|c| c.process.next_event());

    let mut now = 0.0f64;
    // Earliest-completion heap of (finish, job index); reservations of
    // in-flight jobs are parked in `holding` until released.
    let mut running: BinaryHeap<Reverse<(TimeKey, u32)>> = BinaryHeap::new();
    let mut holding: Vec<Option<Demand>> = vec![None; jobs.len()];
    let mut records: Vec<Option<StripeRecord>> = vec![None; jobs.len()];
    let mut makespan = 0.0f64;

    loop {
        // Re-scan arrivals: failures detected by now enter the live
        // index (mid-drain arrivals are never deferred to a next run).
        while next_due < due.len() && jobs[due[next_due] as usize].arrival <= now {
            let i = due[next_due];
            next_due += 1;
            let job = &jobs[i as usize];
            arrived[i as usize] = true;
            index.enqueue(i, job.level);
            rec.record(Event::StripeEnqueued {
                stripe: job.stripe as u64,
                level: job.level,
                t: job.arrival,
            });
            if let Some(j) = journal {
                j.borrow_mut().enqueue(job.stripe, job.level, job.arrival);
            }
        }
        // Admit as much of the queue head as fits right now.
        while let Some((head, _)) = index.peek() {
            let i = head as usize;
            if lost_flag[i] {
                // Lost while queued: the index entry is a tombstone.
                index.pop();
                continue;
            }
            let lvl = level[i];
            let cost = cost_of(i, lvl);
            let mut demand = cost.demand;
            arbiter.clamp(&mut demand);
            if !arbiter.try_admit(&demand) {
                if !has_running(&mut running, &finish_at, &holding) {
                    panic!(
                        "drain_fleet: job {i} inadmissible on an idle arbiter \
                         (demand exceeds clamped capacity)"
                    );
                }
                break;
            }
            index.pop();
            let job = &jobs[i];
            let waited = now - job.arrival;
            rec.record(Event::StripeAdmitted {
                stripe: job.stripe as u64,
                level: lvl,
                t: now,
            });
            if waited > 0.0 {
                rec.record(Event::BandwidthWaited {
                    stripe: job.stripe as u64,
                    level: lvl,
                    waited,
                    t: now,
                });
            }
            if let Some(j) = journal {
                j.borrow_mut().admit(job.stripe, lvl, now, waited);
            }
            let finish = now + cost.duration;
            dur_standalone[i] = cost.duration;
            bytes[i] = (cost.cross_bytes, cost.inner_bytes);
            records[i] = Some(StripeRecord {
                stripe: job.stripe,
                level: lvl,
                admitted: now,
                finish,
                waited,
            });
            holding[i] = Some(demand);
            finish_at[i] = finish;
            running.push(Reverse((TimeKey(finish), head)));
        }
        // Advance the clock to the next completion, the next arrival, or
        // the next churn hit, whichever is earlier.
        let next_arrival = due
            .get(next_due)
            .map(|&i| jobs[i as usize].arrival)
            .unwrap_or(f64::INFINITY);
        let next_churn = churn_next.as_ref().map(|e| e.t).unwrap_or(f64::INFINITY);
        prune_stale(&mut running, &finish_at, &holding);
        let next_completion = running.peek().map(|&Reverse((TimeKey(f), i))| (f, i));
        match next_completion {
            Some((finish, idx)) if finish <= next_arrival && finish <= next_churn => {
                running.pop();
                now = finish;
                makespan = makespan.max(finish);
                let i = idx as usize;
                let demand = holding[i].take().expect("in-flight demand");
                arbiter.release(&demand);
                finish_at[i] = f64::NAN;
                // Refresh level/finish: an in-flight escalation may have
                // raised both since admission.
                let r = records[i].as_mut().expect("admitted record");
                r.level = level[i];
                r.finish = finish;
                if let Some(j) = journal {
                    let cp = j
                        .borrow_mut()
                        .complete(r.stripe, r.level, r.admitted, r.finish, r.waited);
                    if let Some(cp) = cp {
                        rec.record(Event::JournalCheckpoint {
                            seq: cp.seq,
                            completed: cp.completed,
                            lost: cp.lost,
                            t: now,
                        });
                    }
                }
            }
            blocked => {
                if blocked.is_none() && next_due >= due.len() && index.is_empty() {
                    // Backlog drained: stop even if the churn stream
                    // continues — there is nothing left for it to hit.
                    break;
                }
                if next_churn <= next_arrival && next_churn.is_finite() {
                    let ev = churn_next.take().expect("finite churn time");
                    let c = churn.as_mut().expect("churn options present");
                    churn_next = c.process.next_event();
                    now = ev.t;
                    apply_churn_hit(ChurnHit {
                        jobs,
                        ev: &ev,
                        escalate: c.escalate,
                        loss_level,
                        cost_of,
                        rec,
                        journal,
                        index: &mut index,
                        running: &mut running,
                        arbiter,
                        level: &mut level,
                        finish_at: &mut finish_at,
                        dur_standalone: &mut dur_standalone,
                        bytes: &mut bytes,
                        arrived: &arrived,
                        lost_flag: &mut lost_flag,
                        lost: &mut lost,
                        holding: &mut holding,
                        records: &mut records,
                        escalations: &mut escalations,
                        churn_failures: &mut churn_failures,
                    });
                } else if next_arrival.is_finite() {
                    now = next_arrival;
                } else {
                    break;
                }
            }
        }
    }

    let mut repaired: Vec<StripeRecord> = Vec::with_capacity(jobs.len() - lost.len());
    let mut mttr: Vec<f64> = Vec::with_capacity(jobs.len());
    let mut cross_total = 0u64;
    let mut inner_total = 0u64;
    for i in 0..jobs.len() {
        match records[i].take() {
            Some(r) => {
                mttr.push(r.finish - jobs[i].arrival);
                cross_total += bytes[i].0;
                inner_total += bytes[i].1;
                repaired.push(r);
            }
            None => assert!(
                lost_flag[i],
                "drain_fleet: stripe {i} neither repaired nor lost"
            ),
        }
    }
    mttr.sort_by(f64::total_cmp);
    let mut summary = summarize(SummaryParts {
        stripes: jobs.len(),
        records: &repaired,
        mttr_sorted: &mttr,
        cross_bytes: cross_total,
        inner_bytes: inner_total,
        makespan,
        lost: lost.len(),
        escalations,
        churn_failures,
    });
    summary.mismatched_releases = arbiter.mismatched_releases() - mismatch_base;
    AdmissionOutcome {
        summary,
        records: repaired,
        lost,
    }
}

/// Everything one churn arrival needs to mutate; bundling the drain's
/// state keeps `apply_churn_hit` a plain function instead of a closure
/// fighting the borrow checker.
struct ChurnHit<'a, 'b> {
    jobs: &'a [FleetJob],
    ev: &'a rpr_faults::ChurnEvent,
    escalate: bool,
    loss_level: usize,
    cost_of: &'a mut dyn FnMut(usize, usize) -> JobCost,
    rec: &'a dyn Recorder,
    journal: Option<&'b RefCell<FleetJournal>>,
    index: &'a mut StripeIndex,
    running: &'a mut BinaryHeap<Reverse<(TimeKey, u32)>>,
    arbiter: &'a mut BandwidthArbiter,
    level: &'a mut [usize],
    finish_at: &'a mut [f64],
    dur_standalone: &'a mut [f64],
    bytes: &'a mut [(u64, u64)],
    arrived: &'a [bool],
    lost_flag: &'a mut [bool],
    lost: &'a mut Vec<LostStripe>,
    holding: &'a mut [Option<Demand>],
    records: &'a mut [Option<StripeRecord>],
    escalations: &'a mut usize,
    churn_failures: &'a mut usize,
}

/// Land one churn arrival on the live stripe population: draw distinct
/// victims, raise their levels, escalate or lose them.
fn apply_churn_hit(h: ChurnHit<'_, '_>) {
    let t = h.ev.t;
    // Live = arrived, not lost, not completed (queued or in-flight).
    let mut live: Vec<u32> = (0..h.jobs.len() as u32)
        .filter(|&i| {
            let i = i as usize;
            h.arrived[i]
                && !h.lost_flag[i]
                && (h.records[i].is_none() || h.holding[i].is_some())
        })
        .collect();
    let mut vrng = SplitMix64::new(h.ev.draw);
    let nvict = h.ev.kind.victims().min(live.len());
    for _ in 0..nvict {
        let vi = vrng.pick(live.len());
        let idx = live.swap_remove(vi);
        let i = idx as usize;
        let stripe = h.jobs[i].stripe;
        *h.churn_failures += 1;
        let from = h.level[i];
        let to = from + 1;
        h.rec.record(Event::ChurnFailure {
            stripe: stripe as u64,
            level: to,
            t,
        });
        if to > h.loss_level {
            // Permanent loss: past the parity count no plan can rebuild
            // the stripe. Ledger it and stop spending repair bandwidth.
            h.lost_flag[i] = true;
            h.lost.push(LostStripe {
                stripe,
                level: to,
                t,
            });
            h.rec.record(Event::StripeLost {
                stripe: stripe as u64,
                level: to,
                t,
            });
            if let Some(j) = h.journal {
                j.borrow_mut().lost(stripe, to, t);
            }
            if let Some(demand) = h.holding[i].take() {
                // Cancel the now-moot in-flight repair and free its
                // bandwidth immediately; its heap entry goes stale.
                h.arbiter.release(&demand);
                h.finish_at[i] = f64::NAN;
                h.records[i] = None;
            }
            continue;
        }
        h.level[i] = to;
        if !h.escalate {
            // Risk rises (and can still cross into loss) but admission
            // order ignores it — the baseline policy the churn table
            // contrasts against.
            continue;
        }
        *h.escalations += 1;
        let in_flight = h.holding[i].is_some();
        h.rec.record(Event::RiskEscalated {
            stripe: stripe as u64,
            from,
            to,
            in_flight,
            t,
        });
        if let Some(j) = h.journal {
            j.borrow_mut().escalate(stripe, from, to, in_flight, t);
        }
        if in_flight {
            // Hand the new failure to the running repair's supervisor
            // (the PR 4 storm path): banked partials are kept, so the
            // repair stretches by the extra stand-alone cost of the
            // higher level instead of restarting from scratch.
            let cost = (h.cost_of)(i, to);
            let delta = (cost.duration - h.dur_standalone[i]).max(0.0);
            h.dur_standalone[i] = cost.duration;
            h.bytes[i] = (cost.cross_bytes, cost.inner_bytes);
            let nf = h.finish_at[i] + delta;
            h.finish_at[i] = nf;
            h.running.push(Reverse((TimeKey(nf), idx)));
        } else {
            // O(1) lazy requeue at the higher level; strict level
            // ordering is preserved by the index.
            h.index.requeue(idx, to);
        }
    }
}

/// Drop completion-heap entries invalidated by an escalation (a newer
/// finish entry exists) or a mid-flight loss (the repair was cancelled).
fn prune_stale(
    running: &mut BinaryHeap<Reverse<(TimeKey, u32)>>,
    finish_at: &[f64],
    holding: &[Option<Demand>],
) {
    while let Some(&Reverse((TimeKey(f), idx))) = running.peek() {
        let i = idx as usize;
        if holding[i].is_some() && finish_at[i].to_bits() == f.to_bits() {
            break;
        }
        running.pop();
    }
}

fn has_running(
    running: &mut BinaryHeap<Reverse<(TimeKey, u32)>>,
    finish_at: &[f64],
    holding: &[Option<Demand>],
) -> bool {
    prune_stale(running, finish_at, holding);
    !running.is_empty()
}

/// Inputs to [`summarize`], bundled to keep the call site readable.
struct SummaryParts<'a> {
    stripes: usize,
    records: &'a [StripeRecord],
    mttr_sorted: &'a [f64],
    cross_bytes: u64,
    inner_bytes: u64,
    makespan: f64,
    lost: usize,
    escalations: usize,
    churn_failures: usize,
}

/// Aggregate per-stripe records into a [`FleetSummary`].
fn summarize(parts: SummaryParts<'_>) -> FleetSummary {
    let waits: Vec<f64> = parts.records.iter().map(|r| r.waited).collect();
    let waited = waits.iter().filter(|&&w| w > 0.0).count();
    let makespan = parts.makespan;
    FleetSummary {
        stripes: parts.stripes,
        repaired: parts.records.len(),
        makespan,
        stripes_per_sec: if makespan > 0.0 {
            parts.records.len() as f64 / makespan
        } else {
            0.0
        },
        bytes_per_sec: if makespan > 0.0 {
            (parts.cross_bytes + parts.inner_bytes) as f64 / makespan
        } else {
            0.0
        },
        mttr_p50: quantile(parts.mttr_sorted, 0.50),
        mttr_p99: quantile(parts.mttr_sorted, 0.99),
        mttr_mean: mean(parts.mttr_sorted),
        waited,
        max_wait: waits.iter().fold(0.0, |a: f64, &b| a.max(b)),
        mean_wait: mean(&waits),
        cross_bytes: parts.cross_bytes,
        inner_bytes: parts.inner_bytes,
        mismatched_releases: 0,
        lost: parts.lost,
        escalations: parts.escalations,
        churn_failures: parts.churn_failures,
    }
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Nearest-rank quantile over an ascending-sorted sample; 0 when empty.
/// `q·len` is snapped to the nearest integer rank when float rounding
/// puts it within one ulp-scale tolerance, so e.g. `q = 0.5` over two
/// elements reliably selects rank 1 instead of spilling to rank 2.
pub fn quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let len = sorted.len();
    let pos = q.clamp(0.0, 1.0) * len as f64;
    let snapped = pos.round();
    let rank = if (pos - snapped).abs() < 1e-9 * (len as f64).max(1.0) {
        snapped as usize
    } else {
        pos.ceil() as usize
    };
    sorted[rank.clamp(1, len) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpr_netsim::Network;
    use rpr_obs::NoopRecorder;
    use rpr_topology::{BandwidthProfile, Topology, GBIT};

    fn arb() -> BandwidthArbiter {
        BandwidthArbiter::new(&Network::new(
            Topology::uniform(3, 2),
            BandwidthProfile::simics_default(3),
        ))
    }

    fn job(stripe: u32, level: usize, duration: f64) -> FleetJob {
        FleetJob {
            stripe,
            level,
            duration,
            arrival: 0.0,
            cross_bytes: 100,
            inner_bytes: 50,
        }
    }

    #[test]
    fn uncontended_jobs_all_start_at_zero() {
        let jobs = vec![job(0, 1, 2.0), job(1, 2, 3.0), job(2, 1, 1.0)];
        let mut arb = arb();
        let out = schedule_fleet(&jobs, &mut |_| Demand::default(), &mut arb, &NoopRecorder);
        assert_eq!(out.summary.repaired, 3);
        assert_eq!(out.summary.waited, 0);
        assert_eq!(out.summary.makespan, 3.0);
        for r in &out.records {
            assert_eq!(r.admitted, 0.0);
            assert_eq!(r.waited, 0.0);
        }
        // Records are in job order regardless of service order.
        assert_eq!(out.records[1].stripe, 1);
        assert_eq!(out.records[1].finish, 3.0);
    }

    #[test]
    fn saturated_link_serializes_by_level_then_fifo() {
        // Three jobs all demanding the full cross uplink of node 0: they
        // must run one at a time, the level-2 job first.
        let cross = 0.1 * GBIT;
        let jobs = vec![job(10, 1, 1.0), job(11, 2, 1.0), job(12, 1, 1.0)];
        let mut arb = arb();
        let mut demand_of = |_: usize| Demand {
            entries: vec![(BandwidthArbiter::uplink(0), cross)],
        };
        let out = schedule_fleet(&jobs, &mut demand_of, &mut arb, &NoopRecorder);
        let by_stripe = |s: u32| out.records.iter().find(|r| r.stripe == s).unwrap();
        assert_eq!(by_stripe(11).admitted, 0.0, "level 2 first");
        assert_eq!(by_stripe(10).admitted, 1.0, "then FIFO within level 1");
        assert_eq!(by_stripe(12).admitted, 2.0);
        assert_eq!(out.summary.makespan, 3.0);
        assert_eq!(out.summary.waited, 2);
        assert_eq!(out.summary.max_wait, 2.0);
        assert!(arb.total_reserved() < 1e-6, "all reservations released");
    }

    #[test]
    fn mid_drain_failure_is_enqueued_not_dropped() {
        // Regression for the enqueue-once drain: stripe 99's failure is
        // detected at t = 0.5, after the drain has started on a
        // saturated link. It must be enqueued into the live index and
        // repaired in this run — and, being level 2, it must be served
        // ahead of the level-1 stripes still queued at its arrival.
        let cross = 0.1 * GBIT;
        let mut jobs = vec![job(10, 1, 1.0), job(11, 1, 1.0), job(12, 1, 1.0)];
        jobs.push(FleetJob {
            stripe: 99,
            level: 2,
            duration: 1.0,
            arrival: 0.5,
            cross_bytes: 100,
            inner_bytes: 50,
        });
        let mut arb = arb();
        let mut demand_of = |_: usize| Demand {
            entries: vec![(BandwidthArbiter::uplink(0), cross)],
        };
        let out = schedule_fleet(&jobs, &mut demand_of, &mut arb, &NoopRecorder);
        assert_eq!(out.summary.repaired, 4, "mid-drain arrival is repaired");
        let by_stripe = |s: u32| out.records.iter().find(|r| r.stripe == s).unwrap();
        // Stripe 10 holds the link over [0, 1); 99 arrives at 0.5 and,
        // at the t = 1 completion, outranks the queued level-1 stripes.
        assert_eq!(by_stripe(10).admitted, 0.0);
        assert_eq!(by_stripe(99).admitted, 1.0, "level 2 jumps the queue");
        assert_eq!(by_stripe(99).waited, 0.5, "waited counts from arrival");
        assert_eq!(by_stripe(11).admitted, 2.0);
        assert_eq!(by_stripe(12).admitted, 3.0);
        // MTTR is measured from arrival, not from drain start.
        assert_eq!(by_stripe(99).finish, 2.0);
        assert!(arb.total_reserved() < 1e-6, "all reservations released");
    }

    #[test]
    fn idle_clock_jumps_to_next_arrival() {
        // Nothing to do until t = 4: the scheduler must advance the
        // clock to the arrival instead of panicking on an idle arbiter.
        let jobs = vec![FleetJob {
            stripe: 7,
            level: 1,
            duration: 2.0,
            arrival: 4.0,
            cross_bytes: 100,
            inner_bytes: 50,
        }];
        let mut arb = arb();
        let out = schedule_fleet(&jobs, &mut |_| Demand::default(), &mut arb, &NoopRecorder);
        assert_eq!(out.records[0].admitted, 4.0);
        assert_eq!(out.records[0].waited, 0.0);
        assert_eq!(out.records[0].finish, 6.0);
        assert_eq!(out.summary.makespan, 6.0);
        // MTTR is finish − arrival, not absolute finish time.
        assert_eq!(out.summary.mttr_p50, 2.0);
    }

    #[test]
    fn summary_json_is_stable() {
        let jobs = vec![job(0, 1, 2.0)];
        let mut arb1 = arb();
        let mut arb2 = arb();
        let a = schedule_fleet(&jobs, &mut |_| Demand::default(), &mut arb1, &NoopRecorder);
        let b = schedule_fleet(&jobs, &mut |_| Demand::default(), &mut arb2, &NoopRecorder);
        assert_eq!(a.summary.to_json(), b.summary.to_json());
        assert!(a.summary.to_json().starts_with("{\"stripes\":1,\"repaired\":1,"));
        // Churn counters are surfaced last so the established field
        // order stays a stable prefix.
        assert!(a.summary.to_json().ends_with(",\"churn_failures\":0}"));
        assert!(a.summary.to_json().contains(",\"mismatched_releases\":0,"));
        assert_eq!(a.summary.mismatched_releases, 0);
        assert_eq!(a.summary.lost, 0);
    }

    fn churned(rate: f64, seed: u64, escalate: bool, max_level: usize) -> AdmissionOutcome {
        let jobs: Vec<FleetJob> = (0..40).map(|s| job(s, 1 + (s as usize % 2), 1.0)).collect();
        let cross = 0.1 * GBIT;
        let mut arb = arb();
        let mut cost_of = |i: usize, lvl: usize| JobCost {
            duration: jobs[i].duration * lvl as f64,
            cross_bytes: jobs[i].cross_bytes * lvl as u64,
            inner_bytes: jobs[i].inner_bytes * lvl as u64,
            demand: Demand {
                entries: vec![(BandwidthArbiter::uplink(0), cross)],
            },
        };
        let opts = DrainOptions {
            churn: Some(ChurnOptions {
                process: ChurnProcess::new(seed, rate),
                max_level,
                escalate,
            }),
            journal: None,
        };
        drain_fleet(&jobs, &mut cost_of, &mut arb, opts, &NoopRecorder)
    }

    #[test]
    fn churned_drain_accounts_every_stripe() {
        // Aggressive churn with a tight loss threshold: some stripes are
        // lost, yet repaired + lost == enqueued and the arbiter drains
        // clean (cancelled in-flight repairs release their bandwidth).
        let out = churned(0.8, 42, true, 2);
        assert_eq!(out.summary.stripes, 40);
        assert_eq!(out.records.len() + out.lost.len(), 40);
        assert_eq!(out.summary.repaired + out.summary.lost, 40);
        assert!(out.summary.churn_failures > 0, "churn actually landed");
        assert_eq!(out.summary.mismatched_releases, 0);
        for l in &out.lost {
            assert!(l.level > 2, "losses only past the parity count");
        }
    }

    #[test]
    fn churned_drain_is_deterministic() {
        let a = churned(0.8, 42, true, 2);
        let b = churned(0.8, 42, true, 2);
        assert_eq!(a.summary.to_json(), b.summary.to_json());
        assert_eq!(a.records, b.records);
        assert_eq!(a.lost, b.lost);
    }

    #[test]
    fn zero_churn_drain_matches_schedule_fleet() {
        // A churn process with rate 0 never fires: the drain must be
        // bit-identical to the plain scheduler.
        let jobs = vec![job(0, 1, 2.0), job(1, 2, 3.0), job(2, 1, 1.0)];
        let mut arb1 = arb();
        let plain = schedule_fleet(&jobs, &mut |_| Demand::default(), &mut arb1, &NoopRecorder);
        let mut arb2 = arb();
        let mut cost_of = |i: usize, _lvl: usize| JobCost {
            duration: jobs[i].duration,
            cross_bytes: jobs[i].cross_bytes,
            inner_bytes: jobs[i].inner_bytes,
            demand: Demand::default(),
        };
        let opts = DrainOptions {
            churn: Some(ChurnOptions {
                process: ChurnProcess::new(9, 0.0),
                max_level: 4,
                escalate: true,
            }),
            journal: None,
        };
        let churny = drain_fleet(&jobs, &mut cost_of, &mut arb2, opts, &NoopRecorder);
        assert_eq!(plain.summary.to_json(), churny.summary.to_json());
        assert_eq!(plain.records, churny.records);
    }

    #[test]
    fn escalation_raises_priority_without_restart() {
        // One long level-1 repair holds the link; a churn hit escalates a
        // queued level-1 stripe to level 2, which must then be admitted
        // ahead of the other queued level-1 stripe. With escalation off,
        // FIFO order within level 1 is preserved instead.
        let esc = churned(0.8, 42, true, 4);
        let base = churned(0.8, 42, false, 4);
        // Escalated repairs stretch, so the drain runs longer and soaks
        // up more churn hits — but only the escalation policy counts
        // escalations.
        assert!(esc.summary.churn_failures > 0);
        assert!(base.summary.churn_failures > 0);
        assert!(esc.summary.escalations > 0);
        assert_eq!(base.summary.escalations, 0);
        // Escalated records report the level they were actually served
        // at, which can exceed the enqueue level.
        assert!(
            esc.records.iter().any(|r| r.level > 2),
            "some stripe was served above its base level"
        );
    }

    #[test]
    fn quantile_nearest_rank_edge_cases() {
        assert_eq!(quantile(&[], 0.5), 0.0);
        assert_eq!(quantile(&[7.0], 0.0), 7.0);
        assert_eq!(quantile(&[7.0], 0.5), 7.0);
        assert_eq!(quantile(&[7.0], 0.99), 7.0);
        assert_eq!(quantile(&[7.0], 1.0), 7.0);
        assert_eq!(quantile(&[1.0, 2.0], 0.5), 1.0, "p50 of 2 is rank 1");
        assert_eq!(quantile(&[1.0, 2.0], 0.99), 2.0);
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(quantile(&v, 0.99), 99.0);
        assert_eq!(quantile(&v, 0.50), 50.0);
    }
}
