//! Cross-stripe bandwidth arbitration.
//!
//! Every repair plan the fleet admits reserves capacity on the shared
//! cluster links for its whole duration, so concurrent repairs stop
//! assuming an idle cluster. The arbitrated resources are the ones that
//! bottleneck rack-aware repair:
//!
//! * each node's shaped **cross-traffic class**, uplink and downlink
//!   separately (wondershaper throttles cross-rack traffic per node, so
//!   two stripes pulling through the same helper NIC contend there);
//! * the **aggregation switch**, when the cluster models a finite
//!   backplane (`Network::with_agg_capacity`).
//!
//! Inner-rack links are deliberately *not* arbitrated: they run at the
//! full NIC rate (10× the shaped cross rate in the paper's profile) and
//! the whole point of rack-aware repair is that inner-rack traffic is
//! cheap; cross-rack bandwidth is the contended resource.
//!
//! **Admission rule.** A stripe's [`Demand`] is its stand-alone peak
//! rate on every resource it touches (see [`plan_demand`]). The arbiter
//! admits the stripe iff *every* entry fits under the remaining capacity
//! of its resource, then commits all reservations atomically; on
//! completion the same demand is released. Demands are clamped to
//! resource capacity first ([`BandwidthArbiter::clamp`]), so a stripe
//! alone on an idle arbiter always admits — admission can stall a queue
//! head only while other repairs are in flight, never forever.
//!
//! **QoS classes.** Under [`QosClass::ForegroundPriority`] the arbiter
//! admits repair against the *residual* capacity
//! `capacity × max(repair_floor, 1 − foreground_share)` of every link,
//! keeping the set-aside share free for foreground I/O while
//! guaranteeing repair a floor it can always make progress on.
//! [`QosClass::Unthrottled`] is the pre-QoS behavior. Releases are
//! checked against an outstanding-admission ledger, so a double release
//! is a hard error in debug builds and a counted, unapplied event in
//! release builds (see [`BandwidthArbiter::release`]).

use std::collections::BTreeMap;

use rpr_core::plan::{Op, RepairPlan};
use rpr_netsim::Network;
use rpr_topology::Topology;

/// Relative + absolute float tolerance for capacity checks, so releasing
/// and re-reserving the same rates never spuriously rejects.
const EPS: f64 = 1e-9;

/// Admission class governing how much of each arbitrated link repair
/// traffic may reserve. See `docs/FOREGROUND.md`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum QosClass {
    /// Repair admits against full link capacity (the pre-QoS behavior):
    /// foreground traffic gets whatever max-min fairness leaves over.
    Unthrottled,
    /// Foreground-priority: a `foreground_share` fraction of every
    /// arbitrated link is set aside for user traffic, and repair admits
    /// against the residual — but never against less than a
    /// `repair_floor` fraction, so repair cannot be starved outright.
    ForegroundPriority {
        /// Fraction of each link reserved for foreground I/O, in `[0, 1)`.
        foreground_share: f64,
        /// Guaranteed minimum fraction repair may always use, in `(0, 1]`.
        repair_floor: f64,
    },
}

impl QosClass {
    /// Fraction of each arbitrated link's capacity repair admission may
    /// use under this class.
    pub fn repair_fraction(&self) -> f64 {
        match *self {
            QosClass::Unthrottled => 1.0,
            QosClass::ForegroundPriority {
                foreground_share,
                repair_floor,
            } => {
                assert!(
                    (0.0..1.0).contains(&foreground_share),
                    "foreground_share must be in [0, 1)"
                );
                assert!(
                    repair_floor > 0.0 && repair_floor <= 1.0,
                    "repair_floor must be in (0, 1]"
                );
                (1.0 - foreground_share).max(repair_floor)
            }
        }
    }
}

/// The bandwidth a single repair wants to reserve: `(resource, rate)`
/// pairs, sorted by resource id, at most one entry per resource.
///
/// Resource ids are assigned by [`BandwidthArbiter`]: `2*node` is node
/// `node`'s cross-class uplink, `2*node + 1` its cross-class downlink,
/// and `2*node_count` the aggregation switch.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Demand {
    /// `(resource id, bytes/sec)` reservations, ascending by resource.
    pub entries: Vec<(u32, f64)>,
}

impl Demand {
    /// True when the repair reserves nothing (e.g. a repair whose plan
    /// never crosses racks).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Reservation ledger over a cluster's contended links.
///
/// See the [module docs](self) for the admission rule and which links
/// are arbitrated.
pub struct BandwidthArbiter {
    capacity: Vec<f64>,
    reserved: Vec<f64>,
    peak: Vec<f64>,
    enabled: bool,
    in_flight: usize,
    qos: QosClass,
    /// Outstanding admissions keyed by demand fingerprint, so a release
    /// that was never admitted (or already released) is caught instead of
    /// silently saturating reservations to zero.
    outstanding: BTreeMap<u64, u32>,
    mismatched_releases: u64,
}

impl BandwidthArbiter {
    /// An arbiter over a cluster: per-node cross-class up/down links at
    /// the shaped cross rate, plus the aggregation switch (infinite
    /// unless the network constrains it).
    pub fn new(net: &Network) -> BandwidthArbiter {
        let nodes = net.topology().node_count();
        let mut capacity = Vec::with_capacity(2 * nodes + 1);
        for node in 0..nodes {
            let rate = net.cross_class_rate(rpr_topology::NodeId(node));
            capacity.push(rate); // uplink
            capacity.push(rate); // downlink
        }
        capacity.push(net.agg_capacity());
        BandwidthArbiter {
            reserved: vec![0.0; capacity.len()],
            peak: vec![0.0; capacity.len()],
            capacity,
            enabled: true,
            in_flight: 0,
            qos: QosClass::Unthrottled,
            outstanding: BTreeMap::new(),
            mismatched_releases: 0,
        }
    }

    /// Fingerprint of a demand's exact entries (FNV-1a over resource ids
    /// and rate bit patterns). Two demands release-match iff their
    /// fingerprints match, which is exactly the bit-equality the
    /// reservation subtraction needs.
    fn fingerprint(demand: &Demand) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        for &(r, rate) in &demand.entries {
            mix(r as u64);
            mix(rate.to_bits());
        }
        h
    }

    /// Resource id of a node's cross-class uplink.
    #[inline]
    pub fn uplink(node: usize) -> u32 {
        (2 * node) as u32
    }

    /// Resource id of a node's cross-class downlink.
    #[inline]
    pub fn downlink(node: usize) -> u32 {
        (2 * node + 1) as u32
    }

    /// Resource id of the aggregation switch for a cluster of
    /// `node_count` nodes.
    #[inline]
    pub fn agg(node_count: usize) -> u32 {
        (2 * node_count) as u32
    }

    /// Disable admission control: [`BandwidthArbiter::try_admit`] always
    /// succeeds without reserving anything. Used to prove the arbiter
    /// only adds waiting — with contention off, the fleet schedule must
    /// match per-stripe supervised repair exactly.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Whether admission control is active.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Set the repair QoS class. Under
    /// [`QosClass::ForegroundPriority`] every admission check (and
    /// [`BandwidthArbiter::clamp`]) runs against the residual
    /// `capacity × repair_fraction` instead of full link capacity, so
    /// the set-aside share stays free for foreground flows.
    ///
    /// # Panics
    /// Panics if the class's parameters are out of range (foreground
    /// share must be in `[0, 1)`, the repair floor in `(0, 1]`).
    pub fn set_qos(&mut self, qos: QosClass) {
        let _ = qos.repair_fraction(); // validate eagerly
        self.qos = qos;
    }

    /// The active repair QoS class.
    pub fn qos(&self) -> QosClass {
        self.qos
    }

    /// Capacity repair admission may use on a resource under the active
    /// QoS class (bytes/sec).
    fn admissible(&self, r: usize) -> f64 {
        self.capacity[r] * self.qos.repair_fraction()
    }

    /// Releases whose demand did not match any outstanding admission
    /// (counted instead of applied, so accounting cannot drift; a debug
    /// build panics at the offending call site instead).
    pub fn mismatched_releases(&self) -> u64 {
        self.mismatched_releases
    }

    /// Repairs currently holding reservations.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Cap each demand entry at its resource's admissible capacity
    /// (total capacity × the QoS repair fraction), so a repair whose
    /// stand-alone peak exceeds what the link can ever give (it would
    /// then simply run slower) is still admissible on an idle arbiter.
    /// Drops entries on unconstrained (infinite) resources.
    pub fn clamp(&self, demand: &mut Demand) {
        demand.entries.retain_mut(|(r, rate)| {
            let cap = self.capacity[*r as usize];
            if cap.is_infinite() {
                return false;
            }
            let cap = self.admissible(*r as usize);
            if *rate > cap {
                *rate = cap;
            }
            *rate > 0.0
        });
    }

    /// Admit a repair if every entry fits under the remaining capacity
    /// of its resource; on success all reservations are committed
    /// atomically and `true` is returned. A disabled arbiter admits
    /// everything and reserves nothing.
    pub fn try_admit(&mut self, demand: &Demand) -> bool {
        if !self.enabled {
            self.in_flight += 1;
            return true;
        }
        for &(r, rate) in &demand.entries {
            let r = r as usize;
            if self.reserved[r] + rate > self.admissible(r) * (1.0 + EPS) + EPS {
                return false;
            }
        }
        for &(r, rate) in &demand.entries {
            let r = r as usize;
            self.reserved[r] += rate;
            if self.reserved[r] > self.peak[r] {
                self.peak[r] = self.reserved[r];
            }
        }
        self.in_flight += 1;
        *self.outstanding.entry(Self::fingerprint(demand)).or_insert(0) += 1;
        true
    }

    /// Release a previously admitted demand.
    ///
    /// Every release must pair with one earlier successful
    /// [`BandwidthArbiter::try_admit`] of a bit-identical demand. A
    /// mismatched release (double release, or a demand that was never
    /// admitted) panics in debug builds; in release builds it is counted
    /// in [`BandwidthArbiter::mismatched_releases`] and **not** applied,
    /// so reservations can neither drift below what is actually in
    /// flight nor silently saturate at zero and mask oversubscription.
    pub fn release(&mut self, demand: &Demand) {
        if !self.enabled {
            debug_assert!(self.in_flight > 0, "release without admit");
            self.in_flight = self.in_flight.saturating_sub(1);
            return;
        }
        let fp = Self::fingerprint(demand);
        match self.outstanding.get_mut(&fp) {
            Some(count) => {
                *count -= 1;
                if *count == 0 {
                    self.outstanding.remove(&fp);
                }
            }
            None => {
                debug_assert!(
                    false,
                    "release of a demand that has no outstanding admission \
                     (double release?): {demand:?}"
                );
                self.mismatched_releases += 1;
                return;
            }
        }
        self.in_flight = self.in_flight.saturating_sub(1);
        for &(r, rate) in &demand.entries {
            let r = r as usize;
            self.reserved[r] -= rate;
            // Exact subtraction of an admitted rate can leave only float
            // dust below zero; clamp that, not whole double-releases.
            if self.reserved[r] < 0.0 {
                debug_assert!(self.reserved[r] > -EPS * self.capacity[r].max(1.0));
                self.reserved[r] = 0.0;
            }
        }
    }

    /// Current reservation on a resource (bytes/sec).
    pub fn reserved(&self, resource: u32) -> f64 {
        self.reserved[resource as usize]
    }

    /// Capacity of a resource (bytes/sec).
    pub fn capacity(&self, resource: u32) -> f64 {
        self.capacity[resource as usize]
    }

    /// Largest reservation ever committed on any resource, as a fraction
    /// of that resource's capacity — the oversubscription witness the
    /// property tests check stays ≤ 1 (within float tolerance).
    pub fn max_utilization(&self) -> f64 {
        self.capacity
            .iter()
            .zip(&self.peak)
            .filter(|(cap, _)| cap.is_finite() && **cap > 0.0)
            .map(|(cap, peak)| peak / cap)
            .fold(0.0, f64::max)
    }

    /// Sum of all current reservations (bytes/sec) — ≈ 0 once every
    /// admitted repair has been released.
    pub fn total_reserved(&self) -> f64 {
        self.reserved.iter().sum()
    }
}

/// A repair plan's stand-alone peak bandwidth demand.
///
/// The plan's cross-rack sends are laid out on the timestep schedule
/// from [`RepairPlan::cross_waves`]; within a wave each flow runs at its
/// pair's nominal rate. The demand on a node's cross up/downlink is the
/// *peak over waves* of the sum of that node's concurrent flow rates
/// (capped at the shaped class rate — the NIC can't exceed it), and the
/// aggregation-switch demand is the peak over waves of the total
/// cross-rack rate. A plan with no cross-rack sends (or one timed on a
/// single-rack topology) demands nothing.
pub fn plan_demand(plan: &RepairPlan, topo: &Topology, net: &Network) -> Demand {
    let (waves, count) = plan.cross_waves(topo);
    if count == 0 {
        return Demand::default();
    }
    // (wave, resource) -> summed rate. BTreeMap keeps the iteration (and
    // therefore the float accumulation) order deterministic.
    let mut load: BTreeMap<(usize, u32), f64> = BTreeMap::new();
    let mut agg: Vec<f64> = vec![0.0; count];
    for (i, op) in plan.ops.iter().enumerate() {
        let Some(w) = waves[i] else { continue };
        let Op::Send { from, to, .. } = op else {
            continue;
        };
        let rate = net.pair_rate(*from, *to);
        *load.entry((w, BandwidthArbiter::uplink(from.0))).or_insert(0.0) += rate;
        *load.entry((w, BandwidthArbiter::downlink(to.0))).or_insert(0.0) += rate;
        agg[w] += rate;
    }
    let mut peak: BTreeMap<u32, f64> = BTreeMap::new();
    for (&(_, resource), &rate) in &load {
        let node = rpr_topology::NodeId(resource as usize / 2);
        let capped = rate.min(net.cross_class_rate(node));
        let entry = peak.entry(resource).or_insert(0.0);
        if capped > *entry {
            *entry = capped;
        }
    }
    let mut entries: Vec<(u32, f64)> = peak.into_iter().collect();
    let agg_peak = agg.iter().fold(0.0, |a: f64, &b| a.max(b));
    if agg_peak > 0.0 {
        entries.push((
            BandwidthArbiter::agg(topo.node_count()),
            agg_peak.min(net.agg_capacity()),
        ));
    }
    Demand { entries }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpr_topology::{BandwidthProfile, NodeId, Topology, GBIT};

    fn net() -> Network {
        Network::new(Topology::uniform(3, 2), BandwidthProfile::simics_default(3))
    }

    #[test]
    fn admit_reserve_release_roundtrip() {
        let mut arb = BandwidthArbiter::new(&net());
        let cross = 0.1 * GBIT;
        let d = Demand {
            entries: vec![(BandwidthArbiter::uplink(0), cross)],
        };
        assert!(arb.try_admit(&d));
        // The uplink is saturated: a second identical demand must wait.
        assert!(!arb.try_admit(&d));
        assert_eq!(arb.in_flight(), 1);
        arb.release(&d);
        assert_eq!(arb.total_reserved(), 0.0);
        assert!(arb.try_admit(&d), "released capacity is reusable");
        assert!(arb.max_utilization() <= 1.0 + 1e-6);
    }

    #[test]
    fn admission_is_atomic() {
        let mut arb = BandwidthArbiter::new(&net());
        let cross = 0.1 * GBIT;
        let half = Demand {
            entries: vec![(BandwidthArbiter::downlink(1), 0.6 * cross)],
        };
        assert!(arb.try_admit(&half));
        // Fits on uplink 0 but not downlink 1: nothing may be reserved.
        let both = Demand {
            entries: vec![
                (BandwidthArbiter::uplink(0), 0.5 * cross),
                (BandwidthArbiter::downlink(1), 0.5 * cross),
            ],
        };
        assert!(!arb.try_admit(&both));
        assert_eq!(arb.reserved(BandwidthArbiter::uplink(0)), 0.0);
    }

    #[test]
    fn clamp_makes_any_demand_admissible_when_idle() {
        let arb = BandwidthArbiter::new(&net());
        let mut d = Demand {
            entries: vec![
                (BandwidthArbiter::uplink(0), 10.0 * GBIT),
                (BandwidthArbiter::agg(6), GBIT),
            ],
        };
        arb.clamp(&mut d);
        // The uplink entry is capped to the class rate; the infinite agg
        // resource is dropped entirely.
        assert_eq!(d.entries, vec![(BandwidthArbiter::uplink(0), 0.1 * GBIT)]);
        let mut arb = arb;
        assert!(arb.try_admit(&d), "clamped demand admits on idle arbiter");
    }

    #[test]
    fn disabled_arbiter_admits_everything() {
        let mut arb = BandwidthArbiter::new(&net());
        arb.set_enabled(false);
        let d = Demand {
            entries: vec![(BandwidthArbiter::uplink(0), 100.0 * GBIT)],
        };
        for _ in 0..10 {
            assert!(arb.try_admit(&d));
        }
        assert_eq!(arb.total_reserved(), 0.0);
        assert_eq!(arb.in_flight(), 10);
    }

    #[test]
    fn agg_capacity_is_arbitrated_when_finite() {
        let network = Network::new(
            Topology::uniform(3, 2),
            BandwidthProfile::simics_default(3),
        )
        .with_agg_capacity(0.15 * GBIT);
        let mut arb = BandwidthArbiter::new(&network);
        let d = Demand {
            entries: vec![(BandwidthArbiter::agg(6), 0.1 * GBIT)],
        };
        assert!(arb.try_admit(&d));
        assert!(!arb.try_admit(&d), "agg switch is saturated");
    }

    #[test]
    fn plan_demand_covers_cross_sends_only() {
        use rpr_codec::{CodeParams, StripeCodec};
        use rpr_core::{CostModel, RepairContext, RepairPlanner, RprPlanner};
        use rpr_topology::Placement;

        let params = CodeParams::new(4, 2);
        let codec = StripeCodec::new(params);
        let topo = Topology::uniform(3, 3);
        let placement = Placement::rpr_preplaced(params, &topo);
        let profile = BandwidthProfile::simics_default(3);
        let ctx = RepairContext::new(
            &codec,
            &topo,
            &placement,
            vec![rpr_codec::BlockId(0)],
            8 << 20,
            &profile,
            CostModel::free(),
        );
        let plan = RprPlanner::new().plan(&ctx);
        let network = Network::new(topo.clone(), profile.clone());
        let demand = plan_demand(&plan, &topo, &network);
        assert!(!demand.is_empty(), "RPR single-failure plan crosses racks");
        let agg_id = BandwidthArbiter::agg(topo.node_count());
        for &(r, rate) in &demand.entries {
            assert!(rate > 0.0);
            if r == agg_id {
                continue;
            }
            let node = NodeId(r as usize / 2);
            assert!(
                rate <= network.cross_class_rate(node) * (1.0 + 1e-9),
                "per-node demand never exceeds the shaped class rate"
            );
        }
        let mut arb = BandwidthArbiter::new(&network);
        let mut d = demand.clone();
        arb.clamp(&mut d);
        assert!(arb.try_admit(&d), "a lone stripe always admits");
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "no outstanding admission")]
    fn double_release_is_a_hard_error_in_debug() {
        let mut arb = BandwidthArbiter::new(&net());
        let d = Demand {
            entries: vec![(BandwidthArbiter::uplink(0), 0.05 * GBIT)],
        };
        assert!(arb.try_admit(&d));
        arb.release(&d);
        arb.release(&d);
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn double_release_is_counted_and_not_applied_in_release() {
        let mut arb = BandwidthArbiter::new(&net());
        let cross = 0.1 * GBIT;
        let half = Demand {
            entries: vec![(BandwidthArbiter::uplink(0), 0.5 * cross)],
        };
        assert!(arb.try_admit(&half));
        assert!(arb.try_admit(&half));
        arb.release(&half);
        arb.release(&half);
        // Third release has no outstanding admission: counted, ignored.
        arb.release(&half);
        assert_eq!(arb.mismatched_releases(), 1);
        assert_eq!(arb.reserved(BandwidthArbiter::uplink(0)), 0.0);
        // A never-admitted demand is also rejected, so reservations can't
        // drift negative and mask oversubscription.
        assert!(arb.try_admit(&half));
        let other = Demand {
            entries: vec![(BandwidthArbiter::uplink(0), 0.25 * cross)],
        };
        arb.release(&other);
        assert_eq!(arb.mismatched_releases(), 2);
        assert_eq!(arb.reserved(BandwidthArbiter::uplink(0)), 0.5 * cross);
    }

    #[test]
    fn release_matches_by_exact_entries() {
        let mut arb = BandwidthArbiter::new(&net());
        let cross = 0.1 * GBIT;
        let a = Demand {
            entries: vec![(BandwidthArbiter::uplink(0), 0.25 * cross)],
        };
        let b = Demand {
            entries: vec![(BandwidthArbiter::uplink(1), 0.25 * cross)],
        };
        assert!(arb.try_admit(&a));
        assert!(arb.try_admit(&b));
        arb.release(&b);
        arb.release(&a);
        assert_eq!(arb.mismatched_releases(), 0);
        assert_eq!(arb.total_reserved(), 0.0);
        assert_eq!(arb.in_flight(), 0);
    }

    #[test]
    fn foreground_priority_admits_against_residual() {
        let mut arb = BandwidthArbiter::new(&net());
        arb.set_qos(QosClass::ForegroundPriority {
            foreground_share: 0.5,
            repair_floor: 0.1,
        });
        let cross = 0.1 * GBIT;
        let mut d = Demand {
            entries: vec![(BandwidthArbiter::uplink(0), cross)],
        };
        arb.clamp(&mut d);
        // Clamped to the residual half of the shaped class rate.
        assert_eq!(d.entries, vec![(BandwidthArbiter::uplink(0), 0.5 * cross)]);
        assert!(arb.try_admit(&d), "the residual itself is admissible");
        assert!(
            !arb.try_admit(&d),
            "the foreground set-aside is never given to repair"
        );
        assert!(arb.max_utilization() <= 0.5 + 1e-9);
    }

    #[test]
    fn repair_floor_bounds_the_throttle() {
        let qos = QosClass::ForegroundPriority {
            foreground_share: 0.95,
            repair_floor: 0.25,
        };
        assert_eq!(qos.repair_fraction(), 0.25, "floor wins over the share");
        assert_eq!(QosClass::Unthrottled.repair_fraction(), 1.0);
    }

    #[test]
    #[should_panic(expected = "foreground_share")]
    fn qos_rejects_out_of_range_share() {
        let mut arb = BandwidthArbiter::new(&net());
        arb.set_qos(QosClass::ForegroundPriority {
            foreground_share: 1.0,
            repair_floor: 0.1,
        });
    }
}
