//! Cross-stripe bandwidth arbitration.
//!
//! Every repair plan the fleet admits reserves capacity on the shared
//! cluster links for its whole duration, so concurrent repairs stop
//! assuming an idle cluster. The arbitrated resources are the ones that
//! bottleneck rack-aware repair:
//!
//! * each node's shaped **cross-traffic class**, uplink and downlink
//!   separately (wondershaper throttles cross-rack traffic per node, so
//!   two stripes pulling through the same helper NIC contend there);
//! * the **aggregation switch**, when the cluster models a finite
//!   backplane (`Network::with_agg_capacity`).
//!
//! Inner-rack links are deliberately *not* arbitrated: they run at the
//! full NIC rate (10× the shaped cross rate in the paper's profile) and
//! the whole point of rack-aware repair is that inner-rack traffic is
//! cheap; cross-rack bandwidth is the contended resource.
//!
//! **Admission rule.** A stripe's [`Demand`] is its stand-alone peak
//! rate on every resource it touches (see [`plan_demand`]). The arbiter
//! admits the stripe iff *every* entry fits under the remaining capacity
//! of its resource, then commits all reservations atomically; on
//! completion the same demand is released. Demands are clamped to
//! resource capacity first ([`BandwidthArbiter::clamp`]), so a stripe
//! alone on an idle arbiter always admits — admission can stall a queue
//! head only while other repairs are in flight, never forever.

use std::collections::BTreeMap;

use rpr_core::plan::{Op, RepairPlan};
use rpr_netsim::Network;
use rpr_topology::Topology;

/// Relative + absolute float tolerance for capacity checks, so releasing
/// and re-reserving the same rates never spuriously rejects.
const EPS: f64 = 1e-9;

/// The bandwidth a single repair wants to reserve: `(resource, rate)`
/// pairs, sorted by resource id, at most one entry per resource.
///
/// Resource ids are assigned by [`BandwidthArbiter`]: `2*node` is node
/// `node`'s cross-class uplink, `2*node + 1` its cross-class downlink,
/// and `2*node_count` the aggregation switch.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Demand {
    /// `(resource id, bytes/sec)` reservations, ascending by resource.
    pub entries: Vec<(u32, f64)>,
}

impl Demand {
    /// True when the repair reserves nothing (e.g. a repair whose plan
    /// never crosses racks).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Reservation ledger over a cluster's contended links.
///
/// See the [module docs](self) for the admission rule and which links
/// are arbitrated.
pub struct BandwidthArbiter {
    capacity: Vec<f64>,
    reserved: Vec<f64>,
    peak: Vec<f64>,
    enabled: bool,
    in_flight: usize,
}

impl BandwidthArbiter {
    /// An arbiter over a cluster: per-node cross-class up/down links at
    /// the shaped cross rate, plus the aggregation switch (infinite
    /// unless the network constrains it).
    pub fn new(net: &Network) -> BandwidthArbiter {
        let nodes = net.topology().node_count();
        let mut capacity = Vec::with_capacity(2 * nodes + 1);
        for node in 0..nodes {
            let rate = net.cross_class_rate(rpr_topology::NodeId(node));
            capacity.push(rate); // uplink
            capacity.push(rate); // downlink
        }
        capacity.push(net.agg_capacity());
        BandwidthArbiter {
            reserved: vec![0.0; capacity.len()],
            peak: vec![0.0; capacity.len()],
            capacity,
            enabled: true,
            in_flight: 0,
        }
    }

    /// Resource id of a node's cross-class uplink.
    #[inline]
    pub fn uplink(node: usize) -> u32 {
        (2 * node) as u32
    }

    /// Resource id of a node's cross-class downlink.
    #[inline]
    pub fn downlink(node: usize) -> u32 {
        (2 * node + 1) as u32
    }

    /// Resource id of the aggregation switch for a cluster of
    /// `node_count` nodes.
    #[inline]
    pub fn agg(node_count: usize) -> u32 {
        (2 * node_count) as u32
    }

    /// Disable admission control: [`BandwidthArbiter::try_admit`] always
    /// succeeds without reserving anything. Used to prove the arbiter
    /// only adds waiting — with contention off, the fleet schedule must
    /// match per-stripe supervised repair exactly.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Whether admission control is active.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Repairs currently holding reservations.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Cap each demand entry at its resource's total capacity, so a
    /// repair whose stand-alone peak exceeds what the link can ever give
    /// (it would then simply run slower) is still admissible on an idle
    /// arbiter. Drops entries on unconstrained (infinite) resources.
    pub fn clamp(&self, demand: &mut Demand) {
        demand.entries.retain_mut(|(r, rate)| {
            let cap = self.capacity[*r as usize];
            if cap.is_infinite() {
                return false;
            }
            if *rate > cap {
                *rate = cap;
            }
            *rate > 0.0
        });
    }

    /// Admit a repair if every entry fits under the remaining capacity
    /// of its resource; on success all reservations are committed
    /// atomically and `true` is returned. A disabled arbiter admits
    /// everything and reserves nothing.
    pub fn try_admit(&mut self, demand: &Demand) -> bool {
        if !self.enabled {
            self.in_flight += 1;
            return true;
        }
        for &(r, rate) in &demand.entries {
            let r = r as usize;
            if self.reserved[r] + rate > self.capacity[r] * (1.0 + EPS) + EPS {
                return false;
            }
        }
        for &(r, rate) in &demand.entries {
            let r = r as usize;
            self.reserved[r] += rate;
            if self.reserved[r] > self.peak[r] {
                self.peak[r] = self.reserved[r];
            }
        }
        self.in_flight += 1;
        true
    }

    /// Release a previously admitted demand.
    pub fn release(&mut self, demand: &Demand) {
        debug_assert!(self.in_flight > 0, "release without admit");
        self.in_flight = self.in_flight.saturating_sub(1);
        if !self.enabled {
            return;
        }
        for &(r, rate) in &demand.entries {
            let r = r as usize;
            self.reserved[r] = (self.reserved[r] - rate).max(0.0);
        }
    }

    /// Current reservation on a resource (bytes/sec).
    pub fn reserved(&self, resource: u32) -> f64 {
        self.reserved[resource as usize]
    }

    /// Capacity of a resource (bytes/sec).
    pub fn capacity(&self, resource: u32) -> f64 {
        self.capacity[resource as usize]
    }

    /// Largest reservation ever committed on any resource, as a fraction
    /// of that resource's capacity — the oversubscription witness the
    /// property tests check stays ≤ 1 (within float tolerance).
    pub fn max_utilization(&self) -> f64 {
        self.capacity
            .iter()
            .zip(&self.peak)
            .filter(|(cap, _)| cap.is_finite() && **cap > 0.0)
            .map(|(cap, peak)| peak / cap)
            .fold(0.0, f64::max)
    }

    /// Sum of all current reservations (bytes/sec) — ≈ 0 once every
    /// admitted repair has been released.
    pub fn total_reserved(&self) -> f64 {
        self.reserved.iter().sum()
    }
}

/// A repair plan's stand-alone peak bandwidth demand.
///
/// The plan's cross-rack sends are laid out on the timestep schedule
/// from [`RepairPlan::cross_waves`]; within a wave each flow runs at its
/// pair's nominal rate. The demand on a node's cross up/downlink is the
/// *peak over waves* of the sum of that node's concurrent flow rates
/// (capped at the shaped class rate — the NIC can't exceed it), and the
/// aggregation-switch demand is the peak over waves of the total
/// cross-rack rate. A plan with no cross-rack sends (or one timed on a
/// single-rack topology) demands nothing.
pub fn plan_demand(plan: &RepairPlan, topo: &Topology, net: &Network) -> Demand {
    let (waves, count) = plan.cross_waves(topo);
    if count == 0 {
        return Demand::default();
    }
    // (wave, resource) -> summed rate. BTreeMap keeps the iteration (and
    // therefore the float accumulation) order deterministic.
    let mut load: BTreeMap<(usize, u32), f64> = BTreeMap::new();
    let mut agg: Vec<f64> = vec![0.0; count];
    for (i, op) in plan.ops.iter().enumerate() {
        let Some(w) = waves[i] else { continue };
        let Op::Send { from, to, .. } = op else {
            continue;
        };
        let rate = net.pair_rate(*from, *to);
        *load.entry((w, BandwidthArbiter::uplink(from.0))).or_insert(0.0) += rate;
        *load.entry((w, BandwidthArbiter::downlink(to.0))).or_insert(0.0) += rate;
        agg[w] += rate;
    }
    let mut peak: BTreeMap<u32, f64> = BTreeMap::new();
    for (&(_, resource), &rate) in &load {
        let node = rpr_topology::NodeId(resource as usize / 2);
        let capped = rate.min(net.cross_class_rate(node));
        let entry = peak.entry(resource).or_insert(0.0);
        if capped > *entry {
            *entry = capped;
        }
    }
    let mut entries: Vec<(u32, f64)> = peak.into_iter().collect();
    let agg_peak = agg.iter().fold(0.0, |a: f64, &b| a.max(b));
    if agg_peak > 0.0 {
        entries.push((
            BandwidthArbiter::agg(topo.node_count()),
            agg_peak.min(net.agg_capacity()),
        ));
    }
    Demand { entries }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpr_topology::{BandwidthProfile, NodeId, Topology, GBIT};

    fn net() -> Network {
        Network::new(Topology::uniform(3, 2), BandwidthProfile::simics_default(3))
    }

    #[test]
    fn admit_reserve_release_roundtrip() {
        let mut arb = BandwidthArbiter::new(&net());
        let cross = 0.1 * GBIT;
        let d = Demand {
            entries: vec![(BandwidthArbiter::uplink(0), cross)],
        };
        assert!(arb.try_admit(&d));
        // The uplink is saturated: a second identical demand must wait.
        assert!(!arb.try_admit(&d));
        assert_eq!(arb.in_flight(), 1);
        arb.release(&d);
        assert_eq!(arb.total_reserved(), 0.0);
        assert!(arb.try_admit(&d), "released capacity is reusable");
        assert!(arb.max_utilization() <= 1.0 + 1e-6);
    }

    #[test]
    fn admission_is_atomic() {
        let mut arb = BandwidthArbiter::new(&net());
        let cross = 0.1 * GBIT;
        let half = Demand {
            entries: vec![(BandwidthArbiter::downlink(1), 0.6 * cross)],
        };
        assert!(arb.try_admit(&half));
        // Fits on uplink 0 but not downlink 1: nothing may be reserved.
        let both = Demand {
            entries: vec![
                (BandwidthArbiter::uplink(0), 0.5 * cross),
                (BandwidthArbiter::downlink(1), 0.5 * cross),
            ],
        };
        assert!(!arb.try_admit(&both));
        assert_eq!(arb.reserved(BandwidthArbiter::uplink(0)), 0.0);
    }

    #[test]
    fn clamp_makes_any_demand_admissible_when_idle() {
        let arb = BandwidthArbiter::new(&net());
        let mut d = Demand {
            entries: vec![
                (BandwidthArbiter::uplink(0), 10.0 * GBIT),
                (BandwidthArbiter::agg(6), GBIT),
            ],
        };
        arb.clamp(&mut d);
        // The uplink entry is capped to the class rate; the infinite agg
        // resource is dropped entirely.
        assert_eq!(d.entries, vec![(BandwidthArbiter::uplink(0), 0.1 * GBIT)]);
        let mut arb = arb;
        assert!(arb.try_admit(&d), "clamped demand admits on idle arbiter");
    }

    #[test]
    fn disabled_arbiter_admits_everything() {
        let mut arb = BandwidthArbiter::new(&net());
        arb.set_enabled(false);
        let d = Demand {
            entries: vec![(BandwidthArbiter::uplink(0), 100.0 * GBIT)],
        };
        for _ in 0..10 {
            assert!(arb.try_admit(&d));
        }
        assert_eq!(arb.total_reserved(), 0.0);
        assert_eq!(arb.in_flight(), 10);
    }

    #[test]
    fn agg_capacity_is_arbitrated_when_finite() {
        let network = Network::new(
            Topology::uniform(3, 2),
            BandwidthProfile::simics_default(3),
        )
        .with_agg_capacity(0.15 * GBIT);
        let mut arb = BandwidthArbiter::new(&network);
        let d = Demand {
            entries: vec![(BandwidthArbiter::agg(6), 0.1 * GBIT)],
        };
        assert!(arb.try_admit(&d));
        assert!(!arb.try_admit(&d), "agg switch is saturated");
    }

    #[test]
    fn plan_demand_covers_cross_sends_only() {
        use rpr_codec::{CodeParams, StripeCodec};
        use rpr_core::{CostModel, RepairContext, RepairPlanner, RprPlanner};
        use rpr_topology::Placement;

        let params = CodeParams::new(4, 2);
        let codec = StripeCodec::new(params);
        let topo = Topology::uniform(3, 3);
        let placement = Placement::rpr_preplaced(params, &topo);
        let profile = BandwidthProfile::simics_default(3);
        let ctx = RepairContext::new(
            &codec,
            &topo,
            &placement,
            vec![rpr_codec::BlockId(0)],
            8 << 20,
            &profile,
            CostModel::free(),
        );
        let plan = RprPlanner::new().plan(&ctx);
        let network = Network::new(topo.clone(), profile.clone());
        let demand = plan_demand(&plan, &topo, &network);
        assert!(!demand.is_empty(), "RPR single-failure plan crosses racks");
        let agg_id = BandwidthArbiter::agg(topo.node_count());
        for &(r, rate) in &demand.entries {
            assert!(rate > 0.0);
            if r == agg_id {
                continue;
            }
            let node = NodeId(r as usize / 2);
            assert!(
                rate <= network.cross_class_rate(node) * (1.0 + 1e-9),
                "per-node demand never exceeds the shaped class rate"
            );
        }
        let mut arb = BandwidthArbiter::new(&network);
        let mut d = demand.clone();
        arb.clamp(&mut d);
        assert!(arb.try_admit(&d), "a lone stripe always admits");
    }
}
