//! Fleet-scale repair scheduling: turn the per-stripe repair primitive
//! into a storage-system repair *service*.
//!
//! The paper's §4 fleet-recovery results assume many stripes repair
//! concurrently under shared rack bandwidth. This crate supplies the
//! three pieces that makes true at scale:
//!
//! * [`StripeIndex`] — a sharded admission queue keyed by **at-risk
//!   level**: stripes with `z` failures are served strictly before
//!   stripes with `z − 1`, FIFO within a level, with O(1) requeue when
//!   a queued stripe loses another block.
//! * [`BandwidthArbiter`] — cross-stripe admission control on the same
//!   `netsim` topology the per-stripe simulator uses: each admitted
//!   repair reserves its plan's peak rates on the shaped cross-rack
//!   links (and the aggregation switch, when finite) and releases them
//!   on completion, so concurrent plans stop assuming an idle cluster.
//! * [`run_indexed`] — a work-stealing thread pool
//!   that batches plan construction and sim-backed repair costing, so a
//!   10k-node / million-stripe fleet fits in one process (see
//!   [`fleet`] for the repair-class decomposition that makes the
//!   million-stripe case cheap).
//!
//! [`schedule_fleet`] drains a backlog through the index and arbiter on
//! a deterministic virtual clock; [`drain_fleet`] extends it with
//! co-simulated churn arrivals, O(1) risk escalation, a permanent-loss
//! ledger, and a crash-restartable write-ahead [`journal`];
//! [`run_synthetic_fleet`] is the
//! end-to-end entry point behind `rpr fleet` and the
//! `rpr-experiments fleet-scale` table, and `Store::recover_fleet`
//! (in `rpr-store`) routes real store failures through the same
//! scheduler. Everything is bit-deterministic for a fixed seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbiter;
pub mod fleet;
pub mod index;
pub mod journal;
pub mod pool;
pub mod sched;

pub use arbiter::{plan_demand, BandwidthArbiter, Demand, QosClass};
pub use fleet::{first_valid_plan, run_fleet_with, run_synthetic_fleet, FleetIo, FleetOutcome, FleetSpec};
pub use index::StripeIndex;
pub use journal::{Checkpoint, CompletedRec, CostRec, FleetJournal, JournalReplay};
pub use pool::{default_threads, run_indexed};
pub use sched::{
    drain_fleet, quantile, schedule_fleet, AdmissionOutcome, ChurnOptions, DrainOptions, FleetJob,
    FleetSummary, JobCost, LostStripe, StripeRecord,
};
