//! Sharded at-risk stripe index.
//!
//! The scheduler's admission queue, keyed by **at-risk level** — the
//! number of blocks a stripe has lost. A stripe one more failure away
//! from data loss is strictly more urgent than one with spare parity
//! left, so stripes at level `z` are always served before any stripe at
//! level `z − 1`; within a level, service is FIFO in enqueue order.
//!
//! Each level is split into shards (queue segments keyed by
//! `stripe % shards`) so enqueues from concurrent failure detectors
//! touch disjoint queue tails; popping picks the oldest head across the
//! level's shards, which keeps level-wide FIFO exact.
//!
//! **O(1) requeue.** When a new failure is detected on an already-queued
//! stripe, [`StripeIndex::requeue`] bumps its level record and pushes a
//! fresh entry — it never searches the old level's queue. The stale
//! entry stays behind and is skipped lazily when it surfaces at a shard
//! head (its recorded level no longer matches). Every entry is pushed at
//! most once per (re)queue and discarded at most once, so the amortized
//! cost stays O(1) per operation.

use std::collections::VecDeque;

/// Marker for "stripe is not tracked at any level".
const NO_LEVEL: u8 = u8::MAX;

/// Per-stripe bookkeeping backing the lazy-deletion scheme.
#[derive(Clone, Copy)]
struct StripeState {
    /// Current at-risk level, or [`NO_LEVEL`] when untracked.
    level: u8,
    /// True while the stripe has a live (non-stale) queue entry.
    queued: bool,
    /// Sequence number of the live entry. Distinguishes the live entry
    /// from stale ones even when a stripe is requeued back to a level it
    /// already has an abandoned entry at (A → B → A would otherwise make
    /// the old entry look live again).
    seq: u64,
}

/// A sharded FIFO queue of at-risk stripes, prioritized by level.
///
/// See the [module docs](self) for the priority and requeue semantics.
pub struct StripeIndex {
    /// `queues[level][shard]` holds `(seq, stripe)` entries, oldest first.
    queues: Vec<Vec<VecDeque<(u64, u32)>>>,
    state: Vec<StripeState>,
    shards: usize,
    next_seq: u64,
    live: usize,
}

impl StripeIndex {
    /// An index accepting levels `1..=max_level` over `stripes` stripe
    /// ids, each level sharded `shards` ways.
    ///
    /// # Panics
    /// Panics if `max_level` is 0 or ≥ 255, or `shards` is 0.
    pub fn new(max_level: usize, shards: usize, stripes: usize) -> StripeIndex {
        assert!(
            max_level > 0 && max_level < NO_LEVEL as usize,
            "StripeIndex: max_level out of range"
        );
        assert!(shards > 0, "StripeIndex: need at least one shard");
        StripeIndex {
            queues: (0..=max_level)
                .map(|_| (0..shards).map(|_| VecDeque::new()).collect())
                .collect(),
            state: vec![
                StripeState {
                    level: NO_LEVEL,
                    queued: false,
                    seq: 0,
                };
                stripes
            ],
            shards,
            next_seq: 0,
            live: 0,
        }
    }

    /// Number of stripes currently queued (live entries only).
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no stripe is waiting.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Queue a stripe at an at-risk level. O(1).
    ///
    /// If the stripe is already queued this behaves like
    /// [`StripeIndex::requeue`] (the level record moves; same-level
    /// enqueues are no-ops so a stripe never holds two live entries).
    ///
    /// # Panics
    /// Panics if `level` is 0 or above `max_level`, or `stripe` is out
    /// of range.
    pub fn enqueue(&mut self, stripe: u32, level: usize) {
        assert!(
            level > 0 && level < self.queues.len(),
            "StripeIndex: level {level} out of range"
        );
        let st = &mut self.state[stripe as usize];
        if st.queued && st.level as usize == level {
            return;
        }
        if !st.queued {
            self.live += 1;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        st.level = level as u8;
        st.queued = true;
        st.seq = seq;
        self.queues[level][stripe as usize % self.shards].push_back((seq, stripe));
    }

    /// Move an already-tracked stripe to a new level after a newly
    /// detected failure. O(1): the stale entry at the old level is
    /// abandoned in place and skipped lazily when it reaches a shard
    /// head.
    pub fn requeue(&mut self, stripe: u32, new_level: usize) {
        self.enqueue(stripe, new_level);
    }

    /// The next stripe to serve — highest level first, oldest entry
    /// within the level — without removing it. Prunes stale entries it
    /// encounters.
    pub fn peek(&mut self) -> Option<(u32, usize)> {
        self.head(false)
    }

    /// Remove and return the next stripe to serve.
    pub fn pop(&mut self) -> Option<(u32, usize)> {
        self.head(true)
    }

    /// Shared scan behind [`StripeIndex::peek`] / [`StripeIndex::pop`].
    fn head(&mut self, take: bool) -> Option<(u32, usize)> {
        if self.live == 0 {
            return None;
        }
        for level in (1..self.queues.len()).rev() {
            // Oldest live head across this level's shards.
            let mut best: Option<(u64, usize)> = None;
            for shard in 0..self.shards {
                // Lazy deletion: drop stale heads (requeued or served).
                while let Some(&(sq, s)) = self.queues[level][shard].front() {
                    let st = self.state[s as usize];
                    if st.queued && st.level as usize == level && st.seq == sq {
                        break;
                    }
                    self.queues[level][shard].pop_front();
                }
                if let Some(&(seq, _)) = self.queues[level][shard].front() {
                    if best.is_none_or(|(b, _)| seq < b) {
                        best = Some((seq, shard));
                    }
                }
            }
            if let Some((_, shard)) = best {
                let &(_, stripe) = self.queues[level][shard].front().expect("live head");
                if take {
                    self.queues[level][shard].pop_front();
                    self.state[stripe as usize].queued = false;
                    self.live -= 1;
                }
                return Some((stripe, level));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_within_a_level_across_shards() {
        let mut ix = StripeIndex::new(3, 4, 100);
        for s in [7u32, 3, 12, 5, 9] {
            ix.enqueue(s, 1);
        }
        let order: Vec<u32> = std::iter::from_fn(|| ix.pop().map(|(s, _)| s)).collect();
        assert_eq!(order, vec![7, 3, 12, 5, 9], "level-wide FIFO");
        assert!(ix.is_empty());
    }

    #[test]
    fn higher_level_always_wins() {
        let mut ix = StripeIndex::new(3, 2, 10);
        ix.enqueue(0, 1);
        ix.enqueue(1, 3);
        ix.enqueue(2, 2);
        ix.enqueue(3, 3);
        let order: Vec<(u32, usize)> = std::iter::from_fn(|| ix.pop()).collect();
        assert_eq!(order, vec![(1, 3), (3, 3), (2, 2), (0, 1)]);
    }

    #[test]
    fn requeue_escalates_in_o1_and_skips_stale_entry() {
        let mut ix = StripeIndex::new(3, 2, 10);
        ix.enqueue(0, 1);
        ix.enqueue(1, 1);
        // Stripe 0 loses another block: it jumps ahead of stripe 1.
        ix.requeue(0, 2);
        assert_eq!(ix.len(), 2, "requeue does not double-count");
        assert_eq!(ix.pop(), Some((0, 2)));
        assert_eq!(ix.pop(), Some((1, 1)), "stale level-1 entry for 0 skipped");
        assert_eq!(ix.pop(), None);
    }

    #[test]
    fn same_level_reenqueue_is_a_noop() {
        let mut ix = StripeIndex::new(2, 2, 4);
        ix.enqueue(0, 1);
        ix.enqueue(0, 1);
        assert_eq!(ix.len(), 1);
        assert_eq!(ix.pop(), Some((0, 1)));
        assert_eq!(ix.pop(), None);
    }

    #[test]
    fn peek_does_not_remove() {
        let mut ix = StripeIndex::new(2, 2, 4);
        ix.enqueue(2, 1);
        assert_eq!(ix.peek(), Some((2, 1)));
        assert_eq!(ix.peek(), Some((2, 1)));
        assert_eq!(ix.len(), 1);
        assert_eq!(ix.pop(), Some((2, 1)));
    }

    #[test]
    fn randomized_against_reference_model() {
        // Reference: a flat Vec of (seq, level, stripe) with linear scans.
        let mut ix = StripeIndex::new(4, 8, 256);
        let mut model: Vec<(u64, usize, u32)> = Vec::new();
        let mut level_of = [0usize; 256];
        let mut seq = 0u64;
        let mut rng = 0x9E3779B97F4A7C15u64;
        let mut next = || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        for _ in 0..2000 {
            match next() % 3 {
                0 | 1 => {
                    let s = (next() % 256) as u32;
                    let lvl = (next() % 4 + 1) as usize;
                    if level_of[s as usize] != lvl {
                        ix.enqueue(s, lvl);
                        model.retain(|&(_, _, ms)| ms != s);
                        model.push((seq, lvl, s));
                        level_of[s as usize] = lvl;
                        seq += 1;
                    }
                }
                _ => {
                    let got = ix.pop();
                    let want = model
                        .iter()
                        .enumerate()
                        .max_by_key(|(_, &(sq, lvl, _))| (lvl, std::cmp::Reverse(sq)))
                        .map(|(i, _)| i);
                    match (got, want) {
                        (None, None) => {}
                        (Some((gs, gl)), Some(wi)) => {
                            let (_, wl, ws) = model.remove(wi);
                            level_of[ws as usize] = 0;
                            assert_eq!((gs, gl), (ws, wl));
                        }
                        other => panic!("index/model diverged: {other:?}"),
                    }
                    assert_eq!(ix.len(), model.len());
                }
            }
        }
    }
}
