//! Stripe-to-node placement policies.

use crate::{NodeId, RackId, Topology};
use rpr_codec::{BlockId, CodeParams};

/// The placement policies discussed in the paper.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PlacementPolicy {
    /// One block per rack (§2.2's classical layout).
    Flat,
    /// `k` blocks per rack across `q = ⌈(n+k)/k⌉` racks, data first then
    /// parity (the paper's baseline, Figure 3).
    Compact,
    /// Compact, plus the §3.3 pre-placement: `P0` swapped with the last
    /// data block so the all-ones parity is co-located with data.
    RprPreplaced,
}

/// Where each block of one stripe lives.
///
/// Invariants (validated on construction):
/// * every block maps to a distinct node;
/// * block-to-node assignments respect the topology bounds.
#[derive(Clone, Debug)]
pub struct Placement {
    params: CodeParams,
    location: Vec<NodeId>,
}

impl Placement {
    /// Place blocks on explicit nodes (for tests and custom layouts).
    ///
    /// # Panics
    /// Panics if the location count differs from `n + k`, a node repeats,
    /// or a node is outside the topology.
    pub fn from_locations(params: CodeParams, topo: &Topology, location: Vec<NodeId>) -> Placement {
        assert_eq!(
            location.len(),
            params.total(),
            "Placement: need one node per block"
        );
        let mut seen = vec![false; topo.node_count()];
        for &node in &location {
            assert!(node.0 < topo.node_count(), "Placement: node out of range");
            assert!(!seen[node.0], "Placement: node hosts two blocks");
            seen[node.0] = true;
        }
        Placement { params, location }
    }

    /// One block per rack, each on the rack's first node.
    ///
    /// # Panics
    /// Panics if the topology has fewer than `n + k` racks.
    pub fn flat(params: CodeParams, topo: &Topology) -> Placement {
        assert!(
            topo.rack_count() >= params.total(),
            "flat placement: need n+k racks"
        );
        let location = (0..params.total())
            .map(|b| topo.nodes_in(RackId(b))[0])
            .collect();
        Placement::from_locations(params, topo, location)
    }

    /// `k` blocks per rack in block order: rack 0 gets `d0..d(k-1)`, etc.;
    /// parities fill the tail racks (Figure 3's layout).
    ///
    /// # Panics
    /// Panics if the topology lacks racks or per-rack capacity.
    pub fn compact(params: CodeParams, topo: &Topology) -> Placement {
        let q = params.rack_count();
        assert!(topo.rack_count() >= q, "compact placement: need q racks");
        let location = (0..params.total())
            .map(|b| {
                let rack = RackId(b / params.k);
                let slot = b % params.k;
                let nodes = topo.nodes_in(rack);
                assert!(slot < nodes.len(), "compact placement: rack too small");
                nodes[slot]
            })
            .collect();
        Placement::from_locations(params, topo, location)
    }

    /// Compact placement with the §3.3 pre-placement applied: swap `P0`
    /// with the last data block `d(n-1)`, so `P0` shares a rack with data
    /// blocks while the stripe keeps single-rack fault tolerance.
    ///
    /// Degenerate case: with `k = 1` every rack holds a single block, so
    /// no parity can share a rack with data; the swap is then harmless but
    /// cannot deliver co-location.
    pub fn rpr_preplaced(params: CodeParams, topo: &Topology) -> Placement {
        let mut p = Placement::compact(params, topo);
        let p0 = BlockId::p0(&params).0;
        let last_data = params.n - 1;
        // In a compact layout d(n-1) and p0 are adjacent; when n is a
        // multiple of k they sit in different racks and the swap co-locates
        // P0 with data. When they already share a rack the swap is a no-op
        // rack-wise but harmless.
        p.location.swap(p0, last_data);
        p
    }

    /// Build a placement by policy.
    pub fn by_policy(policy: PlacementPolicy, params: CodeParams, topo: &Topology) -> Placement {
        match policy {
            PlacementPolicy::Flat => Placement::flat(params, topo),
            PlacementPolicy::Compact => Placement::compact(params, topo),
            PlacementPolicy::RprPreplaced => Placement::rpr_preplaced(params, topo),
        }
    }

    /// The code geometry this placement serves.
    #[inline]
    pub fn params(&self) -> CodeParams {
        self.params
    }

    /// Node hosting a block.
    ///
    /// # Panics
    /// Panics if the block id is out of range.
    #[inline]
    pub fn node_of(&self, block: BlockId) -> NodeId {
        self.location[block.0]
    }

    /// Rack hosting a block.
    #[inline]
    pub fn rack_of(&self, block: BlockId, topo: &Topology) -> RackId {
        topo.rack_of(self.node_of(block))
    }

    /// The block hosted by `node`, if any.
    pub fn block_on(&self, node: NodeId) -> Option<BlockId> {
        self.location.iter().position(|&l| l == node).map(BlockId)
    }

    /// All blocks hosted in `rack`, in block-id order.
    pub fn blocks_in_rack(&self, rack: RackId, topo: &Topology) -> Vec<BlockId> {
        (0..self.params.total())
            .map(BlockId)
            .filter(|&b| self.rack_of(b, topo) == rack)
            .collect()
    }

    /// The distinct racks touched by this stripe, in rack-id order.
    pub fn racks_used(&self, topo: &Topology) -> Vec<RackId> {
        let mut racks: Vec<RackId> = self
            .location
            .iter()
            .map(|&node| topo.rack_of(node))
            .collect();
        racks.sort_unstable();
        racks.dedup();
        racks
    }

    /// Single-rack fault tolerance (§2.3): no rack may hold more than `k`
    /// blocks of the stripe, otherwise one rack failure is unrecoverable.
    pub fn is_single_rack_fault_tolerant(&self, topo: &Topology) -> bool {
        let mut per_rack = vec![0usize; topo.rack_count()];
        for &node in &self.location {
            per_rack[topo.rack_of(node).0] += 1;
        }
        per_rack.iter().all(|&c| c <= self.params.k)
    }

    /// True if `P0` shares a rack with at least one data block — the
    /// §3.3 pre-placement property.
    pub fn p0_colocated_with_data(&self, topo: &Topology) -> bool {
        let p0_rack = self.rack_of(BlockId::p0(&self.params), topo);
        self.params
            .data_blocks()
            .any(|d| self.rack_of(d, topo) == p0_rack)
    }

    /// Pick a replacement node for a failed block: a free node (hosting no
    /// stripe block) in the requested rack.
    pub fn replacement_in(&self, rack: RackId, topo: &Topology) -> Option<NodeId> {
        topo.nodes_in(rack)
            .iter()
            .copied()
            .find(|&node| self.block_on(node).is_none())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster_for;

    const PAPER_CODES: [(usize, usize); 6] = [(4, 2), (6, 2), (8, 2), (6, 3), (8, 4), (12, 4)];

    #[test]
    fn compact_matches_figure3_layout() {
        // RS(4,2): r0 = {d0, d1}, r1 = {d2, d3}, r2 = {p0, p1}.
        let params = CodeParams::new(4, 2);
        let topo = cluster_for(params, 1, 0);
        let p = Placement::compact(params, &topo);
        assert_eq!(p.rack_of(BlockId(0), &topo), RackId(0));
        assert_eq!(p.rack_of(BlockId(1), &topo), RackId(0));
        assert_eq!(p.rack_of(BlockId(2), &topo), RackId(1));
        assert_eq!(p.rack_of(BlockId(3), &topo), RackId(1));
        assert_eq!(p.rack_of(BlockId(4), &topo), RackId(2));
        assert_eq!(p.rack_of(BlockId(5), &topo), RackId(2));
        assert!(p.is_single_rack_fault_tolerant(&topo));
        assert!(!p.p0_colocated_with_data(&topo));
    }

    #[test]
    fn preplacement_colocates_p0_with_data_for_all_paper_codes() {
        for (n, k) in PAPER_CODES {
            let params = CodeParams::new(n, k);
            let topo = cluster_for(params, 1, 0);
            let p = Placement::rpr_preplaced(params, &topo);
            assert!(
                p.p0_colocated_with_data(&topo),
                "({n},{k}): P0 must sit with data"
            );
            assert!(
                p.is_single_rack_fault_tolerant(&topo),
                "({n},{k}): pre-placement must not break fault tolerance"
            );
        }
    }

    #[test]
    fn flat_uses_one_rack_per_block() {
        let params = CodeParams::new(4, 2);
        let topo = Topology::uniform(6, 2);
        let p = Placement::flat(params, &topo);
        assert_eq!(p.racks_used(&topo).len(), 6);
        assert!(p.is_single_rack_fault_tolerant(&topo));
    }

    #[test]
    fn block_node_round_trips() {
        let params = CodeParams::new(6, 3);
        let topo = cluster_for(params, 2, 1);
        let p = Placement::compact(params, &topo);
        for b in params.all_blocks() {
            let node = p.node_of(b);
            assert_eq!(p.block_on(node), Some(b));
        }
        // Spare nodes host nothing.
        let spare_racks = p.racks_used(&topo).len();
        assert_eq!(spare_racks, params.rack_count());
        let unused_rack = RackId(topo.rack_count() - 1);
        for &node in topo.nodes_in(unused_rack) {
            assert_eq!(p.block_on(node), None);
        }
    }

    #[test]
    fn blocks_in_rack_partitions_the_stripe() {
        for (n, k) in PAPER_CODES {
            let params = CodeParams::new(n, k);
            let topo = cluster_for(params, 1, 0);
            for policy in [PlacementPolicy::Compact, PlacementPolicy::RprPreplaced] {
                let p = Placement::by_policy(policy, params, &topo);
                let mut seen = Vec::new();
                for r in topo.racks() {
                    seen.extend(p.blocks_in_rack(r, &topo));
                }
                seen.sort_unstable();
                let all: Vec<BlockId> = params.all_blocks().collect();
                assert_eq!(seen, all, "({n},{k}) {policy:?}");
            }
        }
    }

    #[test]
    fn replacement_node_is_free_and_in_rack() {
        let params = CodeParams::new(4, 2);
        let topo = cluster_for(params, 1, 0);
        let p = Placement::compact(params, &topo);
        let rack = RackId(0);
        let node = p.replacement_in(rack, &topo).expect("spare exists");
        assert_eq!(topo.rack_of(node), rack);
        assert_eq!(p.block_on(node), None);
        // A rack with zero spares yields None.
        let tight = Topology::uniform(3, 2);
        let p2 = Placement::compact(params, &tight);
        assert_eq!(p2.replacement_in(RackId(0), &tight), None);
    }

    #[test]
    fn fault_tolerance_detects_overloaded_rack() {
        let params = CodeParams::new(4, 2);
        let topo = Topology::uniform(2, 6);
        // Pathological: all six blocks in rack 0.
        let location: Vec<NodeId> = (0..6).map(NodeId).collect();
        let p = Placement::from_locations(params, &topo, location);
        assert!(!p.is_single_rack_fault_tolerant(&topo));
    }

    #[test]
    #[should_panic(expected = "node hosts two blocks")]
    fn duplicate_nodes_rejected() {
        let params = CodeParams::new(4, 2);
        let topo = Topology::uniform(3, 4);
        let location = vec![NodeId(0); 6];
        Placement::from_locations(params, &topo, location);
    }
}
