//! Data-center topology model: racks of storage nodes behind top-of-rack
//! switches, stripe-to-node placement policies, and bandwidth profiles.
//!
//! Mirrors the architecture of §2.2 of the paper: nodes within a rack talk
//! through the TOR switch at *inner-rack* bandwidth; racks talk through the
//! aggregation switch at *cross-rack* bandwidth (~10× slower in production).
//!
//! Three placement policies are provided (§2.2–§3.3):
//!
//! * [`Placement::flat`] — one block per rack (classic multi-rack fault
//!   tolerance, maximal cross-rack repair traffic);
//! * [`Placement::compact`] — `k` blocks per rack across
//!   `q = ⌈(n+k)/k⌉` racks (single-rack fault tolerance, the paper's
//!   baseline layout, Figure 3);
//! * [`Placement::rpr_preplaced`] — compact layout plus the §3.3
//!   data–parity pre-placement: `P0` (the all-ones parity) swaps places with
//!   the last data block so it is co-located with data, enabling the
//!   matrix-free XOR repair path for single data-block failures.
//!
//! ```
//! use rpr_codec::{BlockId, CodeParams};
//! use rpr_topology::{cluster_for, Placement, PlacementPolicy};
//!
//! let params = CodeParams::new(6, 2);              // q = 4 racks
//! let topo = cluster_for(params, 1, 1);            // + spares
//! let p = Placement::by_policy(PlacementPolicy::RprPreplaced, params, &topo);
//! assert!(p.is_single_rack_fault_tolerant(&topo));
//! assert!(p.p0_colocated_with_data(&topo));        // §3.3 property
//! // d0 and d1 share rack 0 under the compact layout.
//! assert_eq!(p.rack_of(BlockId(0), &topo), p.rack_of(BlockId(1), &topo));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bandwidth;
mod placement;

pub use bandwidth::{
    ec2_table1_profile, BandwidthProfile, EC2_REGIONS, EC2_TABLE1_MBPS, GBIT, MBIT,
};
pub use placement::{Placement, PlacementPolicy};

use rpr_codec::CodeParams;

/// Identifies a rack.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RackId(pub usize);

impl core::fmt::Debug for RackId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Identifies a storage node (globally, across racks).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

impl core::fmt::Debug for NodeId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A cluster of racks, each holding a fixed set of nodes.
///
/// Node ids are dense: rack `r` with `m_r` nodes owns a contiguous id range.
#[derive(Clone, Debug)]
pub struct Topology {
    rack_of: Vec<RackId>,
    racks: Vec<Vec<NodeId>>,
}

impl Topology {
    /// Build a topology with `racks` racks of `nodes_per_rack` nodes each.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn uniform(racks: usize, nodes_per_rack: usize) -> Topology {
        assert!(racks > 0 && nodes_per_rack > 0, "Topology: empty cluster");
        Topology::with_rack_sizes(&vec![nodes_per_rack; racks])
    }

    /// Build a topology with explicit per-rack node counts.
    ///
    /// # Panics
    /// Panics if there are no racks or any rack is empty.
    pub fn with_rack_sizes(sizes: &[usize]) -> Topology {
        assert!(!sizes.is_empty(), "Topology: no racks");
        assert!(sizes.iter().all(|&s| s > 0), "Topology: empty rack");
        let mut rack_of = Vec::new();
        let mut racks = Vec::with_capacity(sizes.len());
        let mut next = 0usize;
        for (r, &size) in sizes.iter().enumerate() {
            let mut nodes = Vec::with_capacity(size);
            for _ in 0..size {
                rack_of.push(RackId(r));
                nodes.push(NodeId(next));
                next += 1;
            }
            racks.push(nodes);
        }
        Topology { rack_of, racks }
    }

    /// Number of racks.
    #[inline]
    pub fn rack_count(&self) -> usize {
        self.racks.len()
    }

    /// Total number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.rack_of.len()
    }

    /// The rack that hosts `node`.
    ///
    /// # Panics
    /// Panics if the node id is out of range.
    #[inline]
    pub fn rack_of(&self, node: NodeId) -> RackId {
        self.rack_of[node.0]
    }

    /// The nodes of a rack.
    ///
    /// # Panics
    /// Panics if the rack id is out of range.
    #[inline]
    pub fn nodes_in(&self, rack: RackId) -> &[NodeId] {
        &self.racks[rack.0]
    }

    /// True if the two nodes share a rack (their traffic stays under the
    /// TOR switch).
    #[inline]
    pub fn same_rack(&self, a: NodeId, b: NodeId) -> bool {
        self.rack_of(a) == self.rack_of(b)
    }

    /// Iterator over all rack ids.
    pub fn racks(&self) -> impl Iterator<Item = RackId> {
        (0..self.racks.len()).map(RackId)
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.rack_of.len()).map(NodeId)
    }
}

/// Build the canonical evaluation cluster for a code: `q` racks (plus
/// `extra_racks` spare racks), each with `k + spare_nodes` nodes, so every
/// rack can host a replacement node for repairs.
pub fn cluster_for(params: CodeParams, spare_nodes: usize, extra_racks: usize) -> Topology {
    let q = params.rack_count();
    Topology::uniform(q + extra_racks, params.k + spare_nodes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_topology_geometry() {
        let t = Topology::uniform(3, 4);
        assert_eq!(t.rack_count(), 3);
        assert_eq!(t.node_count(), 12);
        assert_eq!(t.rack_of(NodeId(0)), RackId(0));
        assert_eq!(t.rack_of(NodeId(4)), RackId(1));
        assert_eq!(t.rack_of(NodeId(11)), RackId(2));
        assert_eq!(
            t.nodes_in(RackId(1)),
            &[NodeId(4), NodeId(5), NodeId(6), NodeId(7)]
        );
        assert!(t.same_rack(NodeId(4), NodeId(7)));
        assert!(!t.same_rack(NodeId(3), NodeId(4)));
        assert_eq!(t.racks().count(), 3);
        assert_eq!(t.nodes().count(), 12);
    }

    #[test]
    fn ragged_topology() {
        let t = Topology::with_rack_sizes(&[2, 5, 1]);
        assert_eq!(t.node_count(), 8);
        assert_eq!(t.rack_of(NodeId(2)), RackId(1));
        assert_eq!(t.rack_of(NodeId(7)), RackId(2));
        assert_eq!(t.nodes_in(RackId(2)), &[NodeId(7)]);
    }

    #[test]
    fn cluster_for_paper_codes_has_replacement_capacity() {
        for (n, k) in [(4, 2), (6, 2), (8, 2), (6, 3), (8, 4), (12, 4)] {
            let p = CodeParams::new(n, k);
            let t = cluster_for(p, 1, 0);
            assert_eq!(t.rack_count(), p.rack_count());
            // Each rack can hold its k blocks plus one replacement node.
            assert!(t.nodes_in(RackId(0)).len() == k + 1);
        }
    }

    #[test]
    #[should_panic(expected = "empty rack")]
    fn empty_rack_rejected() {
        Topology::with_rack_sizes(&[3, 0]);
    }

    #[test]
    fn id_debug_formats() {
        assert_eq!(format!("{:?}", RackId(2)), "r2");
        assert_eq!(format!("{:?}", NodeId(5)), "n5");
    }
}
