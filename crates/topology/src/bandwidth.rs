//! Bandwidth profiles: how fast a byte moves between two nodes.
//!
//! Two shapes are supported:
//!
//! * [`BandwidthProfile::uniform`] — the production datacenter model of the
//!   paper (§2.3): one inner-rack rate, one cross-rack rate (default 10 : 1);
//! * [`BandwidthProfile::rack_matrix`] — arbitrary per-rack-pair rates, used
//!   to replay the paper's Table 1 EC2 measurement (regions as racks).

use crate::{RackId, Topology};

/// One megabit per second, in bytes per second.
pub const MBIT: f64 = 1_000_000.0 / 8.0;

/// One gigabit per second, in bytes per second.
pub const GBIT: f64 = 1_000.0 * MBIT;

/// Bandwidth between node pairs, resolved at rack granularity.
#[derive(Clone, Debug)]
pub struct BandwidthProfile {
    /// `rates[a][b]` = bytes/sec from rack `a` to rack `b`; the diagonal is
    /// the inner-rack rate.
    rates: Vec<Vec<f64>>,
}

impl BandwidthProfile {
    /// A uniform profile: every rack's inner rate is `inner_bps`, every
    /// cross-rack pair runs at `cross_bps` (both in bytes/sec).
    ///
    /// # Panics
    /// Panics if rates are not strictly positive or `racks == 0`.
    #[allow(clippy::needless_range_loop)] // matrix construction reads best indexed
    pub fn uniform(racks: usize, inner_bps: f64, cross_bps: f64) -> BandwidthProfile {
        assert!(racks > 0, "BandwidthProfile: no racks");
        assert!(
            inner_bps > 0.0 && cross_bps > 0.0,
            "BandwidthProfile: rates must be positive"
        );
        let rates = (0..racks)
            .map(|a| {
                (0..racks)
                    .map(|b| if a == b { inner_bps } else { cross_bps })
                    .collect()
            })
            .collect();
        BandwidthProfile { rates }
    }

    /// The paper's simulator setting: inner 1 Gb/s, cross 0.1 Gb/s (§5.1).
    pub fn simics_default(racks: usize) -> BandwidthProfile {
        BandwidthProfile::uniform(racks, GBIT, 0.1 * GBIT)
    }

    /// The paper's production assumption: inner 10 Gb/s, cross 1 Gb/s (§1).
    pub fn production_default(racks: usize) -> BandwidthProfile {
        BandwidthProfile::uniform(racks, 10.0 * GBIT, GBIT)
    }

    /// An arbitrary symmetric rack-pair rate matrix (bytes/sec).
    ///
    /// # Panics
    /// Panics if the matrix is not square, empty, asymmetric, or has a
    /// non-positive rate.
    #[allow(clippy::needless_range_loop)] // validation reads best indexed
    pub fn rack_matrix(rates: Vec<Vec<f64>>) -> BandwidthProfile {
        let q = rates.len();
        assert!(q > 0, "BandwidthProfile: empty matrix");
        assert!(
            rates.iter().all(|r| r.len() == q),
            "BandwidthProfile: matrix must be square"
        );
        for a in 0..q {
            for b in 0..q {
                assert!(rates[a][b] > 0.0, "BandwidthProfile: rate must be positive");
                assert!(
                    (rates[a][b] - rates[b][a]).abs() < f64::EPSILON,
                    "BandwidthProfile: matrix must be symmetric"
                );
            }
        }
        BandwidthProfile { rates }
    }

    /// Number of racks covered.
    #[inline]
    pub fn rack_count(&self) -> usize {
        self.rates.len()
    }

    /// Bytes/sec between two racks (diagonal = inner-rack).
    ///
    /// # Panics
    /// Panics if either rack id is out of range.
    #[inline]
    pub fn rate(&self, a: RackId, b: RackId) -> f64 {
        self.rates[a.0][b.0]
    }

    /// Time in seconds to move `bytes` between the two racks at the pair's
    /// nominal rate (no contention).
    #[inline]
    pub fn transfer_time(&self, a: RackId, b: RackId, bytes: u64) -> f64 {
        bytes as f64 / self.rate(a, b)
    }

    /// Mean inner-rack rate (diagonal average).
    pub fn mean_inner(&self) -> f64 {
        let q = self.rates.len();
        (0..q).map(|i| self.rates[i][i]).sum::<f64>() / q as f64
    }

    /// Mean cross-rack rate (off-diagonal average); returns the inner mean
    /// for a single-rack profile.
    pub fn mean_cross(&self) -> f64 {
        let q = self.rates.len();
        if q < 2 {
            return self.mean_inner();
        }
        let mut sum = 0.0;
        let mut count = 0usize;
        for a in 0..q {
            for b in 0..q {
                if a != b {
                    sum += self.rates[a][b];
                    count += 1;
                }
            }
        }
        sum / count as f64
    }

    /// The paper's `t_c / t_i` ratio for this profile (≈ 10 in production,
    /// ≈ 11.3 for the EC2 table).
    pub fn cross_to_inner_ratio(&self) -> f64 {
        self.mean_inner() / self.mean_cross()
    }

    /// Scale every rate by `factor` (used by `rpr-exec` to shrink the
    /// experiment to laptop scale while preserving all ratios).
    pub fn scaled(&self, factor: f64) -> BandwidthProfile {
        assert!(factor > 0.0, "BandwidthProfile: scale must be positive");
        BandwidthProfile {
            rates: self
                .rates
                .iter()
                .map(|row| row.iter().map(|r| r * factor).collect())
                .collect(),
        }
    }

    /// Sanity helper: true if this profile is consistent with a topology
    /// (covers at least its racks).
    pub fn covers(&self, topo: &Topology) -> bool {
        self.rack_count() >= topo.rack_count()
    }
}

/// The measured EC2 inter/intra-region bandwidths of the paper's Table 1,
/// in Mbps, symmetrized. Region order: Ohio, Tokyo, Paris, São Paulo,
/// Sydney.
pub const EC2_TABLE1_MBPS: [[f64; 5]; 5] = [
    [583.39, 51.798, 59.281, 67.613, 41.4],
    [51.798, 583.26, 45.56, 41.605, 91.21],
    [59.281, 45.56, 641.403, 56.57, 40.79],
    [67.613, 41.605, 56.57, 631.416, 34.44],
    [41.4, 91.21, 40.79, 34.44, 565.39],
];

/// Region names for [`EC2_TABLE1_MBPS`], in matrix order.
pub const EC2_REGIONS: [&str; 5] = ["Ohio", "Tokyo", "Paris", "São Paulo", "Sydney"];

/// Build the Table-1 EC2 bandwidth profile (regions as racks). Codes that
/// need more than five racks wrap around the region list; two distinct
/// racks that land on the same region are still separated by the WAN, so
/// their pair runs at the table's mean cross-region rate rather than the
/// intra-region rate.
#[allow(clippy::needless_range_loop)] // matrix construction reads best indexed
pub fn ec2_table1_profile(racks: usize) -> BandwidthProfile {
    assert!(racks > 0);
    let mean_cross = {
        let mut sum = 0.0;
        let mut cnt = 0;
        for a in 0..5 {
            for b in 0..5 {
                if a != b {
                    sum += EC2_TABLE1_MBPS[a][b];
                    cnt += 1;
                }
            }
        }
        sum / cnt as f64
    };
    let rates = (0..racks)
        .map(|a| {
            (0..racks)
                .map(|b| {
                    if a == b {
                        EC2_TABLE1_MBPS[a % 5][a % 5] * MBIT
                    } else if a % 5 == b % 5 {
                        mean_cross * MBIT
                    } else {
                        EC2_TABLE1_MBPS[a % 5][b % 5] * MBIT
                    }
                })
                .collect()
        })
        .collect();
    BandwidthProfile::rack_matrix(rates)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_profile_rates() {
        let p = BandwidthProfile::uniform(3, 100.0, 10.0);
        assert_eq!(p.rate(RackId(0), RackId(0)), 100.0);
        assert_eq!(p.rate(RackId(0), RackId(2)), 10.0);
        assert_eq!(p.rack_count(), 3);
        assert!((p.cross_to_inner_ratio() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn simics_and_production_defaults_are_ten_to_one() {
        for p in [
            BandwidthProfile::simics_default(4),
            BandwidthProfile::production_default(4),
        ] {
            assert!((p.cross_to_inner_ratio() - 10.0).abs() < 1e-9);
        }
        assert_eq!(
            BandwidthProfile::simics_default(2).rate(RackId(0), RackId(0)),
            GBIT
        );
    }

    #[test]
    fn transfer_time_is_bytes_over_rate() {
        let p = BandwidthProfile::uniform(2, 128.0 * MBIT, 12.8 * MBIT);
        let t = p.transfer_time(RackId(0), RackId(1), (256.0 * MBIT) as u64);
        assert!((t - 20.0).abs() < 1e-6, "got {t}");
    }

    #[test]
    fn ec2_profile_matches_paper_statistics() {
        let p = ec2_table1_profile(5);
        // §5.2: average cross ≈ 53.03 Mbps, average inner ≈ 600.97 Mbps,
        // ratio ≈ 11.32.
        let cross_mbps = p.mean_cross() / MBIT;
        let inner_mbps = p.mean_inner() / MBIT;
        assert!((cross_mbps - 53.03).abs() < 0.05, "cross {cross_mbps}");
        assert!((inner_mbps - 600.97).abs() < 0.05, "inner {inner_mbps}");
        assert!((p.cross_to_inner_ratio() - 11.32).abs() < 0.02);
    }

    #[test]
    fn ec2_profile_wraps_for_more_racks() {
        let p = ec2_table1_profile(7);
        // Rack 5 maps to Ohio again; rack 5 <-> rack 0 are distinct racks
        // in the same region, separated by the WAN at the mean cross rate.
        assert!((p.rate(RackId(5), RackId(0)) / MBIT - 53.03).abs() < 0.05);
        assert_eq!(p.rate(RackId(5), RackId(1)), EC2_TABLE1_MBPS[0][1] * MBIT);
        assert_eq!(p.rate(RackId(5), RackId(5)), EC2_TABLE1_MBPS[0][0] * MBIT);
    }

    #[test]
    fn scaling_preserves_ratio() {
        let p = ec2_table1_profile(5).scaled(1.0 / 16.0);
        assert!((p.cross_to_inner_ratio() - 11.32).abs() < 0.02);
        assert!(p.mean_inner() < 601.0 * MBIT / 15.0);
    }

    #[test]
    #[should_panic(expected = "must be symmetric")]
    fn asymmetric_matrix_rejected() {
        BandwidthProfile::rack_matrix(vec![vec![1.0, 2.0], vec![3.0, 1.0]]);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_rate_rejected() {
        BandwidthProfile::uniform(2, 0.0, 1.0);
    }

    #[test]
    fn covers_checks_rack_count() {
        let p = BandwidthProfile::uniform(3, 1.0, 1.0);
        assert!(p.covers(&Topology::uniform(3, 1)));
        assert!(p.covers(&Topology::uniform(2, 1)));
        assert!(!p.covers(&Topology::uniform(4, 1)));
    }
}
