//! Property-based tests for placements and bandwidth profiles.

use proptest::prelude::*;
use rpr_codec::CodeParams;
use rpr_topology::{cluster_for, BandwidthProfile, Placement, PlacementPolicy, RackId, Topology};

fn code_strategy() -> impl Strategy<Value = CodeParams> {
    (1usize..=16, 1usize..=6)
        .prop_filter("k <= n", |&(n, k)| k <= n)
        .prop_map(|(n, k)| CodeParams::new(n, k))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn compact_and_preplaced_are_always_fault_tolerant(params in code_strategy()) {
        let topo = cluster_for(params, 1, 0);
        for policy in [PlacementPolicy::Compact, PlacementPolicy::RprPreplaced] {
            let p = Placement::by_policy(policy, params, &topo);
            prop_assert!(p.is_single_rack_fault_tolerant(&topo), "{policy:?}");
            // Bijectivity: every block on a distinct node, round-trips.
            for b in params.all_blocks() {
                prop_assert_eq!(p.block_on(p.node_of(b)), Some(b));
            }
            // Rack counts: each rack holds at most k blocks.
            for rack in topo.racks() {
                prop_assert!(p.blocks_in_rack(rack, &topo).len() <= params.k);
            }
        }
    }

    #[test]
    fn preplacement_colocates_p0_when_possible(params in code_strategy()) {
        // k = 1 places one block per rack, so no parity can ever share a
        // rack with data; for k >= 2 the swap must land P0 with data.
        prop_assume!(params.k >= 2);
        prop_assume!(params.rack_count() >= 2);
        prop_assume!(params.n >= 2);
        let topo = cluster_for(params, 1, 0);
        let p = Placement::rpr_preplaced(params, &topo);
        prop_assert!(p.p0_colocated_with_data(&topo));
    }

    #[test]
    fn flat_placement_spreads_one_block_per_rack(params in code_strategy()) {
        let topo = Topology::uniform(params.total(), 2);
        let p = Placement::flat(params, &topo);
        for rack in topo.racks() {
            prop_assert!(p.blocks_in_rack(rack, &topo).len() <= 1);
        }
        prop_assert!(p.is_single_rack_fault_tolerant(&topo));
    }

    #[test]
    fn uniform_profile_statistics(
        racks in 1usize..8,
        inner in 1.0f64..1e9,
        ratio in 1.0f64..100.0,
    ) {
        let profile = BandwidthProfile::uniform(racks, inner, inner / ratio);
        prop_assert!((profile.mean_inner() - inner).abs() < inner * 1e-12);
        if racks > 1 {
            prop_assert!((profile.cross_to_inner_ratio() - ratio).abs() < ratio * 1e-9);
        }
        // Scaling preserves the ratio exactly.
        let scaled = profile.scaled(0.125);
        prop_assert!(
            (scaled.cross_to_inner_ratio() - profile.cross_to_inner_ratio()).abs() < 1e-9
        );
        // Transfer time is inversely proportional to rate.
        if racks > 1 {
            let t1 = profile.transfer_time(RackId(0), RackId(1), 1_000_000);
            let t2 = scaled.transfer_time(RackId(0), RackId(1), 1_000_000);
            prop_assert!((t2 / t1 - 8.0).abs() < 1e-9);
        }
    }

    #[test]
    fn replacement_nodes_exist_with_spares(params in code_strategy()) {
        let topo = cluster_for(params, 2, 0);
        let p = Placement::compact(params, &topo);
        for rack in topo.racks() {
            let r = p.replacement_in(rack, &topo);
            prop_assert!(r.is_some(), "rack {rack:?} must have a spare");
            let node = r.unwrap();
            prop_assert_eq!(topo.rack_of(node), rack);
            prop_assert_eq!(p.block_on(node), None);
        }
    }
}
