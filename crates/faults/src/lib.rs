//! Deterministic fault-injection primitives.
//!
//! This crate is the dependency-free bottom of the robustness layer: it
//! defines *what can go wrong* during a repair ([`FaultKind`],
//! [`FaultPlan`]) and *how the system reacts* ([`RetryPolicy`]), plus two
//! small utilities the recovery machinery needs — a seeded [`SplitMix64`]
//! PRNG so every injected fault is reproducible, and a [`checksum64`]
//! digest used to verify intermediate blocks in flight.
//!
//! Faults are described against a repair plan symbolically (op indices,
//! node indices, pipeline timesteps — all plain `usize`); `rpr-core`
//! resolves them against a concrete [`RepairPlan`] and both backends
//! (`rpr-netsim`, `rpr-exec`) enact them. The full fault model and
//! recovery semantics are documented in `docs/ROBUSTNESS.md`.
//!
//! [`RepairPlan`]: https://docs.rs/rpr-core

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Stable failure-reason strings carried by `transfer_failed` trace
/// events. Kept as constants so backends and tests agree byte-for-byte.
pub mod reason {
    /// A transfer stalled past its deadline and was abandoned mid-flight.
    pub const TIMEOUT: &str = "timeout";
    /// An intermediate block arrived but failed checksum verification.
    pub const CORRUPT: &str = "corrupt";
    /// The rack aggregation switch dropped the transfer.
    pub const SWITCH_OUTAGE: &str = "switch_outage";
    /// The sending helper died; no retry will succeed.
    pub const NODE_DOWN: &str = "node_down";
}

/// SplitMix64 — a tiny, high-quality, seedable PRNG (Steele et al.,
/// "Fast splittable pseudorandom number generators", OOPSLA '14).
///
/// Used everywhere the robustness layer needs reproducible randomness:
/// fault-site selection, failure fractions, and the seeded property-test
/// harness in `tests/`. Identical seeds yield identical streams on every
/// platform.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator seeded with `seed`. Any value (including 0) is fine.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 mantissa bits of a u64, scaled.
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A uniform index in `[0, n)`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn pick(&mut self, n: usize) -> usize {
        assert!(n > 0, "SplitMix64::pick: empty range");
        // Modulo bias is negligible for the small n used here (op/node
        // counts), and determinism matters more than perfect uniformity.
        (self.next_u64() % n as u64) as usize
    }
}

/// FNV-1a 64-bit digest of a byte slice.
///
/// Fast, dependency-free, and good enough to detect the single- and
/// multi-byte corruptions the fault plane injects; not cryptographic.
pub fn checksum64(data: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x100_0000_01b3;
    let mut h = OFFSET;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// One injectable fault. Indices are plain `usize` (node, rack, plan-op,
/// pipeline timestep); `rpr-core` validates them against a concrete plan.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultKind {
    /// Helper `node` dies immediately before performing its first
    /// cross-rack send scheduled at wave `timestep` or later. Survived by
    /// replanning (the node never comes back).
    HelperCrash {
        /// Node index that crashes.
        node: usize,
        /// Pipeline timestep at (or after) which the crash takes effect.
        timestep: usize,
    },
    /// The transfer for plan op `op` stalls partway and times out once;
    /// the retry succeeds.
    TransferTimeout {
        /// Plan op index (must be a `Send`).
        op: usize,
    },
    /// The intermediate block carried by plan op `op` arrives corrupted
    /// once; checksum verification detects it and the retry succeeds.
    CorruptIntermediate {
        /// Plan op index (must be a `Send` carrying an intermediate).
        op: usize,
    },
    /// Every link of `node` runs at `factor` of its profiled bandwidth
    /// for the whole repair (a degraded NIC / contended ToR port).
    SlowLink {
        /// Node index whose links are derated.
        node: usize,
        /// Rate multiplier in `(0, 1]`.
        factor: f64,
    },
    /// The aggregation switch of `rack` drops every cross-rack transfer
    /// of pipeline wave `timestep` touching that rack, once each.
    RackSwitchOutage {
        /// Rack index whose switch blips.
        rack: usize,
        /// Pipeline timestep during which the outage occurs.
        timestep: usize,
    },
}

/// A deterministic, seed-driven set of faults to inject into one repair.
///
/// The seed feeds a [`SplitMix64`] stream that fixes every free parameter
/// (failure fractions, corruption offsets), so the same plan + same
/// `FaultPlan` produce bit-identical behavior on the simulator backend.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Seed for the deterministic parameter stream.
    pub seed: u64,
    /// The faults to inject, in declaration order.
    pub faults: Vec<FaultKind>,
}

impl FaultPlan {
    /// An empty fault plan with the given seed.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            faults: Vec::new(),
        }
    }

    /// Builder-style: append one fault.
    pub fn with(mut self, fault: FaultKind) -> FaultPlan {
        self.faults.push(fault);
        self
    }

    /// True when no faults are injected.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}

/// Bounded-retry policy for failed transfers and crash recovery.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Maximum transfer attempts (first try included). A transfer that
    /// fails this many times aborts the repair attempt.
    pub max_attempts: usize,
    /// Backoff before the first retry, in seconds (virtual seconds on the
    /// simulator backend, wall seconds on the executor).
    pub backoff: f64,
    /// Multiplier applied to the backoff after each failed attempt.
    pub multiplier: f64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            backoff: 0.05,
            multiplier: 2.0,
        }
    }
}

impl RetryPolicy {
    /// Delay in seconds before the retry following failed attempt
    /// `attempt` (zero-based): `backoff * multiplier^attempt`.
    pub fn delay(&self, attempt: usize) -> f64 {
        self.backoff * self.multiplier.powi(attempt as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_matches_reference() {
        // Reference values for seed 1234567 from the public-domain
        // splitmix64.c by Sebastiano Vigna.
        let mut rng = SplitMix64::new(1234567);
        assert_eq!(rng.next_u64(), 6457827717110365317);
        assert_eq!(rng.next_u64(), 3203168211198807973);
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn next_f64_is_in_unit_interval() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..1000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn pick_stays_in_range() {
        let mut rng = SplitMix64::new(9);
        for n in 1..=17 {
            for _ in 0..50 {
                assert!(rng.pick(n) < n);
            }
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn pick_rejects_empty_range() {
        SplitMix64::new(0).pick(0);
    }

    #[test]
    fn checksum_detects_single_byte_flips() {
        let data = vec![0xABu8; 4096];
        let base = checksum64(&data);
        for i in [0usize, 1, 100, 4095] {
            let mut copy = data.clone();
            copy[i] ^= 0x01;
            assert_ne!(checksum64(&copy), base, "flip at {i} undetected");
        }
        assert_eq!(checksum64(&data), base);
    }

    #[test]
    fn retry_policy_backoff_grows_geometrically() {
        let p = RetryPolicy {
            max_attempts: 4,
            backoff: 0.1,
            multiplier: 2.0,
        };
        assert!((p.delay(0) - 0.1).abs() < 1e-12);
        assert!((p.delay(1) - 0.2).abs() < 1e-12);
        assert!((p.delay(3) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn fault_plan_builder_appends_in_order() {
        let fp = FaultPlan::new(3)
            .with(FaultKind::TransferTimeout { op: 2 })
            .with(FaultKind::SlowLink {
                node: 1,
                factor: 0.5,
            });
        assert_eq!(fp.seed, 3);
        assert_eq!(fp.faults.len(), 2);
        assert!(!fp.is_empty());
        assert!(FaultPlan::new(0).is_empty());
    }
}
