//! Deterministic fault-injection primitives.
//!
//! This crate is the dependency-free bottom of the robustness layer: it
//! defines *what can go wrong* during a repair ([`FaultKind`],
//! [`FaultPlan`]) and *how the system reacts* ([`RetryPolicy`]), plus two
//! small utilities the recovery machinery needs — a seeded [`SplitMix64`]
//! PRNG so every injected fault is reproducible, and a [`checksum64`]
//! digest used to verify intermediate blocks in flight.
//!
//! Faults are described against a repair plan symbolically (op indices,
//! node indices, pipeline timesteps — all plain `usize`); `rpr-core`
//! resolves them against a concrete [`RepairPlan`] and both backends
//! (`rpr-netsim`, `rpr-exec`) enact them. The full fault model and
//! recovery semantics are documented in `docs/ROBUSTNESS.md`.
//!
//! [`RepairPlan`]: https://docs.rs/rpr-core

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Stable failure-reason strings carried by `transfer_failed` trace
/// events. Kept as constants so backends and tests agree byte-for-byte.
pub mod reason {
    /// A transfer stalled past its deadline and was abandoned mid-flight.
    pub const TIMEOUT: &str = "timeout";
    /// An intermediate block arrived but failed checksum verification.
    pub const CORRUPT: &str = "corrupt";
    /// The rack aggregation switch dropped the transfer.
    pub const SWITCH_OUTAGE: &str = "switch_outage";
    /// The sending helper died; no retry will succeed.
    pub const NODE_DOWN: &str = "node_down";
    /// A helper returned checksum-consistent but wrong bytes, caught by
    /// proof verification (see `rpr-proof` and `docs/ROBUSTNESS.md`).
    pub const LIE: &str = "lie";
}

/// SplitMix64 — a tiny, high-quality, seedable PRNG (Steele et al.,
/// "Fast splittable pseudorandom number generators", OOPSLA '14).
///
/// Used everywhere the robustness layer needs reproducible randomness:
/// fault-site selection, failure fractions, and the seeded property-test
/// harness in `tests/`. Identical seeds yield identical streams on every
/// platform.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator seeded with `seed`. Any value (including 0) is fine.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 mantissa bits of a u64, scaled.
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A uniform index in `[0, n)`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn pick(&mut self, n: usize) -> usize {
        assert!(n > 0, "SplitMix64::pick: empty range");
        // Modulo bias is negligible for the small n used here (op/node
        // counts), and determinism matters more than perfect uniformity.
        (self.next_u64() % n as u64) as usize
    }
}

/// FNV-1a 64-bit digest of a byte slice.
///
/// Fast, dependency-free, and good enough to detect the single- and
/// multi-byte corruptions the fault plane injects; not cryptographic.
pub fn checksum64(data: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x100_0000_01b3;
    let mut h = OFFSET;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// One injectable fault. Indices are plain `usize` (node, rack, plan-op,
/// pipeline timestep); `rpr-core` validates them against a concrete plan.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultKind {
    /// Helper `node` dies immediately before performing its first
    /// cross-rack send scheduled at wave `timestep` or later. Survived by
    /// replanning (the node never comes back).
    HelperCrash {
        /// Node index that crashes.
        node: usize,
        /// Pipeline timestep at (or after) which the crash takes effect.
        timestep: usize,
    },
    /// The transfer for plan op `op` stalls partway and times out once;
    /// the retry succeeds.
    TransferTimeout {
        /// Plan op index (must be a `Send`).
        op: usize,
    },
    /// The intermediate block carried by plan op `op` arrives corrupted
    /// once; checksum verification detects it and the retry succeeds.
    CorruptIntermediate {
        /// Plan op index (must be a `Send` carrying an intermediate).
        op: usize,
    },
    /// Every link of `node` runs at `factor` of its profiled bandwidth
    /// for the whole repair (a degraded NIC / contended ToR port).
    SlowLink {
        /// Node index whose links are derated.
        node: usize,
        /// Rate multiplier in `(0, 1]`.
        factor: f64,
    },
    /// The aggregation switch of `rack` drops every cross-rack transfer
    /// of pipeline wave `timestep` touching that rack, once each.
    RackSwitchOutage {
        /// Rack index whose switch blips.
        rack: usize,
        /// Pipeline timestep during which the outage occurs.
        timestep: usize,
    },
}

/// A deterministic, seed-driven set of faults to inject into one repair.
///
/// The seed feeds a [`SplitMix64`] stream that fixes every free parameter
/// (failure fractions, corruption offsets), so the same plan + same
/// `FaultPlan` produce bit-identical behavior on the simulator backend.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Seed for the deterministic parameter stream.
    pub seed: u64,
    /// The faults to inject, in declaration order.
    pub faults: Vec<FaultKind>,
}

impl FaultPlan {
    /// An empty fault plan with the given seed.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            faults: Vec::new(),
        }
    }

    /// Builder-style: append one fault.
    pub fn with(mut self, fault: FaultKind) -> FaultPlan {
        self.faults.push(fault);
        self
    }

    /// True when no faults are injected.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}

/// Bounded-retry policy for failed transfers and crash recovery.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Maximum transfer attempts (first try included). A transfer that
    /// fails this many times aborts the repair attempt.
    pub max_attempts: usize,
    /// Backoff before the first retry, in seconds (virtual seconds on the
    /// simulator backend, wall seconds on the executor).
    pub backoff: f64,
    /// Multiplier applied to the backoff after each failed attempt.
    pub multiplier: f64,
    /// Upper clamp on the exponential term, in seconds. The geometric
    /// growth `backoff * multiplier^attempt` never exceeds this, so deep
    /// retry chains don't sleep unboundedly. `f64::INFINITY` disables the
    /// clamp.
    pub cap: f64,
    /// Jitter fraction in `[0, 1]`: a seeded uniform share of the clamped
    /// delay added on top, de-synchronizing retries that would otherwise
    /// stampede in lockstep. `0.0` (the default) keeps [`delay`] a pure
    /// geometric series, bit-identical to the un-jittered policy.
    ///
    /// [`delay`]: RetryPolicy::delay
    pub jitter: f64,
    /// Seed for the jitter stream. Jitter is a pure function of
    /// `(seed, attempt)`, so identically configured policies delay
    /// identically — determinism survives jitter.
    pub jitter_seed: u64,
    /// Quantile of observed per-helper slowdowns that anchors the
    /// adaptive transfer deadline (see
    /// [`straggler_multiple`](RetryPolicy::straggler_multiple)).
    pub timeout_quantile: f64,
    /// Headroom multiplier applied on top of the observed slowdown
    /// quantile before it becomes a deadline multiple.
    pub timeout_headroom: f64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            backoff: 0.05,
            multiplier: 2.0,
            cap: f64::INFINITY,
            jitter: 0.0,
            jitter_seed: 0,
            timeout_quantile: 0.9,
            timeout_headroom: 2.0,
        }
    }
}

impl RetryPolicy {
    /// Delay in seconds before the retry following failed attempt
    /// `attempt` (zero-based):
    /// `min(backoff * multiplier^attempt, cap) * (1 + jitter * u)` with
    /// `u` drawn deterministically from `(jitter_seed, attempt)`.
    pub fn delay(&self, attempt: usize) -> f64 {
        let base = (self.backoff * self.multiplier.powi(attempt as i32)).min(self.cap);
        if self.jitter <= 0.0 {
            return base;
        }
        let mut rng = SplitMix64::new(
            self.jitter_seed ^ (attempt as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        base * (1.0 + self.jitter * rng.next_f64())
    }

    /// Builder-style: clamp the exponential term at `cap` seconds.
    pub fn with_cap(mut self, cap: f64) -> RetryPolicy {
        self.cap = cap;
        self
    }

    /// Adaptive straggler/timeout multiple: the threshold (as a multiple
    /// of the expected transfer time) past which a transfer is treated
    /// as timed out or straggling.
    ///
    /// `fixed` is the static constant the caller would otherwise use;
    /// `observed` are per-helper slowdown estimates (actual/expected
    /// duration ratios, ≥ 1) — in practice
    /// [`HealthTracker::observed_slowdowns`], which derives them from
    /// the same EWMA state that drives quarantine. The adaptive multiple
    /// is `timeout_headroom ×` the `timeout_quantile`-quantile of the
    /// observations, floored at `fixed`: when the fleet is healthy
    /// (slowdowns ≈ 1) the threshold stays exactly the fixed constant,
    /// and when churn degrades links broadly the threshold rises with
    /// them, so a merely-typical helper on a slow day is not spuriously
    /// timed out. With no observations the fixed constant is returned
    /// unchanged.
    pub fn straggler_multiple(&self, fixed: f64, observed: &[f64]) -> f64 {
        if observed.is_empty() {
            return fixed;
        }
        let mut sorted: Vec<f64> = observed.to_vec();
        sorted.sort_by(f64::total_cmp);
        // Nearest-rank quantile (matches `rpr_sched::quantile`).
        let q = self.timeout_quantile.clamp(0.0, 1.0);
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        let quant = sorted[rank - 1].max(1.0);
        (quant * self.timeout_headroom).max(fixed)
    }

    /// Adaptive transfer deadline in seconds for a transfer expected to
    /// take `baseline`: `baseline × straggler_multiple(fixed, observed)`.
    pub fn transfer_deadline(&self, baseline: f64, fixed: f64, observed: &[f64]) -> f64 {
        baseline * self.straggler_multiple(fixed, observed)
    }

    /// Builder-style: add seeded jitter (fraction in `[0, 1]`).
    pub fn with_jitter(mut self, jitter: f64, seed: u64) -> RetryPolicy {
        self.jitter = jitter;
        self.jitter_seed = seed;
        self
    }
}

/// Where a storm crash strikes. Sites are plan-independent — the
/// supervisor resolves them against whatever plan the current replan
/// generation is running, so a storm authored once stays meaningful as
/// helpers are swapped out underneath it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashSite {
    /// A specific node index (must be a live helper when the generation
    /// starts, or the crash is skipped).
    Node(usize),
    /// Seed-pick among the current generation's crash candidates.
    SeedPick,
    /// A helper participating in the current generation's plan that was
    /// *not* in the previous generation's — i.e. the replacement brought
    /// in by the last replan. Falls back to [`CrashSite::SeedPick`] when
    /// no such node exists.
    NewHelper,
}

/// One fault scheduled by the chaos process, described independently of
/// any concrete plan. The supervisor turns these into valid
/// [`FaultKind`]s by inspecting the generation's plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StormFault {
    /// A helper crash at the given site. Each crash ends the current
    /// supervision generation and forces a replan.
    Crash(CrashSite),
    /// One transient transfer timeout on a seed-picked cross send.
    Timeout,
    /// One corrupted intermediate on a seed-picked intermediate send.
    Corrupt,
    /// A seed-picked helper's links run at `factor` of their rate for the
    /// rest of the repair.
    Slow {
        /// Rate multiplier in `(0, 1]`.
        factor: f64,
    },
    /// The recovery rack's switch blips for one seeded wave.
    RackOutage,
    /// A seed-picked helper turns Byzantine for the generation: its send
    /// carries wrong bytes under a *valid* FNV checksum, so only proof
    /// verification (`rpr-proof`) can catch it. Invisible when the
    /// repair runs with proofs off.
    Lie,
}

impl StormFault {
    /// Stable lowercase name used in summaries and CLI output.
    pub fn name(&self) -> &'static str {
        match self {
            StormFault::Crash(CrashSite::Node(_)) => "crash",
            StormFault::Crash(CrashSite::SeedPick) => "crash",
            StormFault::Crash(CrashSite::NewHelper) => "replacement-crash",
            StormFault::Timeout => "timeout",
            StormFault::Corrupt => "corrupt",
            StormFault::Slow { .. } => "slow",
            StormFault::RackOutage => "rack",
            StormFault::Lie => "lie",
        }
    }
}

/// A fault storm: faults bucketed by supervision generation. Generation
/// `g`'s bucket is injected into the `g`-th repair attempt; a bucket
/// containing a [`StormFault::Crash`] ends that generation and the
/// supervisor replans into generation `g + 1`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultStorm {
    /// Seed driving every free parameter during resolution.
    pub seed: u64,
    /// Per-generation fault buckets, in injection order.
    pub generations: Vec<Vec<StormFault>>,
}

impl FaultStorm {
    /// An empty storm with the given seed.
    pub fn new(seed: u64) -> FaultStorm {
        FaultStorm {
            seed,
            generations: Vec::new(),
        }
    }

    /// Builder-style: append one generation bucket.
    pub fn with_generation(mut self, faults: Vec<StormFault>) -> FaultStorm {
        self.generations.push(faults);
        self
    }

    /// Total number of scheduled faults across all generations.
    pub fn fault_count(&self) -> usize {
        self.generations.iter().map(|g| g.len()).sum()
    }

    /// True when no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.fault_count() == 0
    }
}

/// A seeded continuous fault process: Poisson-style arrivals over a
/// virtual horizon, occasional multi-fault *storms*, and a
/// repeated-offender bias that makes the same node misbehave again.
///
/// `storm()` is a pure function of the struct's fields — the same
/// configuration always produces the same [`FaultStorm`], which is what
/// lets `rpr chaos` replay bit-deterministically.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosProcess {
    /// Seed for the arrival/parameter stream.
    pub seed: u64,
    /// Mean number of fault arrivals over the horizon.
    pub rate: f64,
    /// Probability that an arrival bursts into a 2–3-fault storm.
    pub storm_probability: f64,
    /// Probability that a crash re-targets the previous offender's
    /// replacement ([`CrashSite::NewHelper`]) instead of a fresh pick.
    pub repeat_bias: f64,
    /// Hard cap on scheduled crashes (bounds the supervision loop; a
    /// storm can only demand as many replans as the code tolerates).
    pub max_crashes: usize,
}

impl Default for ChaosProcess {
    fn default() -> ChaosProcess {
        ChaosProcess {
            seed: 0,
            rate: 3.0,
            storm_probability: 0.25,
            repeat_bias: 0.5,
            max_crashes: 2,
        }
    }
}

impl ChaosProcess {
    /// A default-shaped process with the given seed.
    pub fn new(seed: u64) -> ChaosProcess {
        ChaosProcess {
            seed,
            ..ChaosProcess::default()
        }
    }

    /// Sample the fault storm this process produces.
    ///
    /// Arrivals are exponential (inter-arrival `-ln(1 - u) / rate` over a
    /// unit horizon); each arrival draws a fault kind, storms burst into
    /// 2–3 faults, and every crash closes the current generation bucket.
    pub fn storm(&self) -> FaultStorm {
        let mut rng = SplitMix64::new(self.seed);
        let mut storm = FaultStorm::new(self.seed);
        let mut bucket: Vec<StormFault> = Vec::new();
        let mut crashes = 0usize;
        let mut t = 0.0f64;
        if self.rate > 0.0 {
            loop {
                let u = rng.next_f64();
                t += -(1.0 - u).ln() / self.rate;
                if t >= 1.0 {
                    break;
                }
                let burst = if rng.next_f64() < self.storm_probability {
                    2 + rng.pick(2)
                } else {
                    1
                };
                for _ in 0..burst {
                    let fault = self.draw_fault(&mut rng, crashes);
                    let is_crash = matches!(fault, StormFault::Crash(_));
                    bucket.push(fault);
                    if is_crash {
                        crashes += 1;
                        storm.generations.push(std::mem::take(&mut bucket));
                    }
                }
            }
        }
        if !bucket.is_empty() {
            storm.generations.push(bucket);
        }
        storm
    }

    fn draw_fault(&self, rng: &mut SplitMix64, crashes_so_far: usize) -> StormFault {
        // Transient faults are more common than crashes; crashes beyond
        // the budget degrade into transients so the storm stays bounded.
        let roll = rng.next_f64();
        if roll < 0.35 && crashes_so_far < self.max_crashes {
            let site = if crashes_so_far > 0 && rng.next_f64() < self.repeat_bias {
                CrashSite::NewHelper
            } else {
                CrashSite::SeedPick
            };
            StormFault::Crash(site)
        } else if roll < 0.6 {
            StormFault::Timeout
        } else if roll < 0.75 {
            StormFault::Corrupt
        } else if roll < 0.9 {
            StormFault::Slow {
                factor: 0.2 + 0.6 * rng.next_f64(),
            }
        } else {
            StormFault::RackOutage
        }
    }
}

/// The blast radius of one churn arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnKind {
    /// A single node (disk/host) fails: one live stripe loses one more
    /// block.
    Node,
    /// A rack-level event (ToR switch, power domain): a correlated batch
    /// of stripes sharing the rack each lose a block at the same instant.
    Rack {
        /// Number of live stripes the event hits.
        victims: usize,
    },
    /// A correlated multi-stripe batch (firmware rollout, bad disk
    /// batch) not tied to one rack.
    Batch {
        /// Number of live stripes the event hits.
        victims: usize,
    },
}

impl ChurnKind {
    /// Number of live stripes this arrival hits.
    pub fn victims(&self) -> usize {
        match self {
            ChurnKind::Node => 1,
            ChurnKind::Rack { victims } | ChurnKind::Batch { victims } => *victims,
        }
    }

    /// Stable lowercase name used in summaries and traces.
    pub fn name(&self) -> &'static str {
        match self {
            ChurnKind::Node => "node",
            ChurnKind::Rack { .. } => "rack",
            ChurnKind::Batch { .. } => "batch",
        }
    }
}

/// One failure arrival sampled from a [`ChurnProcess`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnEvent {
    /// Virtual arrival time in seconds; strictly increasing across the
    /// stream (zero-probability ties aside).
    pub t: f64,
    /// What failed.
    pub kind: ChurnKind,
    /// Seeded draw fixing every remaining free parameter. The process is
    /// deliberately stripe-agnostic — the consumer (the fleet drain)
    /// derives victim stripes and failed blocks from this value, e.g. by
    /// seeding a [`SplitMix64`] with it.
    pub draw: u64,
}

/// A seeded continuous failure/replacement arrival stream on the fleet's
/// virtual clock.
///
/// Where [`ChaosProcess`] samples a bounded storm for *one* repair,
/// `ChurnProcess` models the cell-level regime the drain races against:
/// Poisson arrivals at `rate` failures per virtual second, forever — the
/// stream is unbounded and the consumer stops pulling when its own
/// horizon (the drain's backlog) is exhausted. Arrivals are node events,
/// rack-correlated batches, or cross-rack correlated batches.
///
/// The stream is a pure function of the seed: two same-seed processes
/// produce bit-identical event sequences, which is what lets a resumed
/// (`--resume`) drain re-derive exactly the churn an interrupted run saw.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnProcess {
    /// Mean failure arrivals per virtual second.
    pub rate: f64,
    /// Probability that an arrival is a rack-level correlated event.
    pub rack_probability: f64,
    /// Probability that an arrival is a cross-rack correlated batch.
    pub batch_probability: f64,
    /// Largest victim count a rack/batch event can draw (≥ 2).
    pub max_batch: usize,
    seed: u64,
    rng: SplitMix64,
    t: f64,
}

impl ChurnProcess {
    /// A default-shaped process: 10% rack events, 15% correlated
    /// batches, batches of 2–4 stripes.
    pub fn new(seed: u64, rate: f64) -> ChurnProcess {
        ChurnProcess {
            rate,
            rack_probability: 0.10,
            batch_probability: 0.15,
            max_batch: 4,
            seed,
            rng: SplitMix64::new(seed),
            t: 0.0,
        }
    }

    /// The seed this process was built with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Virtual time of the most recently sampled arrival (0 before the
    /// first call).
    pub fn now(&self) -> f64 {
        self.t
    }

    /// Sample the next arrival. Returns `None` when the process is
    /// disabled (`rate <= 0` or not finite); otherwise times are
    /// strictly increasing (exponential inter-arrivals at `rate`).
    pub fn next_event(&mut self) -> Option<ChurnEvent> {
        if self.rate <= 0.0 || !self.rate.is_finite() {
            return None;
        }
        let u = self.rng.next_f64();
        self.t += -(1.0 - u).ln() / self.rate;
        let roll = self.rng.next_f64();
        let span = self.max_batch.max(2) - 1; // victims in 2..=max_batch
        let kind = if roll < self.rack_probability {
            ChurnKind::Rack {
                victims: 2 + self.rng.pick(span),
            }
        } else if roll < self.rack_probability + self.batch_probability {
            ChurnKind::Batch {
                victims: 2 + self.rng.pick(span),
            }
        } else {
            ChurnKind::Node
        };
        Some(ChurnEvent {
            t: self.t,
            kind,
            draw: self.rng.next_u64(),
        })
    }
}

/// Per-node health scores fed by transfer outcomes, with quarantine and
/// probing re-admission.
///
/// Scores are EWMAs in `[0, 1]` (1 = healthy). A node whose score sinks
/// below the quarantine threshold is avoided by helper re-selection
/// until it has sat out `probe_after` supervision generations; it is
/// then re-admitted *on probation* — its score is reset to exactly the
/// threshold, so a single further failure re-quarantines it while
/// successes rebuild trust.
#[derive(Debug, Clone)]
pub struct HealthTracker {
    alpha: f64,
    threshold: f64,
    probe_after: usize,
    generation: usize,
    scores: Vec<f64>,
    // generation at which the node was quarantined, if currently out.
    quarantined_at: Vec<Option<usize>>,
    // nodes with at least one real observation (scores default to 1.0,
    // so the score vector alone cannot distinguish "healthy" from
    // "never seen" — the adaptive-deadline quantile needs to).
    observed: Vec<bool>,
}

impl HealthTracker {
    /// A tracker with EWMA weight `alpha`, quarantine `threshold`, and
    /// probing re-admission after `probe_after` generations.
    pub fn new(alpha: f64, threshold: f64, probe_after: usize) -> HealthTracker {
        HealthTracker {
            alpha: alpha.clamp(0.0, 1.0),
            threshold: threshold.clamp(0.0, 1.0),
            probe_after: probe_after.max(1),
            generation: 0,
            scores: Vec::new(),
            quarantined_at: Vec::new(),
            observed: Vec::new(),
        }
    }

    /// Conservative defaults: fast EWMA (α = 0.5), quarantine below 0.4,
    /// probe after 2 generations.
    pub fn with_defaults() -> HealthTracker {
        HealthTracker::new(0.5, 0.4, 2)
    }

    fn ensure(&mut self, node: usize) {
        if node >= self.scores.len() {
            self.scores.resize(node + 1, 1.0);
            self.quarantined_at.resize(node + 1, None);
            self.observed.resize(node + 1, false);
        }
    }

    /// Feed one observation for `node`: `score` in `[0, 1]` (1 = the
    /// transfer completed at or above the expected rate, 0 = it failed).
    /// May quarantine the node.
    pub fn observe(&mut self, node: usize, score: f64) {
        self.ensure(node);
        self.observed[node] = true;
        let s = score.clamp(0.0, 1.0);
        self.scores[node] = self.alpha * s + (1.0 - self.alpha) * self.scores[node];
        if self.scores[node] < self.threshold && self.quarantined_at[node].is_none() {
            self.quarantined_at[node] = Some(self.generation);
        }
    }

    /// Record a successful transfer whose duration was `actual` against
    /// an expected `baseline` (same units). On-time or faster scores 1;
    /// slower decays toward 0.
    pub fn record_success(&mut self, node: usize, actual: f64, baseline: f64) {
        let score = if actual <= 0.0 || baseline <= 0.0 {
            1.0
        } else {
            (baseline / actual).clamp(0.0, 1.0)
        };
        self.observe(node, score);
    }

    /// Record a failed transfer from `node` (scores 0).
    pub fn record_failure(&mut self, node: usize) {
        self.observe(node, 0.0);
    }

    /// Quarantine `node` immediately on *evidence* (a rejected repair
    /// proof), regardless of its EWMA score. The score is zeroed so the
    /// node must rebuild trust from scratch after its probe window; the
    /// probing re-admission path ([`HealthTracker::tick_generation`])
    /// is the same one timeout-quarantined nodes take.
    pub fn accuse(&mut self, node: usize) {
        self.ensure(node);
        self.scores[node] = 0.0;
        if self.quarantined_at[node].is_none() {
            self.quarantined_at[node] = Some(self.generation);
        }
    }

    /// Advance the supervision generation counter. Quarantined nodes
    /// that have sat out `probe_after` generations are re-admitted on
    /// probation (score reset to the threshold).
    pub fn tick_generation(&mut self) {
        self.generation += 1;
        for node in 0..self.scores.len() {
            if let Some(at) = self.quarantined_at[node] {
                if self.generation - at >= self.probe_after {
                    self.quarantined_at[node] = None;
                    self.scores[node] = self.threshold;
                }
            }
        }
    }

    /// Current EWMA score of `node` (1.0 for never-observed nodes).
    pub fn score(&self, node: usize) -> f64 {
        self.scores.get(node).copied().unwrap_or(1.0)
    }

    /// True while `node` is quarantined (helper re-selection avoids it).
    pub fn is_quarantined(&self, node: usize) -> bool {
        self.quarantined_at
            .get(node)
            .copied()
            .flatten()
            .is_some()
    }

    /// Sorted list of currently quarantined nodes.
    pub fn quarantined(&self) -> Vec<usize> {
        (0..self.quarantined_at.len())
            .filter(|&n| self.quarantined_at[n].is_some())
            .collect()
    }

    /// Slowdown estimates (actual/expected duration ratio, ≥ 1) for
    /// every node with at least one observation that is not currently
    /// quarantined. The EWMA score is `expected/actual` clamped to
    /// `[0, 1]`, so the estimate is its reciprocal, clamped to keep a
    /// near-dead-but-unquarantined node from blowing the quantile out.
    /// This is the `observed` input
    /// [`RetryPolicy::straggler_multiple`] expects.
    pub fn observed_slowdowns(&self) -> Vec<f64> {
        (0..self.scores.len())
            .filter(|&n| self.observed[n] && self.quarantined_at[n].is_none())
            .map(|n| (1.0 / self.scores[n].max(0.01)).max(1.0))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_matches_reference() {
        // Reference values for seed 1234567 from the public-domain
        // splitmix64.c by Sebastiano Vigna.
        let mut rng = SplitMix64::new(1234567);
        assert_eq!(rng.next_u64(), 6457827717110365317);
        assert_eq!(rng.next_u64(), 3203168211198807973);
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn next_f64_is_in_unit_interval() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..1000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn pick_stays_in_range() {
        let mut rng = SplitMix64::new(9);
        for n in 1..=17 {
            for _ in 0..50 {
                assert!(rng.pick(n) < n);
            }
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn pick_rejects_empty_range() {
        SplitMix64::new(0).pick(0);
    }

    #[test]
    fn checksum_detects_single_byte_flips() {
        let data = vec![0xABu8; 4096];
        let base = checksum64(&data);
        for i in [0usize, 1, 100, 4095] {
            let mut copy = data.clone();
            copy[i] ^= 0x01;
            assert_ne!(checksum64(&copy), base, "flip at {i} undetected");
        }
        assert_eq!(checksum64(&data), base);
    }

    #[test]
    fn retry_policy_backoff_grows_geometrically() {
        let p = RetryPolicy {
            max_attempts: 4,
            backoff: 0.1,
            multiplier: 2.0,
            ..RetryPolicy::default()
        };
        assert!((p.delay(0) - 0.1).abs() < 1e-12);
        assert!((p.delay(1) - 0.2).abs() < 1e-12);
        assert!((p.delay(3) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn retry_policy_cap_clamps_deep_attempts() {
        let p = RetryPolicy {
            backoff: 0.1,
            multiplier: 2.0,
            ..RetryPolicy::default()
        }
        .with_cap(0.25);
        assert!((p.delay(0) - 0.1).abs() < 1e-12);
        assert!((p.delay(1) - 0.2).abs() < 1e-12);
        // 0.4 and 0.8 clamp to the cap.
        assert!((p.delay(2) - 0.25).abs() < 1e-12);
        assert!((p.delay(3) - 0.25).abs() < 1e-12);
        assert!((p.delay(30) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn retry_policy_jitter_is_seeded_bounded_and_deterministic() {
        let base = RetryPolicy {
            backoff: 0.1,
            multiplier: 2.0,
            ..RetryPolicy::default()
        };
        let a = base.with_jitter(0.5, 99);
        let b = base.with_jitter(0.5, 99);
        let c = base.with_jitter(0.5, 100);
        let mut some_differ = false;
        for attempt in 0..6 {
            let clean = base.delay(attempt);
            let d = a.delay(attempt);
            // Same (seed, attempt) => identical jittered delay.
            assert_eq!(d.to_bits(), b.delay(attempt).to_bits());
            // Jitter only ever adds, within the configured fraction.
            assert!(d >= clean && d <= clean * 1.5 + 1e-12, "attempt {attempt}");
            if (d - c.delay(attempt)).abs() > 1e-15 {
                some_differ = true;
            }
        }
        assert!(some_differ, "different seeds should jitter differently");
        // Zero jitter stays bit-identical to the plain geometric series.
        assert_eq!(
            base.delay(3).to_bits(),
            base.with_jitter(0.0, 7).delay(3).to_bits()
        );
    }

    #[test]
    fn chaos_process_is_deterministic_and_bounded() {
        let p = ChaosProcess::new(17);
        let a = p.storm();
        let b = p.storm();
        assert_eq!(a, b, "same process must sample the same storm");
        let crashes = a
            .generations
            .iter()
            .flatten()
            .filter(|f| matches!(f, StormFault::Crash(_)))
            .count();
        assert!(crashes <= p.max_crashes);
        // Every generation except possibly the last ends with a crash.
        for (i, g) in a.generations.iter().enumerate() {
            if i + 1 < a.generations.len() {
                assert!(matches!(g.last(), Some(StormFault::Crash(_))));
            }
        }
        // Different seeds explore different storms (with rate 3 the
        // chance of 64 identical storms is negligible).
        let distinct = (0..64)
            .map(|s| ChaosProcess::new(s).storm())
            .collect::<Vec<_>>();
        assert!(distinct.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn churn_process_is_deterministic_and_strictly_increasing() {
        let mut a = ChurnProcess::new(99, 2.5);
        let mut b = ChurnProcess::new(99, 2.5);
        let mut last = 0.0f64;
        let mut kinds = [false; 3];
        for _ in 0..500 {
            let ea = a.next_event().expect("rate > 0 streams forever");
            let eb = b.next_event().expect("rate > 0 streams forever");
            assert_eq!(ea, eb, "same seed must sample the same stream");
            assert!(ea.t > last, "arrival times must strictly increase");
            last = ea.t;
            match ea.kind {
                ChurnKind::Node => kinds[0] = true,
                ChurnKind::Rack { victims } | ChurnKind::Batch { victims } => {
                    assert!((2..=a.max_batch).contains(&victims));
                    kinds[if matches!(ea.kind, ChurnKind::Rack { .. }) {
                        1
                    } else {
                        2
                    }] = true;
                }
            }
            assert!(ea.kind.victims() >= 1);
        }
        assert!(kinds.iter().all(|&k| k), "all three kinds should appear");
        assert!((a.now() - last).abs() < 1e-12);
        assert_eq!(a.seed(), 99);
    }

    #[test]
    fn churn_process_disabled_when_rate_nonpositive() {
        assert_eq!(ChurnProcess::new(1, 0.0).next_event(), None);
        assert_eq!(ChurnProcess::new(1, -3.0).next_event(), None);
        assert_eq!(ChurnProcess::new(1, f64::NAN).next_event(), None);
    }

    #[test]
    fn churn_kind_names_and_victims() {
        assert_eq!(ChurnKind::Node.name(), "node");
        assert_eq!(ChurnKind::Node.victims(), 1);
        assert_eq!(ChurnKind::Rack { victims: 3 }.name(), "rack");
        assert_eq!(ChurnKind::Rack { victims: 3 }.victims(), 3);
        assert_eq!(ChurnKind::Batch { victims: 2 }.name(), "batch");
        assert_eq!(ChurnKind::Batch { victims: 2 }.victims(), 2);
    }

    #[test]
    fn adaptive_deadline_floors_at_fixed_and_tracks_slow_fleets() {
        let p = RetryPolicy::default(); // q = 0.9, headroom = 2.0
        // No observations: the fixed constant is used unchanged.
        assert!((p.straggler_multiple(4.0, &[]) - 4.0).abs() < 1e-12);
        // Healthy fleet (slowdowns ≈ 1): 2.0 × 1.0 < 4.0 → floor wins,
        // so clean runs keep the exact fixed-constant behavior.
        let healthy = vec![1.0; 20];
        assert!((p.straggler_multiple(4.0, &healthy) - 4.0).abs() < 1e-12);
        // Broadly slow fleet: the p90 slowdown is 3.0 → 2 × 3 = 6 > 4,
        // so a typical helper is no longer flagged as a straggler.
        let slow = vec![3.0; 20];
        assert!((p.straggler_multiple(4.0, &slow) - 6.0).abs() < 1e-12);
        // One outlier among healthy peers does not move the p90.
        let mut one_bad = vec![1.0; 19];
        one_bad.push(50.0);
        assert!((p.straggler_multiple(4.0, &one_bad) - 4.0).abs() < 1e-12);
        // The deadline scales the baseline by the multiple.
        assert!((p.transfer_deadline(2.0, 4.0, &slow) - 12.0).abs() < 1e-12);
    }

    #[test]
    fn health_tracker_exposes_observed_slowdowns() {
        let mut h = HealthTracker::with_defaults();
        assert!(h.observed_slowdowns().is_empty(), "no history yet");
        h.record_success(0, 1.0, 1.0); // on time → slowdown 1
        h.record_success(3, 2.0, 1.0); // 2× late → EWMA 0.75 → 4/3
        let slowdowns = h.observed_slowdowns();
        assert_eq!(slowdowns.len(), 2);
        assert!((slowdowns[0] - 1.0).abs() < 1e-12);
        assert!((slowdowns[1] - 1.0 / 0.75).abs() < 1e-12);
        // Quarantined nodes drop out of the estimate entirely.
        h.record_failure(3);
        h.record_failure(3);
        assert!(h.is_quarantined(3));
        assert_eq!(h.observed_slowdowns().len(), 1);
    }

    #[test]
    fn fault_storm_builder_counts_faults() {
        let storm = FaultStorm::new(3)
            .with_generation(vec![StormFault::Timeout, StormFault::Crash(CrashSite::SeedPick)])
            .with_generation(vec![StormFault::Crash(CrashSite::NewHelper)]);
        assert_eq!(storm.fault_count(), 3);
        assert!(!storm.is_empty());
        assert!(FaultStorm::new(0).is_empty());
        assert_eq!(StormFault::Crash(CrashSite::NewHelper).name(), "replacement-crash");
        assert_eq!(StormFault::Timeout.name(), "timeout");
        assert_eq!(StormFault::Lie.name(), "lie");
    }

    #[test]
    fn accusation_quarantines_immediately_and_probes_like_any_other() {
        let mut h = HealthTracker::new(0.5, 0.4, 2);
        // A single accusation quarantines a perfectly healthy node.
        h.record_success(4, 1.0, 1.0);
        assert!(!h.is_quarantined(4));
        h.accuse(4);
        assert!(h.is_quarantined(4));
        assert!((h.score(4) - 0.0).abs() < 1e-12, "trust is zeroed");
        // Re-admission rides the standard probe window...
        h.tick_generation();
        assert!(h.is_quarantined(4));
        h.tick_generation();
        assert!(!h.is_quarantined(4));
        assert!((h.score(4) - 0.4).abs() < 1e-12, "probation score");
        // ...and a repeat offense re-quarantines on the spot.
        h.accuse(4);
        assert!(h.is_quarantined(4));
    }

    #[test]
    fn health_tracker_quarantines_and_probes() {
        let mut h = HealthTracker::new(0.5, 0.4, 2);
        assert!(!h.is_quarantined(3));
        assert!((h.score(3) - 1.0).abs() < 1e-12);
        // Two straight failures: 1.0 -> 0.5 -> 0.25 < 0.4 => quarantined.
        h.record_failure(3);
        assert!(!h.is_quarantined(3));
        h.record_failure(3);
        assert!(h.is_quarantined(3));
        assert_eq!(h.quarantined(), vec![3]);
        // One generation is not enough to probe...
        h.tick_generation();
        assert!(h.is_quarantined(3));
        // ...two are: re-admitted on probation at exactly the threshold.
        h.tick_generation();
        assert!(!h.is_quarantined(3));
        assert!((h.score(3) - 0.4).abs() < 1e-12);
        // On probation, a single failure re-quarantines immediately.
        h.record_failure(3);
        assert!(h.is_quarantined(3));
    }

    #[test]
    fn health_tracker_scores_latency_ratio() {
        let mut h = HealthTracker::with_defaults();
        // On-time transfers keep the node at full health.
        h.record_success(1, 1.0, 1.0);
        assert!((h.score(1) - 1.0).abs() < 1e-12);
        // A 4x straggler pulls the EWMA down but one sample does not
        // quarantine.
        h.record_success(1, 4.0, 1.0);
        assert!(h.score(1) < 1.0 && !h.is_quarantined(1));
    }

    #[test]
    fn fault_plan_builder_appends_in_order() {
        let fp = FaultPlan::new(3)
            .with(FaultKind::TransferTimeout { op: 2 })
            .with(FaultKind::SlowLink {
                node: 1,
                factor: 0.5,
            });
        assert_eq!(fp.seed, 3);
        assert_eq!(fp.faults.len(), 2);
        assert!(!fp.is_empty());
        assert!(FaultPlan::new(0).is_empty());
    }
}
