//! Thin binary wrapper; all logic lives in the `rpr_cli` library.

use rpr_cli::{args, commands};

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match args::parse(&argv) {
        Ok(cmd) => {
            if let Err(e) = commands::run(cmd) {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("error: {e}\n");
            eprintln!("{}", args::USAGE);
            std::process::exit(2);
        }
    }
}
