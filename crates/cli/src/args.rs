//! Hand-rolled argument parsing (the repository avoids CLI framework
//! dependencies).

use rpr_codec::{BlockId, CodeParams};
use rpr_topology::PlacementPolicy;

/// Usage text.
pub const USAGE: &str = "\
usage:
  rpr plan    --code N,K --fail BLOCKS [options] [--gantt] [--dot]
  rpr compare --code N,K --fail BLOCKS [options]
  rpr trace   --code N,K --fail BLOCKS [options] [--format F] [--out FILE]
  rpr inject  --code N,K --fail BLOCKS [options] [--fault F] [--seed S]
              [--backend B] [--format F] [--out FILE] [--json]
  rpr chaos   --code N,K --fail BLOCKS [options] [--storm LIST] [--seed S]
              [--backend B] [--hedge M] [--deadline S] [--proof MODE]
              [--ledger-out FILE] [--out FILE] [--json]
  rpr audit   --trace FILE --ledger FILE [--json]
  rpr fleet   [--code N,K] [--stripes N] [--racks R] [--nodes-per-rack N]
              [--block-mib M] [--ratio R] [--seed S] [--storm LIST]
              [--agg-gbit G] [--no-arbiter] [--threads T] [--churn-rate R]
              [--no-escalate] [--journal FILE] [--resume FILE] [--json]
              [--format F] [--out FILE]
  rpr load    [--mode M] [--code N,K] [--seed S] [--requests N] [--rate R]
              [--read-fraction F] [--zipf T] [--objects N] [--request-mib M]
              [--block-mib M] [--chunk-size M] [--ratio R] [--stripes N]
              [--stagger S] [--share F] [--floor F] [--json]
              [--format F] [--out FILE]
  rpr topo    --code N,K [--placement P]
  rpr analyze [--ti-ms X] [--tc-ms Y]
  rpr kernels [--json]

BLOCKS   comma-separated block names or indices: d1, p0, 3, d0,d2
options:
  --scheme S        rpr | car | chain | traditional | traditional-local (default rpr)
  --placement P     compact | preplaced | flat                   (default preplaced)
  --block-mib M     block size in MiB                            (default 256)
  --chunk-size M    streaming chunk in MiB; payloads cut through
                    hop-to-hop in M-MiB chunks                   (default off:
                                                                  store-and-forward)
  --ratio R         inner:cross bandwidth ratio                  (default 10)
  --cost C          simics | ec2 | free | measured               (default simics)
                    measured calibrates against this machine's real
                    GF kernels (see docs/PERFORMANCE.md)
trace options (see docs/TRACING.md):
  --format F        chrome | jsonl                               (default chrome;
                                                                  inject: jsonl)
  --out FILE        write the trace to FILE instead of stdout
inject options (see docs/ROBUSTNESS.md):
  --fault F         crash | timeout | corrupt | slow | rack      (default crash)
  --seed S          deterministic fault seed                     (default 17)
  --backend B       sim | exec                                   (default sim)
                    exec moves real bytes: pass a small --block-mib
  --json            machine-readable summary on stdout (the trace
                    is then only written when --out is given)
chaos options (supervised fault storms, see docs/ROBUSTNESS.md):
  --storm LIST      one fault per generation, comma-separated:
                    crash | replacement-crash | timeout | corrupt |
                    slow | rack | lie    (default crash,replacement-crash,timeout)
  --hedge M         hedge a straggler at M x the peer median      (default off)
  --deadline S      repair deadline in (virtual or wall) seconds  (default off)
  --proof MODE      off | advisory | mandatory: repair-proof plane (default off)
                    mandatory convicts Byzantine helpers on evidence
  --ledger-out FILE write the proof ledger (JSON lines) to FILE
audit options (offline proof verification, see docs/ROBUSTNESS.md):
  --trace FILE      the JSONL trace a chaos run recorded with --out
  --ledger FILE     the proof ledger the same run wrote with --ledger-out
                    exits non-zero when the evidence does not verify
fleet options (at-risk backlog drain, see docs/FLEET.md):
  --stripes N       at-risk stripes in the backlog                (default 10000)
  --racks R         physical racks in the cluster                 (default 25)
  --nodes-per-rack N  nodes per rack, 2..=64                      (default 16)
  --storm LIST      per-stripe fault storm, same names as chaos   (default none:
                                                                   clean repairs)
  --agg-gbit G      finite aggregation-switch capacity in Gbit/s  (default off)
  --no-arbiter      disable bandwidth arbitration (stripes never wait)
  --threads T       worker threads for repair costing             (default auto)
  --churn-rate R    live failure arrivals per virtual second,
                    co-simulated with the drain                   (default 0:
                                                                   static backlog)
  --no-escalate     serve churn-hit stripes at their original level
                    instead of escalating their priority
  --journal FILE    write a crash-restartable JSONL journal of the
                    drain (enqueue/admit/complete/lost/checkpoint)
  --resume FILE     replay a journal from an interrupted run: skips
                    completed stripes and re-simulated repair costs
  --json            machine-readable summary on stdout
  --out FILE        write the stripe_enqueued/admitted/bandwidth_waited
                    event stream to FILE (--format chrome | jsonl)
load options (foreground traffic under repair, see docs/FOREGROUND.md):
  --mode M          off | unthrottled | qos: repair tenancy       (default qos)
  --requests N      foreground requests to issue                  (default 240)
  --rate R          open-loop Poisson arrival rate, req/s         (default 40)
  --read-fraction F fraction of requests that are reads           (default 0.9)
  --zipf T          zipfian popularity skew; 0 = uniform          (default 0.9)
  --objects N       distinct objects (object 0 is the lost block) (default 64)
  --request-mib M   bytes moved per request, in MiB               (default 4)
  --stripes N       stripes under repair during the run           (default 4)
  --stagger S       seconds between stripe repair starts          (default 0.25)
  --share F         qos: link fraction reserved for foreground    (default 0.85)
  --floor F         qos: guaranteed repair fraction floor         (default 0.1)
  --json            machine-readable summary on stdout
  --out FILE        write the request/QoS/transfer event stream
                    to FILE (--format chrome | jsonl)
kernels (SIMD dispatch report, see docs/PERFORMANCE.md):
  --json            machine-readable tier + throughput report";

/// A parsed command.
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    /// Plan one scheme and report (optionally with Gantt/DOT output).
    Plan(PlanArgs),
    /// Compare all schemes on one scenario.
    Compare(PlanArgs),
    /// Simulate one scheme and dump its structured repair trace.
    Trace(TraceArgs),
    /// Run one scheme under a seed-picked injected fault and dump the
    /// degraded repair trace.
    Inject(InjectArgs),
    /// Drive a repair through the supervisor under a multi-generation
    /// fault storm (crash of a replacement helper included).
    Chaos(ChaosArgs),
    /// Drain a fleet-scale backlog of at-risk stripes through the
    /// prioritized, bandwidth-arbitrated repair scheduler.
    Fleet(FleetArgs),
    /// Co-simulate an open-loop foreground workload against a stream of
    /// repairs and report per-request latency quantiles.
    Load(LoadArgs),
    /// Verify a recorded repair offline: replay the proof ledger against
    /// the captured trace and pinpoint the first dishonest hop.
    Audit(AuditArgs),
    /// Print the cluster/placement layout.
    Topo {
        /// Code geometry.
        params: CodeParams,
        /// Placement policy.
        placement: PlacementPolicy,
    },
    /// Print the §4 closed-form analysis table.
    Analyze {
        /// Inner-rack transfer time (ms).
        ti_ms: f64,
        /// Cross-rack transfer time (ms).
        tc_ms: f64,
    },
    /// Report the GF(2^8) kernel tiers this host dispatches to, with
    /// measured throughput.
    Kernels {
        /// Machine-readable JSON instead of the human table.
        json: bool,
    },
}

/// Options shared by `plan` and `compare`.
#[derive(Clone, Debug, PartialEq)]
pub struct PlanArgs {
    /// Code geometry.
    pub params: CodeParams,
    /// Failed blocks.
    pub failed: Vec<BlockId>,
    /// Scheme name (plan only).
    pub scheme: String,
    /// Placement policy.
    pub placement: PlacementPolicy,
    /// Block size in bytes.
    pub block_bytes: u64,
    /// Streaming chunk size in bytes; `None` keeps store-and-forward.
    pub chunk_bytes: Option<u64>,
    /// inner:cross bandwidth ratio.
    pub ratio: f64,
    /// Cost model name.
    pub cost: String,
    /// Emit an ASCII Gantt chart.
    pub gantt: bool,
    /// Emit Graphviz DOT.
    pub dot: bool,
}

/// Output format of `rpr trace`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceFormat {
    /// Chrome `trace_event` JSON — load in `chrome://tracing` or Perfetto.
    Chrome,
    /// One JSON object per line (machine-friendly event log).
    Jsonl,
}

/// Options for the `trace` command.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceArgs {
    /// The scenario to trace (same knobs as `plan`).
    pub plan: PlanArgs,
    /// Output format.
    pub format: TraceFormat,
    /// Output path; stdout when absent.
    pub out: Option<String>,
}

/// Fault family injected by `rpr inject`; the concrete site (node, op,
/// rack, timestep) is picked deterministically from the seed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultChoice {
    /// A helper node dies mid-pipeline; recovery replans around it.
    Crash,
    /// One transfer stalls partway and times out once.
    Timeout,
    /// One intermediate block arrives corrupted (checksum rejects it).
    Corrupt,
    /// One helper's links run degraded for the whole repair.
    Slow,
    /// A rack switch drops every cross transfer of one timestep once.
    Rack,
}

/// Which substrate runs the injected repair.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InjectBackend {
    /// Virtual-clock flow simulator (bit-deterministic traces).
    Sim,
    /// Real-byte executor (wall-clock timing, byte-exact verification).
    Exec,
}

/// Options for the `inject` command.
#[derive(Clone, Debug, PartialEq)]
pub struct InjectArgs {
    /// The scenario to degrade (same knobs as `plan`).
    pub plan: PlanArgs,
    /// Fault family to inject.
    pub fault: FaultChoice,
    /// Backend that runs the repair.
    pub backend: InjectBackend,
    /// Seed driving both the site pick and the fault parameters.
    pub seed: u64,
    /// Output format of the trace.
    pub format: TraceFormat,
    /// Output path; stdout when absent.
    pub out: Option<String>,
    /// Print a machine-readable summary object on stdout; the trace is
    /// then only written when `out` is set.
    pub json: bool,
}

/// One storm generation of `rpr chaos`; the concrete site is picked
/// deterministically from the seed each generation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChaosFault {
    /// A seed-picked cross-sending helper crashes.
    Crash,
    /// A helper that joined in the previous replan crashes.
    ReplacementCrash,
    /// One transfer times out once.
    Timeout,
    /// One intermediate arrives corrupted.
    Corrupt,
    /// One helper's links run at 25% for the rest of the repair.
    Slow,
    /// A rack switch drops one timestep's cross transfers once.
    Rack,
    /// A Byzantine helper sends wrong bytes under a valid transport
    /// checksum; only the proof plane can convict it.
    Lie,
}

impl ChaosFault {
    pub(crate) fn from_name(s: &str) -> Result<ChaosFault, String> {
        Ok(match s {
            "crash" => ChaosFault::Crash,
            "replacement-crash" => ChaosFault::ReplacementCrash,
            "timeout" => ChaosFault::Timeout,
            "corrupt" => ChaosFault::Corrupt,
            "slow" => ChaosFault::Slow,
            "rack" => ChaosFault::Rack,
            "lie" => ChaosFault::Lie,
            other => return Err(format!("unknown storm fault `{other}`")),
        })
    }
}

/// Options for the `chaos` command.
#[derive(Clone, Debug, PartialEq)]
pub struct ChaosArgs {
    /// The scenario to batter (same knobs as `plan`).
    pub plan: PlanArgs,
    /// Backend that runs the supervised repair.
    pub backend: InjectBackend,
    /// One fault per storm generation, in order.
    pub storm: Vec<ChaosFault>,
    /// Seed driving every site pick across the storm.
    pub seed: u64,
    /// Hedge multiple (straggler detection threshold); off when absent.
    pub hedge: Option<f64>,
    /// Repair deadline in seconds; off when absent.
    pub deadline: Option<f64>,
    /// Proof-plane mode name: `off`, `advisory`, or `mandatory`.
    pub proof: String,
    /// Proof-ledger output path; the ledger is dropped when absent.
    pub ledger_out: Option<String>,
    /// Output format of the trace.
    pub format: TraceFormat,
    /// Trace output path; stdout when absent.
    pub out: Option<String>,
    /// Print a machine-readable summary object on stdout; the trace is
    /// then only written when `out` is set.
    pub json: bool,
}

/// Options for the `audit` command.
#[derive(Clone, Debug, PartialEq)]
pub struct AuditArgs {
    /// Path of the JSONL trace the audited run recorded.
    pub trace: String,
    /// Path of the proof ledger the same run wrote.
    pub ledger: String,
    /// Print a machine-readable verdict object on stdout.
    pub json: bool,
}

/// Options for the `fleet` command.
#[derive(Clone, Debug, PartialEq)]
pub struct FleetArgs {
    /// Code geometry of every stripe.
    pub params: CodeParams,
    /// At-risk stripes in the backlog.
    pub stripes: usize,
    /// Physical racks in the cluster.
    pub racks: usize,
    /// Nodes per rack.
    pub nodes_per_rack: usize,
    /// Block size in bytes.
    pub block_bytes: u64,
    /// inner:cross bandwidth ratio.
    pub ratio: f64,
    /// Master seed (placement, at-risk levels, fault sites).
    pub seed: u64,
    /// Per-stripe fault storm, one fault per generation; empty = clean.
    pub storm: Vec<ChaosFault>,
    /// Finite aggregation-switch capacity in Gbit/s; off when absent.
    pub agg_gbit: Option<f64>,
    /// False disables bandwidth arbitration (`--no-arbiter`).
    pub arbitrate: bool,
    /// Worker threads for repair costing (0 = automatic).
    pub threads: usize,
    /// Live failure arrivals per virtual second; 0 = static backlog.
    pub churn_rate: f64,
    /// False serves churn-hit stripes at their original level
    /// (`--no-escalate`).
    pub escalate: bool,
    /// Write-ahead journal path; no journal is written when absent.
    pub journal: Option<String>,
    /// Journal of an interrupted run to resume from.
    pub resume: Option<String>,
    /// Print a machine-readable summary object on stdout.
    pub json: bool,
    /// Output format of the scheduler event stream.
    pub format: TraceFormat,
    /// Event-stream output path; no events are recorded when absent.
    pub out: Option<String>,
}

/// Repair tenancy of `rpr load` (mirrors `rpr_load::RepairMode`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LoadModeChoice {
    /// No repair traffic: the pre-failure latency baseline.
    Off,
    /// Repair competes with client traffic at full link rate.
    Unthrottled,
    /// Foreground-priority QoS (`--share` / `--floor`).
    Qos,
}

/// Options for the `load` command.
#[derive(Clone, Debug, PartialEq)]
pub struct LoadArgs {
    /// Code geometry.
    pub params: CodeParams,
    /// Repair tenancy mode.
    pub mode: LoadModeChoice,
    /// Workload seed.
    pub seed: u64,
    /// Foreground requests to issue.
    pub requests: usize,
    /// Open-loop arrival rate, requests/second.
    pub rate: f64,
    /// Fraction of requests that are reads.
    pub read_fraction: f64,
    /// Zipfian popularity skew.
    pub zipf: f64,
    /// Distinct objects.
    pub objects: usize,
    /// Bytes per request.
    pub request_bytes: u64,
    /// Stripe block size in bytes.
    pub block_bytes: u64,
    /// Streaming chunk size in bytes.
    pub chunk_bytes: Option<u64>,
    /// inner:cross bandwidth ratio.
    pub ratio: f64,
    /// Stripes under repair during the run.
    pub stripes: usize,
    /// Seconds between stripe repair starts.
    pub stagger: f64,
    /// QoS: link fraction reserved for foreground traffic.
    pub share: f64,
    /// QoS: guaranteed repair fraction floor.
    pub floor: f64,
    /// Print a machine-readable summary object on stdout.
    pub json: bool,
    /// Output format of the event stream.
    pub format: TraceFormat,
    /// Event-stream output path; no events are recorded when absent.
    pub out: Option<String>,
}

/// Parse a code spec like `6,2` or `12,4`.
pub fn parse_code(s: &str) -> Result<CodeParams, String> {
    let (n, k) = s
        .split_once(',')
        .ok_or_else(|| format!("bad --code `{s}`, expected N,K"))?;
    let n: usize = n.trim().parse().map_err(|_| format!("bad n in `{s}`"))?;
    let k: usize = k.trim().parse().map_err(|_| format!("bad k in `{s}`"))?;
    if n < 1 || k < 1 || n + k > 256 {
        return Err(format!("code ({n},{k}) out of range"));
    }
    if k > n {
        return Err(format!("code ({n},{k}): k > n is not supported"));
    }
    Ok(CodeParams::new(n, k))
}

/// Parse a failed-block list like `d1`, `p0,d3`, or `0,7`.
pub fn parse_failed(s: &str, params: CodeParams) -> Result<Vec<BlockId>, String> {
    let mut out = Vec::new();
    for part in s.split(',') {
        let part = part.trim();
        let id = if let Some(rest) = part.strip_prefix('d') {
            let i: usize = rest.parse().map_err(|_| format!("bad block `{part}`"))?;
            if i >= params.n {
                return Err(format!("data block `{part}` out of range (n={})", params.n));
            }
            i
        } else if let Some(rest) = part.strip_prefix('p') {
            let i: usize = rest.parse().map_err(|_| format!("bad block `{part}`"))?;
            if i >= params.k {
                return Err(format!(
                    "parity block `{part}` out of range (k={})",
                    params.k
                ));
            }
            params.n + i
        } else {
            let i: usize = part.parse().map_err(|_| format!("bad block `{part}`"))?;
            if i >= params.total() {
                return Err(format!("block index `{part}` out of range"));
            }
            i
        };
        out.push(BlockId(id));
    }
    if out.is_empty() {
        return Err("no failed blocks given".into());
    }
    if out.len() > params.k {
        return Err(format!(
            "{} failures exceed k = {} (unrecoverable)",
            out.len(),
            params.k
        ));
    }
    Ok(out)
}

pub(crate) fn parse_placement(s: &str) -> Result<PlacementPolicy, String> {
    match s {
        "compact" => Ok(PlacementPolicy::Compact),
        "preplaced" => Ok(PlacementPolicy::RprPreplaced),
        "flat" => Ok(PlacementPolicy::Flat),
        other => Err(format!("unknown placement `{other}`")),
    }
}

/// A tiny flag-walker: `--key value` pairs plus boolean flags.
struct Flags<'a> {
    rest: &'a [String],
}

impl<'a> Flags<'a> {
    fn get(&self, key: &str) -> Option<&'a str> {
        self.rest
            .iter()
            .position(|a| a == key)
            .and_then(|i| self.rest.get(i + 1))
            .map(|s| s.as_str())
    }

    fn has(&self, key: &str) -> bool {
        self.rest.iter().any(|a| a == key)
    }
}

/// Parse argv into a [`Command`].
pub fn parse(argv: &[String]) -> Result<Command, String> {
    let Some(verb) = argv.first() else {
        return Err("missing command".into());
    };
    let flags = Flags { rest: &argv[1..] };

    match verb.as_str() {
        "analyze" => Ok(Command::Analyze {
            ti_ms: flags
                .get("--ti-ms")
                .map(|v| v.parse().map_err(|_| "bad --ti-ms"))
                .transpose()?
                .unwrap_or(1.0),
            tc_ms: flags
                .get("--tc-ms")
                .map(|v| v.parse().map_err(|_| "bad --tc-ms"))
                .transpose()?
                .unwrap_or(10.0),
        }),
        "kernels" => Ok(Command::Kernels {
            json: flags.has("--json"),
        }),
        "audit" => Ok(Command::Audit(AuditArgs {
            trace: flags.get("--trace").ok_or("missing --trace")?.to_string(),
            ledger: flags.get("--ledger").ok_or("missing --ledger")?.to_string(),
            json: flags.has("--json"),
        })),
        "topo" => {
            let params = parse_code(flags.get("--code").ok_or("missing --code")?)?;
            let placement = parse_placement(flags.get("--placement").unwrap_or("preplaced"))?;
            Ok(Command::Topo { params, placement })
        }
        "fleet" => {
            let params = parse_code(flags.get("--code").unwrap_or("6,3"))?;
            let stripes: usize = flags
                .get("--stripes")
                .map(|v| v.parse().map_err(|_| "bad --stripes"))
                .transpose()?
                .unwrap_or(10_000);
            if stripes == 0 {
                return Err("--stripes must be positive".into());
            }
            let racks: usize = flags
                .get("--racks")
                .map(|v| v.parse().map_err(|_| "bad --racks"))
                .transpose()?
                .unwrap_or(25);
            if racks < params.rack_count() {
                return Err(format!(
                    "--racks {racks} too small: RS({},{}) stripes span {} racks",
                    params.n,
                    params.k,
                    params.rack_count()
                ));
            }
            let nodes_per_rack: usize = flags
                .get("--nodes-per-rack")
                .map(|v| v.parse().map_err(|_| "bad --nodes-per-rack"))
                .transpose()?
                .unwrap_or(16);
            if nodes_per_rack <= params.k || nodes_per_rack > 64 {
                return Err(format!(
                    "--nodes-per-rack must be in {}..=64 (each rack hosts up to k = {} \
                     blocks plus a spare)",
                    params.k + 1,
                    params.k
                ));
            }
            let block_mib: u64 = flags
                .get("--block-mib")
                .map(|v| v.parse().map_err(|_| "bad --block-mib"))
                .transpose()?
                .unwrap_or(256);
            if block_mib == 0 {
                return Err("--block-mib must be positive".into());
            }
            let ratio: f64 = flags
                .get("--ratio")
                .map(|v| v.parse().map_err(|_| "bad --ratio"))
                .transpose()?
                .unwrap_or(10.0);
            if !(ratio >= 1.0 && ratio.is_finite()) {
                return Err("--ratio must be >= 1".into());
            }
            let storm = match flags.get("--storm") {
                None => Vec::new(),
                Some(list) => list
                    .split(',')
                    .map(|s| ChaosFault::from_name(s.trim()))
                    .collect::<Result<Vec<_>, _>>()?,
            };
            let agg_gbit: Option<f64> = flags
                .get("--agg-gbit")
                .map(|v| v.parse().map_err(|_| "bad --agg-gbit"))
                .transpose()?;
            if agg_gbit.is_some_and(|g| !(g > 0.0 && g.is_finite())) {
                return Err("--agg-gbit must be positive".into());
            }
            let threads: usize = flags
                .get("--threads")
                .map(|v| v.parse().map_err(|_| "bad --threads"))
                .transpose()?
                .unwrap_or(0);
            let churn_rate: f64 = flags
                .get("--churn-rate")
                .map(|v| v.parse().map_err(|_| "bad --churn-rate"))
                .transpose()?
                .unwrap_or(0.0);
            if !(churn_rate >= 0.0 && churn_rate.is_finite()) {
                return Err("--churn-rate must be finite and >= 0".into());
            }
            let format = match flags.get("--format") {
                None | Some("jsonl") => TraceFormat::Jsonl,
                Some("chrome") => TraceFormat::Chrome,
                Some(other) => return Err(format!("unknown trace format `{other}`")),
            };
            Ok(Command::Fleet(FleetArgs {
                params,
                stripes,
                racks,
                nodes_per_rack,
                block_bytes: block_mib << 20,
                ratio,
                seed: flags
                    .get("--seed")
                    .map(|v| v.parse().map_err(|_| "bad --seed"))
                    .transpose()?
                    .unwrap_or(17),
                storm,
                agg_gbit,
                arbitrate: !flags.has("--no-arbiter"),
                threads,
                churn_rate,
                escalate: !flags.has("--no-escalate"),
                journal: flags.get("--journal").map(String::from),
                resume: flags.get("--resume").map(String::from),
                json: flags.has("--json"),
                format,
                out: flags.get("--out").map(String::from),
            }))
        }
        "load" => {
            let params = parse_code(flags.get("--code").unwrap_or("6,3"))?;
            let mode = match flags.get("--mode").unwrap_or("qos") {
                "off" => LoadModeChoice::Off,
                "unthrottled" => LoadModeChoice::Unthrottled,
                "qos" => LoadModeChoice::Qos,
                other => return Err(format!("unknown load mode `{other}`")),
            };
            let requests: usize = flags
                .get("--requests")
                .map(|v| v.parse().map_err(|_| "bad --requests"))
                .transpose()?
                .unwrap_or(240);
            if requests == 0 {
                return Err("--requests must be positive".into());
            }
            let rate: f64 = flags
                .get("--rate")
                .map(|v| v.parse().map_err(|_| "bad --rate"))
                .transpose()?
                .unwrap_or(40.0);
            if !(rate > 0.0 && rate.is_finite()) {
                return Err("--rate must be positive".into());
            }
            let read_fraction: f64 = flags
                .get("--read-fraction")
                .map(|v| v.parse().map_err(|_| "bad --read-fraction"))
                .transpose()?
                .unwrap_or(0.9);
            if !(0.0..=1.0).contains(&read_fraction) {
                return Err("--read-fraction must be in [0, 1]".into());
            }
            let zipf: f64 = flags
                .get("--zipf")
                .map(|v| v.parse().map_err(|_| "bad --zipf"))
                .transpose()?
                .unwrap_or(0.9);
            if !(zipf >= 0.0 && zipf.is_finite()) {
                return Err("--zipf must be non-negative".into());
            }
            let objects: usize = flags
                .get("--objects")
                .map(|v| v.parse().map_err(|_| "bad --objects"))
                .transpose()?
                .unwrap_or(64);
            if objects == 0 {
                return Err("--objects must be positive".into());
            }
            let request_mib: u64 = flags
                .get("--request-mib")
                .map(|v| v.parse().map_err(|_| "bad --request-mib"))
                .transpose()?
                .unwrap_or(4);
            if request_mib == 0 {
                return Err("--request-mib must be positive".into());
            }
            let block_mib: u64 = flags
                .get("--block-mib")
                .map(|v| v.parse().map_err(|_| "bad --block-mib"))
                .transpose()?
                .unwrap_or(64);
            if block_mib == 0 {
                return Err("--block-mib must be positive".into());
            }
            let chunk_mib: u64 = flags
                .get("--chunk-size")
                .map(|v| v.parse().map_err(|_| "bad --chunk-size"))
                .transpose()?
                .unwrap_or(8);
            if chunk_mib == 0 {
                return Err("--chunk-size must be positive".into());
            }
            let ratio: f64 = flags
                .get("--ratio")
                .map(|v| v.parse().map_err(|_| "bad --ratio"))
                .transpose()?
                .unwrap_or(10.0);
            if !(ratio >= 1.0 && ratio.is_finite()) {
                return Err("--ratio must be >= 1".into());
            }
            let stripes: usize = flags
                .get("--stripes")
                .map(|v| v.parse().map_err(|_| "bad --stripes"))
                .transpose()?
                .unwrap_or(4);
            let stagger: f64 = flags
                .get("--stagger")
                .map(|v| v.parse().map_err(|_| "bad --stagger"))
                .transpose()?
                .unwrap_or(0.25);
            if !(stagger >= 0.0 && stagger.is_finite()) {
                return Err("--stagger must be non-negative".into());
            }
            let share: f64 = flags
                .get("--share")
                .map(|v| v.parse().map_err(|_| "bad --share"))
                .transpose()?
                .unwrap_or(0.85);
            if !(0.0..1.0).contains(&share) {
                return Err("--share must be in [0, 1)".into());
            }
            let floor: f64 = flags
                .get("--floor")
                .map(|v| v.parse().map_err(|_| "bad --floor"))
                .transpose()?
                .unwrap_or(0.1);
            if !(floor > 0.0 && floor <= 1.0) {
                return Err("--floor must be in (0, 1]".into());
            }
            let format = match flags.get("--format") {
                None | Some("jsonl") => TraceFormat::Jsonl,
                Some("chrome") => TraceFormat::Chrome,
                Some(other) => return Err(format!("unknown trace format `{other}`")),
            };
            Ok(Command::Load(LoadArgs {
                params,
                mode,
                seed: flags
                    .get("--seed")
                    .map(|v| v.parse().map_err(|_| "bad --seed"))
                    .transpose()?
                    .unwrap_or(17),
                requests,
                rate,
                read_fraction,
                zipf,
                objects,
                request_bytes: request_mib << 20,
                block_bytes: block_mib << 20,
                chunk_bytes: Some(chunk_mib << 20),
                ratio,
                stripes,
                stagger,
                share,
                floor,
                json: flags.has("--json"),
                format,
                out: flags.get("--out").map(String::from),
            }))
        }
        "plan" | "compare" | "trace" | "inject" | "chaos" => {
            let params = parse_code(flags.get("--code").ok_or("missing --code")?)?;
            let failed = parse_failed(flags.get("--fail").ok_or("missing --fail")?, params)?;
            let block_mib: u64 = flags
                .get("--block-mib")
                .map(|v| v.parse().map_err(|_| "bad --block-mib"))
                .transpose()?
                .unwrap_or(256);
            if block_mib == 0 {
                return Err("--block-mib must be positive".into());
            }
            let chunk_mib: Option<u64> = flags
                .get("--chunk-size")
                .map(|v| v.parse().map_err(|_| "bad --chunk-size"))
                .transpose()?;
            if chunk_mib == Some(0) {
                return Err("--chunk-size must be positive".into());
            }
            let ratio: f64 = flags
                .get("--ratio")
                .map(|v| v.parse().map_err(|_| "bad --ratio"))
                .transpose()?
                .unwrap_or(10.0);
            if !(ratio >= 1.0 && ratio.is_finite()) {
                return Err("--ratio must be >= 1".into());
            }
            let scheme = flags.get("--scheme").unwrap_or("rpr").to_string();
            if !matches!(
                scheme.as_str(),
                "rpr" | "car" | "chain" | "traditional" | "traditional-local"
            ) {
                return Err(format!("unknown scheme `{scheme}`"));
            }
            let cost = flags.get("--cost").unwrap_or("simics").to_string();
            if !matches!(cost.as_str(), "simics" | "ec2" | "free" | "measured") {
                return Err(format!("unknown cost model `{cost}`"));
            }
            let args = PlanArgs {
                params,
                failed,
                scheme,
                placement: parse_placement(flags.get("--placement").unwrap_or("preplaced"))?,
                block_bytes: block_mib << 20,
                chunk_bytes: chunk_mib.map(|m| m << 20),
                ratio,
                cost,
                gantt: flags.has("--gantt"),
                dot: flags.has("--dot"),
            };
            let format = |default: TraceFormat| match flags.get("--format") {
                None => Ok(default),
                Some("chrome") => Ok(TraceFormat::Chrome),
                Some("jsonl") => Ok(TraceFormat::Jsonl),
                Some(other) => Err(format!("unknown trace format `{other}`")),
            };
            let backend = match flags.get("--backend").unwrap_or("sim") {
                "sim" => InjectBackend::Sim,
                "exec" => InjectBackend::Exec,
                other => return Err(format!("unknown backend `{other}`")),
            };
            let seed = flags
                .get("--seed")
                .map(|v| v.parse().map_err(|_| "bad --seed"))
                .transpose()?
                .unwrap_or(17);
            Ok(match verb.as_str() {
                "plan" => Command::Plan(args),
                "compare" => Command::Compare(args),
                "trace" => Command::Trace(TraceArgs {
                    plan: args,
                    format: format(TraceFormat::Chrome)?,
                    out: flags.get("--out").map(String::from),
                }),
                "inject" => Command::Inject(InjectArgs {
                    plan: args,
                    fault: match flags.get("--fault").unwrap_or("crash") {
                        "crash" => FaultChoice::Crash,
                        "timeout" => FaultChoice::Timeout,
                        "corrupt" => FaultChoice::Corrupt,
                        "slow" => FaultChoice::Slow,
                        "rack" => FaultChoice::Rack,
                        other => return Err(format!("unknown fault `{other}`")),
                    },
                    backend,
                    seed,
                    // JSONL by default: injected traces exist to be diffed.
                    format: format(TraceFormat::Jsonl)?,
                    out: flags.get("--out").map(String::from),
                    json: flags.has("--json"),
                }),
                _ => {
                    let storm = flags
                        .get("--storm")
                        .unwrap_or("crash,replacement-crash,timeout")
                        .split(',')
                        .map(|s| ChaosFault::from_name(s.trim()))
                        .collect::<Result<Vec<_>, _>>()?;
                    if storm.is_empty() {
                        return Err("--storm needs at least one fault".into());
                    }
                    let hedge: Option<f64> = flags
                        .get("--hedge")
                        .map(|v| v.parse().map_err(|_| "bad --hedge"))
                        .transpose()?;
                    if hedge.is_some_and(|m| !(m > 1.0 && m.is_finite())) {
                        return Err("--hedge must be > 1".into());
                    }
                    let deadline: Option<f64> = flags
                        .get("--deadline")
                        .map(|v| v.parse().map_err(|_| "bad --deadline"))
                        .transpose()?;
                    if deadline.is_some_and(|d| !(d > 0.0 && d.is_finite())) {
                        return Err("--deadline must be positive".into());
                    }
                    let proof = flags.get("--proof").unwrap_or("off").to_string();
                    if !matches!(proof.as_str(), "off" | "advisory" | "mandatory") {
                        return Err(format!("unknown proof mode `{proof}`"));
                    }
                    Command::Chaos(ChaosArgs {
                        plan: args,
                        backend,
                        storm,
                        seed,
                        hedge,
                        deadline,
                        proof,
                        ledger_out: flags.get("--ledger-out").map(String::from),
                        format: format(TraceFormat::Jsonl)?,
                        out: flags.get("--out").map(String::from),
                        json: flags.has("--json"),
                    })
                }
            })
        }
        other => Err(format!("unknown command `{other}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parse_code_accepts_and_rejects() {
        assert_eq!(parse_code("6,2").unwrap(), CodeParams::new(6, 2));
        assert_eq!(parse_code(" 12 , 4 ").unwrap(), CodeParams::new(12, 4));
        assert!(parse_code("6").is_err());
        assert!(parse_code("0,2").is_err());
        assert!(parse_code("2,6").is_err(), "k > n rejected");
        assert!(parse_code("200,100").is_err());
    }

    #[test]
    fn parse_failed_names_and_indices() {
        let p = CodeParams::new(6, 2);
        assert_eq!(parse_failed("d1", p).unwrap(), vec![BlockId(1)]);
        assert_eq!(parse_failed("p0", p).unwrap(), vec![BlockId(6)]);
        assert_eq!(
            parse_failed("d0,p1", p).unwrap(),
            vec![BlockId(0), BlockId(7)]
        );
        assert_eq!(parse_failed("3", p).unwrap(), vec![BlockId(3)]);
        assert!(parse_failed("d9", p).is_err());
        assert!(parse_failed("p2", p).is_err());
        assert!(parse_failed("x1", p).is_err());
        assert!(parse_failed("d0,d1,d2", p).is_err(), "more than k");
    }

    #[test]
    fn parse_full_plan_command() {
        let cmd = parse(&argv(
            "plan --code 6,2 --fail d1 --scheme car --placement compact \
             --block-mib 64 --ratio 5 --gantt",
        ))
        .unwrap();
        match cmd {
            Command::Plan(a) => {
                assert_eq!(a.params, CodeParams::new(6, 2));
                assert_eq!(a.failed, vec![BlockId(1)]);
                assert_eq!(a.scheme, "car");
                assert_eq!(a.placement, PlacementPolicy::Compact);
                assert_eq!(a.block_bytes, 64 << 20);
                assert_eq!(a.chunk_bytes, None, "streaming is off by default");
                assert_eq!(a.ratio, 5.0);
                assert!(a.gantt && !a.dot);
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn parse_defaults() {
        let cmd = parse(&argv("compare --code 4,2 --fail 0")).unwrap();
        match cmd {
            Command::Compare(a) => {
                assert_eq!(a.scheme, "rpr");
                assert_eq!(a.placement, PlacementPolicy::RprPreplaced);
                assert_eq!(a.block_bytes, 256 << 20);
                assert_eq!(a.cost, "simics");
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn parse_trace_command() {
        let cmd = parse(&argv(
            "trace --code 6,3 --fail d1 --format jsonl --out repair.jsonl",
        ))
        .unwrap();
        match cmd {
            Command::Trace(t) => {
                assert_eq!(t.plan.params, CodeParams::new(6, 3));
                assert_eq!(t.format, TraceFormat::Jsonl);
                assert_eq!(t.out.as_deref(), Some("repair.jsonl"));
            }
            other => panic!("wrong command {other:?}"),
        }
        match parse(&argv("trace --code 4,2 --fail d0")).unwrap() {
            Command::Trace(t) => {
                assert_eq!(t.format, TraceFormat::Chrome, "chrome is the default");
                assert_eq!(t.out, None);
            }
            other => panic!("wrong command {other:?}"),
        }
        assert!(parse(&argv("trace --code 4,2 --fail d0 --format xml")).is_err());
    }

    #[test]
    fn parse_inject_command() {
        let cmd = parse(&argv(
            "inject --code 6,3 --fail d1 --fault timeout --seed 4242 \
             --backend exec --format chrome --out chaos.json",
        ))
        .unwrap();
        match cmd {
            Command::Inject(i) => {
                assert_eq!(i.plan.params, CodeParams::new(6, 3));
                assert_eq!(i.fault, FaultChoice::Timeout);
                assert_eq!(i.backend, InjectBackend::Exec);
                assert_eq!(i.seed, 4242);
                assert_eq!(i.format, TraceFormat::Chrome);
                assert_eq!(i.out.as_deref(), Some("chaos.json"));
            }
            other => panic!("wrong command {other:?}"),
        }
        match parse(&argv("inject --code 6,3 --fail d1")).unwrap() {
            Command::Inject(i) => {
                assert_eq!(i.fault, FaultChoice::Crash, "crash is the default");
                assert_eq!(i.backend, InjectBackend::Sim, "sim is the default");
                assert_eq!(i.seed, 17);
                assert_eq!(i.format, TraceFormat::Jsonl, "inject defaults to jsonl");
            }
            other => panic!("wrong command {other:?}"),
        }
        assert!(parse(&argv("inject --code 6,3 --fail d1 --fault meteor")).is_err());
        assert!(parse(&argv("inject --code 6,3 --fail d1 --backend fpga")).is_err());
        assert!(parse(&argv("inject --code 6,3 --fail d1 --seed -1")).is_err());
    }

    #[test]
    fn parse_inject_json_flag() {
        match parse(&argv("inject --code 6,3 --fail d1 --json")).unwrap() {
            Command::Inject(i) => assert!(i.json),
            other => panic!("wrong command {other:?}"),
        }
        match parse(&argv("inject --code 6,3 --fail d1")).unwrap() {
            Command::Inject(i) => assert!(!i.json, "json is opt-in"),
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn parse_chaos_command() {
        let cmd = parse(&argv(
            "chaos --code 6,3 --fail d1 --storm crash,replacement-crash,timeout \
             --seed 99 --backend exec --block-mib 1 --hedge 2.5 --deadline 30 \
             --json --out storm.jsonl",
        ))
        .unwrap();
        match cmd {
            Command::Chaos(c) => {
                assert_eq!(c.plan.params, CodeParams::new(6, 3));
                assert_eq!(
                    c.storm,
                    vec![
                        ChaosFault::Crash,
                        ChaosFault::ReplacementCrash,
                        ChaosFault::Timeout
                    ]
                );
                assert_eq!(c.seed, 99);
                assert_eq!(c.backend, InjectBackend::Exec);
                assert_eq!(c.hedge, Some(2.5));
                assert_eq!(c.deadline, Some(30.0));
                assert!(c.json);
                assert_eq!(c.out.as_deref(), Some("storm.jsonl"));
            }
            other => panic!("wrong command {other:?}"),
        }
        match parse(&argv("chaos --code 6,3 --fail d1")).unwrap() {
            Command::Chaos(c) => {
                assert_eq!(
                    c.storm,
                    vec![
                        ChaosFault::Crash,
                        ChaosFault::ReplacementCrash,
                        ChaosFault::Timeout
                    ],
                    "the acceptance storm is the default"
                );
                assert_eq!(c.backend, InjectBackend::Sim);
                assert_eq!(c.hedge, None);
                assert_eq!(c.deadline, None);
                assert!(!c.json);
            }
            other => panic!("wrong command {other:?}"),
        }
        assert!(parse(&argv("chaos --code 6,3 --fail d1 --storm meteor")).is_err());
        assert!(parse(&argv("chaos --code 6,3 --fail d1 --hedge 0.5")).is_err());
        assert!(parse(&argv("chaos --code 6,3 --fail d1 --deadline -4")).is_err());
    }

    #[test]
    fn parse_chaos_proof_flags() {
        let cmd = parse(&argv(
            "chaos --code 6,3 --fail d1 --storm lie --proof mandatory \
             --ledger-out proofs.jsonl",
        ))
        .unwrap();
        match cmd {
            Command::Chaos(c) => {
                assert_eq!(c.storm, vec![ChaosFault::Lie]);
                assert_eq!(c.proof, "mandatory");
                assert_eq!(c.ledger_out.as_deref(), Some("proofs.jsonl"));
            }
            other => panic!("wrong command {other:?}"),
        }
        match parse(&argv("chaos --code 6,3 --fail d1")).unwrap() {
            Command::Chaos(c) => {
                assert_eq!(c.proof, "off", "proofs are off by default");
                assert_eq!(c.ledger_out, None);
            }
            other => panic!("wrong command {other:?}"),
        }
        assert!(parse(&argv("chaos --code 6,3 --fail d1 --proof maybe")).is_err());
    }

    #[test]
    fn parse_audit_command() {
        let cmd = parse(&argv("audit --trace t.jsonl --ledger l.jsonl --json")).unwrap();
        assert_eq!(
            cmd,
            Command::Audit(AuditArgs {
                trace: "t.jsonl".to_string(),
                ledger: "l.jsonl".to_string(),
                json: true,
            })
        );
        assert!(parse(&argv("audit --ledger l.jsonl")).is_err(), "missing --trace");
        assert!(parse(&argv("audit --trace t.jsonl")).is_err(), "missing --ledger");
    }

    #[test]
    fn parse_fleet_command() {
        let cmd = parse(&argv(
            "fleet --code 4,2 --stripes 5000 --racks 12 --nodes-per-rack 8 \
             --block-mib 64 --ratio 5 --seed 99 --storm crash,timeout \
             --agg-gbit 4 --no-arbiter --threads 2 --churn-rate 0.5 \
             --no-escalate --journal j.jsonl --resume old.jsonl --json \
             --out fleet.jsonl",
        ))
        .unwrap();
        match cmd {
            Command::Fleet(f) => {
                assert_eq!(f.params, CodeParams::new(4, 2));
                assert_eq!(f.stripes, 5000);
                assert_eq!(f.racks, 12);
                assert_eq!(f.nodes_per_rack, 8);
                assert_eq!(f.block_bytes, 64 << 20);
                assert_eq!(f.ratio, 5.0);
                assert_eq!(f.seed, 99);
                assert_eq!(f.storm, vec![ChaosFault::Crash, ChaosFault::Timeout]);
                assert_eq!(f.agg_gbit, Some(4.0));
                assert!(!f.arbitrate);
                assert_eq!(f.threads, 2);
                assert_eq!(f.churn_rate, 0.5);
                assert!(!f.escalate);
                assert_eq!(f.journal.as_deref(), Some("j.jsonl"));
                assert_eq!(f.resume.as_deref(), Some("old.jsonl"));
                assert!(f.json);
                assert_eq!(f.out.as_deref(), Some("fleet.jsonl"));
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn parse_fleet_defaults() {
        match parse(&argv("fleet")).unwrap() {
            Command::Fleet(f) => {
                assert_eq!(f.params, CodeParams::new(6, 3), "paper code by default");
                assert_eq!(f.stripes, 10_000);
                assert_eq!(f.racks, 25);
                assert_eq!(f.nodes_per_rack, 16);
                assert_eq!(f.block_bytes, 256 << 20);
                assert_eq!(f.seed, 17);
                assert!(f.storm.is_empty(), "clean repairs by default");
                assert_eq!(f.agg_gbit, None);
                assert!(f.arbitrate, "arbitration is on by default");
                assert_eq!(f.threads, 0);
                assert_eq!(f.churn_rate, 0.0, "static backlog by default");
                assert!(f.escalate, "churn hits escalate by default");
                assert_eq!(f.journal, None);
                assert_eq!(f.resume, None);
                assert!(!f.json);
                assert_eq!(f.format, TraceFormat::Jsonl);
                assert_eq!(f.out, None);
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn parse_fleet_rejects_bad_input() {
        assert!(parse(&argv("fleet --stripes 0")).is_err());
        assert!(parse(&argv("fleet --racks 2")).is_err(), "fewer than q racks");
        assert!(
            parse(&argv("fleet --code 4,2 --nodes-per-rack 2")).is_err(),
            "no spare node beyond k blocks"
        );
        assert!(parse(&argv("fleet --nodes-per-rack 65")).is_err());
        assert!(parse(&argv("fleet --storm meteor")).is_err());
        assert!(parse(&argv("fleet --agg-gbit 0")).is_err());
        assert!(parse(&argv("fleet --churn-rate -1")).is_err());
        assert!(parse(&argv("fleet --churn-rate inf")).is_err());
        assert!(parse(&argv("fleet --format xml")).is_err());
    }

    #[test]
    fn parse_load_command() {
        let cmd = parse(&argv(
            "load --mode unthrottled --code 4,2 --seed 99 --requests 100 \
             --rate 25 --read-fraction 0.8 --zipf 1.1 --objects 32 \
             --request-mib 2 --block-mib 32 --chunk-size 4 --ratio 5 \
             --stripes 2 --stagger 0.5 --share 0.7 --floor 0.2 --json \
             --out load.jsonl",
        ))
        .unwrap();
        match cmd {
            Command::Load(l) => {
                assert_eq!(l.mode, LoadModeChoice::Unthrottled);
                assert_eq!(l.params, CodeParams::new(4, 2));
                assert_eq!(l.seed, 99);
                assert_eq!(l.requests, 100);
                assert_eq!(l.rate, 25.0);
                assert_eq!(l.read_fraction, 0.8);
                assert_eq!(l.zipf, 1.1);
                assert_eq!(l.objects, 32);
                assert_eq!(l.request_bytes, 2 << 20);
                assert_eq!(l.block_bytes, 32 << 20);
                assert_eq!(l.chunk_bytes, Some(4 << 20));
                assert_eq!(l.ratio, 5.0);
                assert_eq!(l.stripes, 2);
                assert_eq!(l.stagger, 0.5);
                assert_eq!(l.share, 0.7);
                assert_eq!(l.floor, 0.2);
                assert!(l.json);
                assert_eq!(l.out.as_deref(), Some("load.jsonl"));
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn parse_load_defaults() {
        match parse(&argv("load")).unwrap() {
            Command::Load(l) => {
                assert_eq!(l.mode, LoadModeChoice::Qos, "qos by default");
                assert_eq!(l.params, CodeParams::new(6, 3), "paper code");
                assert_eq!(l.seed, 17);
                assert_eq!(l.requests, 240);
                assert_eq!(l.rate, 40.0);
                assert_eq!(l.read_fraction, 0.9);
                assert_eq!(l.zipf, 0.9);
                assert_eq!(l.objects, 64);
                assert_eq!(l.request_bytes, 4 << 20);
                assert_eq!(l.block_bytes, 64 << 20);
                assert_eq!(l.chunk_bytes, Some(8 << 20));
                assert_eq!(l.stripes, 4);
                assert_eq!(l.stagger, 0.25);
                assert_eq!(l.share, 0.85);
                assert_eq!(l.floor, 0.1);
                assert!(!l.json);
                assert_eq!(l.format, TraceFormat::Jsonl);
                assert_eq!(l.out, None);
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn parse_load_rejects_bad_input() {
        assert!(parse(&argv("load --mode sometimes")).is_err());
        assert!(parse(&argv("load --requests 0")).is_err());
        assert!(parse(&argv("load --rate 0")).is_err());
        assert!(parse(&argv("load --read-fraction 1.5")).is_err());
        assert!(parse(&argv("load --zipf -1")).is_err());
        assert!(parse(&argv("load --objects 0")).is_err());
        assert!(parse(&argv("load --share 1.0")).is_err());
        assert!(parse(&argv("load --floor 0")).is_err());
        assert!(parse(&argv("load --stagger -1")).is_err());
        assert!(parse(&argv("load --format xml")).is_err());
    }

    #[test]
    fn parse_chunk_size_flag() {
        match parse(&argv("plan --code 6,3 --fail d1 --chunk-size 8")).unwrap() {
            Command::Plan(a) => assert_eq!(a.chunk_bytes, Some(8 << 20)),
            other => panic!("wrong command {other:?}"),
        }
        match parse(&argv("compare --code 6,3 --fail d1 --chunk-size 1")).unwrap() {
            Command::Compare(a) => assert_eq!(a.chunk_bytes, Some(1 << 20)),
            other => panic!("wrong command {other:?}"),
        }
        assert!(parse(&argv("plan --code 6,3 --fail d1 --chunk-size 0")).is_err());
        assert!(parse(&argv("plan --code 6,3 --fail d1 --chunk-size lots")).is_err());
    }

    #[test]
    fn parse_kernels_command() {
        assert_eq!(
            parse(&argv("kernels")).unwrap(),
            Command::Kernels { json: false }
        );
        assert_eq!(
            parse(&argv("kernels --json")).unwrap(),
            Command::Kernels { json: true }
        );
    }

    #[test]
    fn parse_measured_cost_model() {
        match parse(&argv("plan --code 6,3 --fail d1 --cost measured")).unwrap() {
            Command::Plan(a) => assert_eq!(a.cost, "measured"),
            other => panic!("wrong command {other:?}"),
        }
        assert!(parse(&argv("plan --code 6,3 --fail d1 --cost guess")).is_err());
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert!(parse(&argv("")).is_err());
        assert!(parse(&argv("frobnicate")).is_err());
        assert!(parse(&argv("plan --fail d0")).is_err(), "missing --code");
        assert!(parse(&argv("plan --code 4,2")).is_err(), "missing --fail");
        assert!(parse(&argv("plan --code 4,2 --fail d0 --scheme nope")).is_err());
        assert!(parse(&argv("plan --code 4,2 --fail d0 --ratio 0.5")).is_err());
        assert!(parse(&argv("plan --code 4,2 --fail d0 --block-mib 0")).is_err());
    }

    #[test]
    fn parse_analyze_and_topo() {
        assert_eq!(
            parse(&argv("analyze")).unwrap(),
            Command::Analyze {
                ti_ms: 1.0,
                tc_ms: 10.0
            }
        );
        match parse(&argv("topo --code 8,4 --placement flat")).unwrap() {
            Command::Topo { params, placement } => {
                assert_eq!(params, CodeParams::new(8, 4));
                assert_eq!(placement, PlacementPolicy::Flat);
            }
            other => panic!("wrong command {other:?}"),
        }
    }
}
