//! `rpr` — command-line explorer for rack-aware repair plans.
//!
//! The binary in `main.rs` is a thin wrapper over [`args::parse`] and
//! [`commands::run`], so the full command surface is testable as a
//! library.

pub mod args;
pub mod commands;
