//! Command implementations.

use crate::args::{
    Command, FaultChoice, InjectArgs, InjectBackend, PlanArgs, TraceArgs, TraceFormat,
};
use rpr_codec::{CodeParams, StripeCodec};
use rpr_core::analysis::{rpr_repair_time, traditional_repair_time, AnalysisParams};
use rpr_core::{
    crash_candidates, simulate, simulate_injected, viz, CarPlanner, CostModel, Op, Payload,
    RepairContext, RepairPlanner, RprPlanner, TraditionalPlanner,
};
use rpr_faults::{FaultKind, FaultPlan, RetryPolicy, SplitMix64};
use rpr_topology::{cluster_for, BandwidthProfile, Placement, PlacementPolicy, GBIT};

/// Execute a parsed command.
pub fn run(cmd: Command) -> Result<(), String> {
    match cmd {
        Command::Plan(a) => plan(&a),
        Command::Compare(a) => compare(&a),
        Command::Trace(t) => trace(&t),
        Command::Inject(i) => inject(&i),
        Command::Topo { params, placement } => topo(params, placement),
        Command::Analyze { ti_ms, tc_ms } => analyze(ti_ms, tc_ms),
    }
}

fn cost_model(name: &str) -> CostModel {
    match name {
        "ec2" => CostModel::ec2_t2micro(),
        "free" => CostModel::free(),
        _ => CostModel::simics(),
    }
}

fn planner_by_name(name: &str) -> Box<dyn RepairPlanner> {
    match name {
        "car" => Box::new(CarPlanner::new()),
        "chain" => Box::new(rpr_core::ChainPlanner::new()),
        "traditional" => Box::new(TraditionalPlanner::new()),
        "traditional-local" => Box::new(TraditionalPlanner::locality_aware()),
        _ => Box::new(RprPlanner::new()),
    }
}

struct World {
    codec: StripeCodec,
    topo: rpr_topology::Topology,
    placement: Placement,
    profile: BandwidthProfile,
}

fn world(a: &PlanArgs) -> World {
    let topo = cluster_for(a.params, 1, 1);
    let placement = Placement::by_policy(a.placement, a.params, &topo);
    let profile = BandwidthProfile::uniform(topo.rack_count(), GBIT, GBIT / a.ratio);
    World {
        codec: StripeCodec::new(a.params),
        topo,
        placement,
        profile,
    }
}

/// Build the repair context of a scenario, including the optional
/// `--chunk-size` streaming configuration.
fn context<'w>(a: &PlanArgs, w: &'w World) -> RepairContext<'w> {
    let ctx = RepairContext::new(
        &w.codec,
        &w.topo,
        &w.placement,
        a.failed.clone(),
        a.block_bytes,
        &w.profile,
        cost_model(&a.cost).scaled_for_block(a.block_bytes),
    );
    match a.chunk_bytes {
        Some(c) => ctx.with_chunk_size(c),
        None => ctx,
    }
}

fn run_one(a: &PlanArgs, w: &World, scheme: &str) -> (rpr_core::RepairPlan, rpr_core::SimOutcome) {
    let ctx = context(a, w);
    let plan = planner_by_name(scheme).plan(&ctx);
    plan.validate(&w.codec, &w.topo, &w.placement)
        .expect("planner output must validate");
    let outcome = simulate(&plan, &ctx);
    (plan, outcome)
}

fn plan(a: &PlanArgs) -> Result<(), String> {
    let w = world(a);
    let (plan, outcome) = run_one(a, &w, &a.scheme);
    let names: Vec<String> = a.failed.iter().map(|b| b.name(&a.params)).collect();
    println!(
        "{} repair of {} on RS({},{}), block {} MiB, inner:cross 1:{}{}",
        a.scheme,
        names.join(","),
        a.params.n,
        a.params.k,
        a.block_bytes >> 20,
        a.ratio,
        match a.chunk_bytes {
            Some(c) => format!(", cut-through chunk {} MiB", c >> 20),
            None => String::new(),
        }
    );
    // Sliced plans (chain) move fractional blocks per send; report whole
    // blocks uniformly.
    let cross_blocks = outcome.stats.cross_bytes as f64 / a.block_bytes as f64;
    println!(
        "repair time {:.2} s | cross-rack {:.1} blocks | decoding matrix: {}",
        outcome.repair_time,
        cross_blocks,
        if outcome.stats.needs_matrix {
            "yes"
        } else {
            "no (XOR path)"
        },
    );
    if a.gantt {
        println!("\n{}", viz::gantt(&outcome, &w.topo, 56));
    }
    if a.dot {
        println!("\n{}", viz::dot(&plan, &w.topo));
    }
    Ok(())
}

fn compare(a: &PlanArgs) -> Result<(), String> {
    let w = world(a);
    let schemes: &[&str] = if a.failed.len() == 1 {
        &["traditional", "traditional-local", "car", "chain", "rpr"]
    } else {
        &["traditional", "traditional-local", "rpr"]
    };
    println!(
        "{:<18} {:>10} {:>8} {:>8}  {:<8}",
        "scheme", "time (s)", "cross", "inner", "matrix"
    );
    let mut base = f64::NAN;
    for scheme in schemes {
        let (plan, outcome) = run_one(a, &w, scheme);
        if base.is_nan() {
            base = outcome.repair_time;
        }
        // Sliced plans (chain) move fractional blocks per send; normalize
        // traffic to whole blocks for comparison.
        let blocks = |bytes: u64| bytes as f64 / a.block_bytes as f64;
        let inner_bytes = plan.stats(&w.topo).inner_transfers as u64 * plan.block_bytes;
        println!(
            "{:<18} {:>10.2} {:>8.1} {:>8.1}  {:<8} ({:>5.1}% of traditional)",
            scheme,
            outcome.repair_time,
            blocks(outcome.stats.cross_bytes),
            blocks(inner_bytes),
            if outcome.stats.needs_matrix {
                "yes"
            } else {
                "no"
            },
            outcome.repair_time / base * 100.0
        );
    }
    Ok(())
}

/// Simulate the scenario once with a [`rpr_obs::TraceRecorder`] attached
/// and dump the structured trace (schema: `docs/TRACING.md`). The trace
/// goes to `--out` or stdout; the human summary goes to stderr so piped
/// output stays valid JSON.
fn trace(t: &TraceArgs) -> Result<(), String> {
    let a = &t.plan;
    let w = world(a);
    let ctx = context(a, &w);
    let plan = planner_by_name(&a.scheme).plan(&ctx);
    plan.validate(&w.codec, &w.topo, &w.placement)
        .expect("planner output must validate");
    let rec = rpr_obs::TraceRecorder::default();
    let outcome = rpr_core::simulate_traced(&plan, &ctx, &rec);

    let snap = rec.snapshot();
    let events = rec.take_events();
    let output = match t.format {
        TraceFormat::Chrome => rpr_obs::export::to_chrome_trace(&events),
        TraceFormat::Jsonl => rpr_obs::export::to_json_lines(&events),
    };
    match &t.out {
        Some(path) => {
            std::fs::write(path, &output).map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!("wrote {} events to {path}", events.len());
        }
        None => print!("{output}"),
    }
    let (_, waves) = plan.cross_waves(&w.topo);
    eprintln!(
        "# {} repair: {:.2} s | {} cross + {} inner transfers | \
         {waves} cross-rack timesteps | {} events ({} dropped)",
        a.scheme,
        outcome.repair_time,
        outcome.stats.cross_transfers,
        outcome.stats.inner_transfers,
        snap.recorded_events,
        snap.dropped_events,
    );
    Ok(())
}

/// Turn a fault *family* into a concrete [`FaultPlan`]: the site (node,
/// op, rack, timestep) is picked from the seed, so the same seed always
/// degrades the same transfer — the property the chaos determinism check
/// in `scripts/verify.sh` relies on.
fn seeded_fault_plan(
    plan: &rpr_core::RepairPlan,
    ctx: &RepairContext<'_>,
    choice: FaultChoice,
    seed: u64,
) -> Result<FaultPlan, String> {
    let mut rng = SplitMix64::new(seed);
    let sends_matching = |pred: &dyn Fn(&Op) -> bool| -> Vec<usize> {
        plan.ops
            .iter()
            .enumerate()
            .filter(|(_, op)| pred(op))
            .map(|(i, _)| i)
            .collect()
    };
    let kind = match choice {
        FaultChoice::Crash => {
            let cands = crash_candidates(plan, ctx);
            if cands.is_empty() {
                return Err("no crash candidate: every cross sender is the recovery node".into());
            }
            let (node, timestep) = cands[rng.pick(cands.len())];
            FaultKind::HelperCrash { node, timestep }
        }
        FaultChoice::Timeout => {
            let sends = sends_matching(&|op| matches!(op, Op::Send { .. }));
            if sends.is_empty() {
                return Err("plan has no transfers to time out".into());
            }
            FaultKind::TransferTimeout {
                op: sends[rng.pick(sends.len())],
            }
        }
        FaultChoice::Corrupt => {
            let ints = sends_matching(&|op| {
                matches!(
                    op,
                    Op::Send {
                        what: Payload::Intermediate(_),
                        ..
                    }
                )
            });
            if ints.is_empty() {
                return Err(
                    "plan ships no intermediate blocks to corrupt (try --scheme rpr)".into(),
                );
            }
            FaultKind::CorruptIntermediate {
                op: ints[rng.pick(ints.len())],
            }
        }
        FaultChoice::Slow => {
            let mut helpers: Vec<usize> = plan
                .ops
                .iter()
                .filter_map(|op| match op {
                    Op::Send { from, .. } => Some(from.0),
                    _ => None,
                })
                .collect();
            helpers.sort_unstable();
            helpers.dedup();
            FaultKind::SlowLink {
                node: helpers[rng.pick(helpers.len())],
                factor: 0.25,
            }
        }
        FaultChoice::Rack => {
            let (waves, _) = plan.cross_waves(ctx.topo);
            let mut sites: Vec<(usize, usize)> = plan
                .ops
                .iter()
                .enumerate()
                .filter_map(|(i, op)| match (op, waves[i]) {
                    (Op::Send { from, .. }, Some(w)) => Some((ctx.topo.rack_of(*from).0, w)),
                    _ => None,
                })
                .collect();
            sites.sort_unstable();
            sites.dedup();
            if sites.is_empty() {
                return Err("plan has no cross-rack transfers to drop".into());
            }
            let (rack, timestep) = sites[rng.pick(sites.len())];
            FaultKind::RackSwitchOutage { rack, timestep }
        }
    };
    Ok(FaultPlan::new(seed).with(kind))
}

/// Deterministic stripe contents for the exec backend (same LCG as the
/// executor's own tests, so corruption scenarios are reproducible).
fn deterministic_stripe(codec: &StripeCodec, len: usize, seed: u64) -> Vec<Vec<u8>> {
    let mut s = seed | 1;
    let data: Vec<Vec<u8>> = (0..codec.params().n)
        .map(|_| {
            (0..len)
                .map(|_| {
                    s = s
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    (s >> 33) as u8
                })
                .collect()
        })
        .collect();
    let refs: Vec<&[u8]> = data.iter().map(|b| b.as_slice()).collect();
    codec.encode_stripe(&refs)
}

/// Run the scenario once under a seed-picked injected fault and dump the
/// degraded trace (`--backend sim` replays on the virtual clock and is
/// bit-deterministic; `--backend exec` moves real bytes and verifies the
/// reconstruction). Trace to `--out`/stdout, human summary to stderr.
fn inject(t: &InjectArgs) -> Result<(), String> {
    let a = &t.plan;
    let w = world(a);
    let ctx = context(a, &w);
    let plan = planner_by_name(&a.scheme).plan(&ctx);
    plan.validate(&w.codec, &w.topo, &w.placement)
        .expect("planner output must validate");
    let fp = seeded_fault_plan(&plan, &ctx, t.fault, t.seed)?;
    eprintln!("# injecting (seed {}): {:?}", t.seed, fp.faults[0]);

    let policy = RetryPolicy::default();
    let rec = rpr_obs::TraceRecorder::default();
    let summary = match t.backend {
        InjectBackend::Sim => {
            let out = simulate_injected(&plan, &ctx, &fp, &policy, &rec)?;
            format!(
                "degraded {:.2} s vs clean {:.2} s (+{:.1}%) | retries {} | \
                 replans {} | reused ops {} | finished as {}",
                out.repair_time,
                out.clean_time,
                (out.repair_time / out.clean_time - 1.0) * 100.0,
                out.retries,
                out.replans,
                out.reused_ops,
                out.final_scheme
            )
        }
        InjectBackend::Exec => {
            let stripe = deterministic_stripe(&w.codec, a.block_bytes as usize, t.seed);
            let out = rpr_exec::execute_resilient(&plan, &ctx, &stripe, &rec, &fp, &policy)
                .map_err(|e| e.to_string())?;
            format!(
                "wall {:.2} s | verified: {} | retries {} | replans {} | \
                 reused ops {} | finished as {}",
                out.report.wall_seconds,
                if out.report.verified { "yes" } else { "NO" },
                out.retries,
                out.replans,
                out.reused_ops,
                out.final_scheme
            )
        }
    };

    let snap = rec.snapshot();
    let events = rec.take_events();
    let output = match t.format {
        TraceFormat::Chrome => rpr_obs::export::to_chrome_trace(&events),
        TraceFormat::Jsonl => rpr_obs::export::to_json_lines(&events),
    };
    match &t.out {
        Some(path) => {
            std::fs::write(path, &output).map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!("wrote {} events to {path}", events.len());
        }
        None => print!("{output}"),
    }
    eprintln!(
        "# {} repair under fault: {summary} | {} events ({} dropped)",
        a.scheme, snap.recorded_events, snap.dropped_events,
    );
    Ok(())
}

fn topo(params: CodeParams, policy: PlacementPolicy) -> Result<(), String> {
    // Flat placement needs one rack per block; the compact layouts use the
    // paper's q racks (+1 spare).
    let topo = if policy == PlacementPolicy::Flat {
        rpr_topology::Topology::uniform(params.total() + 1, 2)
    } else {
        cluster_for(params, 1, 1)
    };
    let placement = Placement::by_policy(policy, params, &topo);
    println!(
        "RS({},{}) over {} racks (q = {} + 1 spare), {} nodes/rack, {policy:?}:",
        params.n,
        params.k,
        topo.rack_count(),
        params.rack_count(),
        topo.nodes_in(rpr_topology::RackId(0)).len()
    );
    for rack in topo.racks() {
        let mut cells = Vec::new();
        for &node in topo.nodes_in(rack) {
            match placement.block_on(node) {
                Some(b) => cells.push(format!("{node:?}={}", b.name(&params))),
                None => cells.push(format!("{node:?}=·")),
            }
        }
        println!("  {rack:?}: {}", cells.join("  "));
    }
    println!(
        "single-rack fault tolerant: {} | P0 co-located with data: {}",
        placement.is_single_rack_fault_tolerant(&topo),
        placement.p0_colocated_with_data(&topo)
    );
    Ok(())
}

fn analyze(ti_ms: f64, tc_ms: f64) -> Result<(), String> {
    let a = AnalysisParams {
        t_i: ti_ms / 1e3,
        t_c: tc_ms / 1e3,
    };
    println!(
        "closed-form repair time (§4.1), t_i = {ti_ms} ms, t_c = {tc_ms} ms:\n\
         {:<8} {:>14} {:>14} {:>10}",
        "code", "traditional", "RPR worst", "reduction"
    );
    for (n, k) in [
        (4, 2),
        (6, 2),
        (8, 2),
        (6, 3),
        (8, 4),
        (12, 4),
        (10, 4),
        (16, 4),
    ] {
        let p = CodeParams::new(n, k);
        let tra = traditional_repair_time(p, a) * 1e3;
        let rpr = rpr_repair_time(p, a) * 1e3;
        println!(
            "({n:>2},{k})  {tra:>11.1} ms {rpr:>11.1} ms {:>9.1}%",
            (1.0 - rpr / tra) * 100.0
        );
    }
    Ok(())
}
