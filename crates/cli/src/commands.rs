//! Command implementations.

use crate::args::{
    AuditArgs, ChaosArgs, ChaosFault, Command, FaultChoice, FleetArgs, InjectArgs, InjectBackend,
    LoadArgs, LoadModeChoice, PlanArgs, TraceArgs, TraceFormat,
};
use rpr_codec::{CodeParams, StripeCodec};
use rpr_core::analysis::{rpr_repair_time, traditional_repair_time, AnalysisParams};
use rpr_core::{
    crash_candidates, simulate, simulate_injected, supervise_injected, viz, CarPlanner, CostModel,
    Op, Payload, RepairContext, RepairPlanner, RprPlanner, SuperviseConfig, TraditionalPlanner,
};
use rpr_faults::{
    CrashSite, FaultKind, FaultPlan, FaultStorm, HealthTracker, RetryPolicy, SplitMix64, StormFault,
};
use rpr_proof::{ProofLedger, ProofMode};
use rpr_topology::{cluster_for, BandwidthProfile, Placement, PlacementPolicy, GBIT};

/// Execute a parsed command.
pub fn run(cmd: Command) -> Result<(), String> {
    match cmd {
        Command::Plan(a) => plan(&a),
        Command::Compare(a) => compare(&a),
        Command::Trace(t) => trace(&t),
        Command::Inject(i) => inject(&i),
        Command::Chaos(c) => chaos(&c),
        Command::Fleet(f) => fleet(&f),
        Command::Load(l) => load(&l),
        Command::Audit(a) => audit(&a),
        Command::Topo { params, placement } => topo(params, placement),
        Command::Analyze { ti_ms, tc_ms } => analyze(ti_ms, tc_ms),
        Command::Kernels { json } => kernels(json),
    }
}

fn cost_model(name: &str) -> CostModel {
    match name {
        "ec2" => CostModel::ec2_t2micro(),
        "free" => CostModel::free(),
        "measured" => CostModel::measured(),
        _ => CostModel::simics(),
    }
}

/// Report which GF(2^8) kernel tier this host dispatches to, every tier
/// the hardware offers, and the measured fold throughput the `measured`
/// cost model would use (see docs/PERFORMANCE.md).
fn kernels(json: bool) -> Result<(), String> {
    let active = rpr_gf::active_tier();
    let available: Vec<String> = rpr_gf::available_tiers()
        .iter()
        .map(|t| t.name().to_string())
        .collect();
    let forced = std::env::var_os("RPR_FORCE_SCALAR")
        .is_some_and(|v| !v.is_empty() && v != "0");
    let m = CostModel::measured();
    if json {
        println!(
            "{{\"command\":\"kernels\",\"active\":{},\"available\":{},\
             \"forced_scalar\":{},\"gf_bytes_per_sec\":{:.0},\
             \"xor_bytes_per_sec\":{:.0},\"matrix_build_seconds\":{:.9}}}",
            json_str(active.name()),
            json_str_array(&available),
            forced,
            m.gf_rate,
            m.xor_rate,
            m.matrix_build_seconds,
        );
        return Ok(());
    }
    const GIB: f64 = 1024.0 * 1024.0 * 1024.0;
    println!("GF(2^8) kernel dispatch");
    println!(
        "  active tier : {}{}",
        active.name(),
        if forced { "  (RPR_FORCE_SCALAR)" } else { "" }
    );
    println!("  available   : {}", available.join(", "));
    println!(
        "  measured    : gf fold {:.2} GiB/s, xor fold {:.2} GiB/s, \
         matrix build {:.1} us",
        m.gf_rate / GIB,
        m.xor_rate / GIB,
        m.matrix_build_seconds * 1e6,
    );
    Ok(())
}

fn planner_by_name(name: &str) -> Box<dyn RepairPlanner> {
    match name {
        "car" => Box::new(CarPlanner::new()),
        "chain" => Box::new(rpr_core::ChainPlanner::new()),
        "traditional" => Box::new(TraditionalPlanner::new()),
        "traditional-local" => Box::new(TraditionalPlanner::locality_aware()),
        _ => Box::new(RprPlanner::new()),
    }
}

struct World {
    codec: StripeCodec,
    topo: rpr_topology::Topology,
    placement: Placement,
    profile: BandwidthProfile,
}

fn world(a: &PlanArgs) -> World {
    let topo = cluster_for(a.params, 1, 1);
    let placement = Placement::by_policy(a.placement, a.params, &topo);
    let profile = BandwidthProfile::uniform(topo.rack_count(), GBIT, GBIT / a.ratio);
    World {
        codec: StripeCodec::new(a.params),
        topo,
        placement,
        profile,
    }
}

/// Build the repair context of a scenario, including the optional
/// `--chunk-size` streaming configuration.
fn context<'w>(a: &PlanArgs, w: &'w World) -> RepairContext<'w> {
    let ctx = RepairContext::new(
        &w.codec,
        &w.topo,
        &w.placement,
        a.failed.clone(),
        a.block_bytes,
        &w.profile,
        cost_model(&a.cost).scaled_for_block(a.block_bytes),
    );
    match a.chunk_bytes {
        Some(c) => ctx.with_chunk_size(c),
        None => ctx,
    }
}

fn run_one(a: &PlanArgs, w: &World, scheme: &str) -> (rpr_core::RepairPlan, rpr_core::SimOutcome) {
    let ctx = context(a, w);
    let plan = planner_by_name(scheme).plan(&ctx);
    plan.validate(&w.codec, &w.topo, &w.placement)
        .expect("planner output must validate");
    let outcome = simulate(&plan, &ctx);
    (plan, outcome)
}

fn plan(a: &PlanArgs) -> Result<(), String> {
    let w = world(a);
    let (plan, outcome) = run_one(a, &w, &a.scheme);
    let names: Vec<String> = a.failed.iter().map(|b| b.name(&a.params)).collect();
    println!(
        "{} repair of {} on RS({},{}), block {} MiB, inner:cross 1:{}{}",
        a.scheme,
        names.join(","),
        a.params.n,
        a.params.k,
        a.block_bytes >> 20,
        a.ratio,
        match a.chunk_bytes {
            Some(c) => format!(", cut-through chunk {} MiB", c >> 20),
            None => String::new(),
        }
    );
    // Sliced plans (chain) move fractional blocks per send; report whole
    // blocks uniformly.
    let cross_blocks = outcome.stats.cross_bytes as f64 / a.block_bytes as f64;
    println!(
        "repair time {:.2} s | cross-rack {:.1} blocks | decoding matrix: {}",
        outcome.repair_time,
        cross_blocks,
        if outcome.stats.needs_matrix {
            "yes"
        } else {
            "no (XOR path)"
        },
    );
    if a.gantt {
        println!("\n{}", viz::gantt(&outcome, &w.topo, 56));
    }
    if a.dot {
        println!("\n{}", viz::dot(&plan, &w.topo));
    }
    Ok(())
}

fn compare(a: &PlanArgs) -> Result<(), String> {
    let w = world(a);
    let schemes: &[&str] = if a.failed.len() == 1 {
        &["traditional", "traditional-local", "car", "chain", "rpr"]
    } else {
        &["traditional", "traditional-local", "rpr"]
    };
    println!(
        "{:<18} {:>10} {:>8} {:>8}  {:<8}",
        "scheme", "time (s)", "cross", "inner", "matrix"
    );
    let mut base = f64::NAN;
    for scheme in schemes {
        let (plan, outcome) = run_one(a, &w, scheme);
        if base.is_nan() {
            base = outcome.repair_time;
        }
        // Sliced plans (chain) move fractional blocks per send; normalize
        // traffic to whole blocks for comparison.
        let blocks = |bytes: u64| bytes as f64 / a.block_bytes as f64;
        let inner_bytes = plan.stats(&w.topo).inner_transfers as u64 * plan.block_bytes;
        println!(
            "{:<18} {:>10.2} {:>8.1} {:>8.1}  {:<8} ({:>5.1}% of traditional)",
            scheme,
            outcome.repair_time,
            blocks(outcome.stats.cross_bytes),
            blocks(inner_bytes),
            if outcome.stats.needs_matrix {
                "yes"
            } else {
                "no"
            },
            outcome.repair_time / base * 100.0
        );
    }
    Ok(())
}

/// Simulate the scenario once with a [`rpr_obs::TraceRecorder`] attached
/// and dump the structured trace (schema: `docs/TRACING.md`). The trace
/// goes to `--out` or stdout; the human summary goes to stderr so piped
/// output stays valid JSON.
fn trace(t: &TraceArgs) -> Result<(), String> {
    let a = &t.plan;
    let w = world(a);
    let ctx = context(a, &w);
    let plan = planner_by_name(&a.scheme).plan(&ctx);
    plan.validate(&w.codec, &w.topo, &w.placement)
        .expect("planner output must validate");
    let rec = rpr_obs::TraceRecorder::default();
    let outcome = rpr_core::simulate_traced(&plan, &ctx, &rec);

    let snap = rec.snapshot();
    let events = rec.take_events();
    let output = match t.format {
        TraceFormat::Chrome => rpr_obs::export::to_chrome_trace(&events),
        TraceFormat::Jsonl => rpr_obs::export::to_json_lines(&events),
    };
    match &t.out {
        Some(path) => {
            std::fs::write(path, &output).map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!("wrote {} events to {path}", events.len());
        }
        None => print!("{output}"),
    }
    let (_, waves) = plan.cross_waves(&w.topo);
    eprintln!(
        "# {} repair: {:.2} s | {} cross + {} inner transfers | \
         {waves} cross-rack timesteps | {} events ({} dropped)",
        a.scheme,
        outcome.repair_time,
        outcome.stats.cross_transfers,
        outcome.stats.inner_transfers,
        snap.recorded_events,
        snap.dropped_events,
    );
    Ok(())
}

/// Turn a fault *family* into a concrete [`FaultPlan`]: the site (node,
/// op, rack, timestep) is picked from the seed, so the same seed always
/// degrades the same transfer — the property the chaos determinism check
/// in `scripts/verify.sh` relies on.
fn seeded_fault_plan(
    plan: &rpr_core::RepairPlan,
    ctx: &RepairContext<'_>,
    choice: FaultChoice,
    seed: u64,
) -> Result<FaultPlan, String> {
    let mut rng = SplitMix64::new(seed);
    let sends_matching = |pred: &dyn Fn(&Op) -> bool| -> Vec<usize> {
        plan.ops
            .iter()
            .enumerate()
            .filter(|(_, op)| pred(op))
            .map(|(i, _)| i)
            .collect()
    };
    let kind = match choice {
        FaultChoice::Crash => {
            let cands = crash_candidates(plan, ctx);
            if cands.is_empty() {
                return Err("no crash candidate: every cross sender is the recovery node".into());
            }
            let (node, timestep) = cands[rng.pick(cands.len())];
            FaultKind::HelperCrash { node, timestep }
        }
        FaultChoice::Timeout => {
            let sends = sends_matching(&|op| matches!(op, Op::Send { .. }));
            if sends.is_empty() {
                return Err("plan has no transfers to time out".into());
            }
            FaultKind::TransferTimeout {
                op: sends[rng.pick(sends.len())],
            }
        }
        FaultChoice::Corrupt => {
            let ints = sends_matching(&|op| {
                matches!(
                    op,
                    Op::Send {
                        what: Payload::Intermediate(_),
                        ..
                    }
                )
            });
            if ints.is_empty() {
                return Err(
                    "plan ships no intermediate blocks to corrupt (try --scheme rpr)".into(),
                );
            }
            FaultKind::CorruptIntermediate {
                op: ints[rng.pick(ints.len())],
            }
        }
        FaultChoice::Slow => {
            let mut helpers: Vec<usize> = plan
                .ops
                .iter()
                .filter_map(|op| match op {
                    Op::Send { from, .. } => Some(from.0),
                    _ => None,
                })
                .collect();
            helpers.sort_unstable();
            helpers.dedup();
            FaultKind::SlowLink {
                node: helpers[rng.pick(helpers.len())],
                factor: 0.25,
            }
        }
        FaultChoice::Rack => {
            let (waves, _) = plan.cross_waves(ctx.topo);
            let mut sites: Vec<(usize, usize)> = plan
                .ops
                .iter()
                .enumerate()
                .filter_map(|(i, op)| match (op, waves[i]) {
                    (Op::Send { from, .. }, Some(w)) => Some((ctx.topo.rack_of(*from).0, w)),
                    _ => None,
                })
                .collect();
            sites.sort_unstable();
            sites.dedup();
            if sites.is_empty() {
                return Err("plan has no cross-rack transfers to drop".into());
            }
            let (rack, timestep) = sites[rng.pick(sites.len())];
            FaultKind::RackSwitchOutage { rack, timestep }
        }
    };
    Ok(FaultPlan::new(seed).with(kind))
}

/// Deterministic stripe contents for the exec backend (same LCG as the
/// executor's own tests, so corruption scenarios are reproducible).
fn deterministic_stripe(codec: &StripeCodec, len: usize, seed: u64) -> Vec<Vec<u8>> {
    let mut s = seed | 1;
    let data: Vec<Vec<u8>> = (0..codec.params().n)
        .map(|_| {
            (0..len)
                .map(|_| {
                    s = s
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    (s >> 33) as u8
                })
                .collect()
        })
        .collect();
    let refs: Vec<&[u8]> = data.iter().map(|b| b.as_slice()).collect();
    codec.encode_stripe(&refs)
}

/// Run the scenario once under a seed-picked injected fault and dump the
/// degraded trace (`--backend sim` replays on the virtual clock and is
/// bit-deterministic; `--backend exec` moves real bytes and verifies the
/// reconstruction). Trace to `--out`/stdout, human summary to stderr.
fn inject(t: &InjectArgs) -> Result<(), String> {
    let a = &t.plan;
    let w = world(a);
    let ctx = context(a, &w);
    let plan = planner_by_name(&a.scheme).plan(&ctx);
    plan.validate(&w.codec, &w.topo, &w.placement)
        .expect("planner output must validate");
    let fp = seeded_fault_plan(&plan, &ctx, t.fault, t.seed)?;
    eprintln!("# injecting (seed {}): {:?}", t.seed, fp.faults[0]);

    let policy = RetryPolicy::default();
    let rec = rpr_obs::TraceRecorder::default();
    // (makespan, clean, verified, retries, replans, reused, final scheme)
    let (makespan, clean, verified, retries, replans, reused, final_scheme);
    let summary = match t.backend {
        InjectBackend::Sim => {
            let out = simulate_injected(&plan, &ctx, &fp, &policy, &rec)?;
            (makespan, clean, verified) = (out.repair_time, Some(out.clean_time), None);
            (retries, replans, reused) = (out.retries, out.replans, out.reused_ops);
            final_scheme = out.final_scheme.to_string();
            format!(
                "degraded {:.2} s vs clean {:.2} s (+{:.1}%) | retries {} | \
                 replans {} | reused ops {} | finished as {}",
                out.repair_time,
                out.clean_time,
                (out.repair_time / out.clean_time - 1.0) * 100.0,
                out.retries,
                out.replans,
                out.reused_ops,
                final_scheme
            )
        }
        InjectBackend::Exec => {
            let stripe = deterministic_stripe(&w.codec, a.block_bytes as usize, t.seed);
            let out = rpr_exec::execute_resilient(&plan, &ctx, &stripe, &rec, &fp, &policy)
                .map_err(|e| e.to_string())?;
            (makespan, clean, verified) =
                (out.report.wall_seconds, None, Some(out.report.verified));
            (retries, replans, reused) = (out.retries, out.replans, out.reused_ops);
            final_scheme = out.final_scheme.to_string();
            format!(
                "wall {:.2} s | verified: {} | retries {} | replans {} | \
                 reused ops {} | finished as {}",
                out.report.wall_seconds,
                if out.report.verified { "yes" } else { "NO" },
                out.retries,
                out.replans,
                out.reused_ops,
                final_scheme
            )
        }
    };

    let snap = rec.snapshot();
    let events = rec.take_events();
    emit_trace(&events, t.format, &t.out, t.json)?;
    if t.json {
        println!(
            "{{\"command\":\"inject\",\"backend\":{},\"scheme\":{},\"seed\":{},\
             \"fault\":{},\"attempts\":{},\"retries\":{},\"replans\":{},\
             \"reused_partials\":{},\"final_scheme\":{},\"makespan\":{},\
             \"clean\":{},\"verified\":{}}}",
            json_str(match t.backend {
                InjectBackend::Sim => "sim",
                InjectBackend::Exec => "exec",
            }),
            json_str(&a.scheme),
            t.seed,
            json_str(&format!("{:?}", fp.faults[0])),
            retries + replans + 1,
            retries,
            replans,
            reused,
            json_str(&final_scheme),
            makespan,
            clean.map_or("null".to_string(), |v| v.to_string()),
            verified.map_or("null".to_string(), |v| v.to_string()),
        );
    }
    eprintln!(
        "# {} repair under fault: {summary} | {} events ({} dropped)",
        a.scheme, snap.recorded_events, snap.dropped_events,
    );
    if verified == Some(false) {
        return Err("repair completed but the reconstruction failed byte verification".into());
    }
    Ok(())
}

/// Minimal JSON string escaping (the repository avoids serde): quotes,
/// backslashes, and control characters only — every summary field is
/// ASCII to begin with.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_str_array(items: &[String]) -> String {
    let cells: Vec<String> = items.iter().map(|s| json_str(s)).collect();
    format!("[{}]", cells.join(","))
}

/// Write the trace to `--out`, or to stdout — unless a `--json` summary
/// owns stdout, in which case a missing `--out` drops the trace (noted
/// on stderr) so stdout stays one parseable object.
fn emit_trace(
    events: &[rpr_obs::Event],
    format: TraceFormat,
    out: &Option<String>,
    json_owns_stdout: bool,
) -> Result<(), String> {
    let output = match format {
        TraceFormat::Chrome => rpr_obs::export::to_chrome_trace(events),
        TraceFormat::Jsonl => rpr_obs::export::to_json_lines(events),
    };
    match out {
        Some(path) => {
            std::fs::write(path, &output).map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!("wrote {} events to {path}", events.len());
        }
        None if json_owns_stdout => {
            eprintln!("# --json without --out: trace discarded ({} events)", events.len());
        }
        None => print!("{output}"),
    }
    Ok(())
}

fn storm_fault(f: ChaosFault) -> StormFault {
    match f {
        ChaosFault::Crash => StormFault::Crash(CrashSite::SeedPick),
        ChaosFault::ReplacementCrash => StormFault::Crash(CrashSite::NewHelper),
        ChaosFault::Timeout => StormFault::Timeout,
        ChaosFault::Corrupt => StormFault::Corrupt,
        ChaosFault::Slow => StormFault::Slow { factor: 0.25 },
        ChaosFault::Rack => StormFault::RackOutage,
        ChaosFault::Lie => StormFault::Lie,
    }
}

/// Drive a repair through the supervisor under a multi-generation fault
/// storm (`--storm crash,replacement-crash,timeout` is the acceptance
/// storm: a helper crash, then a crash of its replacement, then one
/// transient timeout). `--backend sim` replays bit-deterministically on
/// the virtual clock; `--backend exec` moves real bytes, cancels real
/// transfers when hedging fires, and byte-verifies the reconstruction.
/// The supervisor owns scheme selection (RPR first, degrading through
/// the tier ladder), so `--scheme` is ignored here.
fn chaos(c: &ChaosArgs) -> Result<(), String> {
    let a = &c.plan;
    let w = world(a);
    let ctx = context(a, &w);
    let mut storm = FaultStorm::new(c.seed);
    for f in &c.storm {
        storm = storm.with_generation(vec![storm_fault(*f)]);
    }
    let cfg = SuperviseConfig {
        hedge: c.hedge,
        deadline: c.deadline,
        proof: ProofMode::from_name(&c.proof)?,
        ..SuperviseConfig::default()
    };
    let mut tracker = HealthTracker::with_defaults();
    let rec = rpr_obs::TraceRecorder::default();
    let storm_names: Vec<String> = storm.generations[..]
        .iter()
        .map(|g| g[0].name().to_string())
        .collect();
    eprintln!("# storm (seed {}): {}", c.seed, storm_names.join(" -> "));

    struct Summary {
        makespan: f64,
        clean: Option<f64>,
        verified: Option<bool>,
        generations: usize,
        retries: usize,
        replans: usize,
        reused: usize,
        hedges: usize,
        hedge_wins: usize,
        deadline_hit: bool,
        final_scheme: String,
        final_tier: &'static str,
        fault_sites: Vec<String>,
        proofs_emitted: usize,
        proofs_rejected: usize,
        accusations: usize,
        ledger: ProofLedger,
    }
    let s = match c.backend {
        InjectBackend::Sim => {
            let out = supervise_injected(&ctx, &storm, &cfg, &mut tracker, &rec)?;
            Summary {
                makespan: out.repair_time,
                clean: Some(out.clean_time),
                verified: None,
                generations: out.generations.len(),
                retries: out.retries,
                replans: out.replans,
                reused: out.reused_ops,
                hedges: out.hedges,
                hedge_wins: out.hedge_wins,
                deadline_hit: out.deadline_hit,
                final_scheme: out.final_scheme,
                final_tier: out.final_tier.name(),
                fault_sites: out.fault_sites,
                proofs_emitted: out.proofs_emitted,
                proofs_rejected: out.proofs_rejected,
                accusations: out.accusations,
                ledger: out.ledger,
            }
        }
        InjectBackend::Exec => {
            let stripe = deterministic_stripe(&w.codec, a.block_bytes as usize, c.seed);
            let out =
                rpr_exec::execute_supervised(&ctx, &stripe, &rec, &storm, &cfg, &mut tracker)
                    .map_err(|e| e.to_string())?;
            Summary {
                makespan: out.report.wall_seconds,
                clean: None,
                verified: Some(out.report.verified),
                generations: out.generations.len(),
                retries: out.retries,
                replans: out.replans,
                reused: out.reused_ops,
                hedges: out.hedges,
                hedge_wins: out.hedge_wins,
                deadline_hit: out.deadline_hit,
                final_scheme: out.final_scheme.to_string(),
                final_tier: out.final_tier.name(),
                fault_sites: out.fault_sites,
                proofs_emitted: out.proofs_emitted,
                proofs_rejected: out.proofs_rejected,
                accusations: out.accusations,
                ledger: out.ledger,
            }
        }
    };
    if let Some(path) = &c.ledger_out {
        std::fs::write(path, s.ledger.to_json_lines())
            .map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote {} proof entries to {path}", s.ledger.entries.len());
    }

    let events = rec.take_events();
    emit_trace(&events, c.format, &c.out, c.json)?;
    if c.json {
        println!(
            "{{\"command\":\"chaos\",\"backend\":{},\"seed\":{},\"storm\":{},\
             \"fault_sites\":{},\"generations\":{},\"attempts\":{},\"retries\":{},\
             \"replans\":{},\"reused_partials\":{},\"hedges\":{},\"hedge_wins\":{},\
             \"deadline_hit\":{},\"final_scheme\":{},\"final_tier\":{},\
             \"proof\":{},\"proofs_emitted\":{},\"proofs_rejected\":{},\
             \"accusations\":{},\"makespan\":{},\"clean\":{},\"verified\":{}}}",
            json_str(match c.backend {
                InjectBackend::Sim => "sim",
                InjectBackend::Exec => "exec",
            }),
            c.seed,
            json_str_array(&storm_names),
            json_str_array(&s.fault_sites),
            s.generations,
            s.retries + s.replans + 1,
            s.retries,
            s.replans,
            s.reused,
            s.hedges,
            s.hedge_wins,
            s.deadline_hit,
            json_str(&s.final_scheme),
            json_str(s.final_tier),
            json_str(cfg.proof.name()),
            s.proofs_emitted,
            s.proofs_rejected,
            s.accusations,
            s.makespan,
            s.clean.map_or("null".to_string(), |v| v.to_string()),
            s.verified.map_or("null".to_string(), |v| v.to_string()),
        );
    }
    eprintln!(
        "# supervised repair: {:.2} s{} | {} generations | retries {} | replans {} | \
         reused {} | hedges {}/{} | tier {} ({}){}",
        s.makespan,
        s.clean
            .map(|cl| format!(" vs clean {cl:.2} s (+{:.1}%)", (s.makespan / cl - 1.0) * 100.0))
            .unwrap_or_default(),
        s.generations,
        s.retries,
        s.replans,
        s.reused,
        s.hedge_wins,
        s.hedges,
        s.final_tier,
        s.final_scheme,
        match s.verified {
            Some(true) => " | verified: yes",
            Some(false) => " | verified: NO",
            None => "",
        },
    );
    if s.deadline_hit {
        eprintln!("# deadline exceeded — repair degraded to meet it");
    }
    if cfg.proof.active() {
        eprintln!(
            "# proof plane ({}): {} emitted | {} rejected | {} accusation(s)",
            cfg.proof.name(),
            s.proofs_emitted,
            s.proofs_rejected,
            s.accusations,
        );
    }
    if s.verified == Some(false) {
        return Err("repair completed but the reconstruction failed byte verification".into());
    }
    if cfg.proof == ProofMode::Mandatory && s.proofs_rejected > 0 && s.accusations == 0 {
        return Err(
            "mandatory proof failure: rejected proofs could not be localized to a helper".into(),
        );
    }
    Ok(())
}

/// Drain a synthetic fleet backlog through the prioritized,
/// bandwidth-arbitrated repair scheduler (`rpr-sched`). The summary on
/// stdout is bit-deterministic for a fixed seed — `scripts/verify.sh`
/// diffs two identical runs — so wall-clock timing goes to stderr only.
fn fleet(f: &FleetArgs) -> Result<(), String> {
    let spec = rpr_sched::FleetSpec {
        params: f.params,
        racks: f.racks,
        nodes_per_rack: f.nodes_per_rack,
        stripes: f.stripes,
        block_bytes: f.block_bytes,
        seed: f.seed,
        storm: f.storm.iter().map(|&s| vec![storm_fault(s)]).collect(),
        agg_capacity: f.agg_gbit.map(|g| g * GBIT),
        arbitrate: f.arbitrate,
        inner_bps: GBIT,
        cross_bps: GBIT / f.ratio,
        threads: f.threads,
        churn_rate: f.churn_rate,
        escalate: f.escalate,
        ..rpr_sched::FleetSpec::default()
    };
    // The resume journal must be read before the new journal is
    // created: `--resume F --journal F` reuses one file, and create()
    // truncates it (re-simulation regenerates a complete journal).
    let resume = match &f.resume {
        Some(p) => Some(rpr_sched::JournalReplay::load(std::path::Path::new(p))?),
        None => None,
    };
    let journal = match &f.journal {
        Some(p) => {
            let mut j =
                rpr_sched::FleetJournal::create(std::path::Path::new(p), f.seed, f.stripes)
                    .map_err(|e| format!("cannot create journal {p}: {e}"))?;
            if let Ok(us) = std::env::var("RPR_JOURNAL_STALL_US") {
                let us: u64 = us
                    .parse()
                    .map_err(|_| "RPR_JOURNAL_STALL_US must be an integer (microseconds)")?;
                j.set_stall(std::time::Duration::from_micros(us));
            }
            Some(std::cell::RefCell::new(j))
        }
        None => None,
    };
    let io = rpr_sched::FleetIo {
        journal: journal.as_ref(),
        resume: resume.as_ref(),
    };
    let start = std::time::Instant::now();
    let out = match &f.out {
        Some(_) => {
            let rec = rpr_obs::TraceRecorder::default();
            let out = rpr_sched::run_fleet_with(&spec, io, &rec);
            let events = rec.take_events();
            emit_trace(&events, f.format, &f.out, f.json)?;
            out
        }
        None => rpr_sched::run_fleet_with(&spec, io, rpr_obs::noop()),
    };
    let wall = start.elapsed().as_secs_f64();

    let s = &out.summary;
    if f.json {
        println!(
            "{{\"command\":\"fleet\",\"code\":{},\"racks\":{},\"nodes_per_rack\":{},\
             \"block_mib\":{},\"seed\":{},\"arbitrate\":{},\"storm\":{},\
             \"classes\":{},\"unrepairable\":{},\"replans\":{},\"retries\":{},\
             \"degraded\":{},\"max_utilization\":{},\"churn_rate\":{},\
             \"escalate\":{},\"replayed\":{},\"summary\":{}}}",
            json_str(&format!("{},{}", f.params.n, f.params.k)),
            f.racks,
            f.nodes_per_rack,
            f.block_bytes >> 20,
            f.seed,
            f.arbitrate,
            json_str_array(
                &f.storm
                    .iter()
                    .map(|&sf| storm_fault(sf).name().to_string())
                    .collect::<Vec<_>>()
            ),
            out.classes,
            out.unrepairable,
            out.replans,
            out.retries,
            out.degraded,
            out.max_utilization,
            f.churn_rate,
            f.escalate,
            out.replayed,
            s.to_json(),
        );
    } else {
        println!(
            "fleet of {} RS({},{}) stripes over {} racks x {} nodes, \
             block {} MiB, seed {}{}",
            f.stripes,
            f.params.n,
            f.params.k,
            f.racks,
            f.nodes_per_rack,
            f.block_bytes >> 20,
            f.seed,
            if f.arbitrate { "" } else { " (arbitration off)" },
        );
        println!(
            "  repaired {} / {} | {} repair classes | unrepairable {} | degraded {}",
            s.repaired, s.stripes, out.classes, out.unrepairable, out.degraded,
        );
        println!(
            "  makespan {:.1} s | {:.1} stripes/s | {:.3} GB/s | peak link util {:.1}%",
            s.makespan,
            s.stripes_per_sec,
            s.bytes_per_sec / 1e9,
            out.max_utilization * 100.0,
        );
        println!(
            "  MTTR p50 {:.1} s | p99 {:.1} s | mean {:.1} s",
            s.mttr_p50, s.mttr_p99, s.mttr_mean,
        );
        println!(
            "  waited {} stripes ({:.1}%) | max wait {:.1} s | mean wait {:.1} s",
            s.waited,
            s.waited as f64 / s.stripes.max(1) as f64 * 100.0,
            s.max_wait,
            s.mean_wait,
        );
        if f.churn_rate > 0.0 {
            println!(
                "  churn {}/s: {} live failures | {} escalations | {} stripes LOST",
                f.churn_rate, s.churn_failures, s.escalations, s.lost,
            );
        }
        if out.replayed > 0 {
            println!("  resumed: {} stripe costs replayed from the journal", out.replayed);
        }
    }
    eprintln!(
        "# scheduled {} stripes in {wall:.2} s wall ({:.0} stripes/s admission)",
        s.stripes,
        s.stripes as f64 / wall.max(1e-9),
    );
    Ok(())
}

fn load(l: &LoadArgs) -> Result<(), String> {
    let mode = match l.mode {
        LoadModeChoice::Off => rpr_load::RepairMode::Off,
        LoadModeChoice::Unthrottled => rpr_load::RepairMode::Unthrottled,
        LoadModeChoice::Qos => rpr_load::RepairMode::Qos {
            foreground_share: l.share,
            repair_floor: l.floor,
        },
    };
    let spec = rpr_load::LoadSpec {
        params: l.params,
        block_bytes: l.block_bytes,
        chunk_bytes: l.chunk_bytes,
        inner_bps: 400.0e6,
        cross_bps: 400.0e6 / l.ratio,
        seed: l.seed,
        requests: l.requests,
        arrival_rate: l.rate,
        read_fraction: l.read_fraction,
        zipf_theta: l.zipf,
        objects: l.objects,
        request_bytes: l.request_bytes,
        repair_stripes: l.stripes,
        repair_stagger: l.stagger,
        mode,
    };
    let start = std::time::Instant::now();
    let summary = match &l.out {
        Some(_) => {
            let rec = rpr_obs::TraceRecorder::default();
            let summary = rpr_load::run_load_recorded(&spec, &rec);
            let events = rec.take_events();
            emit_trace(&events, l.format, &l.out, l.json)?;
            summary
        }
        None => rpr_load::run_load(&spec),
    };
    let wall = start.elapsed().as_secs_f64();

    if l.json {
        println!(
            "{{\"command\":\"load\",\"code\":{},\"block_mib\":{},\"request_mib\":{},\
             \"rate\":{},\"stripes\":{},\"stagger\":{},\"summary\":{}}}",
            json_str(&format!("{},{}", l.params.n, l.params.k)),
            l.block_bytes >> 20,
            l.request_bytes >> 20,
            l.rate,
            l.stripes,
            l.stagger,
            summary.to_json(),
        );
    } else {
        println!(
            "load of {} requests at {} req/s over RS({},{}), mode {} \
             (repair fraction {:.2}), seed {}",
            summary.requests,
            l.rate,
            l.params.n,
            l.params.k,
            summary.mode,
            summary.repair_fraction,
            summary.seed,
        );
        println!(
            "  reads {} | writes {} | degraded reads {} (pipeline-served)",
            summary.reads, summary.writes, summary.degraded,
        );
        println!(
            "  latency p50 {:.3} s | p99 {:.3} s | p999 {:.3} s | mean {:.3} s",
            summary.latency_p50, summary.latency_p99, summary.latency_p999, summary.mean_latency,
        );
        println!(
            "  first byte p50 {:.3} s | p99 {:.3} s | p999 {:.3} s",
            summary.first_byte_p50, summary.first_byte_p99, summary.first_byte_p999,
        );
        println!(
            "  repair makespan {:.1} s | run makespan {:.1} s",
            summary.repair_makespan, summary.makespan,
        );
    }
    eprintln!(
        "# simulated {} requests in {wall:.2} s wall",
        summary.requests,
    );
    Ok(())
}

/// Pull one unsigned integer field out of a hand-rolled JSON line.
fn json_usize_field(line: &str, key: &str) -> Option<usize> {
    let pat = format!("\"{key}\":");
    let i = line.find(&pat)? + pat.len();
    let rest = &line[i..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Verify a recorded repair offline from its artifacts alone: parse the
/// proof ledger, re-derive the ledger key from the header seed, re-check
/// every binding / wire hop / output witness with [`ProofLedger::audit`],
/// and cross-check the verdict against the captured JSONL trace — every
/// ledger entry must have been announced (`proof_emitted`), every
/// mismatch flagged (`proof_rejected`), and, for a mandatory-mode
/// ledger, every localized dishonest hop must have drawn an online
/// accusation (`helper_accused`). Exits non-zero when the evidence does
/// not verify, so soak scripts can gate on it.
fn audit(t: &AuditArgs) -> Result<(), String> {
    let ledger_text =
        std::fs::read_to_string(&t.ledger).map_err(|e| format!("reading {}: {e}", t.ledger))?;
    let trace_text =
        std::fs::read_to_string(&t.trace).map_err(|e| format!("reading {}: {e}", t.trace))?;
    let ledger = ProofLedger::parse(&ledger_text)?;
    let report = ledger.audit();

    // The proof-plane event stream of the trace, keyed (gen, op) /
    // (gen, node).
    let mut emitted: Vec<(usize, usize)> = Vec::new();
    let mut rejected: Vec<(usize, usize)> = Vec::new();
    let mut accused: Vec<(usize, usize)> = Vec::new();
    for line in trace_text.lines() {
        let keyed = |a: &str, b: &str| -> Option<(usize, usize)> {
            Some((json_usize_field(line, a)?, json_usize_field(line, b)?))
        };
        if line.contains("\"type\":\"proof_emitted\"") {
            emitted.extend(keyed("gen", "op"));
        } else if line.contains("\"type\":\"proof_rejected\"") {
            rejected.extend(keyed("gen", "op"));
        } else if line.contains("\"type\":\"helper_accused\"") {
            accused.extend(keyed("gen", "node"));
        }
    }
    emitted.sort_unstable();
    rejected.sort_unstable();

    // Cross-checks: ledger entries <-> announcements, mismatched entries
    // <-> rejections, dishonest hops <-> accusations (mandatory only).
    let mut ledger_keys: Vec<(usize, usize)> = ledger
        .entries
        .iter()
        .map(|e| (e.gen, e.proof.op))
        .collect();
    ledger_keys.sort_unstable();
    let mut mismatch_keys: Vec<(usize, usize)> = report
        .mismatches
        .iter()
        .map(|&i| (ledger.entries[i].gen, ledger.entries[i].proof.op))
        .collect();
    mismatch_keys.sort_unstable();
    let mut inconsistencies: Vec<String> = Vec::new();
    if ledger_keys != emitted {
        inconsistencies.push(format!(
            "trace announces {} proof(s), ledger seals {}",
            emitted.len(),
            ledger_keys.len()
        ));
    }
    if mismatch_keys != rejected {
        inconsistencies.push(format!(
            "trace rejects {} proof(s), ledger witnesses {} mismatch(es)",
            rejected.len(),
            mismatch_keys.len()
        ));
    }
    let unaccused: Vec<usize> = if ledger.mode == ProofMode::Mandatory {
        report
            .dishonest
            .iter()
            .copied()
            .filter(|&i| {
                let e = &ledger.entries[i];
                !accused.contains(&(e.gen, e.proof.node))
            })
            .collect()
    } else {
        Vec::new()
    };
    if !unaccused.is_empty() {
        inconsistencies.push(format!(
            "{} dishonest hop(s) drew no online accusation under mandatory proofs",
            unaccused.len()
        ));
    }

    let verdict = if !report.binding_failures.is_empty() {
        "tampered"
    } else if !inconsistencies.is_empty() {
        "inconsistent"
    } else if report.clean() {
        "clean"
    } else {
        "dishonesty-localized"
    };
    let first = report.first_dishonest().map(|i| {
        let e = &ledger.entries[i];
        (e.gen, e.proof.op, e.proof.node, e.proof.algorithm.clone())
    });

    if t.json {
        println!(
            "{{\"command\":\"audit\",\"verdict\":{},\"mode\":{},\"seed\":{},\
             \"entries\":{},\"binding_failures\":{},\"wire_failures\":{},\
             \"mismatches\":{},\"dishonest\":{},\"accusations\":{},\
             \"first_dishonest\":{}}}",
            json_str(verdict),
            json_str(ledger.mode.name()),
            ledger.seed,
            report.entries,
            report.binding_failures.len(),
            report.wire_failures.len(),
            report.mismatches.len(),
            report.dishonest.len(),
            accused.len(),
            first.as_ref().map_or("null".to_string(), |(g, op, node, alg)| {
                format!(
                    "{{\"gen\":{g},\"op\":{op},\"node\":{node},\"algorithm\":{}}}",
                    json_str(alg)
                )
            }),
        );
    }
    eprintln!(
        "# audit of {} ({} mode, seed {}): {} entries | {} binding failure(s) | \
         {} wire failure(s) | {} mismatch(es) | {} dishonest | verdict: {verdict}",
        t.ledger,
        ledger.mode.name(),
        ledger.seed,
        report.entries,
        report.binding_failures.len(),
        report.wire_failures.len(),
        report.mismatches.len(),
        report.dishonest.len(),
    );
    if let Some((g, op, node, alg)) = &first {
        eprintln!(
            "# first dishonest hop: generation {g}, op {op} ({alg}) at node {node} — \
             wrong output from honest inputs"
        );
    }
    for msg in &inconsistencies {
        eprintln!("# inconsistency: {msg}");
    }
    match verdict {
        "clean" | "dishonesty-localized" => Ok(()),
        "tampered" => Err(format!(
            "audit failed: {} ledger binding(s) do not recompute (tampered or forged)",
            report.binding_failures.len()
        )),
        _ => Err(format!("audit failed: {}", inconsistencies.join("; "))),
    }
}

fn topo(params: CodeParams, policy: PlacementPolicy) -> Result<(), String> {
    // Flat placement needs one rack per block; the compact layouts use the
    // paper's q racks (+1 spare).
    let topo = if policy == PlacementPolicy::Flat {
        rpr_topology::Topology::uniform(params.total() + 1, 2)
    } else {
        cluster_for(params, 1, 1)
    };
    let placement = Placement::by_policy(policy, params, &topo);
    println!(
        "RS({},{}) over {} racks (q = {} + 1 spare), {} nodes/rack, {policy:?}:",
        params.n,
        params.k,
        topo.rack_count(),
        params.rack_count(),
        topo.nodes_in(rpr_topology::RackId(0)).len()
    );
    for rack in topo.racks() {
        let mut cells = Vec::new();
        for &node in topo.nodes_in(rack) {
            match placement.block_on(node) {
                Some(b) => cells.push(format!("{node:?}={}", b.name(&params))),
                None => cells.push(format!("{node:?}=·")),
            }
        }
        println!("  {rack:?}: {}", cells.join("  "));
    }
    println!(
        "single-rack fault tolerant: {} | P0 co-located with data: {}",
        placement.is_single_rack_fault_tolerant(&topo),
        placement.p0_colocated_with_data(&topo)
    );
    Ok(())
}

fn analyze(ti_ms: f64, tc_ms: f64) -> Result<(), String> {
    let a = AnalysisParams {
        t_i: ti_ms / 1e3,
        t_c: tc_ms / 1e3,
    };
    println!(
        "closed-form repair time (§4.1), t_i = {ti_ms} ms, t_c = {tc_ms} ms:\n\
         {:<8} {:>14} {:>14} {:>10}",
        "code", "traditional", "RPR worst", "reduction"
    );
    for (n, k) in [
        (4, 2),
        (6, 2),
        (8, 2),
        (6, 3),
        (8, 4),
        (12, 4),
        (10, 4),
        (16, 4),
    ] {
        let p = CodeParams::new(n, k);
        let tra = traditional_repair_time(p, a) * 1e3;
        let rpr = rpr_repair_time(p, a) * 1e3;
        println!(
            "({n:>2},{k})  {tra:>11.1} ms {rpr:>11.1} ms {:>9.1}%",
            (1.0 - rpr / tra) * 100.0
        );
    }
    Ok(())
}
