//! End-to-end CLI tests: parse a command line, run it, and check it
//! neither errors nor panics (output goes to stdout; correctness of the
//! underlying numbers is covered by the core test-suite).

use rpr_cli::{args, commands};

fn run(line: &str) -> Result<(), String> {
    let argv: Vec<String> = line.split_whitespace().map(String::from).collect();
    commands::run(args::parse(&argv)?)
}

#[test]
fn plan_command_runs_for_every_scheme() {
    for scheme in ["rpr", "car", "chain", "traditional", "traditional-local"] {
        run(&format!(
            "plan --code 6,2 --fail d1 --scheme {scheme} --block-mib 16"
        ))
        .unwrap_or_else(|e| panic!("{scheme}: {e}"));
    }
}

#[test]
fn plan_with_gantt_and_dot() {
    run("plan --code 4,2 --fail d0 --gantt --dot --block-mib 8").expect("viz outputs");
}

#[test]
fn compare_single_and_multi_failure() {
    run("compare --code 8,4 --fail d0 --block-mib 16").expect("single");
    run("compare --code 8,4 --fail d0,d3 --block-mib 16").expect("multi");
}

#[test]
fn compare_with_custom_ratio_and_cost() {
    run("compare --code 6,3 --fail p0 --ratio 5 --cost ec2 --block-mib 16").expect("ec2 cost");
    run("compare --code 6,3 --fail 2 --cost free --block-mib 16").expect("free cost");
}

#[test]
fn topo_for_all_placements() {
    for placement in ["compact", "preplaced", "flat"] {
        run(&format!("topo --code 6,2 --placement {placement}"))
            .unwrap_or_else(|e| panic!("{placement}: {e}"));
    }
}

#[test]
fn analyze_with_custom_times() {
    run("analyze").expect("defaults");
    run("analyze --ti-ms 2 --tc-ms 40").expect("custom");
}

#[test]
fn parity_failures_through_the_cli() {
    run("plan --code 12,4 --fail p2 --block-mib 8").expect("parity repair");
    run("plan --code 12,4 --fail p0,p1 --block-mib 8").expect("double parity");
}
