//! Real-data execution of repair plans — the repository's stand-in for the
//! paper's Amazon EC2 deployment (§5.2).
//!
//! Where `rpr-netsim` *simulates* a plan on a virtual clock, this crate
//! *executes* it: every operation runs on its own OS thread, transfers move
//! real buffers through token-bucket rate limiters that reproduce the
//! bandwidth matrix (e.g. the paper's Table 1, scaled to laptop speeds),
//! and combines perform genuine GF(2^8) arithmetic via `rpr-gf`. Because
//! the XOR kernel runs several times faster than the table-lookup Galois
//! kernel, the paper's `t_wd ≫ t_nd` decode gap emerges from the real
//! machine rather than from a model.
//!
//! The executor finally verifies, byte for byte, that every reconstructed
//! block equals the lost original — plans do not merely *time* well, they
//! *decode correctly*.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arena;
mod executor;
mod ratelimit;

pub use arena::ArenaStats;
pub use executor::{
    execute, execute_recorded, execute_resilient, execute_supervised, ExecError, ExecReport,
    OpTiming, ResilientReport, SupervisedReport,
};
pub use ratelimit::TokenBucket;

use rpr_topology::BandwidthProfile;

/// Scale an "EC2" bandwidth profile down to a laptop-friendly rate while
/// preserving every inter/intra-region ratio. With the default `1/16`
/// scale, the mean cross-region rate of Table 1 (≈ 53 Mbps) becomes
/// ≈ 0.41 MB/s, so a 1 MiB block crosses "regions" in ≈ 2.5 s — measurable
/// timing without multi-minute experiments.
pub fn scaled_ec2_profile(racks: usize, scale: f64) -> BandwidthProfile {
    rpr_topology::ec2_table1_profile(racks).scaled(scale)
}

/// Measure the achieved throughput (bytes/sec) of a rate-limited path by
/// pushing `seconds`-worth of traffic through a fresh token bucket — the
/// microbenchmark used to regenerate Table 1. The bucket's burst
/// allowance is explicitly discarded ([`TokenBucket::drain_burst`])
/// before the clock starts, so the result reflects the steady rate
/// regardless of how large the allowance is.
pub fn measure_path_throughput(rate_bps: f64, seconds: f64) -> f64 {
    let bucket = TokenBucket::new(rate_bps);
    bucket.drain_burst();
    let bytes = (rate_bps * seconds).max(1.0) as u64;
    let start = std::time::Instant::now();
    let mut left = bytes;
    const CHUNK: u64 = 64 * 1024;
    while left > 0 {
        let take = left.min(CHUNK);
        bucket.take(take as f64);
        left -= take;
    }
    bytes as f64 / start.elapsed().as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpr_topology::MBIT;

    #[test]
    fn scaled_profile_keeps_ratios() {
        let p = scaled_ec2_profile(5, 1.0 / 16.0);
        assert!((p.cross_to_inner_ratio() - 11.32).abs() < 0.02);
    }

    #[test]
    fn measurement_is_not_inflated_by_the_burst_allowance() {
        // Over a 0.1 s window an undrained 20 ms burst would read ~20%
        // high; the explicit drain keeps short measurements honest.
        let rate = 64.0 * MBIT;
        let got = measure_path_throughput(rate, 0.1);
        assert!(got <= rate * 1.10, "measured {got:.0} vs nominal {rate:.0}");
    }

    #[test]
    fn measured_throughput_tracks_configured_rate() {
        let rate = 64.0 * MBIT;
        let got = measure_path_throughput(rate, 0.25);
        assert!(
            (got / rate - 1.0).abs() < 0.20,
            "measured {got:.0} vs nominal {rate:.0}"
        );
    }
}
