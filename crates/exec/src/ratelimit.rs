//! A blocking token bucket — the wondershaper of this repository.

use parking_lot::Mutex;
use std::time::{Duration, Instant};

struct State {
    tokens: f64,
    last: Instant,
}

/// A token bucket refilled continuously at `rate` units/sec. `take` blocks
/// the calling thread until the requested amount is available, so threads
/// sharing a bucket share its bandwidth approximately fairly (FIFO on the
/// internal lock).
pub struct TokenBucket {
    rate: f64,
    burst: f64,
    state: Mutex<State>,
}

impl TokenBucket {
    /// A bucket refilling at `rate` units/sec with a 20 ms burst allowance
    /// (enough to absorb scheduler jitter without distorting transfer
    /// times).
    ///
    /// # Panics
    /// Panics if the rate is not strictly positive and finite.
    pub fn new(rate: f64) -> TokenBucket {
        assert!(rate > 0.0 && rate.is_finite(), "TokenBucket: bad rate");
        let burst = rate * 0.02;
        TokenBucket {
            rate,
            burst,
            state: Mutex::new(State {
                tokens: burst,
                last: Instant::now(),
            }),
        }
    }

    /// The configured rate, units/sec.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// The burst allowance in units (20 ms worth of the rate).
    pub fn burst(&self) -> f64 {
        self.burst
    }

    /// Discard every accumulated token without blocking, so the next
    /// [`TokenBucket::take`] pays the full steady rate. Microbenchmarks
    /// call this before starting their clock; see
    /// `measure_path_throughput`.
    pub fn drain_burst(&self) {
        let mut s = self.state.lock();
        s.tokens = 0.0;
        s.last = Instant::now();
    }

    /// Block until `amount` tokens are available, then consume them.
    ///
    /// # Panics
    /// Panics on a negative or non-finite amount.
    pub fn take(&self, amount: f64) {
        assert!(amount >= 0.0 && amount.is_finite(), "TokenBucket: amount");
        if amount == 0.0 {
            return;
        }
        loop {
            let wait = {
                let mut s = self.state.lock();
                let now = Instant::now();
                let elapsed = now.duration_since(s.last).as_secs_f64();
                s.tokens = (s.tokens + elapsed * self.rate).min(self.burst.max(amount));
                s.last = now;
                if s.tokens >= amount {
                    s.tokens -= amount;
                    return;
                }
                (amount - s.tokens) / self.rate
            };
            // Sleep outside the lock so other takers can run.
            std::thread::sleep(Duration::from_secs_f64(wait.min(0.05)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn take_enforces_the_rate() {
        let b = TokenBucket::new(1_000_000.0); // 1 MB/s
        let start = Instant::now();
        b.take(200_000.0); // burst covers 50k; ~0.15 s for the rest
        let dt = start.elapsed().as_secs_f64();
        assert!((0.10..0.40).contains(&dt), "took {dt}s");
    }

    #[test]
    fn zero_take_is_free() {
        let b = TokenBucket::new(1.0);
        let start = Instant::now();
        b.take(0.0);
        assert!(start.elapsed().as_secs_f64() < 0.01);
    }

    #[test]
    fn concurrent_takers_share_bandwidth() {
        let b = Arc::new(TokenBucket::new(2_000_000.0));
        let start = Instant::now();
        let mut handles = Vec::new();
        for _ in 0..2 {
            let b = b.clone();
            handles.push(std::thread::spawn(move || {
                // 300 KB each through a shared 2 MB/s bucket in 64 KB chunks.
                for _ in 0..5 {
                    b.take(60_000.0);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let dt = start.elapsed().as_secs_f64();
        // 600 KB total at 2 MB/s ≈ 0.3 s minus the 100 KB of shared burst.
        assert!((0.15..0.80).contains(&dt), "took {dt}s");
    }

    #[test]
    fn drain_burst_removes_the_free_allowance() {
        let b = TokenBucket::new(1_000_000.0); // 1 MB/s, 20 KB burst
        assert!((b.burst() - 20_000.0).abs() < 1e-9);
        b.drain_burst();
        let start = Instant::now();
        // A fresh bucket would serve this instantly from the burst; after
        // draining it must take ~20 ms of refill.
        b.take(20_000.0);
        let dt = start.elapsed().as_secs_f64();
        assert!((0.01..0.30).contains(&dt), "took {dt}s");
    }

    #[test]
    #[should_panic(expected = "bad rate")]
    fn zero_rate_rejected() {
        TokenBucket::new(0.0);
    }

    #[test]
    #[should_panic(expected = "bad rate")]
    fn negative_rate_rejected() {
        TokenBucket::new(-8.0e6);
    }

    #[test]
    #[should_panic(expected = "bad rate")]
    fn non_finite_rate_rejected() {
        TokenBucket::new(f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "bad rate")]
    fn nan_rate_rejected() {
        TokenBucket::new(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "amount")]
    fn negative_take_rejected() {
        TokenBucket::new(1.0e6).take(-1.0);
    }

    #[test]
    #[should_panic(expected = "amount")]
    fn non_finite_take_rejected() {
        TokenBucket::new(1.0e6).take(f64::NAN);
    }

    #[test]
    fn burst_larger_than_transfer_still_caps_accumulation() {
        // A request far larger than the burst allowance must not deadlock:
        // the cap tracks max(burst, amount), so the bucket eventually
        // accumulates enough, paying the full steady rate for the excess.
        let b = TokenBucket::new(1_000_000.0); // 1 MB/s, 20 KB burst
        let start = Instant::now();
        b.take(5.0 * b.burst()); // 100 KB: ~80 ms beyond the burst
        let dt = start.elapsed().as_secs_f64();
        assert!((0.05..0.40).contains(&dt), "took {dt}s");
        // And the opposite shape: a transfer smaller than the burst goes
        // through instantly on a fresh bucket.
        let small = TokenBucket::new(1_000_000.0);
        let start = Instant::now();
        small.take(small.burst() * 0.5);
        assert!(start.elapsed().as_secs_f64() < 0.01);
    }
}
