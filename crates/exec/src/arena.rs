//! A reusable chunk-buffer arena for the streaming executor.
//!
//! Cut-through streaming moves one `Delivery` per chunk per dependency
//! edge. Before the arena existed every forwarded chunk allocated a fresh
//! `Vec<u8>` (`Arc::new(buf[r].to_vec())`), so a chunked repair performed
//! `O(chunks × edges)` heap allocations on its hot path. The arena turns
//! that into a steady state of a handful of buffers per edge: a producer
//! checks a buffer out of the shared [`BufferPool`], fills it, and wraps
//! it in a [`Chunk`]; when the last consumer drops its handle the buffer
//! flows back to the pool's free list and the next chunk reuses it.
//!
//! The pool is deliberately simple — one mutex-guarded free list, no
//! size classes. A run streams chunks of at most two distinct lengths
//! (the configured chunk size and one ragged tail), and `Vec::resize`
//! on a recycled buffer never reallocates once its capacity has grown
//! to the chunk size, so a single list is enough.

use parking_lot::Mutex;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Weak};

/// Allocation counters of one execution's buffer pool, reported on
/// [`ExecReport`](crate::ExecReport) so tests (and the curious) can see
/// the steady state: after warm-up, `recycled` should dwarf `fresh`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Buffers allocated fresh from the heap (pool was empty).
    pub fresh: usize,
    /// Checkouts served from the free list without a heap allocation.
    pub recycled: usize,
}

impl ArenaStats {
    /// Element-wise sum — used to aggregate the pools of a multi-attempt
    /// execution (retry generations each run their own pool).
    pub fn plus(self, other: ArenaStats) -> ArenaStats {
        ArenaStats {
            fresh: self.fresh + other.fresh,
            recycled: self.recycled + other.recycled,
        }
    }
}

/// A free list of chunk buffers shared by every op thread of one
/// execution attempt. Checked-out buffers return automatically when
/// their last [`Chunk`] handle drops.
#[derive(Debug, Default)]
pub struct BufferPool {
    free: Mutex<Vec<Vec<u8>>>,
    fresh: AtomicUsize,
    recycled: AtomicUsize,
}

impl BufferPool {
    /// A fresh, empty pool. `Arc` because [`PoolBuf`]s hold a weak
    /// back-reference for their return trip.
    pub fn new() -> Arc<BufferPool> {
        Arc::new(BufferPool::default())
    }

    /// Check out a buffer of exactly `len` bytes. Contents are
    /// unspecified — the caller must overwrite the whole buffer.
    pub fn get(self: &Arc<Self>, len: usize) -> PoolBuf {
        let popped = self.free.lock().pop();
        let mut data = match popped {
            Some(d) => {
                self.recycled.fetch_add(1, Ordering::Relaxed);
                d
            }
            None => {
                self.fresh.fetch_add(1, Ordering::Relaxed);
                Vec::new()
            }
        };
        data.resize(len, 0);
        PoolBuf {
            data,
            pool: Arc::downgrade(self),
        }
    }

    /// Allocation counters so far.
    pub fn stats(&self) -> ArenaStats {
        ArenaStats {
            fresh: self.fresh.load(Ordering::Relaxed),
            recycled: self.recycled.load(Ordering::Relaxed),
        }
    }
}

/// A buffer checked out of a [`BufferPool`]. Dereferences to its bytes;
/// on drop the underlying allocation returns to the pool's free list
/// (or is simply freed if the pool is already gone).
#[derive(Debug)]
pub struct PoolBuf {
    data: Vec<u8>,
    pool: Weak<BufferPool>,
}

impl Deref for PoolBuf {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for PoolBuf {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl Drop for PoolBuf {
    fn drop(&mut self) {
        if let Some(pool) = self.pool.upgrade() {
            pool.free.lock().push(std::mem::take(&mut self.data));
        }
    }
}

/// The payload of one `Delivery`: a pooled chunk on the streaming hot
/// path, or a plain shared vector for whole-block values (block-mode
/// edges, prefilled partials, local stripe reads). Cloning either
/// variant is an `Arc` bump — fan-out edges share one buffer.
#[derive(Clone, Debug)]
pub enum Chunk {
    /// A pool-backed chunk; returns to its [`BufferPool`] on last drop.
    Pooled(Arc<PoolBuf>),
    /// A whole-block value shared as an ordinary vector.
    Shared(Arc<Vec<u8>>),
}

impl Chunk {
    /// Wrap a checked-out buffer for forwarding.
    pub fn pooled(buf: PoolBuf) -> Chunk {
        Chunk::Pooled(Arc::new(buf))
    }

    /// Wrap an already-shared whole-block value.
    pub fn shared(v: Arc<Vec<u8>>) -> Chunk {
        Chunk::Shared(v)
    }

    /// The payload as a block-shaped `Arc<Vec<u8>>` — free for `Shared`,
    /// one copy for `Pooled` (never hit on the block-mode path, which
    /// only ever carries `Shared`).
    pub fn to_block(&self) -> Arc<Vec<u8>> {
        match self {
            Chunk::Shared(v) => v.clone(),
            Chunk::Pooled(b) => Arc::new(b.to_vec()),
        }
    }
}

impl Deref for Chunk {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        match self {
            Chunk::Pooled(b) => b,
            Chunk::Shared(v) => v,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkout_returns_requested_length() {
        let pool = BufferPool::new();
        assert_eq!(pool.get(17).len(), 17);
        assert_eq!(pool.get(0).len(), 0);
    }

    #[test]
    fn dropped_buffers_are_recycled() {
        let pool = BufferPool::new();
        let a = pool.get(64);
        drop(a);
        let b = pool.get(64);
        let stats = pool.stats();
        assert_eq!(stats.fresh, 1, "second checkout must reuse the first");
        assert_eq!(stats.recycled, 1);
        drop(b);
    }

    #[test]
    fn recycled_buffer_is_resized_not_stale() {
        let pool = BufferPool::new();
        {
            let mut a = pool.get(8);
            a.copy_from_slice(&[0xAB; 8]);
        }
        let b = pool.get(4);
        assert_eq!(b.len(), 4, "recycled buffer must shrink to fit");
        let c = pool.get(12);
        assert_eq!(c.len(), 12);
    }

    #[test]
    fn chunk_fanout_shares_one_buffer_until_last_drop() {
        let pool = BufferPool::new();
        let mut buf = pool.get(16);
        buf.copy_from_slice(&[7u8; 16]);
        let c1 = Chunk::pooled(buf);
        let c2 = c1.clone();
        assert_eq!(&c1[..], &c2[..]);
        drop(c1);
        assert_eq!(pool.stats().fresh, 1);
        assert!(pool.free.lock().is_empty(), "c2 still holds the buffer");
        drop(c2);
        assert_eq!(pool.free.lock().len(), 1, "last drop returns the buffer");
    }

    #[test]
    fn pool_death_orphans_outstanding_buffers_safely() {
        let pool = BufferPool::new();
        let buf = pool.get(8);
        drop(pool);
        drop(buf); // must not panic — buffer is simply freed
    }

    #[test]
    fn shared_chunks_convert_to_blocks_without_copying() {
        let v = Arc::new(vec![1u8, 2, 3]);
        let c = Chunk::shared(v.clone());
        assert!(Arc::ptr_eq(&c.to_block(), &v));
    }

    #[test]
    fn stats_aggregate_across_attempts() {
        let a = ArenaStats {
            fresh: 2,
            recycled: 10,
        };
        let b = ArenaStats {
            fresh: 1,
            recycled: 5,
        };
        assert_eq!(
            a.plus(b),
            ArenaStats {
                fresh: 3,
                recycled: 15
            }
        );
    }
}
